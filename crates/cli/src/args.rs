//! Minimal argument parsing for the `secreta` binary.
//!
//! Flags are `--name value` (or `--flag` for booleans); the first
//! non-flag token is the subcommand, the second (when present) a
//! positional path. No external parser dependency — the surface is
//! small and fixed.

use std::collections::BTreeMap;

/// Parsed command line.
#[derive(Debug, Default)]
pub struct Args {
    /// Subcommand name.
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (booleans store "true").
    pub options: BTreeMap<String, String>,
}

/// Boolean flags (no value follows them).
const BOOL_FLAGS: &[&str] = &[
    "help",
    "ascii",
    "verify",
    "json",
    "no-cache",
    "all",
    "repair",
    "distributed",
];

impl Args {
    /// Parse from an iterator of tokens (excluding argv\[0\]).
    pub fn parse(tokens: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = tokens.peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                if BOOL_FLAGS.contains(&name) {
                    args.options.insert(name.to_owned(), "true".to_owned());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| format!("--{name} expects a value"))?;
                    args.options.insert(name.to_owned(), value);
                }
            } else if args.command.is_empty() {
                args.command = tok;
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// Required string option.
    pub fn req(&self, name: &str) -> Result<&str, String> {
        self.options
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{name}"))
    }

    /// Optional string option.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Optional usize with default.
    pub fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.options.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
            None => Ok(default),
        }
    }

    /// Optional u64 with default.
    pub fn u64_or(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.options.get(name) {
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got {v:?}")),
            None => Ok(default),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, name: &str) -> bool {
        self.options.get(name).map(String::as_str) == Some("true")
    }

    /// Re-render the positionals and options as command-line tokens,
    /// skipping the options named in `exclude` — how the distributed
    /// coordinator forwards its session arguments to spawned
    /// `secreta worker` processes.
    pub fn forward(&self, exclude: &[&str]) -> Vec<String> {
        let mut out: Vec<String> = self.positional.clone();
        for (k, v) in &self.options {
            if exclude.contains(&k.as_str()) {
                continue;
            }
            out.push(format!("--{k}"));
            if !BOOL_FLAGS.contains(&k.as_str()) {
                out.push(v.clone());
            }
        }
        out
    }

    /// First positional argument.
    pub fn positional0(&self) -> Result<&str, String> {
        self.positional
            .first()
            .map(String::as_str)
            .ok_or_else(|| "missing positional argument (dataset path)".to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned)).unwrap()
    }

    #[test]
    fn subcommand_positional_and_options() {
        let a = parse("evaluate data.csv --k 5 --tx Items --ascii");
        assert_eq!(a.command, "evaluate");
        assert_eq!(a.positional0().unwrap(), "data.csv");
        assert_eq!(a.req("k").unwrap(), "5");
        assert_eq!(a.usize_or("k", 1).unwrap(), 5);
        assert!(a.flag("ascii"));
        assert!(!a.flag("verify"));
        assert_eq!(a.opt("missing"), None);
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = Args::parse(["evaluate", "--k"].iter().map(|s| s.to_string()));
        assert!(err.is_err());
    }

    #[test]
    fn bad_integers_are_reported() {
        let a = parse("x --k five");
        assert!(a.usize_or("k", 1).is_err());
        assert!(a.u64_or("k", 1).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = parse("x");
        assert_eq!(a.usize_or("k", 7).unwrap(), 7);
        assert_eq!(a.u64_or("seed", 9).unwrap(), 9);
        assert!(a.req("k").is_err());
        assert!(a.positional0().is_err());
    }
}
