//! Subcommand implementations.

use crate::args::Args;
use secreta_core::data::{
    chunk, csv as dcsv, stats, ChunkStats, CsvOptions, DataError, MemoryBudget, RtTable,
};
use secreta_core::hierarchy::io as hio;
use secreta_core::metrics::query as q;
use secreta_core::policy::{
    generate_privacy, generate_utility, io as pio, PrivacyStrategy, UtilityStrategy,
};
use secreta_core::store::RunStore;
use secreta_core::{
    config::{Bounding, MethodSpec, RelAlgo, TxAlgo},
    export, Configuration, Orchestrator, SessionContext, SessionSpec, Sweep, VaryingParam,
};
use secreta_gen::{DatasetSpec, WorkloadSpec};
use secreta_plot::BarChart;
use serde::{Serialize, Value};
use std::path::Path;

/// Default run-store location for `--store-dir`-aware commands.
pub(crate) const DEFAULT_STORE_DIR: &str = ".secreta-store";

const HELP: &str = "\
secreta — evaluate and compare relational & transaction anonymization algorithms

USAGE: secreta <command> [dataset.csv] [--options]

COMMANDS
  generate   synthesize a dataset       --kind adult|basket|census|adversarial
             --rows N [--items N] [--seed S] --out FILE
             (adversarial: [--correlation C] [--item-skew head|tail]
              [--outlier-fraction F])
  info       dataset summary            DATA [--tx COL]
  histogram  attribute histogram        DATA --attr NAME [--top N] [--tx COL]
  hierarchy  derive a hierarchy         DATA --attr NAME|--items [--fanout F]
             [--tx COL] [--out FILE]
  workload   generate COUNT queries     DATA [--tx COL] [--queries N]
             [--seed S] --out FILE
  policy     derive COAT/PCTA policies  DATA --tx COL --privacy all|rare|random
             | --utility unconstrained|bands --out FILE
  evaluate   Evaluation mode            DATA [--tx COL] --mode rel|tx|rt|rho
             [--rel-algo A] [--tx-algo A] [--bounding B] [--k N] [--m N]
             [--delta N] [--rho R --sensitive i1,i2 [--max-antecedent N]
              [--rho-algo suppress|tdcontrol]]
             [--queries N] [--seed S] [--threads N]
             [--vary k|m|delta --start N --end N --step N]
             [--out-dir DIR] [--export-anon FILE]
             [--store-dir DIR] [--no-cache] [--trace-out FILE.ndjson]
             [--job-timeout-ms MS] [--memory-budget MB]
             [--workers N | --distributed] [--lease-ttl-ms MS]
  profile    profile one run            DATA [--tx COL] (same method flags as
             evaluate, no --vary) [--trace-out FILE.ndjson]
  compare    Comparison mode            DATA [--tx COL] --config FILE.json
             [--queries N] [--threads N] [--out-dir DIR]
             [--store-dir DIR] [--no-cache] [--trace-out FILE.ndjson]
             [--job-timeout-ms MS] [--memory-budget MB]
             [--workers N | --distributed] [--lease-ttl-ms MS]
  worker     distributed sweep worker   DATA [--tx COL] [--store-dir DIR]
             [--sweep ID] [--lease-ttl-ms MS] [--poll-ms MS] [--wait-ms MS]
             (same session flags as the coordinator's evaluate/compare)
  runs       run-store management       list|show KEY|chart|gc|resume [ID]
             |fsck [--repair]
             [--store-dir DIR] [--all]
             [--indicator gcp|are|runtime|prosecutor|uniqueness
              |violations|phases]
  edit       apply a Dataset Editor script   DATA --script FILE.json --out FILE
  session    show a saved session        SESSION.json
  bench      benchmark                  [--suite kernels|store|obsv|tx|tiered
             |risk|scale|rel|dist]
             | --all [--baseline FILE] [--gate-pct N]
             [--rows N,N,...] [--k N] [--m N] [--items N] [--seed S]
             [--threads N] [--reps N] [--json] [--out FILE]
             (scale: [--memory-budget MB] [--chunk-rows N])
  help       this text

evaluate/compare also accept --session FILE.json instead of a dataset
path; the session bundles dataset, hierarchies, policies and workload.
With --store-dir, results are content-addressed into a persistent run
store: re-running an identical experiment replays stored results
(--no-cache forces re-execution while still recording), and a sweep
killed mid-run can be finished with `secreta runs resume`.
With --trace-out, every executed run streams its spans and counters to
FILE as NDJSON (one JSON object per line); `secreta profile` prints the
same data as a per-phase/per-counter table instead.
With --job-timeout-ms, every job in an evaluate/compare sweep gets a
soft per-job deadline, enforced cooperatively at phase boundaries; a
timed-out job is reported as failed and the sweep keeps going.
With --memory-budget, the dataset streams in through the chunked
reader with every retained byte charged against a deterministic MB
budget, and every job additionally gets a peak-RSS ceiling checked at
phase boundaries. Exceeding either degrades the invocation (exit 3)
instead of risking an OOM kill.

A failing job does not abort its sweep: the remaining jobs complete,
failures are journaled, and the process exits 3 (degraded) instead of
0. `secreta runs resume` re-executes only the failed or missing jobs.
Exit codes: 0 success, 1 fatal error, 2 usage error, 3 degraded.

Distributed sweeps: with --store-dir and --workers N, evaluate/compare
becomes a coordinator that publishes claimable job records and spawns
N `secreta worker` processes; with --distributed alone it publishes and
waits for externally started workers (same dataset/session flags, same
--store-dir). Workers claim jobs through crash-safe lease files
(heartbeat + TTL, default --lease-ttl-ms 5000); a kill -9'd worker's
jobs are reclaimed by survivors and the merged result is byte-identical
to a single-process run. If every worker dies the sweep degrades
(exit 3) and `secreta runs resume` re-executes only the lost jobs.

Relational algorithms: incognito, cluster, topdown, bottomup
Transaction algorithms: coat, pcta, apriori, lra, vpa
Bounding methods: rmerge, tmerge, rtmerge
";

/// Process exit code for a fully successful command.
pub(crate) const EXIT_OK: i32 = 0;
/// Process exit code when a sweep (or fsck) completed but left
/// failures on record.
pub(crate) const EXIT_DEGRADED: i32 = 3;

/// Dispatch to the selected subcommand; returns the process exit code
/// for the successful-dispatch cases (`EXIT_OK` or `EXIT_DEGRADED`).
pub fn dispatch(args: &Args) -> Result<i32, String> {
    if args.flag("help") || args.command.is_empty() || args.command == "help" {
        print!("{HELP}");
        return Ok(EXIT_OK);
    }
    match args.command.as_str() {
        "generate" => cmd_generate(args).map(|()| EXIT_OK),
        "info" => cmd_info(args).map(|()| EXIT_OK),
        "histogram" => cmd_histogram(args).map(|()| EXIT_OK),
        "hierarchy" => cmd_hierarchy(args).map(|()| EXIT_OK),
        "workload" => cmd_workload(args).map(|()| EXIT_OK),
        "policy" => cmd_policy(args).map(|()| EXIT_OK),
        "evaluate" => cmd_evaluate(args),
        "profile" => cmd_profile(args).map(|()| EXIT_OK),
        "compare" => cmd_compare(args),
        "runs" => crate::runs::cmd_runs(args),
        "worker" => crate::worker::cmd_worker(args),
        "edit" => cmd_edit(args).map(|()| EXIT_OK),
        "session" => cmd_session(args).map(|()| EXIT_OK),
        "bench" => cmd_bench(args).map(|()| EXIT_OK),
        other => Err(format!("unknown command {other:?}; try `secreta help`")),
    }
}

/// Why a dataset failed to load. Budget exhaustion is typed so
/// evaluate/compare can take the degraded exit (3) instead of the
/// fatal one — running out of the declared budget is an anticipated,
/// recorded outcome, not a crash.
pub(crate) enum LoadError {
    /// The chunked ingest (or its materialization) exceeded
    /// `--memory-budget`.
    Budget(String),
    /// Anything else: I/O, parse, usage.
    Other(String),
}

impl From<LoadError> for String {
    fn from(e: LoadError) -> String {
        match e {
            LoadError::Budget(m) | LoadError::Other(m) => m,
        }
    }
}

/// Whether `e` is a budget exhaustion, possibly wrapped in the
/// file-naming layer.
fn is_budget_error(e: &DataError) -> bool {
    match e {
        DataError::BudgetExceeded { .. } => true,
        DataError::InFile { error, .. } => is_budget_error(error),
        _ => false,
    }
}

/// Parse `--memory-budget MB` (None when absent, error on 0).
pub(crate) fn memory_budget_of(args: &Args) -> Result<Option<u64>, String> {
    match args.opt("memory-budget") {
        Some(_) => {
            let mb = args.u64_or("memory-budget", 0)?;
            if mb == 0 {
                return Err("--memory-budget expects a positive number of megabytes".into());
            }
            Ok(Some(mb))
        }
        None => Ok(None),
    }
}

/// Load a dataset through the chunked streaming reader,
/// auto-detecting numeric columns from the interned pools. With
/// `--memory-budget MB` every retained byte of the ingest is charged
/// against a deterministic accounting budget; exhausting it yields a
/// typed [`LoadError::Budget`] instead of an OOM kill.
fn load(args: &Args) -> Result<(RtTable, ChunkStats), LoadError> {
    let path = args.positional0().map_err(LoadError::Other)?;
    let mut opts = CsvOptions::default();
    if let Some(tx) = args.opt("tx") {
        opts.transaction_column = Some(tx.to_owned());
    }
    let budget = match memory_budget_of(args).map_err(LoadError::Other)? {
        Some(mb) => MemoryBudget::megabytes(mb),
        None => MemoryBudget::unlimited(),
    };
    let classify = |e: DataError| {
        if is_budget_error(&e) {
            LoadError::Budget(e.to_string())
        } else {
            LoadError::Other(e.to_string())
        }
    };
    let mut chunked =
        chunk::read_chunked_path(path, &opts, chunk::chunk_rows(), budget).map_err(classify)?;
    chunked.reclassify_numeric();
    let stats = chunked.stats();
    let table = chunked.into_table().map_err(classify)?;
    Ok((table, stats))
}

fn context(args: &Args, table: RtTable) -> Result<SessionContext, String> {
    let fanout = args.usize_or("fanout", 4)?;
    let ctx = SessionContext::auto(table, fanout).map_err(|e| e.to_string())?;
    with_generated_workload(args, ctx)
}

fn with_generated_workload(args: &Args, ctx: SessionContext) -> Result<SessionContext, String> {
    let n_queries = args.usize_or("queries", 0)?;
    if n_queries > 0 {
        let w = WorkloadSpec {
            n_queries,
            seed: args.u64_or("seed", 42)?,
            ..Default::default()
        }
        .generate(&ctx.table);
        Ok(ctx.with_workload(w))
    } else {
        Ok(ctx)
    }
}

/// Resolve the session for evaluate/compare: `--session FILE` loads a
/// saved session spec; otherwise the positional dataset + flags apply.
pub(crate) fn load_context(args: &Args) -> Result<SessionContext, LoadError> {
    match args.opt("session") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| LoadError::Other(format!("{path}: {e}")))?;
            let spec = SessionSpec::from_json(&text)
                .map_err(|e| LoadError::Other(format!("{path}: {e}")))?;
            let base = Path::new(path).parent().unwrap_or(Path::new("."));
            let ctx = spec
                .load(base)
                .map_err(|e| LoadError::Other(e.to_string()))?;
            // a generated workload can still top up a session without one
            if ctx.workload.is_empty() {
                with_generated_workload(args, ctx).map_err(LoadError::Other)
            } else {
                Ok(ctx)
            }
        }
        None => {
            let (table, stats) = load(args)?;
            Ok(context(args, table)
                .map_err(LoadError::Other)?
                .with_ingest_stats(stats))
        }
    }
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let rows = args.usize_or("rows", 1000)?;
    let seed = args.u64_or("seed", 42)?;
    let out = args.req("out")?;
    let kind = args.opt("kind").unwrap_or("adult");
    let spec = match kind {
        "adult" => DatasetSpec::adult_like(rows, seed),
        "basket" => DatasetSpec::basket(rows, args.usize_or("items", 100)?, seed),
        "census" => DatasetSpec::census(rows, seed),
        "adversarial" => {
            let mut spec = DatasetSpec::adversarial(rows, seed);
            if let Some(c) = args.opt("correlation") {
                spec.qi_correlation = c
                    .parse::<f64>()
                    .map_err(|_| format!("--correlation {c:?} is not a number"))?;
            }
            if let Some(shape) = args.opt("item-skew") {
                spec.item_shape = match shape {
                    "head" => secreta_core::gen::ItemShape::Head,
                    "tail" => secreta_core::gen::ItemShape::Tail,
                    other => return Err(format!("unknown --item-skew {other:?} (head|tail)")),
                };
            }
            if let Some(f) = args.opt("outlier-fraction") {
                spec.outlier_fraction = f
                    .parse::<f64>()
                    .map_err(|_| format!("--outlier-fraction {f:?} is not a number"))?;
            }
            spec
        }
        other => {
            return Err(format!(
                "unknown --kind {other:?} (adult|basket|census|adversarial)"
            ))
        }
    };
    let table = spec.generate();
    let opts = csv_opts_for(&table);
    dcsv::write_table_path(&table, out, &opts).map_err(|e| e.to_string())?;
    println!(
        "wrote {} rows × {} attributes to {}",
        table.n_rows(),
        table.schema().len(),
        out
    );
    Ok(())
}

fn csv_opts_for(table: &RtTable) -> CsvOptions {
    let mut opts = CsvOptions::default();
    if let Some(i) = table.schema().transaction_index() {
        opts.transaction_column = table.schema().attribute(i).map(|a| a.name.clone());
    }
    opts
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let (table, _) = load(args)?;
    println!(
        "{} rows, {} relational attributes, transaction attribute: {}",
        table.n_rows(),
        table.schema().relational_indices().len(),
        table
            .schema()
            .transaction_index()
            .and_then(|i| table.schema().attribute(i))
            .map(|a| a.name.as_str())
            .unwrap_or("(none)")
    );
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "attribute", "distinct", "populated", "min", "max", "mean"
    );
    for s in stats::summarize(&table) {
        let fmt = |v: Option<f64>| v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into());
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
            s.name,
            s.distinct,
            s.populated,
            fmt(s.min),
            fmt(s.max),
            fmt(s.mean)
        );
    }
    if table.schema().transaction_index().is_some() {
        println!(
            "item universe: {}, avg transaction length: {:.2}",
            table.item_universe(),
            table.avg_transaction_len()
        );
    }
    Ok(())
}

fn cmd_histogram(args: &Args) -> Result<(), String> {
    let (table, _) = load(args)?;
    let attr = args.req("attr")?;
    let top = args.usize_or("top", 15)?;
    let schema = table.schema();
    let idx = schema
        .index_of(attr)
        .ok_or_else(|| format!("unknown attribute {attr:?}"))?;
    let hist = if Some(idx) == schema.transaction_index() {
        stats::item_histogram(&table)
    } else {
        stats::relational_histogram(&table, idx)
    };
    let hist = hist.top_k(top);
    let chart = BarChart::new(
        hist.title.clone(),
        hist.labels.clone(),
        hist.counts.iter().map(|&c| c as f64).collect(),
    );
    print!("{}", export::terminal_bar(&chart));
    if let Some(dir) = args.opt("out-dir") {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let stem = Path::new(dir).join(format!("histogram_{attr}"));
        let (svg, csv) = export::export_bar_chart(&chart, &stem).map_err(|e| e.to_string())?;
        println!("wrote {} and {}", svg.display(), csv.display());
    }
    Ok(())
}

fn cmd_hierarchy(args: &Args) -> Result<(), String> {
    let (table, _) = load(args)?;
    let fanout = args.usize_or("fanout", 4)?;
    let ctx = SessionContext::auto(table, fanout).map_err(|e| e.to_string())?;
    let attr = args.req("attr")?;
    let schema = ctx.table.schema();
    let idx = schema
        .index_of(attr)
        .ok_or_else(|| format!("unknown attribute {attr:?}"))?;
    let h = if Some(idx) == schema.transaction_index() {
        ctx.item_hierarchy.as_ref().ok_or("dataset has no items")?
    } else {
        ctx.hierarchy_of(idx).ok_or("attribute is not relational")?
    };
    println!(
        "hierarchy for {attr:?}: {} leaves, {} nodes, height {}",
        h.n_leaves(),
        h.n_nodes(),
        h.height()
    );
    match args.opt("out") {
        Some(path) => {
            hio::write_hierarchy_path(h, path, ';').map_err(|e| e.to_string())?;
            println!("wrote {path}");
        }
        None => {
            let mut buf = Vec::new();
            hio::write_hierarchy(h, &mut buf, ';').map_err(|e| e.to_string())?;
            print!("{}", String::from_utf8_lossy(&buf));
        }
    }
    Ok(())
}

fn cmd_workload(args: &Args) -> Result<(), String> {
    let (table, _) = load(args)?;
    let spec = WorkloadSpec {
        n_queries: args.usize_or("queries", 100)?,
        seed: args.u64_or("seed", 42)?,
        ..Default::default()
    };
    let w = spec.generate(&table);
    let out = args.req("out")?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| e.to_string())?);
    q::write_workload(&w, &table, &mut file).map_err(|e| e.to_string())?;
    println!("wrote {} queries to {}", w.len(), out);
    Ok(())
}

fn cmd_policy(args: &Args) -> Result<(), String> {
    let (table, _) = load(args)?;
    let out = args.req("out")?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(out).map_err(|e| e.to_string())?);
    if let Some(strategy) = args.opt("privacy") {
        let strat = match strategy {
            "all" => PrivacyStrategy::AllItems,
            "rare" => PrivacyStrategy::RareItems { max_support: 0.05 },
            "random" => PrivacyStrategy::RandomItemsets {
                size: args.usize_or("size", 2)?,
                count: args.usize_or("count", 50)?,
                seed: args.u64_or("seed", 42)?,
            },
            other => return Err(format!("unknown --privacy strategy {other:?}")),
        };
        let p = generate_privacy(&table, &strat);
        pio::write_privacy(&p, &table, &mut file).map_err(|e| e.to_string())?;
        println!("wrote {} privacy constraints to {}", p.len(), out);
    } else if let Some(strategy) = args.opt("utility") {
        let strat = match strategy {
            "unconstrained" => UtilityStrategy::Unconstrained,
            "bands" => UtilityStrategy::FrequencyBands {
                bands: args.usize_or("bands", 5)?,
            },
            other => return Err(format!("unknown --utility strategy {other:?}")),
        };
        let u = generate_utility(&table, &strat, None);
        pio::write_utility(&u, &table, &mut file).map_err(|e| e.to_string())?;
        println!("wrote {} utility groups to {}", u.len(), out);
    } else {
        return Err("specify --privacy STRATEGY or --utility STRATEGY".into());
    }
    Ok(())
}

fn parse_rel(name: &str) -> Result<RelAlgo, String> {
    Ok(match name {
        "incognito" => RelAlgo::Incognito,
        "cluster" => RelAlgo::Cluster,
        "topdown" => RelAlgo::TopDown,
        "bottomup" => RelAlgo::BottomUp,
        other => return Err(format!("unknown relational algorithm {other:?}")),
    })
}

fn parse_tx(args: &Args, name: &str) -> Result<TxAlgo, String> {
    Ok(match name {
        "coat" => TxAlgo::Coat,
        "pcta" => TxAlgo::Pcta,
        "apriori" => TxAlgo::Apriori,
        "lra" => TxAlgo::Lra {
            partitions: args.usize_or("partitions", 4)?,
        },
        "vpa" => TxAlgo::Vpa {
            parts: args.usize_or("parts", 4)?,
        },
        other => return Err(format!("unknown transaction algorithm {other:?}")),
    })
}

fn parse_bounding(name: &str) -> Result<Bounding, String> {
    Ok(match name {
        "rmerge" => Bounding::RMerge,
        "tmerge" => Bounding::TMerge,
        "rtmerge" => Bounding::RtMerge,
        other => return Err(format!("unknown bounding method {other:?}")),
    })
}

fn build_spec(args: &Args) -> Result<MethodSpec, String> {
    let k = args.usize_or("k", 5)?;
    let m = args.usize_or("m", 2)?;
    match args.opt("mode").unwrap_or("rt") {
        "rel" => Ok(MethodSpec::Relational {
            algo: parse_rel(args.opt("rel-algo").unwrap_or("cluster"))?,
            k,
        }),
        "tx" => Ok(MethodSpec::Transaction {
            algo: parse_tx(args, args.opt("tx-algo").unwrap_or("apriori"))?,
            k,
            m,
        }),
        "rt" => Ok(MethodSpec::Rt {
            rel: parse_rel(args.opt("rel-algo").unwrap_or("cluster"))?,
            tx: parse_tx(args, args.opt("tx-algo").unwrap_or("apriori"))?,
            bounding: parse_bounding(args.opt("bounding").unwrap_or("rmerge"))?,
            k,
            m,
            delta: args.usize_or("delta", 1)?,
        }),
        "rho" => {
            let rho: f64 = args
                .opt("rho")
                .unwrap_or("0.5")
                .parse()
                .map_err(|_| "--rho expects a number".to_owned())?;
            let sensitive: Vec<String> = args
                .opt("sensitive")
                .map(|s| s.split(',').map(|t| t.trim().to_owned()).collect())
                .unwrap_or_default();
            if sensitive.is_empty() {
                return Err("--mode rho requires --sensitive item1,item2,...".into());
            }
            Ok(MethodSpec::Rho {
                rho,
                sensitive,
                max_antecedent: args.usize_or("max-antecedent", 2)?,
                generalize: args.opt("rho-algo") == Some("tdcontrol"),
            })
        }
        other => Err(format!("unknown --mode {other:?} (rel|tx|rt|rho)")),
    }
}

fn parse_sweep(args: &Args) -> Result<Option<Sweep>, String> {
    let Some(vary) = args.opt("vary") else {
        return Ok(None);
    };
    let param = match vary {
        "k" => VaryingParam::K,
        "m" => VaryingParam::M,
        "delta" => VaryingParam::Delta,
        other => return Err(format!("unknown --vary {other:?} (k|m|delta)")),
    };
    Ok(Some(Sweep {
        param,
        start: args.usize_or("start", 2)?,
        end: args.usize_or("end", 10)?,
        step: args.usize_or("step", 2)?,
    }))
}

pub(crate) fn print_indicators(label: &str, ind: &secreta_core::Indicators) {
    println!(
        "{label}: GCP={:.4} txGCP={:.4} UL={:.4} ARE={:.4} freqErr={:.4} \
         disc={} avgClass={:.2} runtime={:.1}ms verified={}",
        ind.gcp,
        ind.tx_gcp,
        ind.ul,
        ind.are,
        ind.item_freq_error,
        ind.discernibility,
        ind.avg_class_size,
        ind.runtime_ms,
        ind.verified
    );
    if let Some(risk) = &ind.risk {
        let mut parts = Vec::new();
        if let Some(rel) = &risk.rel {
            parts.push(format!(
                "prosecutor={:.4} journalist={:.4} atRisk={:.4}",
                rel.max_prosecutor, rel.max_journalist, rel.at_risk_fraction
            ));
        }
        if let Some(tx) = &risk.tx {
            let unique: Vec<String> = tx
                .per_m
                .iter()
                .map(|p| format!("m{}={:.4}", p.m, p.unique_fraction))
                .collect();
            parts.push(format!("unique[{}]", unique.join(" ")));
        }
        parts.push(format!(
            "audit={} {}",
            risk.audit.guarantee,
            if risk.audit.passed {
                "pass".to_owned()
            } else {
                format!("FAIL({} violations)", risk.audit.violations)
            }
        ));
        println!("{label} risk: {}", parts.join(" "));
    }
}

/// Scalar indicator accessors shared by the sweep charts of
/// `evaluate`, `compare` and `runs chart`. Risk keys read 0 when the
/// block is absent (runs stored before schema 4) or the output lacks
/// that side; `uniqueness` is the unique fraction at the largest
/// evaluated adversary knowledge size.
pub(crate) fn indicator_scalar(key: &str, i: &secreta_core::Indicators) -> f64 {
    match key {
        "gcp" => i.gcp,
        "are" => i.are,
        "prosecutor" => i
            .risk
            .as_ref()
            .and_then(|r| r.rel.as_ref())
            .map_or(0.0, |r| r.max_prosecutor),
        "uniqueness" => i
            .risk
            .as_ref()
            .and_then(|r| r.tx.as_ref())
            .and_then(|t| t.per_m.last())
            .map_or(0.0, |p| p.unique_fraction),
        "violations" => i.risk.as_ref().map_or(0.0, |r| r.audit.violations as f64),
        _ => i.runtime_ms,
    }
}

/// Observability settings from `--trace-out` (and, for `profile`,
/// forced-on recording): traces stream as NDJSON to the given file.
pub(crate) fn obsv_of(
    args: &Args,
    force_enabled: bool,
) -> Result<secreta_core::obsv::ObsvConfig, String> {
    use secreta_core::obsv::{ObsvConfig, TraceSink};
    match args.opt("trace-out") {
        Some(path) => {
            let sink = TraceSink::create(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(ObsvConfig::with_trace(sink))
        }
        None if force_enabled => Ok(ObsvConfig::enabled()),
        None => Ok(ObsvConfig::disabled()),
    }
}

/// Apply `--job-timeout-ms` (a per-job soft deadline) and
/// `--memory-budget` (a per-job peak-RSS ceiling backing the ingest
/// accounting), both enforced cooperatively at phase boundaries.
/// Operational, like the store flags — they never become part of the
/// experiment's identity.
pub(crate) fn with_limits(args: &Args, mut ctx: SessionContext) -> Result<SessionContext, String> {
    if args.opt("job-timeout-ms").is_some() {
        let ms = args.u64_or("job-timeout-ms", 0)?;
        ctx = ctx.with_job_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(mb) = memory_budget_of(args)? {
        ctx = ctx.with_memory_budget(mb);
    }
    Ok(ctx)
}

/// Build the orchestrator for evaluate/compare from `--store-dir` /
/// `--no-cache` / `--threads`.
fn orchestrator_of(args: &Args, threads: usize) -> Result<Orchestrator, String> {
    let mut orch = Orchestrator::new(threads);
    if let Some(dir) = args.opt("store-dir") {
        orch = orch.with_store(RunStore::open(dir).map_err(|e| e.to_string())?);
    }
    Ok(orch.bypass_cache(args.flag("no-cache")))
}

/// The opaque invocation payload journaled with every orchestrated
/// sweep: enough of the command line to rebuild the session context
/// and configurations in `secreta runs resume`.
fn invocation_of(command: &str, args: &Args, configs: &[Configuration]) -> Value {
    Value::Obj(vec![
        ("command".to_owned(), Value::Str(command.to_owned())),
        (
            "positional".to_owned(),
            Value::Arr(
                args.positional
                    .iter()
                    .map(|p| Value::Str(p.clone()))
                    .collect(),
            ),
        ),
        (
            "options".to_owned(),
            Value::Obj(
                args.options
                    .iter()
                    // store, limit and distributed-execution flags are
                    // per-invocation, not part of the experiment;
                    // resume supplies its own
                    .filter(|(k, _)| {
                        !matches!(
                            k.as_str(),
                            "store-dir"
                                | "no-cache"
                                | "job-timeout-ms"
                                | "memory-budget"
                                | "workers"
                                | "distributed"
                                | "lease-ttl-ms"
                                | "poll-ms"
                                | "wait-ms"
                                | "sweep"
                        )
                    })
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        ),
        (
            "configurations".to_owned(),
            Value::Arr(configs.iter().map(Serialize::ser).collect()),
        ),
    ])
}

fn print_cache_stats(orch: &Orchestrator, out: &secreta_core::Orchestrated) {
    if let Some(store) = orch.store() {
        println!(
            "cache: {} hits, {} misses, {} failures (sweep {}, store {})",
            out.stats.hits,
            out.stats.misses,
            out.stats.failures,
            out.sweep_id,
            store.root().display()
        );
    }
}

/// Announce a memory-budget exhaustion (at ingest or mid-run) and
/// exit through the degraded path: blowing the declared budget is a
/// recorded outcome (exit 3), not a fatal error.
fn budget_degraded(what: &str, msg: &str) -> Result<i32, String> {
    eprintln!("error: {msg}");
    println!(
        "{what} completed degraded: the memory budget was exceeded; \
         raise --memory-budget or shrink the dataset"
    );
    Ok(EXIT_DEGRADED)
}

fn cmd_evaluate(args: &Args) -> Result<i32, String> {
    let ctx = match load_context(args) {
        Ok(ctx) => ctx,
        Err(LoadError::Budget(msg)) => return budget_degraded("evaluate", &msg),
        Err(LoadError::Other(msg)) => return Err(msg),
    };
    let ctx = with_limits(args, ctx.with_obsv(obsv_of(args, false)?))?;
    let spec = build_spec(args)?;
    let seed = args.u64_or("seed", 42)?;
    let threads = args.usize_or("threads", 4)?;
    let orch = orchestrator_of(args, threads)?;

    let mut failures = 0u64;
    match parse_sweep(args)? {
        None => {
            if args.usize_or("workers", 0)? > 0 || args.flag("distributed") {
                return Err(
                    "--workers/--distributed applies to sweeps; add --vary (or drop the flag)"
                        .into(),
                );
            }
            let (result, cache_hit) = orch.run_one(&ctx, &spec, seed).map_err(|e| e.to_string())?;
            let out = match result {
                Ok(out) => out,
                Err(e @ secreta_core::RunError::BudgetExceeded { .. }) => {
                    return budget_degraded("evaluate", &e.to_string())
                }
                Err(e) => return Err(e.to_string()),
            };
            println!("method: {}", spec.label());
            if cache_hit {
                println!("(replayed from the run store — no anonymization executed)");
            }
            print_indicators("result", &out.indicators);
            println!("phases:");
            for (name, d) in &out.phases.phases {
                println!("  {:<32} {:>10.2}ms", name, d.as_secs_f64() * 1e3);
            }
            if let Some(path) = args.opt("export-anon") {
                let mut file = std::io::BufWriter::new(
                    std::fs::File::create(path).map_err(|e| e.to_string())?,
                );
                export::write_anonymized(&ctx, &out.anon, &mut file).map_err(|e| e.to_string())?;
                println!("anonymized dataset written to {path}");
            }
        }
        Some(sweep) => {
            let cfg = Configuration::new(spec.clone(), sweep, seed);
            let invocation = invocation_of("evaluate", args, std::slice::from_ref(&cfg));
            let out = crate::worker::run_sweep(
                args,
                &ctx,
                &orch,
                std::slice::from_ref(&cfg),
                invocation,
            )?;
            print_cache_stats(&orch, &out);
            failures = out.stats.failures;
            let points = out.result.points.into_iter().next().unwrap_or_default();
            println!("method: {} varying {}", spec.label(), sweep.param.label());
            for (v, r) in &points {
                match r {
                    Ok(p) => {
                        print_indicators(&format!("{}={v}", sweep.param.label()), &p.indicators)
                    }
                    Err(e) => println!("{}={v}: failed: {e}", sweep.param.label()),
                }
            }
            let charts = [
                ("ARE", "are"),
                ("GCP", "gcp"),
                ("runtime (ms)", "runtime"),
                ("max prosecutor risk", "prosecutor"),
                ("unique fraction", "uniqueness"),
            ];
            for (ylabel, key) in charts {
                let chart = secreta_core::sweep::chart_of(
                    format!("{} vs {}", ylabel, sweep.param.label()),
                    ylabel,
                    &sweep,
                    spec.label(),
                    &points,
                    |i| indicator_scalar(key, i),
                );
                if args.flag("ascii") {
                    print!("{}", export::terminal_xy(&chart));
                }
                if let Some(dir) = args.opt("out-dir") {
                    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                    let stem = Path::new(dir).join(format!("evaluate_{key}"));
                    let (svg, csv) =
                        export::export_xy_chart(&chart, &stem).map_err(|e| e.to_string())?;
                    println!("wrote {} and {}", svg.display(), csv.display());
                }
            }
        }
    }
    Ok(degraded_code("evaluate", failures))
}

/// Turn a sweep's failure count into the exit code, announcing the
/// degraded result so scripts that only read stdout see it too.
fn degraded_code(what: &str, failures: u64) -> i32 {
    if failures == 0 {
        EXIT_OK
    } else {
        println!(
            "{what} completed degraded: {failures} job(s) failed; \
             completed points were kept (resume with `secreta runs resume`)"
        );
        EXIT_DEGRADED
    }
}

/// `secreta profile`: run one method with the recorder on and print
/// the hierarchical phase/counter table. Accepts the same method flags
/// as single-run `evaluate`; `--trace-out FILE` additionally streams
/// the NDJSON trace.
fn cmd_profile(args: &Args) -> Result<(), String> {
    if args.opt("vary").is_some() {
        return Err("profile runs a single configuration; use `evaluate --vary` for sweeps".into());
    }
    let ctx = with_limits(
        args,
        load_context(args)
            .map_err(String::from)?
            .with_obsv(obsv_of(args, true)?),
    )?;
    let spec = build_spec(args)?;
    let seed = args.u64_or("seed", 42)?;
    let threads = args.usize_or("threads", 4)?;
    let orch = orchestrator_of(args, threads)?;
    let (result, cache_hit) = orch.run_one(&ctx, &spec, seed).map_err(|e| e.to_string())?;
    let out = result.map_err(|e| e.to_string())?;
    println!("method: {}", spec.label());
    if cache_hit {
        println!("(replayed from the run store — profile reflects the original execution)");
    }
    print_indicators("result", &out.indicators);
    match &out.profile {
        Some(profile) => {
            println!("profile:");
            print!("{}", profile.render_table());
        }
        None => println!("(no profile was recorded for this run)"),
    }
    if let Some(path) = args.opt("trace-out") {
        println!("trace written to {path}");
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<i32, String> {
    let ctx = match load_context(args) {
        Ok(ctx) => ctx,
        Err(LoadError::Budget(msg)) => return budget_degraded("compare", &msg),
        Err(LoadError::Other(msg)) => return Err(msg),
    };
    let ctx = with_limits(args, ctx.with_obsv(obsv_of(args, false)?))?;
    let config_path = args.req("config")?;
    let text = std::fs::read_to_string(config_path).map_err(|e| e.to_string())?;
    let configs: Vec<Configuration> =
        serde_json::from_str(&text).map_err(|e| format!("{config_path}: {e}"))?;
    if configs.is_empty() {
        return Err("configuration file contains no configurations".into());
    }
    let threads = args.usize_or("threads", 4)?;
    let orch = orchestrator_of(args, threads)?;
    let invocation = invocation_of("compare", args, &configs);
    let out = crate::worker::run_sweep(args, &ctx, &orch, &configs, invocation)?;
    print_cache_stats(&orch, &out);
    let result = out.result;

    for (label, pts) in result.labels.iter().zip(&result.points) {
        println!("== {label}");
        for (v, r) in pts {
            match r {
                Ok(p) => {
                    print_indicators(&format!("  {}={v}", result.param.label()), &p.indicators)
                }
                Err(e) => println!("  {}={v}: failed: {e}", result.param.label()),
            }
        }
    }

    for (title, ylabel, key) in [
        ("ARE comparison", "ARE", "are"),
        ("GCP comparison", "GCP", "gcp"),
        ("Runtime comparison", "runtime (ms)", "runtime"),
        (
            "Prosecutor-risk comparison",
            "max prosecutor risk",
            "prosecutor",
        ),
        ("Uniqueness comparison", "unique fraction", "uniqueness"),
    ] {
        let chart = result.chart(title, ylabel, |i| indicator_scalar(key, i));
        if args.flag("ascii") {
            print!("{}", export::terminal_xy(&chart));
        }
        if let Some(dir) = args.opt("out-dir") {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            let stem = Path::new(dir).join(format!("compare_{key}"));
            let (svg, csv) = export::export_xy_chart(&chart, &stem).map_err(|e| e.to_string())?;
            println!("wrote {} and {}", svg.display(), csv.display());
        }
    }
    Ok(degraded_code("compare", out.stats.failures))
}

fn cmd_edit(args: &Args) -> Result<(), String> {
    use secreta_core::data::edit::{EditCommand, EditSession};
    let (mut table, _) = load(args)?;
    let script_path = args.req("script")?;
    let text = std::fs::read_to_string(script_path).map_err(|e| format!("{script_path}: {e}"))?;
    let commands: Vec<EditCommand> =
        serde_json::from_str(&text).map_err(|e| format!("{script_path}: {e}"))?;
    let mut session = EditSession::new();
    for (i, cmd) in commands.iter().enumerate() {
        session
            .apply(&mut table, cmd)
            .map_err(|e| format!("command {}: {e}", i + 1))?;
    }
    let out = args.req("out")?;
    let opts = csv_opts_for(&table);
    dcsv::write_table_path(&table, out, &opts).map_err(|e| e.to_string())?;
    println!(
        "applied {} edit commands; wrote {} rows to {}",
        session.applied(),
        table.n_rows(),
        out
    );
    Ok(())
}

/// `secreta bench`: four suites.
///
/// * `--suite kernels` (default) times the Cluster hot path before and
///   after the kernel optimizations (parent-walk vs Euler-tour LCA,
///   per-access table reads vs the leaf matrix, sequential vs parallel
///   argmin) on the adult-like generator; `--json` writes the report
///   to `BENCH_1.json` (override with `--out`).
/// * `--suite store` times the orchestrated comparison path cold
///   (empty store, every job executes) vs warm (second identical
///   invocation, every job replays from the store); `--json` writes
///   the report to `BENCH_2.json` (override with `--out`).
/// * `--suite obsv` measures the observability layer's cost: the same
///   Cluster run with the recorder absent vs installed-but-disabled vs
///   enabled; `--json` writes the report to `BENCH_3.json` (override
///   with `--out`).
/// * `--suite tx` times every transaction algorithm (AA, LRA, VPA,
///   COAT, PCTA, RHO, RHO-td) with the naive reference counters vs the
///   interned/parallel support kernels on the basket generator;
///   `--json` writes the report to `BENCH_4.json` (override with
///   `--out`).
/// * `--suite tiered` compares the pure-CSR support kernels against
///   the tiered bitmap/CSR kernels on the same algorithms; `--json`
///   writes the report to `BENCH_5.json` (override with `--out`).
/// * `--suite risk` times the attack-side evaluation (m-item adversary
///   on the tiered kernels vs the O(n²) oracle, capped to small row
///   counts) against the anonymization it audits, on the adversarial
///   generator; `--json` writes the report to `BENCH_6.json` (override
///   with `--out`).
/// * `--suite scale` measures the chunked ingest path as row counts
///   grow: per point it streams a generated dataset through
///   [`secreta_gen::DatasetSpec::generate_chunked`], materializes it,
///   and builds the CSR inverted index chunk-by-chunk, recording
///   wall times, deterministic accounted bytes and peak RSS. With
///   `--memory-budget MB` a point that blows the budget is recorded
///   as a typed outcome and the suite keeps going — the graceful
///   degradation CI exercises. `--json` writes the report to
///   `BENCH_7.json` (override with `--out`).
/// * `--suite rel` compares the naive rescan-per-check counting of the
///   relational search algorithms (Incognito, Top-down, Bottom-up)
///   against the partition-rollup kernels on the census generator;
///   `--json` writes the report to `BENCH_8.json` (override with
///   `--out`).
/// * `--all` runs the cross-layer gate suite and writes a
///   schema-versioned report; `--baseline FILE` compares against a
///   committed report and fails on any case regressing more than
///   `--gate-pct` percent (default 25). See `crate::bench_all`.
///
/// All suites refuse to run while a `SECRETA_FAULTS` plan is active:
/// injected faults would corrupt the measurements.
fn cmd_bench(args: &Args) -> Result<(), String> {
    use secreta_core::relational::{cluster, RelationalInput};
    use std::fmt::Write as _;
    use std::time::Instant;

    // benchmarks measure the real code paths; an active fault plan
    // would inject panics/latency into the timed regions and corrupt
    // every number, so refuse outright rather than record garbage
    if std::env::var(secreta_core::faults::ENV_VAR).is_ok_and(|v| !v.is_empty()) {
        return Err(format!(
            "refusing to benchmark with {} set: injected faults would corrupt \
             the timings; unset it and re-run",
            secreta_core::faults::ENV_VAR
        ));
    }

    if args.flag("all") {
        return crate::bench_all::bench_all(args);
    }
    match args.opt("suite").unwrap_or("kernels") {
        "kernels" => {}
        "store" => return bench_store(args),
        "obsv" => return bench_obsv(args),
        "tx" => return bench_tx(args),
        "tiered" => return crate::bench_all::bench_tiered(args),
        "risk" => return bench_risk(args),
        "scale" => return bench_scale(args),
        "rel" => return crate::bench_all::bench_rel(args),
        "dist" => return crate::worker::bench_dist(args),
        other => {
            return Err(format!(
                "unknown --suite {other:?} (kernels|store|obsv|tx|tiered|risk|scale|rel|dist)"
            ))
        }
    }

    let k = args.usize_or("k", 10)?;
    let seed = args.u64_or("seed", 42)?;
    if let Some(t) = args.opt("threads") {
        let n: usize = t
            .parse()
            .map_err(|_| format!("--threads expects an integer, got {t:?}"))?;
        secreta_core::parallel::set_threads(n);
    }
    let rows: Vec<usize> = args
        .opt("rows")
        .unwrap_or("1000,10000")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("--rows expects integers, got {t:?}"))
        })
        .collect::<Result<_, _>>()?;

    let phases_ms = |p: &secreta_core::metrics::PhaseTimes| -> Vec<(String, f64)> {
        p.phases
            .iter()
            .map(|(n, d)| (n.clone(), d.as_secs_f64() * 1e3))
            .collect()
    };

    struct Case {
        rows: usize,
        baseline_ms: f64,
        optimized_ms: f64,
        baseline_phases: Vec<(String, f64)>,
        optimized_phases: Vec<(String, f64)>,
        identical: bool,
    }
    let mut cases = Vec::new();

    println!("Cluster kernel benchmark (adult-like, k={k}, seed={seed})");
    for &n in &rows {
        let table = DatasetSpec::adult_like(n, seed).generate();
        let ctx = SessionContext::auto(table, 4).map_err(|e| e.to_string())?;
        let input = RelationalInput {
            table: &ctx.table,
            qi_attrs: ctx.qi_attrs.clone(),
            hierarchies: ctx.hierarchies.clone(),
            k,
        };
        let t0 = Instant::now();
        let base = cluster::anonymize_reference(&input, seed).map_err(|e| e.to_string())?;
        let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let fast = cluster::anonymize(&input, seed).map_err(|e| e.to_string())?;
        let optimized_ms = t1.elapsed().as_secs_f64() * 1e3;
        let identical = base.anon == fast.anon;
        println!(
            "  n={n:>6}: baseline {baseline_ms:>10.1}ms  optimized {optimized_ms:>8.1}ms  \
             speedup {:>5.1}x  outputs identical: {identical}",
            baseline_ms / optimized_ms.max(1e-9),
        );
        for (name, ms) in phases_ms(&fast.phases) {
            println!("      {name:<24} {ms:>10.2}ms");
        }
        cases.push(Case {
            rows: n,
            baseline_ms,
            optimized_ms,
            baseline_phases: phases_ms(&base.phases),
            optimized_phases: phases_ms(&fast.phases),
            identical,
        });
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_1.json");
        let phase_obj = |phases: &[(String, f64)]| -> String {
            let mut s = String::new();
            for (i, (name, ms)) in phases.iter().enumerate() {
                let sep = if i + 1 < phases.len() { "," } else { "" };
                let _ = write!(s, "\n          \"{name}\": {ms:.3}{sep}");
            }
            s
        };
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"cluster-kernels\",\n  \"dataset\": \"adult-like\",\n  \
             \"k\": {k},\n  \"seed\": {seed},\n  \"threads\": {},\n  \"cases\": [",
            secreta_core::parallel::max_threads()
        );
        for (i, c) in cases.iter().enumerate() {
            let sep = if i + 1 < cases.len() { "," } else { "" };
            let _ = write!(
                body,
                "\n    {{\n      \"rows\": {},\n      \"baseline_ms\": {:.3},\n      \
                 \"optimized_ms\": {:.3},\n      \"speedup\": {:.3},\n      \
                 \"outputs_identical\": {},\n      \"baseline_phases_ms\": {{{}\n      }},\n      \
                 \"optimized_phases_ms\": {{{}\n      }}\n    }}{sep}",
                c.rows,
                c.baseline_ms,
                c.optimized_ms,
                c.baseline_ms / c.optimized_ms.max(1e-9),
                c.identical,
                phase_obj(&c.baseline_phases),
                phase_obj(&c.optimized_phases),
            );
        }
        body.push_str("\n  ]\n}\n");
        // fail loudly rather than commit a report with a broken shape
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Transaction support-kernel benchmark: every algorithm of the
/// AA/COAT/PCTA/RHO family runs twice on the same basket table — once
/// with the naive reference counters, once with the interned/parallel
/// kernels — and the published outputs are compared byte-for-byte.
fn bench_tx(args: &Args) -> Result<(), String> {
    use secreta_core::data::ItemId;
    use secreta_core::transaction::{self as tx, Counting, RhoParams, TransactionInput};
    use std::fmt::Write as _;
    use std::time::Instant;

    let k = args.usize_or("k", 10)?;
    let m = args.usize_or("m", 2)?;
    let items = args.usize_or("items", 80)?;
    let seed = args.u64_or("seed", 42)?;
    if let Some(t) = args.opt("threads") {
        let n: usize = t
            .parse()
            .map_err(|_| format!("--threads expects an integer, got {t:?}"))?;
        secreta_core::parallel::set_threads(n);
    }
    let rows: Vec<usize> = args
        .opt("rows")
        .unwrap_or("1000,10000")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("--rows expects integers, got {t:?}"))
        })
        .collect::<Result<_, _>>()?;

    let phases_ms = |p: &secreta_core::metrics::PhaseTimes| -> Vec<(String, f64)> {
        p.phases
            .iter()
            .map(|(n, d)| (n.clone(), d.as_secs_f64() * 1e3))
            .collect()
    };

    struct Case {
        algorithm: &'static str,
        rows: usize,
        baseline_ms: f64,
        optimized_ms: f64,
        baseline_phases: Vec<(String, f64)>,
        optimized_phases: Vec<(String, f64)>,
        identical: bool,
    }
    let mut cases: Vec<Case> = Vec::new();

    println!("transaction kernel benchmark (basket, {items} items, k={k}, m={m}, seed={seed})");
    for &n in &rows {
        let table = DatasetSpec::basket(n, items, seed).generate();
        let ctx = SessionContext::auto(table, 4).map_err(|e| e.to_string())?;
        let h = ctx
            .item_hierarchy
            .as_ref()
            .ok_or("basket dataset has no item universe")?;
        // sensitive targets for the rho family: the three rarest items
        let sup = secreta_core::data::stats::item_supports(&ctx.table);
        let mut by_sup: Vec<u32> = (0..sup.len() as u32).collect();
        by_sup.sort_by_key(|&i| (sup[i as usize], i));
        let params = RhoParams {
            rho: 0.5,
            sensitive: by_sup.iter().take(3).map(|&i| ItemId(i)).collect(),
            max_antecedent: 2,
        };

        let km = TransactionInput::km(&ctx.table, k, m, h);
        let plain = TransactionInput {
            table: &ctx.table,
            k,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let one = TransactionInput {
            table: &ctx.table,
            k: 1,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let td = TransactionInput::km(&ctx.table, 1, 1, h);

        type RunFn<'a> = Box<dyn Fn(Counting) -> Result<tx::TxOutput, tx::TxError> + 'a>;
        let algos: Vec<(&'static str, RunFn)> = vec![
            ("apriori", Box::new(|c| tx::apriori::anonymize_with(&km, c))),
            ("lra", Box::new(|c| tx::lra::anonymize_with(&km, 2, c))),
            ("vpa", Box::new(|c| tx::vpa::anonymize_with(&km, 4, c))),
            ("coat", Box::new(|c| tx::coat::anonymize_with(&plain, c))),
            ("pcta", Box::new(|c| tx::pcta::anonymize_with(&plain, c))),
            (
                "rho",
                Box::new(|c| tx::rho::anonymize_with(&one, &params, c)),
            ),
            (
                "rho-td",
                Box::new(|c| tx::rho_td::anonymize_with(&td, &params, c)),
            ),
        ];
        println!("  n={n}");
        for (name, run) in &algos {
            let t0 = Instant::now();
            let base = run(Counting::Naive).map_err(|e| format!("{name}: {e}"))?;
            let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let fast = run(Counting::Kernel).map_err(|e| format!("{name}: {e}"))?;
            let optimized_ms = t1.elapsed().as_secs_f64() * 1e3;
            let identical = base.anon == fast.anon;
            println!(
                "    {name:<8} baseline {baseline_ms:>10.1}ms  kernel {optimized_ms:>8.1}ms  \
                 speedup {:>5.1}x  outputs identical: {identical}",
                baseline_ms / optimized_ms.max(1e-9),
            );
            cases.push(Case {
                algorithm: name,
                rows: n,
                baseline_ms,
                optimized_ms,
                baseline_phases: phases_ms(&base.phases),
                optimized_phases: phases_ms(&fast.phases),
                identical,
            });
        }
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_4.json");
        let phase_obj = |phases: &[(String, f64)]| -> String {
            let mut s = String::new();
            for (i, (name, ms)) in phases.iter().enumerate() {
                let sep = if i + 1 < phases.len() { "," } else { "" };
                let _ = write!(s, "\n          \"{name}\": {ms:.3}{sep}");
            }
            s
        };
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"tx-kernels\",\n  \"dataset\": \"basket\",\n  \
             \"items\": {items},\n  \"k\": {k},\n  \"m\": {m},\n  \"seed\": {seed},\n  \
             \"threads\": {},\n  \"cases\": [",
            secreta_core::parallel::max_threads()
        );
        for (i, c) in cases.iter().enumerate() {
            let sep = if i + 1 < cases.len() { "," } else { "" };
            let _ = write!(
                body,
                "\n    {{\n      \"algorithm\": \"{}\",\n      \"rows\": {},\n      \
                 \"baseline_ms\": {:.3},\n      \"optimized_ms\": {:.3},\n      \
                 \"speedup\": {:.3},\n      \"outputs_identical\": {},\n      \
                 \"baseline_phases_ms\": {{{}\n      }},\n      \
                 \"optimized_phases_ms\": {{{}\n      }}\n    }}{sep}",
                c.algorithm,
                c.rows,
                c.baseline_ms,
                c.optimized_ms,
                c.baseline_ms / c.optimized_ms.max(1e-9),
                c.identical,
                phase_obj(&c.baseline_phases),
                phase_obj(&c.optimized_phases),
            );
        }
        body.push_str("\n  ]\n}\n");
        // fail loudly rather than commit a report with a broken shape
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The risk suite: is attack-side evaluation cheap enough to run on
/// every anonymization? For each row count the adversarial generator
/// produces a table, apriori anonymizes it (k^m, tiered kernels), and
/// the full risk block (relational + m-item adversary + audit) is
/// timed with the tiered kernel path. Up to `--naive-cap` rows
/// (default 2000) the O(n²) oracle also runs and its indicators are
/// compared byte-for-byte — `"outputs_identical": false` in the report
/// is a correctness failure, not a perf number.
fn bench_risk(args: &Args) -> Result<(), String> {
    use secreta_core::risk::{self, Guarantee, RiskParams};
    use secreta_core::transaction::{self as tx, Counting, TransactionInput};
    use std::fmt::Write as _;
    use std::time::Instant;

    let k = args.usize_or("k", 10)?;
    let m = args.usize_or("m", 2)?;
    let seed = args.u64_or("seed", 42)?;
    let naive_cap = args.usize_or("naive-cap", 2000)?;
    if let Some(t) = args.opt("threads") {
        let n: usize = t
            .parse()
            .map_err(|_| format!("--threads expects an integer, got {t:?}"))?;
        secreta_core::parallel::set_threads(n);
    }
    let rows: Vec<usize> = args
        .opt("rows")
        .unwrap_or("1000,10000")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("--rows expects integers, got {t:?}"))
        })
        .collect::<Result<_, _>>()?;

    struct Case {
        rows: usize,
        anonymize_ms: f64,
        risk_kernel_ms: f64,
        naive: Option<(f64, bool)>,
    }
    let mut cases: Vec<Case> = Vec::new();

    println!("risk evaluation benchmark (adversarial, k={k}, m={m}, seed={seed})");
    for &n in &rows {
        let table = DatasetSpec::adversarial(n, seed).generate();
        let ctx = SessionContext::auto(table, 4).map_err(|e| e.to_string())?;
        let h = ctx
            .item_hierarchy
            .as_ref()
            .ok_or("adversarial dataset has no item universe")?;
        let km = TransactionInput::km(&ctx.table, k, m, h);

        let t0 = Instant::now();
        let out = tx::apriori::anonymize(&km).map_err(|e| e.to_string())?;
        let anonymize_ms = t0.elapsed().as_secs_f64() * 1e3;

        let guarantee = Guarantee::KmAnonymity { k, m };
        let params = RiskParams::default();
        let t1 = Instant::now();
        let kernel = risk::evaluate(
            &ctx.table,
            &out.anon,
            Some(h),
            None,
            &guarantee,
            &params,
            Counting::Kernel,
        );
        let risk_kernel_ms = t1.elapsed().as_secs_f64() * 1e3;

        let naive = if n <= naive_cap {
            let t2 = Instant::now();
            let slow = risk::evaluate(
                &ctx.table,
                &out.anon,
                Some(h),
                None,
                &guarantee,
                &params,
                Counting::Naive,
            );
            Some((t2.elapsed().as_secs_f64() * 1e3, slow == kernel))
        } else {
            None
        };

        println!(
            "  n={n:<7} anonymize {anonymize_ms:>9.1}ms  risk(kernel) {risk_kernel_ms:>8.1}ms \
             ({:.1}% of anonymize){}",
            100.0 * risk_kernel_ms / anonymize_ms.max(1e-9),
            match naive {
                Some((ms, same)) => format!("  risk(naive) {ms:>8.1}ms  outputs identical: {same}"),
                None => format!("  (oracle skipped above --naive-cap {naive_cap})"),
            }
        );
        cases.push(Case {
            rows: n,
            anonymize_ms,
            risk_kernel_ms,
            naive,
        });
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_6.json");
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"risk-eval\",\n  \"dataset\": \"adversarial\",\n  \
             \"k\": {k},\n  \"m\": {m},\n  \"seed\": {seed},\n  \"naive_cap\": {naive_cap},\n  \
             \"threads\": {},\n  \"cases\": [",
            secreta_core::parallel::max_threads()
        );
        for (i, c) in cases.iter().enumerate() {
            let sep = if i + 1 < cases.len() { "," } else { "" };
            let naive_fields = match c.naive {
                Some((ms, same)) => format!(
                    ",\n      \"risk_naive_ms\": {ms:.3},\n      \"outputs_identical\": {same}"
                ),
                None => String::new(),
            };
            let _ = write!(
                body,
                "\n    {{\n      \"rows\": {},\n      \"anonymize_ms\": {:.3},\n      \
                 \"risk_kernel_ms\": {:.3},\n      \
                 \"risk_fraction_of_anonymize\": {:.4}{naive_fields}\n    }}{sep}",
                c.rows,
                c.anonymize_ms,
                c.risk_kernel_ms,
                c.risk_kernel_ms / c.anonymize_ms.max(1e-9),
            );
        }
        body.push_str("\n  ]\n}\n");
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Rows-vs-time-vs-RSS scaling curves for the chunked ingest path.
///
/// Each point streams an adult-like dataset of `n` rows through the
/// chunked generator (the same per-chunk intern/seal/merge pipeline
/// the CSV reader uses), materializes the table, and builds the CSR
/// inverted index with the chunk-walking constructor. Points run in
/// ascending row order because peak RSS is process-wide and monotonic:
/// each point's `peak_rss_bytes` is the high-water mark *up to* that
/// point, while `accounted_peak_bytes` is the deterministic data-layer
/// figure for the point alone. A point that exhausts
/// `--memory-budget` is recorded with `"budget_exceeded": true` and
/// the suite continues — running out of a declared budget is an
/// outcome, not a crash.
fn bench_scale(args: &Args) -> Result<(), String> {
    use secreta_core::transaction::support::InvertedIndex;
    use std::fmt::Write as _;
    use std::time::Instant;

    let seed = args.u64_or("seed", 42)?;
    let chunk_rows = args.usize_or("chunk-rows", chunk::chunk_rows())?;
    let budget_mb = memory_budget_of(args)?;
    if let Some(t) = args.opt("threads") {
        let n: usize = t
            .parse()
            .map_err(|_| format!("--threads expects an integer, got {t:?}"))?;
        secreta_core::parallel::set_threads(n);
    }
    let mut rows: Vec<usize> = args
        .opt("rows")
        .unwrap_or("10000,100000,1000000")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("--rows expects integers, got {t:?}"))
        })
        .collect::<Result<_, _>>()?;
    rows.sort_unstable();

    struct Case {
        rows: usize,
        outcome: Result<ScalePoint, String>,
        peak_rss_bytes: Option<u64>,
    }
    struct ScalePoint {
        ingest_ms: f64,
        materialize_ms: f64,
        index_ms: f64,
        accounted_peak_bytes: u64,
        table_bytes: u64,
    }
    let mut cases: Vec<Case> = Vec::new();

    let budget_label = budget_mb
        .map(|mb| format!("{mb} MB"))
        .unwrap_or_else(|| "unlimited".into());
    println!(
        "scale benchmark (adult-like, seed={seed}, chunk_rows={chunk_rows}, \
         memory budget {budget_label})"
    );
    for &n in &rows {
        let spec = DatasetSpec::adult_like(n, seed);
        let budget = match budget_mb {
            Some(mb) => MemoryBudget::megabytes(mb),
            None => MemoryBudget::unlimited(),
        };
        let outcome = (|| -> Result<ScalePoint, String> {
            let t0 = Instant::now();
            let chunked = spec
                .generate_chunked(chunk_rows, budget)
                .map_err(|e| e.to_string())?;
            let ingest_ms = t0.elapsed().as_secs_f64() * 1e3;
            let stats = chunked.stats();
            let t1 = Instant::now();
            let table = chunked.into_table().map_err(|e| e.to_string())?;
            let materialize_ms = t1.elapsed().as_secs_f64() * 1e3;
            let t2 = Instant::now();
            let all: Vec<usize> = (0..table.n_rows()).collect();
            let idx = InvertedIndex::build(&table, &all, table.item_universe(), |_| true);
            let index_ms = t2.elapsed().as_secs_f64() * 1e3;
            assert_eq!(idx.n_rows(), table.n_rows());
            Ok(ScalePoint {
                ingest_ms,
                materialize_ms,
                index_ms,
                accounted_peak_bytes: stats.peak_accounted_bytes,
                table_bytes: table.estimated_bytes(),
            })
        })();
        let peak_rss_bytes = secreta_core::obsv::mem::peak_rss_bytes();
        match &outcome {
            Ok(p) => println!(
                "  n={n:<9} ingest {:>9.1}ms  materialize {:>8.1}ms  index {:>8.1}ms  \
                 accounted peak {:>6.1} MB  table {:>6.1} MB  peak RSS {}",
                p.ingest_ms,
                p.materialize_ms,
                p.index_ms,
                p.accounted_peak_bytes as f64 / (1024.0 * 1024.0),
                p.table_bytes as f64 / (1024.0 * 1024.0),
                peak_rss_bytes
                    .map(|b| format!("{:.1} MB", b as f64 / (1024.0 * 1024.0)))
                    .unwrap_or_else(|| "n/a".into()),
            ),
            Err(e) => println!("  n={n:<9} budget exceeded: {e}"),
        }
        cases.push(Case {
            rows: n,
            outcome,
            peak_rss_bytes,
        });
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_7.json");
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"scale\",\n  \"dataset\": \"adult-like\",\n  \
             \"seed\": {seed},\n  \"chunk_rows\": {chunk_rows},\n  \
             \"memory_budget_mb\": {},\n  \"threads\": {},\n  \"cases\": [",
            budget_mb
                .map(|mb| mb.to_string())
                .unwrap_or_else(|| "null".into()),
            secreta_core::parallel::max_threads()
        );
        for (i, c) in cases.iter().enumerate() {
            let sep = if i + 1 < cases.len() { "," } else { "" };
            let rss = c
                .peak_rss_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".into());
            match &c.outcome {
                Ok(p) => {
                    let total = p.ingest_ms + p.materialize_ms + p.index_ms;
                    let _ = write!(
                        body,
                        "\n    {{\n      \"rows\": {},\n      \"budget_exceeded\": false,\n      \
                         \"ingest_ms\": {:.3},\n      \"materialize_ms\": {:.3},\n      \
                         \"index_ms\": {:.3},\n      \"total_ms\": {total:.3},\n      \
                         \"accounted_peak_bytes\": {},\n      \"table_bytes\": {},\n      \
                         \"peak_rss_bytes\": {rss}\n    }}{sep}",
                        c.rows,
                        p.ingest_ms,
                        p.materialize_ms,
                        p.index_ms,
                        p.accounted_peak_bytes,
                        p.table_bytes,
                    );
                }
                Err(e) => {
                    let _ = write!(
                        body,
                        "\n    {{\n      \"rows\": {},\n      \"budget_exceeded\": true,\n      \
                         \"error\": {},\n      \"peak_rss_bytes\": {rss}\n    }}{sep}",
                        c.rows,
                        serde_json::to_string(e).map_err(|e| e.to_string())?,
                    );
                }
            }
        }
        body.push_str("\n  ]\n}\n");
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Cold vs warm-cache benchmark of the orchestrated comparison path:
/// the same multi-algorithm k-sweep runs twice against a fresh store;
/// the first pass executes every job, the second must be a pure
/// replay. Reports wall times, the replay speedup, cache counters and
/// whether the warm pass reproduced the cold indicators exactly.
fn bench_store(args: &Args) -> Result<(), String> {
    use std::fmt::Write as _;
    use std::time::Instant;

    let rows = args.usize_or("rows", 4000)?;
    let seed = args.u64_or("seed", 42)?;
    let threads = args.usize_or("threads", 4)?;
    let table = DatasetSpec::adult_like(rows, seed).generate();
    let ctx = SessionContext::auto(table, 4).map_err(|e| e.to_string())?;
    let ctx = {
        let w = WorkloadSpec {
            n_queries: 50,
            seed,
            ..Default::default()
        }
        .generate(&ctx.table);
        ctx.with_workload(w)
    };
    let sweep = Sweep {
        param: VaryingParam::K,
        start: 2,
        end: 10,
        step: 2,
    };
    let configs = vec![
        Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k: 0,
            },
            sweep,
            seed,
        ),
        Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::TopDown,
                k: 0,
            },
            sweep,
            seed,
        ),
    ];
    let jobs: usize = configs.len() * sweep.values().len();

    let dir = std::env::temp_dir().join(format!("secreta-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = RunStore::open(&dir).map_err(|e| e.to_string())?;
    let orch = Orchestrator::new(threads).with_store(store.clone());

    println!("orchestrated store benchmark (adult-like, {rows} rows, {jobs} jobs)");
    let t0 = Instant::now();
    let cold = orch
        .compare(&ctx, &configs, Value::Null)
        .map_err(|e| e.to_string())?;
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    let warm = orch
        .compare(&ctx, &configs, Value::Null)
        .map_err(|e| e.to_string())?;
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;

    let identical = cold
        .result
        .points
        .iter()
        .zip(&warm.result.points)
        .all(|(c, w)| {
            c.iter().zip(w).all(|((_, cr), (_, wr))| match (cr, wr) {
                (Ok(a), Ok(b)) => a.indicators == b.indicators,
                (Err(_), Err(_)) => true,
                _ => false,
            })
        });
    println!(
        "  cold: {cold_ms:>9.1}ms  ({} executed, {} failed)",
        cold.stats.misses, cold.stats.failures
    );
    println!(
        "  warm: {warm_ms:>9.1}ms  ({} replayed, {} executed)",
        warm.stats.hits, warm.stats.misses
    );
    println!(
        "  replay speedup {:>6.1}x  indicators identical: {identical}",
        cold_ms / warm_ms.max(1e-9)
    );
    if warm.stats.misses != 0 || warm.stats.hits as usize != jobs {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(format!(
            "warm pass was not a full cache hit: {} hits, {} misses of {jobs} jobs",
            warm.stats.hits, warm.stats.misses
        ));
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_2.json");
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"orchestrated-store\",\n  \"dataset\": \"adult-like\",\n  \
             \"rows\": {rows},\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \
             \"configurations\": [\"Cluster\", \"TopDown\"],\n  \
             \"sweep\": {{\"param\": \"k\", \"start\": {}, \"end\": {}, \"step\": {}}},\n  \
             \"jobs\": {jobs},\n  \"cold_ms\": {cold_ms:.3},\n  \"warm_ms\": {warm_ms:.3},\n  \
             \"replay_speedup\": {:.3},\n  \
             \"cold\": {{\"hits\": {}, \"misses\": {}, \"failures\": {}}},\n  \
             \"warm\": {{\"hits\": {}, \"misses\": {}, \"failures\": {}}},\n  \
             \"indicators_identical\": {identical}\n}}\n",
            sweep.start,
            sweep.end,
            sweep.step,
            cold_ms / warm_ms.max(1e-9),
            cold.stats.hits,
            cold.stats.misses,
            cold.stats.failures,
            warm.stats.hits,
            warm.stats.misses,
            warm.stats.failures,
        );
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

/// Observability overhead benchmark: the Cluster hot path runs with
/// the recorder disabled (the production default), enabled, and
/// enabled with an in-memory NDJSON sink; each mode keeps the best of
/// `--reps` runs. The disabled column is what every un-profiled run
/// pays for carrying the instrumentation; the enabled column is the
/// cost of `secreta profile` / `--trace-out`.
fn bench_obsv(args: &Args) -> Result<(), String> {
    use secreta_core::obsv::{self, ObsvConfig, TraceSink};
    use secreta_core::relational::{cluster, RelationalInput};
    use std::fmt::Write as _;
    use std::time::Instant;

    let k = args.usize_or("k", 10)?;
    let seed = args.u64_or("seed", 42)?;
    let reps = args.usize_or("reps", 5)?.max(1);
    let rows: Vec<usize> = args
        .opt("rows")
        .unwrap_or("1000,10000")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("--rows expects integers, got {t:?}"))
        })
        .collect::<Result<_, _>>()?;

    struct Case {
        rows: usize,
        disabled_ms: f64,
        enabled_ms: f64,
        traced_ms: f64,
        counters: usize,
    }
    let mut cases = Vec::new();

    println!("observability overhead benchmark (adult-like, k={k}, seed={seed}, best of {reps})");
    for &n in &rows {
        let table = DatasetSpec::adult_like(n, seed).generate();
        let ctx = SessionContext::auto(table, 4).map_err(|e| e.to_string())?;
        let input = RelationalInput {
            table: &ctx.table,
            qi_attrs: ctx.qi_attrs.clone(),
            hierarchies: ctx.hierarchies.clone(),
            k,
        };
        let time_with = |cfg: &ObsvConfig| -> Result<(f64, usize), String> {
            let mut best = f64::INFINITY;
            let mut counters = 0;
            for _ in 0..reps {
                let rec = cfg.recorder();
                let guard = obsv::install(&rec);
                let t0 = Instant::now();
                cluster::anonymize(&input, seed).map_err(|e| e.to_string())?;
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                drop(guard);
                if let Some(p) = rec.finish("bench") {
                    counters = p.counters.len();
                }
            }
            Ok((best, counters))
        };
        let (disabled_ms, _) = time_with(&ObsvConfig::disabled())?;
        let (enabled_ms, counters) = time_with(&ObsvConfig::enabled())?;
        let (sink, _buf) = TraceSink::buffer();
        let (traced_ms, _) = time_with(&ObsvConfig::with_trace(sink))?;
        let pct = |ms: f64| 100.0 * (ms - disabled_ms) / disabled_ms.max(1e-9);
        println!(
            "  n={n:>6}: disabled {disabled_ms:>8.1}ms  enabled {enabled_ms:>8.1}ms \
             ({:>+5.1}%)  traced {traced_ms:>8.1}ms ({:>+5.1}%)  {counters} counters",
            pct(enabled_ms),
            pct(traced_ms),
        );
        cases.push(Case {
            rows: n,
            disabled_ms,
            enabled_ms,
            traced_ms,
            counters,
        });
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_3.json");
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"obsv-overhead\",\n  \"dataset\": \"adult-like\",\n  \
             \"k\": {k},\n  \"seed\": {seed},\n  \"reps\": {reps},\n  \"cases\": ["
        );
        for (i, c) in cases.iter().enumerate() {
            let sep = if i + 1 < cases.len() { "," } else { "" };
            let pct = |ms: f64| 100.0 * (ms - c.disabled_ms) / c.disabled_ms.max(1e-9);
            let _ = write!(
                body,
                "\n    {{\n      \"rows\": {},\n      \"disabled_ms\": {:.3},\n      \
                 \"enabled_ms\": {:.3},\n      \"traced_ms\": {:.3},\n      \
                 \"enabled_overhead_pct\": {:.2},\n      \
                 \"traced_overhead_pct\": {:.2},\n      \
                 \"counters_recorded\": {}\n    }}{sep}",
                c.rows,
                c.disabled_ms,
                c.enabled_ms,
                c.traced_ms,
                pct(c.enabled_ms),
                pct(c.traced_ms),
                c.counters,
            );
        }
        body.push_str("\n  ]\n}\n");
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_session(args: &Args) -> Result<(), String> {
    let path = args.positional0()?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let spec = SessionSpec::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let base = Path::new(path).parent().unwrap_or(Path::new("."));
    let ctx = spec.load(base).map_err(|e| e.to_string())?;
    println!(
        "session {path}: {} rows, {} QI attributes, {} items, {} queries, privacy: {}, utility: {}",
        ctx.table.n_rows(),
        ctx.qi_attrs.len(),
        ctx.table.item_universe(),
        ctx.workload.len(),
        ctx.privacy.as_ref().map(|p| p.len()).unwrap_or(0),
        ctx.utility.as_ref().map(|u| u.len()).unwrap_or(0),
    );
    for (pos, &attr) in ctx.qi_attrs.iter().enumerate() {
        let name = &ctx.table.schema().attribute(attr).expect("attr").name;
        let h = &ctx.hierarchies[pos];
        println!(
            "  hierarchy {name}: {} leaves, height {}",
            h.n_leaves(),
            h.height()
        );
    }
    Ok(())
}
