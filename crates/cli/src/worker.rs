//! `secreta worker` — a distributed-sweep worker process, plus the
//! coordinator-side glue (`--workers` / `--distributed`) and the
//! `bench --suite dist` scaling suite.
//!
//! A worker rebuilds the session context from the same dataset/session
//! arguments its coordinator used (the context digest recorded in the
//! sweep's journal intent must match, or the worker refuses), then
//! claims jobs through crash-safe lease files until the sweep drains.
//! Workers can be started before or after the coordinator: they poll
//! the journal for up to `--wait-ms` for the sweep to appear.

use crate::args::Args;
use crate::commands::{load_context, with_limits, DEFAULT_STORE_DIR, EXIT_DEGRADED, EXIT_OK};
use secreta_core::distributed::{run_distributed, worker_loop, DistOptions};
use secreta_core::store::{read_events_checked, JournalEvent, RunStore};
use secreta_core::{context_digest, Configuration, Orchestrated, Orchestrator, SessionContext};
use serde::Value;
use std::time::{Duration, Instant};

/// Parse the distributed-execution options shared by the coordinator
/// (`evaluate`/`compare` with `--workers`/`--distributed`) and the
/// `worker` verb.
pub(crate) fn dist_options_of(args: &Args) -> Result<DistOptions, String> {
    let defaults = DistOptions::default();
    let opts = DistOptions {
        lease_ttl_ms: args.u64_or("lease-ttl-ms", defaults.lease_ttl_ms)?,
        poll_ms: args.u64_or("poll-ms", defaults.poll_ms)?,
        workers: args.usize_or("workers", 0)?,
        worker_wait_ms: args.u64_or("wait-ms", defaults.worker_wait_ms)?,
    };
    if opts.lease_ttl_ms == 0 {
        return Err("--lease-ttl-ms expects a positive number of milliseconds".into());
    }
    Ok(opts)
}

/// Run `configurations` through the in-process orchestrator, or — when
/// `--workers N` / `--distributed` is given — through the distributed
/// coordinator, spawning `N` local `secreta worker` processes that
/// re-execute this invocation's session arguments.
pub(crate) fn run_sweep(
    args: &Args,
    ctx: &SessionContext,
    orch: &Orchestrator,
    configurations: &[Configuration],
    invocation: Value,
) -> Result<Orchestrated, String> {
    let opts = dist_options_of(args)?;
    if opts.workers == 0 && !args.flag("distributed") {
        return orch
            .compare(ctx, configurations, invocation)
            .map_err(|e| e.to_string());
    }
    let store = orch
        .store()
        .ok_or("--workers/--distributed requires --store-dir")?;
    if args.flag("no-cache") {
        return Err(
            "--no-cache is not supported with distributed execution: workers \
             serve and fill the shared store by design"
                .into(),
        );
    }
    let forwarded = args.forward(&[
        "workers",
        "distributed",
        "no-cache",
        "out-dir",
        "export-anon",
        "ascii",
        "trace-out",
        "config",
        "threads",
    ]);
    let spawner = move |i: usize, sweep: &str| -> std::io::Result<std::process::Child> {
        let mut cmd = std::process::Command::new(std::env::current_exe()?);
        cmd.arg("worker")
            .args(&forwarded)
            .arg("--sweep")
            .arg(sweep)
            // the worker's own output would interleave with the
            // coordinator's report; chaos/abort messages stay visible
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::inherit());
        let child = cmd.spawn()?;
        eprintln!("spawned worker {} (pid {})", i + 1, child.id());
        Ok(child)
    };
    let spawn_ref: Option<&secreta_core::WorkerSpawner> = if opts.workers > 0 {
        Some(&spawner)
    } else {
        None
    };
    run_distributed(ctx, store, configurations, invocation, &opts, spawn_ref)
        .map_err(|e| e.to_string())
}

/// `secreta worker DATA [--tx COL] [--store-dir DIR] [--sweep ID]
/// [--lease-ttl-ms MS] [--poll-ms MS] [--wait-ms MS]`: attach to a
/// distributed sweep and execute its jobs until none remain. Without
/// `--sweep`, the worker waits for an open sweep whose recorded
/// context matches this session.
pub(crate) fn cmd_worker(args: &Args) -> Result<i32, String> {
    let ctx = with_limits(args, load_context(args).map_err(String::from)?)?;
    let ctx = {
        let obsv = crate::commands::obsv_of(args, false)?;
        ctx.with_obsv(obsv)
    };
    let dir = args.opt("store-dir").unwrap_or(DEFAULT_STORE_DIR);
    let store = RunStore::open(dir).map_err(|e| e.to_string())?;
    let opts = dist_options_of(args)?;
    let sweep = match args.opt("sweep") {
        Some(id) => id.to_owned(),
        None => discover_sweep(&ctx, &store, &opts)?,
    };
    println!(
        "worker {} attaching to sweep {} in {}",
        std::process::id(),
        sweep,
        store.root().display()
    );
    let report = worker_loop(&ctx, &store, &sweep, &opts).map_err(|e| e.to_string())?;
    println!(
        "worker {} done: {} claimed, {} executed, {} failed, {} reclaimed, \
         {} conflicts, {} fenced, {} backoffs",
        std::process::id(),
        report.claimed,
        report.executed,
        report.failed,
        report.reclaimed,
        report.conflicts,
        report.fenced,
        report.backoffs,
    );
    Ok(if report.failed > 0 {
        EXIT_DEGRADED
    } else {
        EXIT_OK
    })
}

/// Poll the journal for the newest open sweep (started, not finished)
/// whose recorded context digest matches this worker's session.
fn discover_sweep(
    ctx: &SessionContext,
    store: &RunStore,
    opts: &DistOptions,
) -> Result<String, String> {
    let digest = context_digest(ctx);
    let path = store.journal_path();
    let deadline = Instant::now() + Duration::from_millis(opts.worker_wait_ms);
    loop {
        if path.exists() {
            // concurrent appenders make a torn final line normal here
            let (events, _torn) = read_events_checked(&path).map_err(|e| e.to_string())?;
            let mut open: Vec<&str> = Vec::new();
            for e in &events {
                match e {
                    JournalEvent::SweepStarted(rec) if rec.context == digest => open.push(&rec.id),
                    JournalEvent::SweepFinished { sweep, .. } => open.retain(|id| id != sweep),
                    _ => {}
                }
            }
            if let Some(id) = open.last() {
                return Ok((*id).to_owned());
            }
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "no open sweep matching this session appeared in {} within \
                 {}ms; start the coordinator (evaluate/compare --distributed) \
                 or pass --sweep ID",
                store.root().display(),
                opts.worker_wait_ms
            ));
        }
        std::thread::sleep(Duration::from_millis(opts.poll_ms.max(1)));
    }
}

/// `bench --suite dist`: distributed-execution scaling — the same
/// two-algorithm k-sweep through the in-process orchestrator and
/// through the coordinator with 1, 2 and 4 spawned worker processes,
/// each against a fresh store. Reports wall times, the single-worker
/// lease/process overhead, scaling across worker counts, and whether
/// every mode produced identical indicators. `--json` writes the
/// report to `BENCH_9.json` (override with `--out`).
pub(crate) fn bench_dist(args: &Args) -> Result<(), String> {
    use secreta_core::config::RelAlgo;
    use secreta_core::sweep::VaryingParam;
    use secreta_core::{MethodSpec, Sweep};
    use std::fmt::Write as _;
    use std::time::Instant;

    let rows = args.usize_or("rows", 4000)?;
    let seed = args.u64_or("seed", 42)?;
    let threads = args.usize_or("threads", 4)?;
    let scratch = std::env::temp_dir().join(format!("secreta-bench-dist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).map_err(|e| e.to_string())?;

    // workers are separate processes: they need the dataset as a file,
    // loaded through the exact same path the coordinator uses, so the
    // context digests agree
    let data = scratch.join("bench-dist.csv");
    {
        let table = secreta_gen::DatasetSpec::adult_like(rows, seed).generate();
        secreta_core::data::csv::write_table_path(
            &table,
            &data,
            &secreta_core::data::CsvOptions::default(),
        )
        .map_err(|e| e.to_string())?;
    }
    let session_args = Args {
        command: "worker".to_owned(),
        positional: vec![data.display().to_string()],
        options: [
            ("tx".to_owned(), "Items".to_owned()),
            ("queries".to_owned(), "50".to_owned()),
            ("seed".to_owned(), seed.to_string()),
        ]
        .into_iter()
        .collect(),
    };
    let ctx = with_limits(
        &session_args,
        load_context(&session_args).map_err(String::from)?,
    )?;

    let sweep = Sweep {
        param: VaryingParam::K,
        start: 2,
        end: 10,
        step: 2,
    };
    let configs = vec![
        Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k: 0,
            },
            sweep,
            seed,
        ),
        Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::TopDown,
                k: 0,
            },
            sweep,
            seed,
        ),
    ];
    let jobs: usize = configs.len() * sweep.values().len();
    println!("distributed execution benchmark (adult-like, {rows} rows, {jobs} jobs)");

    // baseline: the in-process orchestrator on `threads` threads
    let solo_store = RunStore::open(scratch.join("solo")).map_err(|e| e.to_string())?;
    let orch = Orchestrator::new(threads).with_store(solo_store);
    let t0 = Instant::now();
    let solo = orch
        .compare(&ctx, &configs, Value::Null)
        .map_err(|e| e.to_string())?;
    let solo_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  in-process ({threads} threads): {solo_ms:>9.1}ms");

    let mut dist_ms: Vec<(usize, f64)> = Vec::new();
    let mut identical = true;
    for workers in [1usize, 2, 4] {
        let store =
            RunStore::open(scratch.join(format!("w{workers}"))).map_err(|e| e.to_string())?;
        let opts = DistOptions {
            workers,
            ..DistOptions::default()
        };
        let forwarded = session_args.forward(&[]);
        let store_dir = store.root().display().to_string();
        let spawner = move |_i: usize, sweep_id: &str| -> std::io::Result<std::process::Child> {
            let mut cmd = std::process::Command::new(std::env::current_exe()?);
            cmd.arg("worker")
                .args(&forwarded)
                .args(["--store-dir", &store_dir, "--sweep", sweep_id])
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::inherit());
            cmd.spawn()
        };
        let t = Instant::now();
        let out = run_distributed(&ctx, &store, &configs, Value::Null, &opts, Some(&spawner))
            .map_err(|e| e.to_string())?;
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if out.stats.failures != 0 || out.stats.misses as usize != jobs {
            return Err(format!(
                "distributed pass with {workers} worker(s) did not execute \
                 every job: {} executed, {} failed of {jobs}",
                out.stats.misses, out.stats.failures
            ));
        }
        identical &= solo
            .result
            .points
            .iter()
            .zip(&out.result.points)
            .all(|(a, b)| {
                a.iter().zip(b).all(|((_, ar), (_, br))| match (ar, br) {
                    (Ok(x), Ok(y)) => {
                        let (mut x, mut y) = (x.indicators.clone(), y.indicators.clone());
                        x.runtime_ms = 0.0;
                        y.runtime_ms = 0.0;
                        x == y
                    }
                    _ => false,
                })
            });
        println!("  {workers} worker(s): {ms:>9.1}ms");
        dist_ms.push((workers, ms));
    }
    let overhead_pct = (dist_ms[0].1 - solo_ms) / solo_ms.max(1e-9) * 100.0;
    let scaling = dist_ms[0].1 / dist_ms.last().map(|(_, ms)| *ms).unwrap_or(1.0).max(1e-9);
    println!(
        "  1-worker overhead vs in-process: {overhead_pct:+.1}%  \
         1→4 worker speedup: {scaling:.2}x  indicators identical: {identical}"
    );
    if !identical {
        let _ = std::fs::remove_dir_all(&scratch);
        return Err("distributed results diverged from the in-process baseline".into());
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_9.json");
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"dist\",\n  \"dataset\": \"adult-like\",\n  \
             \"rows\": {rows},\n  \"seed\": {seed},\n  \"threads\": {threads},\n  \
             \"configurations\": [\"Cluster\", \"TopDown\"],\n  \
             \"sweep\": {{\"param\": \"k\", \"start\": {}, \"end\": {}, \"step\": {}}},\n  \
             \"jobs\": {jobs},\n  \"in_process_ms\": {solo_ms:.3},\n  \
             \"workers\": [",
            sweep.start, sweep.end, sweep.step,
        );
        for (i, (workers, ms)) in dist_ms.iter().enumerate() {
            let _ = write!(
                body,
                "{}\n    {{\"workers\": {workers}, \"wall_ms\": {ms:.3}}}",
                if i == 0 { "" } else { "," },
            );
        }
        let _ = write!(
            body,
            "\n  ],\n  \"one_worker_overhead_pct\": {overhead_pct:.3},\n  \
             \"one_to_four_speedup\": {scaling:.3},\n  \
             \"indicators_identical\": {identical}\n}}\n",
        );
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
    Ok(())
}
