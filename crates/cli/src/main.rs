//! `secreta` — the command-line frontend of SECRETA-rs.
//!
//! Replaces the paper's Qt GUI: every frontend capability (dataset
//! loading/statistics, hierarchy/policy/workload handling, the
//! Evaluation and Comparison modes, data export) is a subcommand.
//! Run `secreta help` for the full surface.
//!
//! Exit codes: `0` success, `1` fatal error, `2` usage error,
//! `3` degraded (a sweep or fsck completed with failures on record).

mod args;
mod bench_all;
mod commands;
mod runs;
mod worker;

use args::Args;

fn main() {
    // fault plans come from the environment so chaos tests can drive
    // the stock binary; a bad spec is a usage error
    if let Err(e) = secreta_core::faults::init_from_env() {
        eprintln!("error: {}: {e}", secreta_core::faults::ENV_VAR);
        std::process::exit(2);
    }
    install_panic_hook();
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let code = match commands::dispatch(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    };
    std::process::exit(code);
}

/// Keep expected unwinds quiet. Cooperative cancellation travels as a
/// typed panic payload and injected chaos panics are part of a fault
/// plan; both are caught and classified by the evaluator's panic
/// isolation, so the default hook's backtrace output would only bury
/// real bugs under noise.
fn install_panic_hook() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        if payload.is::<secreta_core::obsv::Cancelled>() {
            return;
        }
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied());
        if msg.is_some_and(|m| m.starts_with(secreta_core::faults::fault::PANIC_PREFIX)) {
            return;
        }
        default_hook(info);
    }));
}
