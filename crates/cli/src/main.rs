//! `secreta` — the command-line frontend of SECRETA-rs.
//!
//! Replaces the paper's Qt GUI: every frontend capability (dataset
//! loading/statistics, hierarchy/policy/workload handling, the
//! Evaluation and Comparison modes, data export) is a subcommand.
//! Run `secreta help` for the full surface.

mod args;
mod commands;
mod runs;

use args::Args;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let code = match commands::dispatch(&args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    };
    std::process::exit(code);
}
