//! `secreta runs` — inspect and manage the persistent run store.
//!
//! Subcommands:
//!
//! * `runs list`   — stored runs plus open/degraded sweeps and failed
//!   jobs from the journal
//! * `runs show`   — full manifest of one run (key prefixes accepted)
//! * `runs chart`  — plot an indicator straight from stored manifests
//! * `runs gc`     — drop incomplete entries (`--all` empties the store)
//! * `runs resume` — finish an interrupted or degraded sweep from its
//!   journal intent (only failed/missing jobs re-execute)
//! * `runs fsck`   — verify every entry; `--repair` quarantines corrupt
//!   ones and removes leftovers

use crate::args::Args;
use crate::commands::{load_context, print_indicators, with_limits, DEFAULT_STORE_DIR};
use crate::commands::{EXIT_DEGRADED, EXIT_OK};
use secreta_core::store::{resumable_sweeps, JournalEvent, RunStore, SweepRecord};
use secreta_core::{export, Configuration, Orchestrator};
use serde::{Deserialize, Value};

/// Dispatch `secreta runs <subcommand>`; returns the process exit code.
pub fn cmd_runs(args: &Args) -> Result<i32, String> {
    let sub = args
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("list");
    match sub {
        "list" => cmd_list(args).map(|()| EXIT_OK),
        "show" => cmd_show(args).map(|()| EXIT_OK),
        "chart" => cmd_chart(args).map(|()| EXIT_OK),
        "gc" => cmd_gc(args).map(|()| EXIT_OK),
        "resume" => cmd_resume(args),
        "fsck" => cmd_fsck(args),
        other => Err(format!(
            "unknown runs subcommand {other:?} (list|show|chart|gc|resume|fsck)"
        )),
    }
}

/// Open the store at `--store-dir` (default `.secreta-store`).
fn store_of(args: &Args) -> Result<RunStore, String> {
    let dir = args.opt("store-dir").unwrap_or(DEFAULT_STORE_DIR);
    RunStore::open(dir).map_err(|e| e.to_string())
}

fn cmd_list(args: &Args) -> Result<(), String> {
    let store = store_of(args)?;
    let manifests = store.list().map_err(|e| e.to_string())?;
    if manifests.is_empty() {
        println!("store {} holds no runs", store.root().display());
    } else {
        println!(
            "{:<18} {:<28} {:>8} {:>10} {:>12} {:>10}",
            "key", "method", "sweep", "gcp", "runtime(ms)", "created"
        );
        for m in &manifests {
            let sweep = match (&m.sweep_param, m.sweep_value) {
                (Some(p), Some(v)) => format!("{p}={v}"),
                _ => "-".to_owned(),
            };
            println!(
                "{:<18} {:<28} {:>8} {:>10.4} {:>12.1} {:>10}",
                &m.key[..16.min(m.key.len())],
                m.label,
                sweep,
                m.indicators.gcp,
                m.indicators.runtime_ms,
                m.created_unix_ms / 1000,
            );
        }
        println!("{} runs in {}", manifests.len(), store.root().display());
    }
    let events = store.read_journal().map_err(|e| e.to_string())?;
    let open = resumable_sweeps(&events);
    if !open.is_empty() {
        println!("open or degraded sweeps (resume with `secreta runs resume <id>`):");
        for rec in &open {
            let total: usize = rec.jobs.iter().map(Vec::len).sum();
            let done = events
                .iter()
                .filter(
                    |e| matches!(e, JournalEvent::JobFinished { sweep, .. } if *sweep == rec.id),
                )
                .count();
            println!(
                "  {}  {}  {}/{} jobs done",
                rec.id,
                rec.labels.join(" vs "),
                done,
                total
            );
            for e in &events {
                if let JournalEvent::JobFailed {
                    sweep,
                    label,
                    value,
                    error,
                    ..
                } = e
                {
                    if *sweep == rec.id {
                        println!("    failed: {label} @ {value}: {error}");
                    }
                }
            }
        }
    }
    Ok(())
}

fn cmd_show(args: &Args) -> Result<(), String> {
    let store = store_of(args)?;
    let prefix = args
        .positional
        .get(1)
        .ok_or("usage: secreta runs show KEY [--store-dir DIR]")?;
    let key = store
        .resolve(prefix)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no run matches key prefix {prefix:?}"))?;
    let run = store
        .get(&key)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("run {key} vanished from the store"))?;
    let m = &run.manifest;
    println!("key:      {}", m.key);
    println!("method:   {}", m.label);
    println!("context:  {}", m.context);
    println!("seed:     {}", m.seed);
    if let (Some(p), Some(v)) = (&m.sweep_param, m.sweep_value) {
        println!("sweep:    {p}={v}");
    }
    println!("schema:   v{}", m.schema_version);
    println!("created:  {}s (unix)", m.created_unix_ms / 1000);
    println!(
        "config:   {}",
        serde_json::to_string(&m.config).map_err(|e| e.to_string())?
    );
    print_indicators("indicators", &m.indicators);
    println!("phases:");
    for (name, d) in &m.phases.phases {
        println!("  {:<32} {:>10.2}ms", name, d.as_secs_f64() * 1e3);
    }
    if let Some(profile) = &m.profile {
        println!("profile:");
        print!("{}", profile.render_table());
    }
    println!(
        "anonymized table: {} rows, {} relational columns, transactions: {}",
        run.anon.n_rows,
        run.anon.rel.len(),
        run.anon.tx.is_some()
    );
    Ok(())
}

fn cmd_chart(args: &Args) -> Result<(), String> {
    let store = store_of(args)?;
    let manifests = store.list().map_err(|e| e.to_string())?;
    if manifests.is_empty() {
        return Err(format!("store {} holds no runs", store.root().display()));
    }
    let indicator = args.opt("indicator").unwrap_or("gcp");
    if indicator == "phases" {
        let chart = export::phase_chart_from_manifests(&manifests);
        if chart.categories.is_empty() {
            return Err("no stored run carries phase timings to plot".into());
        }
        if args.flag("ascii") || args.opt("out-dir").is_none() {
            print!("{}", export::terminal_grouped(&chart));
        }
        if let Some(dir) = args.opt("out-dir") {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
            let stem = std::path::Path::new(dir).join("runs_phases");
            let (svg, csv) =
                export::export_grouped_chart(&chart, &stem).map_err(|e| e.to_string())?;
            println!("wrote {} and {}", svg.display(), csv.display());
        }
        return Ok(());
    }
    match indicator {
        "gcp" | "are" | "runtime" | "prosecutor" | "uniqueness" | "violations" => {}
        other => {
            return Err(format!(
                "unknown --indicator {other:?} \
                 (gcp|are|runtime|prosecutor|uniqueness|violations|phases)"
            ))
        }
    }
    let chart = export::chart_from_manifests(
        &manifests,
        format!("{indicator} from stored runs"),
        indicator,
        |i| crate::commands::indicator_scalar(indicator, i),
    );
    if chart.series.is_empty() {
        return Err("no stored run carries a sweep point to plot".into());
    }
    if args.flag("ascii") || args.opt("out-dir").is_none() {
        print!("{}", export::terminal_xy(&chart));
    }
    if let Some(dir) = args.opt("out-dir") {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        let stem = std::path::Path::new(dir).join(format!("runs_{indicator}"));
        let (svg, csv) = export::export_xy_chart(&chart, &stem).map_err(|e| e.to_string())?;
        println!("wrote {} and {}", svg.display(), csv.display());
    }
    Ok(())
}

fn cmd_gc(args: &Args) -> Result<(), String> {
    let store = store_of(args)?;
    if args.flag("all") {
        let removed = store.gc_all().map_err(|e| e.to_string())?;
        println!(
            "removed {} entries; {} is empty",
            removed,
            store.root().display()
        );
    } else {
        let removed = store.gc_incomplete().map_err(|e| e.to_string())?;
        println!("removed {removed} incomplete entries");
    }
    Ok(())
}

fn cmd_resume(args: &Args) -> Result<i32, String> {
    let store = store_of(args)?;
    let events = store.read_journal().map_err(|e| e.to_string())?;
    let open = resumable_sweeps(&events);
    let record = match args.positional.get(1) {
        Some(id) => open
            .iter()
            .find(|r| r.id.starts_with(id.as_str()))
            .cloned()
            .ok_or_else(|| format!("no resumable sweep matches {id:?}"))?,
        None => match open.len() {
            0 => {
                println!("nothing to resume: the journal has no open or degraded sweep");
                return Ok(EXIT_OK);
            }
            1 => open[0].clone(),
            _ => {
                let ids: Vec<&str> = open.iter().map(|r| r.id.as_str()).collect();
                return Err(format!(
                    "multiple resumable sweeps: {}; pick one with `secreta runs resume <id>`",
                    ids.join(", ")
                ));
            }
        },
    };
    resume_sweep(args, &store, &record)
}

/// Re-run a journaled sweep with the cache on: completed jobs replay
/// from the store, only the failed or missing ones execute.
fn resume_sweep(args: &Args, store: &RunStore, record: &SweepRecord) -> Result<i32, String> {
    let (rebuilt, configs) = decode_invocation(&record.invocation)?;
    let ctx = with_limits(args, load_context(&rebuilt).map_err(String::from)?)?;
    let threads = args.usize_or("threads", 4)?;
    let orch = Orchestrator::new(threads).with_store(store.clone());
    println!(
        "resuming sweep {} ({}) from {}",
        record.id,
        record.labels.join(" vs "),
        store.root().display()
    );
    let out = orch
        .compare(&ctx, &configs, record.invocation.clone())
        .map_err(|e| e.to_string())?;
    if out.sweep_id != record.id {
        // the session inputs changed since the intent was journaled —
        // the jobs above ran, but they belong to a different sweep
        return Err(format!(
            "session inputs changed since the sweep was journaled \
             (intent {}, replay {}); results were computed and stored \
             under the new identity",
            record.id, out.sweep_id
        ));
    }
    for (label, pts) in out.result.labels.iter().zip(&out.result.points) {
        println!("== {label}");
        for (v, r) in pts {
            match r {
                Ok(p) => print_indicators(
                    &format!("  {}={v}", out.result.param.label()),
                    &p.indicators,
                ),
                Err(e) => println!("  {}={v}: failed: {e}", out.result.param.label()),
            }
        }
    }
    println!(
        "sweep {} complete: {} replayed, {} executed, {} failed",
        out.sweep_id, out.stats.hits, out.stats.misses, out.stats.failures
    );
    Ok(if out.stats.failures == 0 {
        EXIT_OK
    } else {
        EXIT_DEGRADED
    })
}

/// `secreta runs fsck [--repair]`: verify every stored entry (manifest
/// parse, payload checksum) and the journal. Without `--repair` the
/// store is left untouched and problems exit 3; with it, corrupt
/// entries are quarantined and leftovers removed. Journal damage is
/// reported but never auto-repaired.
fn cmd_fsck(args: &Args) -> Result<i32, String> {
    let store = store_of(args)?;
    let repair = args.flag("repair");
    let report = store.fsck(repair).map_err(|e| e.to_string())?;
    println!(
        "fsck {}: {} scanned, {} ok, {} corrupt, {} incomplete, {} staging leftover(s)",
        store.root().display(),
        report.scanned,
        report.ok,
        report.corrupt.len(),
        report.incomplete,
        report.staging,
    );
    for (key, reason) in &report.corrupt {
        let action = if repair { " (quarantined)" } else { "" };
        println!("  corrupt {key}: {reason}{action}");
    }
    if let Some(err) = &report.journal_error {
        println!("  journal: {err} — not auto-repaired; `runs gc --all` resets the store");
    }
    if report.is_clean() {
        println!("store is clean");
        Ok(EXIT_OK)
    } else if repair && report.journal_error.is_none() {
        println!("issues repaired: corrupt entries quarantined, leftovers removed");
        Ok(EXIT_OK)
    } else if repair {
        Ok(EXIT_DEGRADED)
    } else {
        println!("store has issues; `secreta runs fsck --repair` fixes what it can");
        Ok(EXIT_DEGRADED)
    }
}

/// Decode the opaque invocation payload journaled by evaluate/compare
/// back into the argument set and configurations that produced it.
fn decode_invocation(invocation: &Value) -> Result<(Args, Vec<Configuration>), String> {
    let bad = |what: &str| format!("journal invocation payload is missing {what}");
    let mut rebuilt = Args {
        command: invocation
            .get("command")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("\"command\""))?
            .to_owned(),
        ..Args::default()
    };
    if let Some(positional) = invocation.get("positional").and_then(Value::as_arr) {
        for p in positional {
            rebuilt
                .positional
                .push(p.as_str().ok_or_else(|| bad("a positional string"))?.into());
        }
    }
    if let Some(options) = invocation.get("options").and_then(Value::as_obj) {
        for (k, v) in options {
            rebuilt.options.insert(
                k.clone(),
                v.as_str().ok_or_else(|| bad("an option string"))?.into(),
            );
        }
    }
    let configs = Vec::<Configuration>::de(
        invocation
            .get("configurations")
            .ok_or_else(|| bad("\"configurations\""))?,
    )
    .map_err(|e| format!("journal invocation payload: {e}"))?;
    Ok((rebuilt, configs))
}
