//! The versioned benchmark suites added with the tiered kernels:
//!
//! * `secreta bench --suite tiered` compares the PR-4 CSR support
//!   kernels against the tiered bitmap/CSR kernels on every
//!   transaction algorithm (the tiering threshold is forced above 1.0
//!   for the baseline pass, which disables the dense tier and
//!   reproduces the pure-CSR behavior exactly) and writes
//!   `BENCH_5.json`.
//! * `secreta bench --all` runs the cross-layer gate suite and emits a
//!   schema-versioned [`BenchReport`]; with `--baseline FILE` it
//!   compares calibration-normalized wall times against a committed
//!   report and fails on any case regressing more than `--gate-pct`
//!   percent (default 25). CI runs this against
//!   `benches/baseline.json`.
//!
//! `SECRETA_BENCH_HANDICAP=N` multiplies every `--all` case's workload
//! N-fold inside the timed region. It exists so CI can prove the gate
//! actually gates (a 2x handicap must fail against the committed
//! baseline); it is loudly announced and never something to set during
//! a real measurement.

use crate::args::Args;
use secreta_bench::report::{self, BenchCase, BenchReport};
use secreta_core::data::ItemId;
use secreta_core::policy::{generate_privacy, PrivacyPolicy, PrivacyStrategy};
use secreta_core::relational::{
    bottomup, cluster, incognito, topdown, Counting as RelCounting, RelationalInput,
};
use secreta_core::transaction::{self as tx, set_density_threshold, Counting, RhoParams};
use secreta_core::SessionContext;
use secreta_gen::DatasetSpec;
use std::fmt::Write as _;
use std::time::Instant;

/// Environment variable holding the synthetic slowdown factor for the
/// gate self-test.
const HANDICAP_VAR: &str = "SECRETA_BENCH_HANDICAP";

/// Transaction-algorithm fixtures shared by both suites: the basket
/// table, the per-algorithm inputs and the rho parameters, built once
/// outside any timed region.
struct TxFixture {
    ctx: SessionContext,
    k: usize,
    m: usize,
    params: RhoParams,
    privacy: PrivacyPolicy,
}

impl TxFixture {
    fn build(rows: usize, items: usize, k: usize, m: usize, seed: u64) -> Result<Self, String> {
        let table = DatasetSpec::basket(rows, items, seed).generate();
        let ctx = SessionContext::auto(table, 4).map_err(|e| e.to_string())?;
        if ctx.item_hierarchy.is_none() {
            return Err("basket dataset has no item universe".to_owned());
        }
        // sensitive targets for the rho family: the three rarest items
        let sup = secreta_core::data::stats::item_supports(&ctx.table);
        let mut by_sup: Vec<u32> = (0..sup.len() as u32).collect();
        by_sup.sort_by_key(|&i| (sup[i as usize], i));
        let params = RhoParams {
            rho: 0.5,
            sensitive: by_sup.iter().take(3).map(|&i| ItemId(i)).collect(),
            max_antecedent: 2,
        };
        // COAT/PCTA get the paper's policy-driven workload: pairs of
        // items an adversary may know together, sampled from real
        // transactions so every constraint has live support to push
        // over k — this is what makes their support checks intersect
        // group row sets instead of just counting single unions
        let privacy = generate_privacy(
            &ctx.table,
            &PrivacyStrategy::RandomItemsets {
                size: 2,
                count: (rows / 4).clamp(25, 400),
                seed,
            },
        );
        Ok(TxFixture {
            ctx,
            k,
            m,
            params,
            privacy,
        })
    }

    /// Run one named algorithm under the given counting strategy.
    fn run(&self, name: &str, counting: Counting) -> Result<tx::TxOutput, String> {
        use secreta_core::transaction::TransactionInput;
        let h = self.ctx.item_hierarchy.as_ref().expect("checked in build");
        let km = TransactionInput::km(&self.ctx.table, self.k, self.m, h);
        let plain = TransactionInput {
            table: &self.ctx.table,
            k: self.k,
            m: 1,
            hierarchy: None,
            privacy: Some(&self.privacy),
            utility: None,
        };
        let one = TransactionInput {
            table: &self.ctx.table,
            k: 1,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let td = TransactionInput::km(&self.ctx.table, 1, 1, h);
        let out = match name {
            "apriori" => tx::apriori::anonymize_with(&km, counting),
            "lra" => tx::lra::anonymize_with(&km, 2, counting),
            "vpa" => tx::vpa::anonymize_with(&km, 4, counting),
            "coat" => tx::coat::anonymize_with(&plain, counting),
            "pcta" => tx::pcta::anonymize_with(&plain, counting),
            "rho" => tx::rho::anonymize_with(&one, &self.params, counting),
            "rho-td" | "rho_td" => tx::rho_td::anonymize_with(&td, &self.params, counting),
            other => return Err(format!("unknown algorithm {other:?}")),
        };
        out.map_err(|e| format!("{name}: {e}"))
    }
}

/// The seven transaction algorithms in the order every report lists
/// them.
const TX_ALGOS: &[&str] = &["apriori", "lra", "vpa", "coat", "pcta", "rho", "rho-td"];

/// `secreta bench --suite tiered`: every transaction algorithm runs
/// twice with the support kernels — once with the dense tier disabled
/// (threshold forced above 1.0: the pure-CSR PR-4 kernel) and once
/// with the production tiering threshold — and the published outputs
/// are compared byte-for-byte.
pub(crate) fn bench_tiered(args: &Args) -> Result<(), String> {
    let k = args.usize_or("k", 10)?;
    let m = args.usize_or("m", 2)?;
    let items = args.usize_or("items", 80)?;
    let seed = args.u64_or("seed", 42)?;
    if let Some(t) = args.opt("threads") {
        let n: usize = t
            .parse()
            .map_err(|_| format!("--threads expects an integer, got {t:?}"))?;
        secreta_core::parallel::set_threads(n);
    }
    let rows: Vec<usize> = args
        .opt("rows")
        .unwrap_or("1000,10000")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("--rows expects integers, got {t:?}"))
        })
        .collect::<Result<_, _>>()?;

    let phases_ms = |p: &secreta_core::metrics::PhaseTimes| -> Vec<(String, f64)> {
        p.phases
            .iter()
            .map(|(n, d)| (n.clone(), d.as_secs_f64() * 1e3))
            .collect()
    };

    struct Case {
        algorithm: &'static str,
        rows: usize,
        baseline_ms: f64,
        optimized_ms: f64,
        baseline_phases: Vec<(String, f64)>,
        optimized_phases: Vec<(String, f64)>,
        identical: bool,
    }
    let mut cases: Vec<Case> = Vec::new();

    println!("tiered kernel benchmark (basket, {items} items, k={k}, m={m}, seed={seed})");
    println!("  baseline = CSR kernel (dense tier disabled), optimized = tiered kernel");
    for &n in &rows {
        let fx = TxFixture::build(n, items, k, m, seed)?;
        println!("  n={n}");
        for &name in TX_ALGOS {
            // threshold > 1.0 means no item can clear the density bar:
            // the kernel degenerates to the previous pure-CSR paths
            set_density_threshold(Some(2.0));
            let t0 = Instant::now();
            let base = fx.run(name, Counting::Kernel);
            let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;
            set_density_threshold(None);
            let base = base?;
            let t1 = Instant::now();
            let fast = fx.run(name, Counting::Kernel)?;
            let optimized_ms = t1.elapsed().as_secs_f64() * 1e3;
            let identical = base.anon == fast.anon;
            println!(
                "    {name:<8} csr {baseline_ms:>10.1}ms  tiered {optimized_ms:>8.1}ms  \
                 speedup {:>5.1}x  outputs identical: {identical}",
                baseline_ms / optimized_ms.max(1e-9),
            );
            cases.push(Case {
                algorithm: name,
                rows: n,
                baseline_ms,
                optimized_ms,
                baseline_phases: phases_ms(&base.phases),
                optimized_phases: phases_ms(&fast.phases),
                identical,
            });
        }
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_5.json");
        let phase_obj = |phases: &[(String, f64)]| -> String {
            let mut s = String::new();
            for (i, (name, ms)) in phases.iter().enumerate() {
                let sep = if i + 1 < phases.len() { "," } else { "" };
                let _ = write!(s, "\n          \"{name}\": {ms:.3}{sep}");
            }
            s
        };
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"tx-tiered\",\n  \"dataset\": \"basket\",\n  \
             \"baseline\": \"kernel-csr\",\n  \"optimized\": \"kernel-tiered\",\n  \
             \"items\": {items},\n  \"k\": {k},\n  \"m\": {m},\n  \"seed\": {seed},\n  \
             \"threads\": {},\n  \"cases\": [",
            secreta_core::parallel::max_threads()
        );
        for (i, c) in cases.iter().enumerate() {
            let sep = if i + 1 < cases.len() { "," } else { "" };
            let _ = write!(
                body,
                "\n    {{\n      \"algorithm\": \"{}\",\n      \"rows\": {},\n      \
                 \"baseline_ms\": {:.3},\n      \"optimized_ms\": {:.3},\n      \
                 \"speedup\": {:.3},\n      \"outputs_identical\": {},\n      \
                 \"baseline_phases_ms\": {{{}\n      }},\n      \
                 \"optimized_phases_ms\": {{{}\n      }}\n    }}{sep}",
                c.algorithm,
                c.rows,
                c.baseline_ms,
                c.optimized_ms,
                c.baseline_ms / c.optimized_ms.max(1e-9),
                c.identical,
                phase_obj(&c.baseline_phases),
                phase_obj(&c.optimized_phases),
            );
        }
        body.push_str("\n  ]\n}\n");
        // fail loudly rather than commit a report with a broken shape
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// The three relational search algorithms with counting kernels, in
/// the order every report lists them.
const REL_ALGOS: &[&str] = &["incognito", "topdown", "bottomup"];

/// Run one relational algorithm under the given counting strategy.
fn run_rel(
    name: &str,
    input: &RelationalInput,
    counting: RelCounting,
) -> Result<secreta_core::relational::RelOutput, String> {
    let out = match name {
        "incognito" => incognito::anonymize_with(input, counting),
        "topdown" => topdown::anonymize_with(input, counting),
        "bottomup" => bottomup::anonymize_with(input, counting),
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    out.map_err(|e| format!("{name}: {e}"))
}

/// `secreta bench --suite rel`: Incognito, Top-down and Bottom-up run
/// twice on a census-style relational table — once with the naive
/// rescan-per-check counting (`Counting::Naive`, the pre-kernel
/// implementation kept as oracle) and once with the partition-rollup
/// kernels — and the published outputs are compared byte-for-byte.
/// Writes `BENCH_8.json` with `--json`/`--out`.
pub(crate) fn bench_rel(args: &Args) -> Result<(), String> {
    let k = args.usize_or("k", 10)?;
    let fanout = args.usize_or("fanout", 2)?;
    let seed = args.u64_or("seed", 42)?;
    if let Some(t) = args.opt("threads") {
        let n: usize = t
            .parse()
            .map_err(|_| format!("--threads expects an integer, got {t:?}"))?;
        secreta_core::parallel::set_threads(n);
    }
    let rows: Vec<usize> = args
        .opt("rows")
        .unwrap_or("1000,10000")
        .split(',')
        .map(|t| {
            t.trim()
                .parse()
                .map_err(|_| format!("--rows expects integers, got {t:?}"))
        })
        .collect::<Result<_, _>>()?;

    let phases_ms = |p: &secreta_core::metrics::PhaseTimes| -> Vec<(String, f64)> {
        p.phases
            .iter()
            .map(|(n, d)| (n.clone(), d.as_secs_f64() * 1e3))
            .collect()
    };

    struct Case {
        algorithm: &'static str,
        rows: usize,
        baseline_ms: f64,
        optimized_ms: f64,
        baseline_phases: Vec<(String, f64)>,
        optimized_phases: Vec<(String, f64)>,
        identical: bool,
    }
    let mut cases: Vec<Case> = Vec::new();

    println!("relational kernel benchmark (census, k={k}, fanout={fanout}, seed={seed})");
    println!("  baseline = naive row rescans, optimized = partition-rollup kernel");
    for &n in &rows {
        let table = DatasetSpec::census(n, seed).generate();
        let ctx = SessionContext::auto(table, fanout).map_err(|e| e.to_string())?;
        let input = RelationalInput {
            table: &ctx.table,
            qi_attrs: ctx.qi_attrs.clone(),
            hierarchies: ctx.hierarchies.clone(),
            k,
        };
        println!("  n={n}");
        for &name in REL_ALGOS {
            let t0 = Instant::now();
            let base = run_rel(name, &input, RelCounting::Naive)?;
            let baseline_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let fast = run_rel(name, &input, RelCounting::Kernel)?;
            let optimized_ms = t1.elapsed().as_secs_f64() * 1e3;
            let identical = base.anon == fast.anon;
            println!(
                "    {name:<10} naive {baseline_ms:>10.1}ms  kernel {optimized_ms:>8.1}ms  \
                 speedup {:>5.1}x  outputs identical: {identical}",
                baseline_ms / optimized_ms.max(1e-9),
            );
            cases.push(Case {
                algorithm: name,
                rows: n,
                baseline_ms,
                optimized_ms,
                baseline_phases: phases_ms(&base.phases),
                optimized_phases: phases_ms(&fast.phases),
                identical,
            });
        }
    }

    if args.flag("json") || args.opt("out").is_some() {
        let path = args.opt("out").unwrap_or("BENCH_8.json");
        let phase_obj = |phases: &[(String, f64)]| -> String {
            let mut s = String::new();
            for (i, (name, ms)) in phases.iter().enumerate() {
                let sep = if i + 1 < phases.len() { "," } else { "" };
                let _ = write!(s, "\n          \"{name}\": {ms:.3}{sep}");
            }
            s
        };
        let mut body = String::new();
        let _ = write!(
            body,
            "{{\n  \"suite\": \"rel-kernels\",\n  \"dataset\": \"census\",\n  \
             \"baseline\": \"naive\",\n  \"optimized\": \"kernel\",\n  \
             \"k\": {k},\n  \"fanout\": {fanout},\n  \"seed\": {seed},\n  \
             \"threads\": {},\n  \"cases\": [",
            secreta_core::parallel::max_threads()
        );
        for (i, c) in cases.iter().enumerate() {
            let sep = if i + 1 < cases.len() { "," } else { "" };
            let _ = write!(
                body,
                "\n    {{\n      \"algorithm\": \"{}\",\n      \"rows\": {},\n      \
                 \"baseline_ms\": {:.3},\n      \"optimized_ms\": {:.3},\n      \
                 \"speedup\": {:.3},\n      \"outputs_identical\": {},\n      \
                 \"baseline_phases_ms\": {{{}\n      }},\n      \
                 \"optimized_phases_ms\": {{{}\n      }}\n    }}{sep}",
                c.algorithm,
                c.rows,
                c.baseline_ms,
                c.optimized_ms,
                c.baseline_ms / c.optimized_ms.max(1e-9),
                c.identical,
                phase_obj(&c.baseline_phases),
                phase_obj(&c.optimized_phases),
            );
        }
        body.push_str("\n  ]\n}\n");
        // fail loudly rather than commit a report with a broken shape
        serde_json::parse_value(&body)
            .map_err(|e| format!("internal error: produced invalid JSON: {e}"))?;
        std::fs::write(path, body).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// `secreta bench --all`: the cross-layer gate suite. One dataset
/// size, every kernel the perf work targets (the Cluster relational
/// hot path, all seven transaction algorithms under the tiered
/// kernels, the histogram-vectorized GCP), best-of-`--reps` wall
/// times, written as a schema-versioned [`BenchReport`].
pub(crate) fn bench_all(args: &Args) -> Result<(), String> {
    let rows = args.usize_or("rows", 800)?;
    let k = args.usize_or("k", 10)?;
    let seed = args.u64_or("seed", 42)?;
    let reps = args.usize_or("reps", 3)?.max(1);
    let threads = args.usize_or("threads", 0)?;
    if threads > 0 {
        secreta_core::parallel::set_threads(threads);
    }
    let gate_pct: f64 = match args.opt("gate-pct") {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--gate-pct expects a number, got {v:?}"))?,
        None => 25.0,
    };
    let handicap: usize = match std::env::var(HANDICAP_VAR) {
        Ok(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("{HANDICAP_VAR} expects an integer, got {v:?}"))?;
            if n > 1 {
                eprintln!(
                    "WARNING: {HANDICAP_VAR}={n} multiplies every workload {n}x inside the \
                     timed region; this run is a gate self-test, NOT a measurement"
                );
            }
            n.max(1)
        }
        Err(_) => 1,
    };

    // ---- setup: everything here stays outside the timed regions ----
    let rel_table = DatasetSpec::adult_like(rows, seed).generate();
    let rel_ctx = SessionContext::auto(rel_table, 4).map_err(|e| e.to_string())?;
    let rel_input = RelationalInput {
        table: &rel_ctx.table,
        qi_attrs: rel_ctx.qi_attrs.clone(),
        hierarchies: rel_ctx.hierarchies.clone(),
        k,
    };
    // a finished Cluster run feeds the metrics/gcp case
    let rel_out = cluster::anonymize(&rel_input, seed).map_err(|e| e.to_string())?;
    let fx = TxFixture::build(rows, 80, k, 2, seed)?;

    type CaseFn<'a> = Box<dyn Fn() -> Result<(), String> + 'a>;
    let mut case_fns: Vec<(String, CaseFn)> = Vec::new();
    case_fns.push((
        "rel/cluster".to_owned(),
        Box::new(|| {
            let out = cluster::anonymize(&rel_input, seed).map_err(|e| e.to_string())?;
            std::hint::black_box(out);
            Ok(())
        }),
    ));
    let rel_input = &rel_input;
    for &name in REL_ALGOS {
        case_fns.push((
            format!("rel/{name}"),
            Box::new(move || {
                let out = run_rel(name, rel_input, RelCounting::Kernel)?;
                std::hint::black_box(out);
                Ok(())
            }),
        ));
    }
    let fx = &fx;
    for &name in TX_ALGOS {
        let id = format!("tx/{}", name.replace('-', "_"));
        case_fns.push((
            id,
            Box::new(move || {
                let out = fx.run(name, Counting::Kernel)?;
                std::hint::black_box(out);
                Ok(())
            }),
        ));
    }
    case_fns.push((
        "metrics/gcp".to_owned(),
        Box::new(|| {
            // one evaluation is tens of microseconds — far below timer
            // noise; a fixed inner repeat lifts the case into a range
            // the regression gate can meaningfully compare
            for _ in 0..100 {
                let g = secreta_core::metrics::gcp(&rel_ctx.table, &rel_out.anon, |a| {
                    rel_ctx.hierarchy_of(a).cloned()
                });
                std::hint::black_box(g);
            }
            Ok(())
        }),
    ));

    println!(
        "gate suite (rows={rows}, k={k}, seed={seed}, threads={threads}, best of {reps}, \
         {} cases)",
        case_fns.len()
    );
    let calibration_ms = report::calibrate();
    println!("  calibration: {calibration_ms:.1}ms");

    let mut cases = Vec::with_capacity(case_fns.len());
    for (id, f) in &case_fns {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            for _ in 0..handicap {
                f()?;
            }
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!("  {id:<14} {best:>10.2}ms");
        cases.push(BenchCase {
            id: id.clone(),
            wall_ms: best,
            reps,
        });
    }

    let new = BenchReport {
        schema_version: report::SCHEMA_VERSION,
        suite: "all".to_owned(),
        rows,
        seed,
        threads,
        machine: report::machine_fingerprint(),
        calibration_ms,
        cases,
    };
    let path = args.opt("out").unwrap_or("BENCH_ALL.json");
    let body = serde_json::to_string_pretty(&new)
        .map_err(|e| format!("internal error: report serialization failed: {e}"))?;
    std::fs::write(path, &body).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path}");

    if let Some(base_path) = args.opt("baseline") {
        let text = std::fs::read_to_string(base_path).map_err(|e| format!("{base_path}: {e}"))?;
        let base: BenchReport = serde_json::from_str(&text)
            .map_err(|e| format!("{base_path}: not a bench report: {e}"))?;
        let deltas = report::compare(&base, &new).map_err(|e| format!("{base_path}: {e}"))?;
        println!("baseline comparison ({base_path}, gate {gate_pct}%):");
        println!(
            "  baseline calibration {:.1}ms, this run {:.1}ms",
            base.calibration_ms, new.calibration_ms
        );
        for d in &deltas {
            println!(
                "  {:<14} base {:>9.2}ms  new {:>9.2}ms  normalized delta {:>+7.1}%",
                d.id, d.base_ms, d.new_ms, d.delta_pct
            );
        }
        let bad = report::regressions(&deltas, gate_pct);
        if !bad.is_empty() {
            let list: Vec<String> = bad
                .iter()
                .map(|d| format!("{} ({:+.1}%)", d.id, d.delta_pct))
                .collect();
            return Err(format!(
                "perf regression above {gate_pct}%: {} \
                 (if intentional, regenerate the baseline with \
                 tools/update_bench_baseline.sh)",
                list.join(", ")
            ));
        }
        println!("  gate passed: no case regressed more than {gate_pct}%");
    }
    Ok(())
}
