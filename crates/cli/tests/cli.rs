//! CLI smoke tests: every subcommand drives the real binary.

use std::path::PathBuf;
use std::process::Command;

fn secreta() -> Command {
    Command::new(env!("CARGO_BIN_EXE_secreta"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secreta_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_dataset(dir: &std::path::Path) -> PathBuf {
    let data = dir.join("data.csv");
    let out = secreta()
        .args([
            "generate", "--kind", "adult", "--rows", "120", "--seed", "7", "--out",
        ])
        .arg(&data)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    data
}

#[test]
fn help_lists_commands() {
    let out = secreta().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["generate", "evaluate", "compare", "histogram", "policy"] {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_code() {
    let out = secreta().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn generate_info_histogram() {
    let dir = tmpdir("gih");
    let data = generate_dataset(&dir);

    let info = secreta()
        .arg("info")
        .arg(&data)
        .args(["--tx", "Items"])
        .output()
        .unwrap();
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("120 rows"));
    assert!(text.contains("item universe"));

    let hist = secreta()
        .arg("histogram")
        .arg(&data)
        .args(["--tx", "Items", "--attr", "Education", "--top", "5"])
        .output()
        .unwrap();
    assert!(hist.status.success());
    assert!(String::from_utf8_lossy(&hist.stdout).contains('█'));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hierarchy_workload_policy_files() {
    let dir = tmpdir("hwp");
    let data = generate_dataset(&dir);

    let hpath = dir.join("age.hier");
    let h = secreta()
        .arg("hierarchy")
        .arg(&data)
        .args(["--tx", "Items", "--attr", "Age", "--fanout", "3", "--out"])
        .arg(&hpath)
        .output()
        .unwrap();
    assert!(h.status.success(), "{}", String::from_utf8_lossy(&h.stderr));
    // one line per leaf; the file only interns ages present among the
    // 120 sampled rows, so expect a healthy subset of the 74-value
    // domain rather than all of it
    let content = std::fs::read_to_string(&hpath).unwrap();
    assert!(content.lines().count() >= 30, "one line per leaf");

    let wpath = dir.join("queries.txt");
    let w = secreta()
        .arg("workload")
        .arg(&data)
        .args(["--tx", "Items", "--queries", "10", "--out"])
        .arg(&wpath)
        .output()
        .unwrap();
    assert!(w.status.success());
    assert_eq!(std::fs::read_to_string(&wpath).unwrap().lines().count(), 10);

    let ppath = dir.join("privacy.txt");
    let p = secreta()
        .arg("policy")
        .arg(&data)
        .args(["--tx", "Items", "--privacy", "rare", "--out"])
        .arg(&ppath)
        .output()
        .unwrap();
    assert!(p.status.success(), "{}", String::from_utf8_lossy(&p.stderr));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_single_and_sweep() {
    let dir = tmpdir("eval");
    let data = generate_dataset(&dir);

    let single = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "cluster",
            "--k",
            "4",
            "--queries",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        single.status.success(),
        "{}",
        String::from_utf8_lossy(&single.stderr)
    );
    let text = String::from_utf8_lossy(&single.stdout);
    assert!(text.contains("verified=true"));
    assert!(text.contains("phases:"));

    let outdir = dir.join("plots");
    let sweep = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "bottomup",
            "--vary",
            "k",
            "--start",
            "2",
            "--end",
            "6",
            "--step",
            "2",
            "--queries",
            "10",
            "--ascii",
            "--out-dir",
        ])
        .arg(&outdir)
        .output()
        .unwrap();
    assert!(
        sweep.status.success(),
        "{}",
        String::from_utf8_lossy(&sweep.stderr)
    );
    assert!(outdir.join("evaluate_are.svg").exists());
    assert!(outdir.join("evaluate_gcp.csv").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_from_config_file() {
    let dir = tmpdir("cmp");
    let data = generate_dataset(&dir);
    let config = dir.join("configs.json");
    std::fs::write(
        &config,
        r#"[
          {"label":"cluster","spec":{"Relational":{"algo":"Cluster","k":0}},
           "sweep":{"param":"K","start":2,"end":6,"step":2},"seed":1},
          {"label":"incognito","spec":{"Relational":{"algo":"Incognito","k":0}},
           "sweep":{"param":"K","start":2,"end":6,"step":2},"seed":1}
        ]"#,
    )
    .unwrap();
    let out = secreta()
        .arg("compare")
        .arg(&data)
        .args(["--tx", "Items", "--queries", "10", "--config"])
        .arg(&config)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== cluster"));
    assert!(text.contains("== incognito"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn export_anonymized_dataset() {
    let dir = tmpdir("exp");
    let data = generate_dataset(&dir);
    let anon = dir.join("anon.csv");
    let out = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rt",
            "--rel-algo",
            "cluster",
            "--tx-algo",
            "apriori",
            "--bounding",
            "tmerge",
            "--k",
            "4",
            "--m",
            "1",
            "--delta",
            "2",
            "--export-anon",
        ])
        .arg(&anon)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&anon).unwrap();
    assert_eq!(text.lines().count(), 121, "header + 120 rows");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rho_uncertainty_mode() {
    let dir = tmpdir("rho");
    let data = generate_dataset(&dir);
    // find a real item label to protect
    let info = secreta()
        .arg("histogram")
        .arg(&data)
        .args(["--tx", "Items", "--attr", "Items", "--top", "1"])
        .output()
        .unwrap();
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    let item = text
        .lines()
        .nth(1)
        .and_then(|l| l.split_whitespace().next())
        .expect("top item printed")
        .to_owned();
    let out = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rho",
            "--rho",
            "0.2",
            "--sensitive",
            &item,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified=true"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edit_script_applies_and_exports() {
    let dir = tmpdir("edit");
    let data = generate_dataset(&dir);
    let script = dir.join("edits.json");
    std::fs::write(
        &script,
        r#"[
          {"RenameAttribute":{"attr":0,"name":"Years"}},
          {"SetValue":{"row":0,"attr":0,"value":"99"}},
          {"DeleteRow":{"row":1}}
        ]"#,
    )
    .unwrap();
    let out_path = dir.join("edited.csv");
    let out = secreta()
        .arg("edit")
        .arg(&data)
        .args(["--tx", "Items", "--script"])
        .arg(&script)
        .arg("--out")
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).unwrap();
    assert!(text.starts_with("Years,"));
    assert_eq!(text.lines().count(), 120, "header + 119 rows after delete");
    assert!(text.lines().nth(1).unwrap().starts_with("99,"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn profile_table_and_trace_agree() {
    let dir = tmpdir("prof");
    let data = generate_dataset(&dir);
    let trace = dir.join("trace.ndjson");
    let out = secreta()
        .arg("profile")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "cluster",
            "--k",
            "4",
            "--queries",
            "10",
            "--trace-out",
        ])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("profile:"));
    assert!(text.contains("clustering"), "span rows printed");
    assert!(text.contains("cluster/ncp_evals"), "counter rows printed");

    // the NDJSON trace must be internally consistent: the run record's
    // total equals the sum of the root span durations, and its span /
    // counter tallies match the record counts
    let ndjson = std::fs::read_to_string(&trace).unwrap();
    let mut root_span_us: u64 = 0;
    let mut root_spans = 0u64;
    let mut spans = 0u64;
    let mut counters = 0u64;
    let mut run_total: Option<(u64, u64, u64)> = None;
    let field = |line: &str, key: &str| -> Option<u64> {
        let pat = format!("\"{key}\":");
        let rest = &line[line.find(&pat)? + pat.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        digits.parse().ok()
    };
    for line in ndjson.lines() {
        if line.contains("\"ev\":\"span\"") {
            spans += 1;
            if !line.contains('/') {
                root_spans += 1;
                root_span_us += field(line, "dur_us").expect("span has dur_us");
            }
        } else if line.contains("\"ev\":\"counter\"") {
            counters += 1;
        } else if line.contains("\"ev\":\"run\"") {
            run_total = Some((
                field(line, "total_us").expect("run has total_us"),
                field(line, "spans").expect("run has spans"),
                field(line, "counters").expect("run has counters"),
            ));
        }
    }
    let (total_us, n_spans, n_counters) = run_total.expect("trace ends with a run record");
    // per-span dur_us truncates each duration to whole microseconds
    // while total_us truncates their exact sum, so the totals may
    // differ by up to one microsecond per root span
    assert!(
        total_us >= root_span_us && total_us - root_span_us < root_spans.max(1),
        "run total {total_us}µs vs root span sum {root_span_us}µs over {root_spans} spans"
    );
    assert_eq!(n_spans, spans, "span record count");
    assert_eq!(n_counters, counters, "counter record count");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stored_profile_survives_runs_show_and_phase_chart() {
    let dir = tmpdir("sprof");
    let data = generate_dataset(&dir);
    let store = dir.join("store");
    let trace = dir.join("trace.ndjson");
    let eval = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "cluster",
            "--k",
            "4",
            "--queries",
            "10",
            "--store-dir",
        ])
        .arg(&store)
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        eval.status.success(),
        "{}",
        String::from_utf8_lossy(&eval.stderr)
    );

    let list = secreta()
        .args(["runs", "list", "--store-dir"])
        .arg(&store)
        .output()
        .unwrap();
    assert!(list.status.success());
    let key = String::from_utf8_lossy(&list.stdout)
        .lines()
        .nth(1)
        .and_then(|l| l.split_whitespace().next())
        .expect("one stored run")
        .to_owned();

    let show = secreta()
        .args(["runs", "show", &key, "--store-dir"])
        .arg(&store)
        .output()
        .unwrap();
    assert!(
        show.status.success(),
        "{}",
        String::from_utf8_lossy(&show.stderr)
    );
    let text = String::from_utf8_lossy(&show.stdout);
    assert!(text.contains("profile:"), "show prints the stored profile");
    assert!(text.contains("cluster/ncp_evals"), "counters persisted");

    let chart = secreta()
        .args([
            "runs",
            "chart",
            "--indicator",
            "phases",
            "--ascii",
            "--store-dir",
        ])
        .arg(&store)
        .output()
        .unwrap();
    assert!(
        chart.status.success(),
        "{}",
        String::from_utf8_lossy(&chart.stderr)
    );
    let text = String::from_utf8_lossy(&chart.stdout);
    assert!(text.contains("Runtime phases"));
    assert!(text.contains("clustering"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Every manifest file under the store's `runs/` tree.
fn manifests_in(store: &std::path::Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![store.join("runs")];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in rd.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().and_then(|n| n.to_str()) == Some("manifest.json") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

/// The full failure lifecycle through the binary: an injected panic
/// degrades a sweep (exit 3) without aborting it, the failure is
/// journaled and listed, fsck finds and quarantines a corrupt entry,
/// and a fault-free `runs resume` re-executes only the damaged points
/// and converges to a clean store (exit 0).
#[test]
fn chaos_degraded_sweep_fsck_and_resume() {
    let dir = tmpdir("chaos");
    let data = generate_dataset(&dir);
    let store = dir.join("store");
    let sweep_args = [
        "--tx",
        "Items",
        "--mode",
        "rel",
        "--rel-algo",
        "cluster",
        "--vary",
        "k",
        "--start",
        "2",
        "--end",
        "6",
        "--step",
        "2",
        "--queries",
        "10",
        "--threads",
        "2",
        "--store-dir",
    ];

    // one injected panic in the Cluster family: the sweep must finish
    // degraded, not die
    let degraded = secreta()
        .arg("evaluate")
        .arg(&data)
        .args(sweep_args)
        .arg(&store)
        .env("SECRETA_FAULTS", "seed=1;panic@run:Cluster*=1x1")
        .output()
        .unwrap();
    assert_eq!(
        degraded.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&degraded.stdout),
        String::from_utf8_lossy(&degraded.stderr)
    );
    let text = String::from_utf8_lossy(&degraded.stdout);
    assert!(text.contains("1 failures"), "cache stats count the panic");
    assert!(text.contains("completed degraded"), "degraded is announced");
    assert!(
        text.contains("injected fault:"),
        "the error names its cause"
    );

    // the journal keeps the failure on record
    let list = secreta()
        .args(["runs", "list", "--store-dir"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(list.status.code(), Some(0));
    let text = String::from_utf8_lossy(&list.stdout);
    assert!(text.contains("open or degraded sweeps"));
    assert!(text.contains("failed:"), "failed jobs listed: {text}");

    // corrupt one stored manifest on disk
    let victims = manifests_in(&store);
    assert!(!victims.is_empty(), "the degraded sweep stored something");
    std::fs::write(&victims[0], "not json {").unwrap();

    // fsck reports it (exit 3) without touching the store...
    let fsck = secreta()
        .args(["runs", "fsck", "--store-dir"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(fsck.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&fsck.stdout).contains("corrupt"));

    // ...and --repair quarantines it (exit 0)
    let repair = secreta()
        .args(["runs", "fsck", "--repair", "--store-dir"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(
        repair.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&repair.stdout)
    );
    assert!(
        store.join("quarantine").is_dir(),
        "corrupt entry moved aside, not destroyed"
    );

    // a fault-free resume re-executes only the failed and quarantined
    // points and leaves the sweep clean
    let resume = secreta()
        .args(["runs", "resume", "--store-dir"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(
        resume.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&resume.stdout),
        String::from_utf8_lossy(&resume.stderr)
    );
    let text = String::from_utf8_lossy(&resume.stdout);
    assert!(
        text.contains("2 executed, 0 failed"),
        "resume output: {text}"
    );

    // the same sweep now replays entirely from the store, exit 0
    let warm = secreta()
        .arg("evaluate")
        .arg(&data)
        .args(sweep_args)
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(warm.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&warm.stdout).contains("cache: 3 hits, 0 misses"),
        "{}",
        String::from_utf8_lossy(&warm.stdout)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exit_codes_follow_failure_severity() {
    let dir = tmpdir("codes");
    let data = generate_dataset(&dir);

    // usage errors exit 2
    let usage = secreta().args(["evaluate", "--k"]).output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
    let bad_plan = secreta()
        .arg("help")
        .env("SECRETA_FAULTS", "nonsense")
        .output()
        .unwrap();
    assert_eq!(bad_plan.status.code(), Some(2));

    // a failing single run (no sweep to degrade) stays fatal: exit 1
    let fatal = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "incognito",
            "--k",
            "1000000",
        ])
        .output()
        .unwrap();
    assert_eq!(fatal.status.code(), Some(1));

    // a timed-out job in a sweep degrades instead: exit 3
    let timeout = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "cluster",
            "--vary",
            "k",
            "--start",
            "2",
            "--end",
            "4",
            "--step",
            "2",
            "--job-timeout-ms",
            "0",
        ])
        .output()
        .unwrap();
    assert_eq!(
        timeout.status.code(),
        Some(3),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&timeout.stdout),
        String::from_utf8_lossy(&timeout.stderr)
    );
    assert!(
        String::from_utf8_lossy(&timeout.stdout).contains("deadline"),
        "timeout errors name the deadline"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Benchmarks measure the real code paths, so an active fault plan
/// must make every suite refuse outright instead of timing corrupted
/// runs.
#[test]
fn bench_refuses_active_fault_plan() {
    for suite_args in [
        &["bench", "--suite", "tx", "--rows", "50"][..],
        &["bench", "--all", "--rows", "50"][..],
    ] {
        let out = secreta()
            .args(suite_args)
            .env("SECRETA_FAULTS", "seed=1")
            .current_dir(std::env::temp_dir())
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "suite {suite_args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("SECRETA_FAULTS") && err.contains("refusing"),
            "error must name the cause: {err}"
        );
    }
}

/// The tiered suite must report byte-identical outputs between the
/// CSR and tiered kernels at a size where both tiers are exercised.
#[test]
fn bench_tiered_outputs_identical() {
    let dir = tmpdir("btier");
    let out_path = dir.join("bench5.json");
    let out = secreta()
        .args([
            "bench", "--suite", "tiered", "--rows", "150", "--json", "--out",
        ])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&out_path).unwrap();
    assert!(report.contains("\"suite\": \"tx-tiered\""));
    assert_eq!(report.matches("\"outputs_identical\": true").count(), 7);
    assert!(!report.contains("\"outputs_identical\": false"));
    std::fs::remove_dir_all(&dir).ok();
}

/// `bench --all` end to end: the report is schema-versioned JSON, a
/// self-comparison passes the gate, and a synthetic slowdown
/// (`SECRETA_BENCH_HANDICAP`) trips it. Generous `--gate-pct`
/// margins keep scheduler noise at tiny row counts from flaking the
/// pass leg; the 4x handicap (+300%) clears the same margin with
/// room to spare.
#[test]
fn bench_all_gate_passes_self_and_fails_handicap() {
    let dir = tmpdir("ballgate");
    let base = dir.join("base.json");
    let run = |extra_env: Option<(&str, &str)>, baseline: bool, out_name: &str| {
        let mut cmd = secreta();
        cmd.args([
            "bench",
            "--all",
            "--rows",
            "200",
            "--reps",
            "2",
            "--threads",
            "2",
            "--out",
        ])
        .arg(dir.join(out_name));
        if baseline {
            cmd.args(["--baseline"])
                .arg(&base)
                .args(["--gate-pct", "100"]);
        }
        if let Some((k, v)) = extra_env {
            cmd.env(k, v);
        }
        cmd.output().unwrap()
    };

    let first = run(None, false, "base.json");
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let report = std::fs::read_to_string(&base).unwrap();
    for key in [
        "schema_version",
        "calibration_ms",
        "machine",
        "tx/coat",
        "metrics/gcp",
    ] {
        assert!(report.contains(key), "report must carry {key}: {report}");
    }

    let selfcmp = run(None, true, "self.json");
    assert!(
        selfcmp.status.success(),
        "self-comparison must pass the gate: {}\n{}",
        String::from_utf8_lossy(&selfcmp.stdout),
        String::from_utf8_lossy(&selfcmp.stderr)
    );
    assert!(
        String::from_utf8_lossy(&selfcmp.stdout).contains("gate passed"),
        "{}",
        String::from_utf8_lossy(&selfcmp.stdout)
    );

    let handicapped = run(Some(("SECRETA_BENCH_HANDICAP", "4")), true, "slow.json");
    assert_eq!(
        handicapped.status.code(),
        Some(1),
        "a 4x slowdown must fail the gate: {}",
        String::from_utf8_lossy(&handicapped.stdout)
    );
    let err = String::from_utf8_lossy(&handicapped.stderr);
    assert!(
        err.contains("perf regression") && err.contains("update_bench_baseline"),
        "the failure names the remedy: {err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_file_drives_evaluate() {
    let dir = tmpdir("sess");
    generate_dataset(&dir);
    let session = dir.join("session.json");
    std::fs::write(
        &session,
        r#"{"dataset":"data.csv","transaction_column":"Items","fanout":3}"#,
    )
    .unwrap();

    let show = secreta().arg("session").arg(&session).output().unwrap();
    assert!(
        show.status.success(),
        "{}",
        String::from_utf8_lossy(&show.stderr)
    );
    assert!(String::from_utf8_lossy(&show.stdout).contains("120 rows"));

    let eval = secreta()
        .arg("evaluate")
        .args(["--session"])
        .arg(&session)
        .args([
            "--mode",
            "rel",
            "--rel-algo",
            "cluster",
            "--k",
            "4",
            "--queries",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        eval.status.success(),
        "{}",
        String::from_utf8_lossy(&eval.stderr)
    );
    assert!(String::from_utf8_lossy(&eval.stdout).contains("verified=true"));
    std::fs::remove_dir_all(&dir).ok();
}
