//! CLI smoke tests: every subcommand drives the real binary.

use std::path::PathBuf;
use std::process::Command;

fn secreta() -> Command {
    Command::new(env!("CARGO_BIN_EXE_secreta"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secreta_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_dataset(dir: &std::path::Path) -> PathBuf {
    let data = dir.join("data.csv");
    let out = secreta()
        .args([
            "generate", "--kind", "adult", "--rows", "120", "--seed", "7", "--out",
        ])
        .arg(&data)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    data
}

#[test]
fn help_lists_commands() {
    let out = secreta().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in ["generate", "evaluate", "compare", "histogram", "policy"] {
        assert!(text.contains(cmd), "help must mention {cmd}");
    }
}

#[test]
fn unknown_command_fails_with_code() {
    let out = secreta().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn generate_info_histogram() {
    let dir = tmpdir("gih");
    let data = generate_dataset(&dir);

    let info = secreta()
        .arg("info")
        .arg(&data)
        .args(["--tx", "Items"])
        .output()
        .unwrap();
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("120 rows"));
    assert!(text.contains("item universe"));

    let hist = secreta()
        .arg("histogram")
        .arg(&data)
        .args(["--tx", "Items", "--attr", "Education", "--top", "5"])
        .output()
        .unwrap();
    assert!(hist.status.success());
    assert!(String::from_utf8_lossy(&hist.stdout).contains('█'));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hierarchy_workload_policy_files() {
    let dir = tmpdir("hwp");
    let data = generate_dataset(&dir);

    let hpath = dir.join("age.hier");
    let h = secreta()
        .arg("hierarchy")
        .arg(&data)
        .args(["--tx", "Items", "--attr", "Age", "--fanout", "3", "--out"])
        .arg(&hpath)
        .output()
        .unwrap();
    assert!(h.status.success(), "{}", String::from_utf8_lossy(&h.stderr));
    // one line per leaf; the file only interns ages present among the
    // 120 sampled rows, so expect a healthy subset of the 74-value
    // domain rather than all of it
    let content = std::fs::read_to_string(&hpath).unwrap();
    assert!(content.lines().count() >= 30, "one line per leaf");

    let wpath = dir.join("queries.txt");
    let w = secreta()
        .arg("workload")
        .arg(&data)
        .args(["--tx", "Items", "--queries", "10", "--out"])
        .arg(&wpath)
        .output()
        .unwrap();
    assert!(w.status.success());
    assert_eq!(std::fs::read_to_string(&wpath).unwrap().lines().count(), 10);

    let ppath = dir.join("privacy.txt");
    let p = secreta()
        .arg("policy")
        .arg(&data)
        .args(["--tx", "Items", "--privacy", "rare", "--out"])
        .arg(&ppath)
        .output()
        .unwrap();
    assert!(p.status.success(), "{}", String::from_utf8_lossy(&p.stderr));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn evaluate_single_and_sweep() {
    let dir = tmpdir("eval");
    let data = generate_dataset(&dir);

    let single = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "cluster",
            "--k",
            "4",
            "--queries",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        single.status.success(),
        "{}",
        String::from_utf8_lossy(&single.stderr)
    );
    let text = String::from_utf8_lossy(&single.stdout);
    assert!(text.contains("verified=true"));
    assert!(text.contains("phases:"));

    let outdir = dir.join("plots");
    let sweep = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "bottomup",
            "--vary",
            "k",
            "--start",
            "2",
            "--end",
            "6",
            "--step",
            "2",
            "--queries",
            "10",
            "--ascii",
            "--out-dir",
        ])
        .arg(&outdir)
        .output()
        .unwrap();
    assert!(
        sweep.status.success(),
        "{}",
        String::from_utf8_lossy(&sweep.stderr)
    );
    assert!(outdir.join("evaluate_are.svg").exists());
    assert!(outdir.join("evaluate_gcp.csv").exists());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_from_config_file() {
    let dir = tmpdir("cmp");
    let data = generate_dataset(&dir);
    let config = dir.join("configs.json");
    std::fs::write(
        &config,
        r#"[
          {"label":"cluster","spec":{"Relational":{"algo":"Cluster","k":0}},
           "sweep":{"param":"K","start":2,"end":6,"step":2},"seed":1},
          {"label":"incognito","spec":{"Relational":{"algo":"Incognito","k":0}},
           "sweep":{"param":"K","start":2,"end":6,"step":2},"seed":1}
        ]"#,
    )
    .unwrap();
    let out = secreta()
        .arg("compare")
        .arg(&data)
        .args(["--tx", "Items", "--queries", "10", "--config"])
        .arg(&config)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== cluster"));
    assert!(text.contains("== incognito"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn export_anonymized_dataset() {
    let dir = tmpdir("exp");
    let data = generate_dataset(&dir);
    let anon = dir.join("anon.csv");
    let out = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rt",
            "--rel-algo",
            "cluster",
            "--tx-algo",
            "apriori",
            "--bounding",
            "tmerge",
            "--k",
            "4",
            "--m",
            "1",
            "--delta",
            "2",
            "--export-anon",
        ])
        .arg(&anon)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&anon).unwrap();
    assert_eq!(text.lines().count(), 121, "header + 120 rows");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rho_uncertainty_mode() {
    let dir = tmpdir("rho");
    let data = generate_dataset(&dir);
    // find a real item label to protect
    let info = secreta()
        .arg("histogram")
        .arg(&data)
        .args(["--tx", "Items", "--attr", "Items", "--top", "1"])
        .output()
        .unwrap();
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    let item = text
        .lines()
        .nth(1)
        .and_then(|l| l.split_whitespace().next())
        .expect("top item printed")
        .to_owned();
    let out = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rho",
            "--rho",
            "0.2",
            "--sensitive",
            &item,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified=true"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edit_script_applies_and_exports() {
    let dir = tmpdir("edit");
    let data = generate_dataset(&dir);
    let script = dir.join("edits.json");
    std::fs::write(
        &script,
        r#"[
          {"RenameAttribute":{"attr":0,"name":"Years"}},
          {"SetValue":{"row":0,"attr":0,"value":"99"}},
          {"DeleteRow":{"row":1}}
        ]"#,
    )
    .unwrap();
    let out_path = dir.join("edited.csv");
    let out = secreta()
        .arg("edit")
        .arg(&data)
        .args(["--tx", "Items", "--script"])
        .arg(&script)
        .arg("--out")
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&out_path).unwrap();
    assert!(text.starts_with("Years,"));
    assert_eq!(text.lines().count(), 120, "header + 119 rows after delete");
    assert!(text.lines().nth(1).unwrap().starts_with("99,"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_file_drives_evaluate() {
    let dir = tmpdir("sess");
    generate_dataset(&dir);
    let session = dir.join("session.json");
    std::fs::write(
        &session,
        r#"{"dataset":"data.csv","transaction_column":"Items","fanout":3}"#,
    )
    .unwrap();

    let show = secreta().arg("session").arg(&session).output().unwrap();
    assert!(
        show.status.success(),
        "{}",
        String::from_utf8_lossy(&show.stderr)
    );
    assert!(String::from_utf8_lossy(&show.stdout).contains("120 rows"));

    let eval = secreta()
        .arg("evaluate")
        .args(["--session"])
        .arg(&session)
        .args([
            "--mode",
            "rel",
            "--rel-algo",
            "cluster",
            "--k",
            "4",
            "--queries",
            "10",
        ])
        .output()
        .unwrap();
    assert!(
        eval.status.success(),
        "{}",
        String::from_utf8_lossy(&eval.stderr)
    );
    assert!(String::from_utf8_lossy(&eval.stdout).contains("verified=true"));
    std::fs::remove_dir_all(&dir).ok();
}
