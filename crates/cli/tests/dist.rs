//! Process-level chaos tests of distributed sweep execution: real
//! coordinator and worker processes, real `kill -9`-equivalent crashes
//! injected through `SECRETA_FAULTS`, byte-identical convergence
//! asserted against a plain single-process run of the same experiment.

use std::path::{Path, PathBuf};
use std::process::Command;

fn secreta() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_secreta"));
    // never let an ambient fault plan leak into the control runs
    cmd.env_remove("SECRETA_FAULTS");
    cmd
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("secreta_dist_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_dataset(dir: &Path) -> PathBuf {
    let data = dir.join("data.csv");
    let out = secreta()
        .args([
            "generate", "--kind", "adult", "--rows", "120", "--seed", "7", "--out",
        ])
        .arg(&data)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    data
}

/// The session flags every participant (solo run, coordinator,
/// workers) must share so the context digests agree.
const SESSION: &[&str] = &["--tx", "Items", "--queries", "10", "--seed", "5"];

/// The experiment flags only the coordinator/solo run needs.
const EXPERIMENT: &[&str] = &[
    "--mode",
    "rel",
    "--rel-algo",
    "cluster",
    "--k",
    "2",
    "--vary",
    "k",
    "--start",
    "2",
    "--end",
    "6",
    "--step",
    "2",
];

/// Every stored anonymization, keyed by run key, as raw bytes.
fn anon_bytes(store: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let runs = store.join("runs");
    for shard in std::fs::read_dir(&runs).unwrap() {
        for run in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            let run = run.unwrap();
            out.push((
                run.file_name().to_string_lossy().into_owned(),
                std::fs::read(run.path().join("anon.json")).unwrap(),
            ));
        }
    }
    out.sort();
    assert!(!out.is_empty(), "no runs stored under {}", runs.display());
    out
}

fn run_solo(data: &Path, store: &Path) {
    let out = secreta()
        .arg("evaluate")
        .arg(data)
        .args(SESSION)
        .args(EXPERIMENT)
        .arg("--store-dir")
        .arg(store)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "solo run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The ISSUE's headline scenario: a coordinator publishes a 3-point
/// sweep, three externally attached workers execute it, and two of
/// them are kill -9'd (SIGABRT via the fault plan's `crash@`, which
/// skips every destructor — leases stay behind) right after claiming a
/// job. The surviving worker reclaims the dead workers' leases and the
/// merged sweep must be byte-identical to the single-process run.
#[test]
fn two_of_three_workers_killed_converges_byte_identical() {
    let dir = tmpdir("chaos");
    let data = generate_dataset(&dir);
    let solo_store = dir.join("solo");
    run_solo(&data, &solo_store);

    let store = dir.join("dist");
    // attach-mode coordinator: publish jobs and wait for workers
    let mut coordinator = secreta()
        .arg("evaluate")
        .arg(&data)
        .args(SESSION)
        .args(EXPERIMENT)
        .arg("--store-dir")
        .arg(&store)
        .args(["--distributed", "--lease-ttl-ms", "1000"])
        .spawn()
        .unwrap();

    // two workers that abort right after claiming their first job...
    let mut doomed = Vec::new();
    for i in 0..2 {
        doomed.push(
            secreta()
                .arg("worker")
                .arg(&data)
                .args(SESSION)
                .arg("--store-dir")
                .arg(&store)
                .args(["--lease-ttl-ms", "1000"])
                .env(
                    "SECRETA_FAULTS",
                    format!("seed={i};crash@worker.claimed=1x1"),
                )
                .spawn()
                .unwrap(),
        );
    }
    // each doomed worker scans until it wins a claim, then aborts with
    // its lease still on disk — wait for both corpses before attaching
    // the survivor, so the recovery path genuinely runs
    for child in &mut doomed {
        let status = child.wait().unwrap();
        assert!(!status.success(), "doomed workers must die by the plan");
    }
    // ...and one healthy worker that inherits their abandoned jobs
    let mut survivor = secreta()
        .arg("worker")
        .arg(&data)
        .args(SESSION)
        .arg("--store-dir")
        .arg(&store)
        .args(["--lease-ttl-ms", "1000"])
        .spawn()
        .unwrap();
    let survivor_status = survivor.wait().unwrap();
    assert!(survivor_status.success(), "the healthy worker finishes");
    let coord_status = coordinator.wait().unwrap();
    assert_eq!(
        coord_status.code(),
        Some(0),
        "every job was recovered, so the sweep must not degrade"
    );

    assert_eq!(
        anon_bytes(&solo_store),
        anon_bytes(&store),
        "distributed convergence must be byte-identical to the solo run"
    );
    assert!(!store.join("jobs").exists(), "job records cleaned up");
    assert!(!store.join("leases").exists(), "leases cleaned up");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Permanent degradation: the coordinator spawns its own workers, the
/// fault plan kills every one of them on their first claim, and no
/// replacement ever attaches. The sweep must exit 3 (degraded) instead
/// of hanging, and `runs resume` — without the fault plan — must
/// re-execute only the lost jobs and restore byte-identity.
#[test]
fn all_workers_killed_degrades_then_resume_recovers() {
    let dir = tmpdir("degraded");
    let data = generate_dataset(&dir);
    let solo_store = dir.join("solo");
    run_solo(&data, &solo_store);

    let store = dir.join("dist");
    let out = secreta()
        .arg("evaluate")
        .arg(&data)
        .args(SESSION)
        .args(EXPERIMENT)
        .arg("--store-dir")
        .arg(&store)
        .args(["--workers", "2", "--lease-ttl-ms", "500"])
        // spawned workers inherit the plan; the coordinator never
        // executes a `worker.*` site itself
        .env("SECRETA_FAULTS", "seed=9;crash@worker.claimed=1x1")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(3),
        "all workers dead must degrade, not hang: stdout={} stderr={}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("completed degraded"),
        "degradation must be announced: {stdout}"
    );

    let resume = secreta()
        .args(["runs", "resume", "--store-dir"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(
        resume.status.code(),
        Some(0),
        "resume re-executes the lost jobs: {}",
        String::from_utf8_lossy(&resume.stderr)
    );
    assert_eq!(
        anon_bytes(&solo_store),
        anon_bytes(&store),
        "after resume the store must match the solo run byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker with nothing to attach to gives up with a clear error
/// instead of hanging forever.
#[test]
fn worker_without_a_sweep_times_out_cleanly() {
    let dir = tmpdir("timeout");
    let data = generate_dataset(&dir);
    let out = secreta()
        .arg("worker")
        .arg(&data)
        .args(SESSION)
        .arg("--store-dir")
        .arg(dir.join("empty"))
        .args(["--wait-ms", "300"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no open sweep"),
        "expected a discovery timeout, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--workers` without `--vary` is a usage error, and distributed mode
/// without a store is impossible by construction.
#[test]
fn distributed_flags_are_validated() {
    let dir = tmpdir("validate");
    let data = generate_dataset(&dir);
    let no_vary = secreta()
        .arg("evaluate")
        .arg(&data)
        .args([
            "--tx",
            "Items",
            "--mode",
            "rel",
            "--rel-algo",
            "cluster",
            "--k",
            "2",
        ])
        .args(["--workers", "2", "--store-dir"])
        .arg(dir.join("s1"))
        .output()
        .unwrap();
    assert!(!no_vary.status.success());
    assert!(
        String::from_utf8_lossy(&no_vary.stderr).contains("--vary"),
        "must point at --vary"
    );

    let no_store = secreta()
        .arg("evaluate")
        .arg(&data)
        .args(SESSION)
        .args(EXPERIMENT)
        .args(["--workers", "2"])
        .output()
        .unwrap();
    assert!(!no_store.status.success());
    assert!(
        String::from_utf8_lossy(&no_store.stderr).contains("--store-dir"),
        "must point at --store-dir"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
