//! Deterministic fault injection for chaos-testing the SECRETA pipeline.
//!
//! The rest of the workspace calls the hook functions in [`fault`]
//! ([`fault::io`], [`fault::panic_point`], [`fault::delay`],
//! [`fault::crash_point`]) at interesting failure sites. When no plan is installed — the default — every hook is a
//! single relaxed atomic load and returns immediately, so shipping the hooks
//! in release builds costs nothing measurable.
//!
//! A plan is installed either programmatically ([`install`]) or from the
//! `SECRETA_FAULTS` environment variable ([`init_from_env`]). Plans are
//! described by a compact spec string:
//!
//! ```text
//! seed=42;io@store.put=1x1;panic@run:TOPDOWN=1x2;delay@*=0.1+5
//! ```
//!
//! Clauses are `;`-separated. `seed=N` seeds the deterministic firing
//! decisions; every other clause is `kind@site=prob[xMAX][+ms]` where
//!
//! * `kind` is one of `io`, `panic`, `delay`, `crash` (`crash` aborts
//!   the process like `kill -9` — destructors do not run);
//! * `site` names an injection point (e.g. `store.put`); a trailing `*`
//!   matches any site with that prefix, and a bare `*` matches everything;
//! * `prob` is the firing probability in `[0, 1]` (`1` fires on every
//!   eligible occurrence);
//! * `xMAX` caps the number of times the clause may fire (omit for
//!   unlimited);
//! * `+ms` is the sleep duration for `delay` clauses (default 1 ms).
//!
//! Firing is a pure function of the plan seed, the site name, and a
//! per-clause occurrence counter, so a given spec produces the same fault
//! sequence on every run — which is what lets chaos tests assert exact
//! degraded-mode behaviour and byte-identical recovery.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Environment variable read by [`init_from_env`].
pub const ENV_VAR: &str = "SECRETA_FAULTS";

/// The kind of fault a clause injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return a transient `std::io::Error` (kind `Interrupted`) from the site.
    Io,
    /// Panic at the site with a recognizable message.
    Panic,
    /// Sleep for the clause's duration at the site.
    Delay,
    /// Abort the whole process at the site (`std::process::abort`):
    /// the moral equivalent of `kill -9` — no unwinding, no `Drop`
    /// runs, locks and leases are left behind for reclaim. Used by the
    /// distributed-sweep chaos suite to kill workers mid-job.
    Crash,
}

/// One `kind@site=prob[xMAX][+ms]` clause of a fault plan.
#[derive(Debug)]
struct Clause {
    kind: FaultKind,
    /// Site pattern; `wildcard` means `site` is a prefix to match.
    site: String,
    wildcard: bool,
    /// Firing probability scaled to `0..=u32::MAX`.
    threshold: u32,
    /// Maximum number of firings (`u64::MAX` = unlimited).
    max_fires: u64,
    /// Sleep length for `Delay` clauses.
    sleep: Duration,
    /// How many times this clause has fired so far.
    fired: AtomicU64,
    /// Per-clause occurrence counter (eligible hits, fired or not).
    seen: AtomicU64,
}

impl Clause {
    fn matches(&self, site: &str) -> bool {
        if self.wildcard {
            site.starts_with(self.site.as_str())
        } else {
            site == self.site
        }
    }
}

/// A parsed, installable fault plan.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    clauses: Vec<Clause>,
}

/// Error produced when a fault-plan spec string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The clause that failed to parse.
    pub clause: String,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault clause `{}`: {}", self.clause, self.reason)
    }
}

impl std::error::Error for SpecError {}

fn err(clause: &str, reason: impl Into<String>) -> SpecError {
    SpecError {
        clause: clause.to_string(),
        reason: reason.into(),
    }
}

impl FaultPlan {
    /// Parse a plan from its spec string (see the crate docs for the grammar).
    pub fn from_spec(spec: &str) -> Result<FaultPlan, SpecError> {
        let mut seed = 0u64;
        let mut clauses = Vec::new();
        for raw in spec.split(';') {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            if let Some(v) = part.strip_prefix("seed=") {
                seed = v
                    .parse::<u64>()
                    .map_err(|_| err(part, "seed must be a non-negative integer"))?;
                continue;
            }
            let (head, tail) = part
                .split_once('=')
                .ok_or_else(|| err(part, "expected kind@site=prob"))?;
            let (kind_s, site_s) = head
                .split_once('@')
                .ok_or_else(|| err(part, "expected kind@site"))?;
            let kind = match kind_s {
                "io" => FaultKind::Io,
                "panic" => FaultKind::Panic,
                "delay" => FaultKind::Delay,
                "crash" => FaultKind::Crash,
                other => return Err(err(part, format!("unknown fault kind `{other}`"))),
            };
            if site_s.is_empty() {
                return Err(err(part, "empty site"));
            }
            let (site, wildcard) = match site_s.strip_suffix('*') {
                Some(prefix) => (prefix.to_string(), true),
                None => (site_s.to_string(), false),
            };
            // tail is prob[xMAX][+ms]; split the optional suffixes off first
            let (tail, sleep_ms) = match tail.split_once('+') {
                Some((rest, ms)) => (
                    rest,
                    ms.parse::<u64>()
                        .map_err(|_| err(part, "delay millis must be an integer"))?,
                ),
                None => (tail, 1),
            };
            let (prob_s, max_fires) = match tail.split_once('x') {
                Some((p, m)) => (
                    p,
                    m.parse::<u64>()
                        .map_err(|_| err(part, "xMAX must be an integer"))?,
                ),
                None => (tail, u64::MAX),
            };
            let prob = prob_s
                .parse::<f64>()
                .map_err(|_| err(part, "probability must be a number"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(err(part, "probability must be within [0, 1]"));
            }
            let threshold = if prob >= 1.0 {
                u32::MAX
            } else {
                (prob * u32::MAX as f64) as u32
            };
            clauses.push(Clause {
                kind,
                site,
                wildcard,
                threshold,
                max_fires,
                sleep: Duration::from_millis(sleep_ms),
                fired: AtomicU64::new(0),
                seen: AtomicU64::new(0),
            });
        }
        Ok(FaultPlan { seed, clauses })
    }

    /// Decide whether a clause that matched `site` fires on this occurrence.
    ///
    /// Deterministic: depends only on the plan seed, the site string, and the
    /// clause's occurrence counter.
    fn fires(&self, clause: &Clause, site: &str) -> bool {
        if clause.fired.load(Ordering::Relaxed) >= clause.max_fires {
            return false;
        }
        let occurrence = clause.seen.fetch_add(1, Ordering::Relaxed);
        let roll = splitmix(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(hash_str(site))
                .wrapping_add(occurrence),
        );
        if (roll >> 32) as u32 > clause.threshold {
            return false;
        }
        // Cap enforcement: only the first `max_fires` winners actually fire.
        clause.fired.fetch_add(1, Ordering::Relaxed) < clause.max_fires
    }

    fn first_match(&self, kind: FaultKind, site: &str) -> Option<&Clause> {
        self.clauses
            .iter()
            .find(|c| c.kind == kind && c.matches(site) && self.fires(c, site))
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a; stable across platforms and rust versions.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
    &SLOT
}

/// Install a fault plan process-wide. Replaces any previous plan.
pub fn install(plan: FaultPlan) {
    let mut slot = plan_slot().lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(Arc::new(plan));
    ACTIVE.store(true, Ordering::Release);
}

/// Remove the installed fault plan; all hooks become no-ops again.
pub fn clear() {
    let mut slot = plan_slot().lock().unwrap_or_else(|e| e.into_inner());
    *slot = None;
    ACTIVE.store(false, Ordering::Release);
}

/// Whether a fault plan is currently installed.
///
/// Callers can use this to skip building site strings (which may allocate)
/// before calling a hook.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Acquire)
}

/// Install a plan from the `SECRETA_FAULTS` environment variable, if set.
///
/// Returns an error if the variable is set but does not parse; returns
/// `Ok(false)` if it is unset or empty, `Ok(true)` if a plan was installed.
pub fn init_from_env() -> Result<bool, SpecError> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => {
            install(FaultPlan::from_spec(&spec)?);
            Ok(true)
        }
        _ => Ok(false),
    }
}

fn with_plan<R>(f: impl FnOnce(&FaultPlan) -> R) -> Option<R> {
    if !active() {
        return None;
    }
    let plan = {
        let slot = plan_slot().lock().unwrap_or_else(|e| e.into_inner());
        slot.clone()
    };
    plan.map(|p| f(&p))
}

/// The injection points called from the rest of the workspace.
pub mod fault {
    use super::*;

    /// Message prefix used by [`panic_point`] payloads, so handlers can tell
    /// injected panics from organic ones in test assertions.
    pub const PANIC_PREFIX: &str = "injected fault:";

    /// I/O injection point: returns a transient error (`ErrorKind::Interrupted`)
    /// if an `io@` clause fires for `site`, else `None`.
    #[inline]
    pub fn io(site: &str) -> Option<std::io::Error> {
        if !active() {
            return None;
        }
        io_slow(site)
    }

    fn io_slow(site: &str) -> Option<std::io::Error> {
        with_plan(|p| p.first_match(FaultKind::Io, site).is_some())
            .unwrap_or(false)
            .then(|| {
                std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("injected transient i/o fault at {site}"),
                )
            })
    }

    /// Panic injection point: panics with a recognizable message if a
    /// `panic@` clause fires for `site`.
    #[inline]
    pub fn panic_point(site: &str) {
        if !active() {
            return;
        }
        if with_plan(|p| p.first_match(FaultKind::Panic, site).is_some()).unwrap_or(false) {
            panic!("{PANIC_PREFIX} {site}");
        }
    }

    /// Crash injection point: aborts the process — as `kill -9`
    /// would, skipping every destructor — if a `crash@` clause fires
    /// for `site`. A one-line marker goes to stderr first so chaos
    /// harnesses can tell an injected kill from an organic abort.
    #[inline]
    pub fn crash_point(site: &str) {
        if !active() {
            return;
        }
        if with_plan(|p| p.first_match(FaultKind::Crash, site).is_some()).unwrap_or(false) {
            eprintln!("injected crash at {site}: aborting (simulated kill -9)");
            std::process::abort();
        }
    }

    /// Delay injection point: sleeps for the clause's duration if a
    /// `delay@` clause fires for `site`.
    #[inline]
    pub fn delay(site: &str) {
        if !active() {
            return;
        }
        if let Some(d) =
            with_plan(|p| p.first_match(FaultKind::Delay, site).map(|c| c.sleep)).flatten()
        {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-wide plan slot means tests that install plans must not run
    /// concurrently; a shared lock serialises them.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parses_full_grammar() {
        let p =
            FaultPlan::from_spec("seed=42;io@store.put=1x1;panic@run:TOPDOWN=0.5x2;delay@*=1+5")
                .unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.clauses.len(), 3);
        assert_eq!(p.clauses[0].kind, FaultKind::Io);
        assert_eq!(p.clauses[0].site, "store.put");
        assert!(!p.clauses[0].wildcard);
        assert_eq!(p.clauses[0].max_fires, 1);
        assert_eq!(p.clauses[1].kind, FaultKind::Panic);
        assert_eq!(p.clauses[1].max_fires, 2);
        assert_eq!(p.clauses[2].kind, FaultKind::Delay);
        assert!(p.clauses[2].wildcard);
        assert_eq!(p.clauses[2].site, "");
        assert_eq!(p.clauses[2].sleep, Duration::from_millis(5));
    }

    #[test]
    fn parses_crash_clauses() {
        let _g = serial();
        let p = FaultPlan::from_spec("seed=5;crash@worker.claimed=1x1").unwrap();
        assert_eq!(p.clauses.len(), 1);
        assert_eq!(p.clauses[0].kind, FaultKind::Crash);
        assert_eq!(p.clauses[0].max_fires, 1);
        // a non-matching site never consults the clause (the process
        // must obviously survive this test)
        install(p);
        fault::crash_point("somewhere.else");
        clear();
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "io@x",            // no probability
            "boom@x=1",        // unknown kind
            "io@=1",           // empty site
            "io@x=2",          // probability out of range
            "io@x=1xfoo",      // bad cap
            "seed=abc",        // bad seed
            "delay@x=1+zebra", // bad millis
        ] {
            assert!(FaultPlan::from_spec(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn inactive_hooks_are_noops() {
        let _g = serial();
        clear();
        assert!(!active());
        assert!(fault::io("store.put").is_none());
        fault::panic_point("anything");
        fault::delay("anything");
    }

    #[test]
    fn io_clause_fires_exactly_capped_times() {
        let _g = serial();
        install(FaultPlan::from_spec("seed=1;io@store.put=1x2").unwrap());
        let mut hits = 0;
        for _ in 0..10 {
            if fault::io("store.put").is_some() {
                hits += 1;
            }
        }
        clear();
        assert_eq!(hits, 2);
    }

    #[test]
    fn site_matching_is_exact_unless_wildcarded() {
        let _g = serial();
        install(FaultPlan::from_spec("io@store.put=1").unwrap());
        assert!(fault::io("store.put.extra").is_none());
        assert!(fault::io("store.put").is_some());
        clear();

        install(FaultPlan::from_spec("io@store.*=1").unwrap());
        assert!(fault::io("store.put").is_some());
        assert!(fault::io("journal.append").is_none());
        clear();
    }

    #[test]
    fn firing_sequence_is_deterministic() {
        let _g = serial();
        let run = || {
            install(FaultPlan::from_spec("seed=7;io@x=0.5").unwrap());
            let seq: Vec<bool> = (0..32).map(|_| fault::io("x").is_some()).collect();
            clear();
            seq
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        // Not degenerate: a 0.5 probability should both fire and skip.
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f));
    }

    #[test]
    fn panic_point_panics_with_prefix() {
        let _g = serial();
        install(FaultPlan::from_spec("panic@run:TOPDOWN=1x1").unwrap());
        let got = std::panic::catch_unwind(|| fault::panic_point("run:TOPDOWN"));
        clear();
        let payload = got.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with(fault::PANIC_PREFIX), "{msg}");
    }

    #[test]
    fn init_from_env_rejects_bad_spec() {
        let _g = serial();
        std::env::set_var(ENV_VAR, "nonsense");
        assert!(init_from_env().is_err());
        std::env::remove_var(ENV_VAR);
        assert!(!init_from_env().unwrap());
        clear();
    }
}
