//! Synthetic RT-dataset generation.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secreta_data::{
    Attribute, AttributeKind, ChunkedTable, DataError, ItemId, MemoryBudget, RtTable, Schema,
    ValueId,
};

/// One synthetic relational attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct RelAttrSpec {
    /// Attribute name.
    pub name: String,
    /// Categorical or numeric.
    pub kind: AttributeKind,
    /// Domain size. Numeric attributes take values `base..base+cardinality`.
    pub cardinality: usize,
    /// First numeric value (ignored for categorical attributes).
    pub base: i64,
    /// Zipf exponent of the value distribution (0 = uniform).
    pub skew: f64,
}

impl RelAttrSpec {
    /// Categorical attribute with `cardinality` values `name_0..`.
    pub fn categorical(name: impl Into<String>, cardinality: usize, skew: f64) -> Self {
        Self {
            name: name.into(),
            kind: AttributeKind::Categorical,
            cardinality,
            base: 0,
            skew,
        }
    }

    /// Numeric attribute over `base..base+cardinality`.
    pub fn numeric(name: impl Into<String>, base: i64, cardinality: usize, skew: f64) -> Self {
        Self {
            name: name.into(),
            kind: AttributeKind::Numeric,
            cardinality,
            base,
            skew,
        }
    }
}

/// Shape of the item-popularity distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemShape {
    /// Plain Zipf: a few very popular items carry most of the mass
    /// (the default, and what [`DatasetSpec::basket`] produces).
    Head,
    /// Adversarial heavy tail: half the draws fall uniformly in the
    /// rare half of the universe, so the published table carries many
    /// near-singleton items — the worst case for k^m-anonymity and the
    /// m-item adversary.
    Tail,
}

/// Specification of a synthetic RT-dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Number of records.
    pub n_rows: usize,
    /// Relational attributes (may be empty for transaction-only data).
    pub rel_attrs: Vec<RelAttrSpec>,
    /// Item universe size (0 for relational-only data).
    pub n_items: usize,
    /// Zipf exponent of item popularity (≈1.0–1.5 in market-basket
    /// data).
    pub item_skew: f64,
    /// Transaction length bounds (inclusive).
    pub tx_len: (usize, usize),
    /// Correlation in `[0,1]` between the first relational attribute
    /// and the items a record holds. 0 = independent; 1 = the item
    /// popularity ranking is fully rotated per demographic bucket, so
    /// different demographics prefer different items.
    pub correlation: f64,
    /// Number of latent purchase profiles (≤ 1 = homogeneous). Each
    /// record draws a profile; profiles prefer disjoint regions of the
    /// item universe, giving transactions the cluster structure real
    /// market-basket data exhibits (and that locality-exploiting
    /// algorithms like LRA rely on).
    pub profiles: usize,
    /// Correlation in `[0,1]` between the first relational attribute
    /// and every later one: with this probability a record's value for
    /// attribute `a > 0` is a fixed function of its first-attribute
    /// bucket instead of an independent draw. 0 (the default) keeps
    /// attributes independent — and, crucially, draws nothing extra
    /// from the RNG, so pre-existing specs generate byte-identical
    /// tables.
    pub qi_correlation: f64,
    /// Head (default) or adversarial heavy-tail item popularity.
    pub item_shape: ItemShape,
    /// Fraction of rows turned into outliers: an outlier's relational
    /// values and items are rank-inverted (most popular ↦ rarest), so
    /// it lands in tiny equivalence classes with rare items — the rows
    /// a re-identification attack singles out. 0 (default) draws
    /// nothing extra from the RNG.
    pub outlier_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// A census+basket RT-dataset echoing the shape of the Informs
    /// demographic data joined with purchase transactions: Age, plus
    /// Education/Marital/Occupation categoricals, and a Zipf item
    /// universe.
    pub fn adult_like(n_rows: usize, seed: u64) -> Self {
        DatasetSpec {
            n_rows,
            rel_attrs: vec![
                RelAttrSpec::numeric("Age", 17, 74, 0.3),
                RelAttrSpec::categorical("Education", 16, 0.8),
                RelAttrSpec::categorical("Marital", 7, 0.6),
                RelAttrSpec::categorical("Occupation", 14, 0.5),
            ],
            n_items: 200,
            item_skew: 1.1,
            tx_len: (2, 8),
            correlation: 0.3,
            profiles: 1,
            qi_correlation: 0.0,
            item_shape: ItemShape::Head,
            outlier_fraction: 0.0,
            seed,
        }
    }

    /// A transaction-only dataset (for the pure transaction
    /// algorithms).
    pub fn basket(n_rows: usize, n_items: usize, seed: u64) -> Self {
        DatasetSpec {
            n_rows,
            rel_attrs: Vec::new(),
            n_items,
            item_skew: 1.1,
            tx_len: (2, 10),
            correlation: 0.0,
            profiles: 1,
            qi_correlation: 0.0,
            item_shape: ItemShape::Head,
            outlier_fraction: 0.0,
            seed,
        }
    }

    /// A relational-only dataset (for the pure relational algorithms).
    pub fn census(n_rows: usize, seed: u64) -> Self {
        DatasetSpec {
            n_rows,
            rel_attrs: vec![
                RelAttrSpec::numeric("Age", 17, 74, 0.3),
                RelAttrSpec::categorical("Education", 16, 0.8),
                RelAttrSpec::categorical("Marital", 7, 0.6),
                RelAttrSpec::categorical("Occupation", 14, 0.5),
            ],
            n_items: 0,
            item_skew: 0.0,
            tx_len: (0, 0),
            correlation: 0.0,
            profiles: 1,
            qi_correlation: 0.0,
            item_shape: ItemShape::Head,
            outlier_fraction: 0.0,
            seed,
        }
    }

    /// An adversarial RT-dataset built to stress re-identification
    /// risk rather than flatter utility metrics: strongly correlated
    /// quasi-identifiers (one demographic bucket pins the rest, so the
    /// joint QI distribution is far from independent), a heavy-tail
    /// item distribution (many near-singleton items), and a sliver of
    /// rank-inverted outlier rows that land in tiny equivalence
    /// classes holding rare items.
    pub fn adversarial(n_rows: usize, seed: u64) -> Self {
        let mut spec = Self::adult_like(n_rows, seed);
        spec.qi_correlation = 0.6;
        spec.item_shape = ItemShape::Tail;
        spec.outlier_fraction = 0.05;
        spec
    }

    /// The schema this spec generates.
    fn build_schema(&self) -> Schema {
        let mut attributes: Vec<Attribute> = self
            .rel_attrs
            .iter()
            .map(|a| Attribute::new(a.name.clone(), a.kind))
            .collect();
        if self.n_items > 0 {
            attributes.push(Attribute::transaction("Items"));
        }
        Schema::new(attributes).expect("generated schema is valid")
    }

    /// Label of value `v` in `spec`'s domain.
    fn rel_label(spec: &RelAttrSpec, v: usize) -> String {
        match spec.kind {
            AttributeKind::Numeric => (spec.base + v as i64).to_string(),
            _ => format!("{}_{v:03}", spec.name),
        }
    }

    /// Generate the table.
    pub fn generate(&self) -> RtTable {
        let mut table = RtTable::new(self.build_schema());

        // Pre-intern full domains so hierarchies cover every value even
        // if sampling misses some.
        let mut rel_value_ids: Vec<Vec<ValueId>> = Vec::with_capacity(self.rel_attrs.len());
        for (idx, spec) in self.rel_attrs.iter().enumerate() {
            let mut ids = Vec::with_capacity(spec.cardinality);
            for v in 0..spec.cardinality {
                ids.push(
                    table
                        .intern_value(idx, &Self::rel_label(spec, v))
                        .expect("relational attr"),
                );
            }
            rel_value_ids.push(ids);
        }
        let mut item_ids: Vec<ItemId> = Vec::with_capacity(self.n_items);
        for i in 0..self.n_items {
            item_ids.push(
                table
                    .intern_item(&format!("item_{i:04}"))
                    .expect("tx attr present"),
            );
        }

        self.generate_rows(&rel_value_ids, &item_ids, |rel, tx| {
            table.push_row_ids(rel, tx)
        })
        .expect("generated row is valid");
        table
    }

    /// Generate the same table as [`DatasetSpec::generate`] through
    /// the chunked ingest path: rows stream into a [`ChunkedTable`] in
    /// `chunk_rows`-sized chunks, charged against `budget`. Both paths
    /// share one seeded row engine, so the result materializes
    /// ([`ChunkedTable::into_table`]) byte-identical to the in-memory
    /// table — which is what lets the scale benchmark compare ingest
    /// modes without sampling drift.
    pub fn generate_chunked(
        &self,
        chunk_rows: usize,
        budget: MemoryBudget,
    ) -> Result<ChunkedTable, DataError> {
        let mut table = ChunkedTable::new(self.build_schema(), chunk_rows, budget);

        let mut rel_value_ids: Vec<Vec<ValueId>> = Vec::with_capacity(self.rel_attrs.len());
        for (idx, spec) in self.rel_attrs.iter().enumerate() {
            let mut ids = Vec::with_capacity(spec.cardinality);
            for v in 0..spec.cardinality {
                ids.push(table.intern_value(idx, &Self::rel_label(spec, v))?);
            }
            rel_value_ids.push(ids);
        }
        let mut item_ids: Vec<ItemId> = Vec::with_capacity(self.n_items);
        for i in 0..self.n_items {
            item_ids.push(table.intern_item(&format!("item_{i:04}"))?);
        }

        self.generate_rows(&rel_value_ids, &item_ids, |rel, tx| {
            table.push_row_ids(rel, tx)
        })?;
        table.finish()?;
        Ok(table)
    }

    /// The seeded row engine shared by both generate paths: drives the
    /// RNG stream and hands each row's pre-interned ids to `push`.
    /// Keeping a single engine is what guarantees the two paths sample
    /// identical rows.
    fn generate_rows(
        &self,
        rel_value_ids: &[Vec<ValueId>],
        item_ids: &[ItemId],
        mut push: impl FnMut(&[ValueId], &[ItemId]) -> Result<(), DataError>,
    ) -> Result<(), DataError> {
        let has_tx = self.n_items > 0;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rel_samplers: Vec<Zipf> = self
            .rel_attrs
            .iter()
            .map(|a| Zipf::new(a.cardinality.max(1), a.skew))
            .collect();
        let item_sampler = if has_tx {
            Some(Zipf::new(self.n_items, self.item_skew))
        } else {
            None
        };

        let mut rel_buf: Vec<ValueId> = Vec::with_capacity(self.rel_attrs.len());
        let mut tx_buf: Vec<ItemId> = Vec::new();
        for _ in 0..self.n_rows {
            // every adversarial knob draws from the RNG only when
            // enabled, so the default specs keep generating
            // byte-identical tables
            let outlier = self.outlier_fraction > 0.0 && rng.gen_bool(self.outlier_fraction);
            rel_buf.clear();
            for (a, sampler) in rel_samplers.iter().enumerate() {
                let mut rank = sampler.sample(&mut rng);
                let cardinality = self.rel_attrs[a].cardinality.max(1);
                if a > 0 && self.qi_correlation > 0.0 && rng.gen_bool(self.qi_correlation) {
                    // correlated QI: a fixed per-attribute function of
                    // the first attribute's bucket
                    let bucket = rel_buf[0].0 as usize;
                    rank = (bucket * (7 * a + 3)) % cardinality;
                }
                if outlier {
                    // rank inversion: most popular value ↦ rarest
                    rank = cardinality - 1 - (rank % cardinality);
                }
                rel_buf.push(rel_value_ids[a][rank]);
            }
            tx_buf.clear();
            if let Some(sampler) = &item_sampler {
                let (lo, hi) = self.tx_len;
                let len = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                // Correlated rotation: each bucket of the first
                // relational attribute shifts the popularity ranking,
                // so demographics prefer different items.
                let mut rotate = if self.correlation > 0.0 && !rel_buf.is_empty() {
                    let bucket = rel_buf[0].0 as usize;
                    let span = (self.n_items as f64 * self.correlation) as usize;
                    (bucket * 31) % span.max(1)
                } else {
                    0
                };
                // latent purchase profile: shift preferences into a
                // profile-specific region of the item universe
                if self.profiles > 1 {
                    let profile = rng.gen_range(0..self.profiles);
                    rotate += profile * (self.n_items / self.profiles).max(1);
                }
                for _ in 0..len {
                    let rank = sampler.sample(&mut rng);
                    let mut idx = (rank + rotate) % self.n_items;
                    if self.item_shape == ItemShape::Tail && rng.gen_bool(0.5) {
                        // heavy tail: uniform over the rare half of
                        // the universe
                        let half = self.n_items / 2;
                        idx = half + rng.gen_range(0..(self.n_items - half).max(1));
                        idx %= self.n_items;
                    }
                    if outlier {
                        idx = self.n_items - 1 - idx;
                    }
                    tx_buf.push(item_ids[idx]);
                }
            }
            push(&rel_buf, &tx_buf)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::stats::item_supports;

    fn csv_of(table: &RtTable) -> String {
        let mut buf = Vec::new();
        secreta_data::csv::write_table(table, &mut buf, &secreta_data::CsvOptions::default())
            .unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn chunked_generation_is_byte_identical() {
        // the adversarial spec exercises every RNG-drawing knob
        for spec in [
            DatasetSpec::adult_like(300, 7),
            DatasetSpec::census(200, 7),
            DatasetSpec::adversarial(300, 7),
        ] {
            let reference = csv_of(&spec.generate());
            for chunk_rows in [1, 64, 1024] {
                let chunked = spec
                    .generate_chunked(chunk_rows, MemoryBudget::unlimited())
                    .unwrap()
                    .into_table()
                    .unwrap();
                assert_eq!(csv_of(&chunked), reference, "chunk_rows={chunk_rows}");
            }
        }
    }

    #[test]
    fn chunked_generation_respects_budget() {
        let spec = DatasetSpec::adult_like(5_000, 3);
        let err = spec
            .generate_chunked(64, MemoryBudget::bytes(10_000))
            .expect_err("10 kB cannot hold 5k rows");
        assert!(matches!(err, DataError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn adult_like_shape() {
        let t = DatasetSpec::adult_like(500, 1).generate();
        assert_eq!(t.n_rows(), 500);
        assert!(t.schema().is_rt());
        assert_eq!(t.schema().relational_indices().len(), 4);
        assert_eq!(t.domain_size(0), 74);
        assert_eq!(t.item_universe(), 200);
        // transaction lengths within bounds (dedup may shorten)
        for r in 0..t.n_rows() {
            assert!(t.transaction(r).len() <= 8);
            assert!(!t.transaction(r).is_empty());
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = DatasetSpec::adult_like(200, 7).generate();
        let b = DatasetSpec::adult_like(200, 7).generate();
        for r in 0..200 {
            assert_eq!(a.value(r, 0), b.value(r, 0));
            assert_eq!(a.transaction(r), b.transaction(r));
        }
        let c = DatasetSpec::adult_like(200, 8).generate();
        let differs = (0..200).any(|r| a.value(r, 1) != c.value(r, 1));
        assert!(differs, "different seeds produce different data");
    }

    #[test]
    fn item_popularity_is_skewed() {
        let t = DatasetSpec::basket(2000, 50, 3).generate();
        let sup = item_supports(&t);
        let max = *sup.iter().max().unwrap();
        let median = {
            let mut s = sup.clone();
            s.sort_unstable();
            s[s.len() / 2]
        };
        assert!(
            max as f64 > 4.0 * median as f64,
            "Zipf head must dominate: max={max} median={median}"
        );
    }

    #[test]
    fn adversarial_knobs_change_the_data_but_defaults_do_not() {
        // the knobs at their defaults must not perturb the RNG stream:
        // an adult_like spec with them spelled out explicitly equals
        // plain adult_like row for row
        let a = DatasetSpec::adult_like(200, 7).generate();
        let mut explicit = DatasetSpec::adult_like(200, 7);
        explicit.qi_correlation = 0.0;
        explicit.item_shape = ItemShape::Head;
        explicit.outlier_fraction = 0.0;
        let b = explicit.generate();
        for r in 0..200 {
            assert_eq!(a.value(r, 1), b.value(r, 1));
            assert_eq!(a.transaction(r), b.transaction(r));
        }
        // while the adversarial spec diverges
        let adv = DatasetSpec::adversarial(200, 7).generate();
        assert!((0..200).any(|r| a.transaction(r) != adv.transaction(r)));
    }

    #[test]
    fn correlated_qis_concentrate_joint_values() {
        let joint = |t: &RtTable| {
            let mut seen = std::collections::HashSet::new();
            for r in 0..t.n_rows() {
                seen.insert((t.value(r, 1), t.value(r, 2), t.value(r, 3)));
            }
            seen.len()
        };
        let base = DatasetSpec::adult_like(800, 5).generate();
        let mut spec = DatasetSpec::adult_like(800, 5);
        spec.qi_correlation = 0.9;
        let correlated = spec.generate();
        assert!(
            joint(&correlated) < joint(&base) / 2,
            "strong QI correlation must collapse the joint domain: \
             {} vs {}",
            joint(&correlated),
            joint(&base)
        );
    }

    #[test]
    fn heavy_tail_shifts_mass_into_the_rare_half() {
        let tail_mass = |spec: &DatasetSpec| {
            let sup = item_supports(&spec.generate());
            let total: u64 = sup.iter().sum();
            let tail: u64 = sup[sup.len() / 2..].iter().sum();
            tail as f64 / total as f64
        };
        let head = DatasetSpec::basket(600, 400, 11);
        let mut tail = head.clone();
        tail.item_shape = ItemShape::Tail;
        // Zipf (skew 1.1) puts a small share of draws past rank 200;
        // Tail mode sends about half of them there
        assert!(
            tail_mass(&tail) > 2.0 * tail_mass(&head) && tail_mass(&tail) > 0.3,
            "heavy tail must shift draw mass into the rare half: \
             {:.3} vs {:.3}",
            tail_mass(&tail),
            tail_mass(&head)
        );
    }

    #[test]
    fn census_has_no_transaction() {
        let t = DatasetSpec::census(100, 5).generate();
        assert!(!t.schema().is_rt());
        assert_eq!(t.schema().transaction_index(), None);
        assert_eq!(t.item_universe(), 0);
    }

    #[test]
    fn basket_has_no_relational() {
        let t = DatasetSpec::basket(100, 30, 5).generate();
        assert!(t.schema().relational_indices().is_empty());
        assert!(t.item_universe() <= 30);
    }

    #[test]
    fn full_domains_interned_even_if_unsampled() {
        // tiny dataset: most of the 74 ages never sampled, but domain complete
        let t = DatasetSpec::adult_like(3, 2).generate();
        assert_eq!(t.domain_size(0), 74);
        assert_eq!(t.item_universe(), 200);
    }

    #[test]
    fn correlation_rotates_preferences() {
        let mut spec = DatasetSpec::adult_like(3000, 11);
        spec.correlation = 1.0;
        let t = spec.generate();
        // Split rows by Age bucket parity; their top items should differ.
        let mut top_even = vec![0u64; t.item_universe()];
        let mut top_odd = vec![0u64; t.item_universe()];
        for r in 0..t.n_rows() {
            let bucket = t.value(r, 0).0 as usize;
            let target = if bucket.is_multiple_of(2) {
                &mut top_even
            } else {
                &mut top_odd
            };
            for it in t.transaction(r) {
                target[it.index()] += 1;
            }
        }
        let argmax = |v: &[u64]| v.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        // Not guaranteed for every seed, but stable for this one.
        assert_ne!(argmax(&top_even), argmax(&top_odd));
    }

    #[test]
    fn fixed_length_transactions() {
        let mut spec = DatasetSpec::basket(50, 20, 9);
        spec.tx_len = (3, 3);
        let t = spec.generate();
        for r in 0..t.n_rows() {
            assert!(t.transaction(r).len() <= 3);
            assert!(!t.transaction(r).is_empty());
        }
    }
}
