//! Query-workload generation.
//!
//! Builds the COUNT-query workloads the Queries Editor would load from
//! a file. Following the evaluation methodology of \[12\] (and of the
//! SECRETA authors' own papers), each query combines point/range
//! predicates over relational attributes with a small itemset
//! predicate, and predicates are sampled *from actual records* so that
//! exact counts are non-zero.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use secreta_data::RtTable;
use secreta_metrics::{Query, QueryAtom, Workload};

/// Specification of a random workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Number of queries.
    pub n_queries: usize,
    /// Relational attributes constrained per query (clamped to the
    /// available attributes).
    pub rel_atoms: usize,
    /// Values per relational predicate: 1 = point query, >1 = a run of
    /// adjacent domain values (range query).
    pub values_per_atom: usize,
    /// Items per transaction predicate (0 = no item predicate).
    pub items_per_query: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_queries: 100,
            rel_atoms: 2,
            values_per_atom: 3,
            items_per_query: 1,
            seed: 0x5ec2e7a,
        }
    }
}

impl WorkloadSpec {
    /// Generate a workload against `table`.
    pub fn generate(&self, table: &RtTable) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let rel_attrs = table.schema().relational_indices();
        let has_tx = table.schema().transaction_index().is_some() && table.item_universe() > 0;
        let mut queries = Vec::with_capacity(self.n_queries);
        if table.n_rows() == 0 {
            return Workload { queries };
        }
        for _ in 0..self.n_queries {
            // anchor on a random record so the query is satisfiable
            let row = rng.gen_range(0..table.n_rows());
            let mut atoms = Vec::new();

            let n_rel = self.rel_atoms.min(rel_attrs.len());
            let chosen: Vec<usize> = rel_attrs
                .choose_multiple(&mut rng, n_rel)
                .copied()
                .collect();
            for attr in chosen {
                let anchor = table.value(row, attr).0;
                let domain = table.domain_size(attr) as u32;
                let width = self.values_per_atom.max(1) as u32;
                // a run of adjacent ids starting at the anchor
                let lo = anchor.min(domain.saturating_sub(width));
                let values: Vec<u32> = (lo..(lo + width).min(domain)).collect();
                atoms.push(QueryAtom::Rel { attr, values });
            }

            if has_tx && self.items_per_query > 0 {
                let tx = table.transaction(row);
                if !tx.is_empty() {
                    let n_items = self.items_per_query.min(tx.len());
                    let mut items: Vec<_> =
                        tx.choose_multiple(&mut rng, n_items).copied().collect();
                    items.sort_unstable();
                    atoms.push(QueryAtom::Items { items });
                }
            }
            queries.push(Query { atoms });
        }
        Workload { queries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;

    #[test]
    fn queries_are_satisfiable() {
        let t = DatasetSpec::adult_like(300, 1).generate();
        let w = WorkloadSpec::default().generate(&t);
        assert_eq!(w.len(), 100);
        let counts = w.counts(&t);
        // anchored sampling guarantees each query matches its anchor row
        assert!(counts.iter().all(|&c| c >= 1), "all queries non-empty");
    }

    #[test]
    fn deterministic_per_seed() {
        let t = DatasetSpec::adult_like(100, 2).generate();
        let a = WorkloadSpec::default().generate(&t);
        let b = WorkloadSpec::default().generate(&t);
        assert_eq!(a, b);
        let c = WorkloadSpec {
            seed: 99,
            ..Default::default()
        }
        .generate(&t);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_atom_counts() {
        let t = DatasetSpec::adult_like(50, 3).generate();
        let spec = WorkloadSpec {
            n_queries: 10,
            rel_atoms: 3,
            values_per_atom: 1,
            items_per_query: 2,
            seed: 4,
        };
        let w = spec.generate(&t);
        for q in &w.queries {
            let rel = q
                .atoms
                .iter()
                .filter(|a| matches!(a, QueryAtom::Rel { .. }))
                .count();
            assert_eq!(rel, 3);
            for a in &q.atoms {
                match a {
                    QueryAtom::Rel { values, .. } => assert_eq!(values.len(), 1),
                    QueryAtom::Items { items } => assert!(items.len() <= 2),
                }
            }
        }
    }

    #[test]
    fn relational_only_dataset_gets_no_item_atoms() {
        let t = DatasetSpec::census(50, 1).generate();
        let w = WorkloadSpec::default().generate(&t);
        for q in &w.queries {
            assert!(q.atoms.iter().all(|a| matches!(a, QueryAtom::Rel { .. })));
        }
    }

    #[test]
    fn transaction_only_dataset_gets_no_rel_atoms() {
        let t = DatasetSpec::basket(50, 20, 1).generate();
        let w = WorkloadSpec::default().generate(&t);
        for q in &w.queries {
            assert!(q.atoms.iter().all(|a| matches!(a, QueryAtom::Items { .. })));
        }
        assert!(w.counts(&t).iter().all(|&c| c >= 1));
    }

    #[test]
    fn empty_table_yields_empty_workload() {
        let t = DatasetSpec::census(0, 1).generate();
        let w = WorkloadSpec::default().generate(&t);
        assert!(w.is_empty());
    }

    #[test]
    fn range_atoms_span_adjacent_ids() {
        let t = DatasetSpec::census(100, 6).generate();
        let spec = WorkloadSpec {
            n_queries: 20,
            rel_atoms: 1,
            values_per_atom: 5,
            items_per_query: 0,
            seed: 11,
        };
        let w = spec.generate(&t);
        for q in &w.queries {
            if let QueryAtom::Rel { values, .. } = &q.atoms[0] {
                assert_eq!(values.len(), 5);
                assert!(values.windows(2).all(|w| w[1] == w[0] + 1));
            } else {
                panic!("expected rel atom");
            }
        }
    }
}
