//! A small Zipf sampler.
//!
//! Samples ranks `0..n` with probability proportional to
//! `1/(rank+1)^s`. Implemented as a precomputed CDF + binary search —
//! O(n) setup, O(log n) per sample — which is plenty for dataset
//! generation and keeps the workspace free of a heavier statistics
//! dependency.

use rand::Rng;

/// Zipf distribution over `0..n` with exponent `s ≥ 0`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. `n` must be ≥ 1; `s == 0` degenerates to the
    /// uniform distribution.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n >= 1, "Zipf needs a non-empty support");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // guard against floating-point shortfall at the tail
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.2);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_orders_ranks() {
        let z = Zipf::new(10, 1.5);
        for r in 1..10 {
            assert!(z.pmf(r) < z.pmf(r - 1), "mass must decay with rank");
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_match_distribution_roughly() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let expected = z.pmf(r) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < expected * 0.1 + 30.0,
                "rank {r}: expected ~{expected}, got {got}"
            );
        }
    }

    #[test]
    fn single_support() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
