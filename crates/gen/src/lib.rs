//! # secreta-gen
//!
//! Deterministic synthetic data for SECRETA-rs.
//!
//! The demo paper ships "ready-to-use RT-datasets" (its authors'
//! evaluations use the *Informs* census/insurance data and *YouTube*
//! market-basket-style data, neither redistributable here). This crate
//! substitutes seeded generators that reproduce the statistical
//! properties those datasets contribute to the benchmarks:
//!
//! * low-cardinality, skewed demographic attributes (census-like),
//! * a heavy-tailed (Zipf) transaction item universe with variable
//!   transaction lengths,
//! * optional correlation between demographics and purchased items
//!   (the paper's marketing motivation: "product combinations that
//!   appeal to customers with specific demographic profiles").
//!
//! [`workload`] generates the COUNT-query workloads the Queries Editor
//! would otherwise load from a file.

pub mod dataset;
pub mod workload;
pub mod zipf;

pub use dataset::{DatasetSpec, ItemShape, RelAttrSpec};
pub use workload::WorkloadSpec;
pub use zipf::Zipf;
