//! SVG chart rendering.
//!
//! Hand-written SVG line/bar charts for the Data Export Module. The
//! paper exports raster/PDF images via Qt; vector SVG is the
//! dependency-free equivalent.

use crate::model::{BarChart, XyChart};
use std::fmt::Write as _;

const PALETTE: &[&str] = &[
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c", "#dc7ec0", "#797979",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render a line chart to an SVG document string.
pub fn render_xy(chart: &XyChart, width: u32, height: u32) -> String {
    let w = width.max(200) as f64;
    let h = height.max(150) as f64;
    let (ml, mr, mt, mb) = (60.0, 20.0, 40.0, 50.0);
    let pw = w - ml - mr;
    let ph = h - mt - mb;

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="16">{}</text>"#,
        w / 2.0,
        esc(&chart.title)
    );

    if let Some(((xlo, xhi), (ylo, yhi))) = chart.bounds() {
        let xspan = if (xhi - xlo).abs() < f64::EPSILON {
            1.0
        } else {
            xhi - xlo
        };
        let yspan = if (yhi - ylo).abs() < f64::EPSILON {
            1.0
        } else {
            yhi - ylo
        };
        let px = |x: f64| ml + (x - xlo) / xspan * pw;
        let py = |y: f64| mt + ph - (y - ylo) / yspan * ph;

        // axes
        let _ = write!(
            out,
            r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/><line x1="{ml}" y1="{mt}" x2="{ml}" y2="{}" stroke="black"/>"#,
            mt + ph,
            ml + pw,
            mt + ph,
            mt + ph
        );
        // axis labels + extrema ticks
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12">{}</text>"#,
            ml + pw / 2.0,
            h - 12.0,
            esc(&chart.x_label)
        );
        let _ = write!(
            out,
            r#"<text x="14" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 14 {})">{}</text>"#,
            mt + ph / 2.0,
            mt + ph / 2.0,
            esc(&chart.y_label)
        );
        for (v, anchor) in [(xlo, "start"), (xhi, "end")] {
            let _ = write!(
                out,
                r#"<text x="{}" y="{}" text-anchor="{anchor}" font-family="sans-serif" font-size="10">{v:.3}</text>"#,
                px(v),
                mt + ph + 16.0
            );
        }
        for v in [ylo, yhi] {
            let _ = write!(
                out,
                r#"<text x="{}" y="{}" text-anchor="end" font-family="sans-serif" font-size="10">{v:.3}</text>"#,
                ml - 6.0,
                py(v) + 4.0
            );
        }

        for (si, s) in chart.series.iter().enumerate() {
            let color = PALETTE[si % PALETTE.len()];
            if s.points.len() > 1 {
                let d: Vec<String> = s
                    .points
                    .iter()
                    .enumerate()
                    .map(|(i, &(x, y))| {
                        format!(
                            "{}{:.2},{:.2}",
                            if i == 0 { "M" } else { "L" },
                            px(x),
                            py(y)
                        )
                    })
                    .collect();
                let _ = write!(
                    out,
                    r#"<path d="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                    d.join(" ")
                );
            }
            for &(x, y) in &s.points {
                let _ = write!(
                    out,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{color}"/>"#,
                    px(x),
                    py(y)
                );
            }
            // legend
            let ly = mt + 14.0 * si as f64;
            let _ = write!(
                out,
                r#"<rect x="{}" y="{}" width="10" height="10" fill="{color}"/><text x="{}" y="{}" font-family="sans-serif" font-size="11">{}</text>"#,
                ml + pw - 140.0,
                ly,
                ml + pw - 126.0,
                ly + 9.0,
                esc(&s.name)
            );
        }
    } else {
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12">(no data)</text>"#,
            w / 2.0,
            h / 2.0
        );
    }
    out.push_str("</svg>");
    out
}

/// Render a bar chart to an SVG document string.
pub fn render_bar(chart: &BarChart, width: u32, height: u32) -> String {
    let w = width.max(200) as f64;
    let h = height.max(150) as f64;
    let (ml, mr, mt, mb) = (60.0, 20.0, 40.0, 70.0);
    let pw = w - ml - mr;
    let ph = h - mt - mb;

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="16">{}</text>"#,
        w / 2.0,
        esc(&chart.title)
    );
    let n = chart.labels.len();
    if n > 0 {
        let max = chart.max_value().max(f64::EPSILON);
        let slot = pw / n as f64;
        let bar_w = (slot * 0.8).max(1.0);
        for (i, (label, &value)) in chart.labels.iter().zip(&chart.values).enumerate() {
            let bh = value / max * ph;
            let x = ml + slot * i as f64 + (slot - bar_w) / 2.0;
            let y = mt + ph - bh;
            let _ = write!(
                out,
                r#"<rect x="{x:.2}" y="{y:.2}" width="{bar_w:.2}" height="{bh:.2}" fill="{}"/>"#,
                PALETTE[0]
            );
            let cx = x + bar_w / 2.0;
            let ty = mt + ph + 12.0;
            let _ = write!(
                out,
                r#"<text x="{cx:.2}" y="{ty:.2}" text-anchor="end" font-family="sans-serif" font-size="9" transform="rotate(-45 {cx:.2} {ty:.2})">{}</text>"#,
                esc(label)
            );
        }
        let _ = write!(
            out,
            r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            mt + ph,
            ml + pw,
            mt + ph
        );
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" text-anchor="end" font-family="sans-serif" font-size="10">{max:.3}</text>"#,
            ml - 6.0,
            mt + 4.0
        );
    } else {
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12">(no data)</text>"#,
            w / 2.0,
            h / 2.0
        );
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Series;

    #[test]
    fn xy_svg_is_well_formed_ish() {
        let mut c = XyChart::new("t<1>", "k", "ARE");
        c.push(Series::new("a&b", vec![(1.0, 0.5), (2.0, 0.9)]));
        let svg = render_xy(&c, 640, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("t&lt;1&gt;"), "title escaped");
        assert!(svg.contains("a&amp;b"), "legend escaped");
        assert!(svg.contains("<path"));
        assert!(svg.contains("<circle"));
        // balanced tag counts for the elements we emit
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn xy_svg_empty() {
        let svg = render_xy(&XyChart::new("t", "x", "y"), 640, 400);
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn bar_svg_draws_rects() {
        let b = BarChart::new("h", vec!["a".into(), "b".into()], vec![1.0, 2.0]);
        let svg = render_bar(&b, 640, 400);
        // background + 2 bars
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn bar_svg_empty() {
        let svg = render_bar(&BarChart::new("h", vec![], vec![]), 640, 400);
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn tiny_dimensions_clamped() {
        let b = BarChart::new("h", vec!["a".into()], vec![1.0]);
        let svg = render_bar(&b, 1, 1);
        assert!(svg.contains("width=\"200\""));
    }
}
