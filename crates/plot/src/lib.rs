//! # secreta-plot
//!
//! The Plotting Module of SECRETA-rs.
//!
//! The paper's frontend renders charts with the QWT library and
//! exports them "in PDF, JPG, BMP or PNG format". This headless
//! reproduction keeps the same data model — named series over a
//! varying parameter, and labelled bar groups — with three renderers:
//!
//! * [`ascii`] — terminal charts for the interactive CLI (the
//!   "plotting area" of the Evaluation/Comparison screens),
//! * [`svg`] — vector export for reports,
//! * [`csv`] — machine-readable series export (Data Export Module).

pub mod ascii;
pub mod csv;
pub mod grouped;
pub mod model;
pub mod svg;

pub use grouped::GroupedBarChart;
pub use model::{BarChart, Series, XyChart};
