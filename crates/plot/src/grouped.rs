//! Grouped bar charts: several series over shared category labels.
//!
//! The Evaluation screen's per-phase runtime plot compares phases
//! *across configurations*, and Figure 3(c)/(d) contrast original and
//! anonymized frequencies — both are grouped-bar shapes.

use crate::model::BarChart;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A grouped bar chart: `values[s][c]` is series `s` at category `c`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedBarChart {
    /// Chart title.
    pub title: String,
    /// Category labels (the x axis groups).
    pub categories: Vec<String>,
    /// Series names (the legend).
    pub series: Vec<String>,
    /// One row of values per series, each as long as `categories`.
    pub values: Vec<Vec<f64>>,
}

impl GroupedBarChart {
    /// Build a chart; panics if shapes disagree (caller bug).
    pub fn new(
        title: impl Into<String>,
        categories: Vec<String>,
        series: Vec<String>,
        values: Vec<Vec<f64>>,
    ) -> Self {
        assert_eq!(series.len(), values.len(), "one value row per series");
        for row in &values {
            assert_eq!(row.len(), categories.len(), "one value per category");
        }
        GroupedBarChart {
            title: title.into(),
            categories,
            series,
            values,
        }
    }

    /// Single-series view of one series (for reuse of the plain bar
    /// renderers).
    pub fn series_chart(&self, s: usize) -> BarChart {
        BarChart::new(
            format!("{} — {}", self.title, self.series[s]),
            self.categories.clone(),
            self.values[s].clone(),
        )
    }

    /// Global maximum (0.0 when empty).
    pub fn max_value(&self) -> f64 {
        self.values.iter().flatten().copied().fold(0.0, f64::max)
    }
}

const GLYPHS: &[char] = &['█', '▓', '▒', '░', '▚', '▞'];

/// Render as horizontal grouped bars for the terminal.
pub fn render_ascii(chart: &GroupedBarChart, width: usize) -> String {
    let width = width.clamp(10, 160);
    let mut out = String::new();
    let _ = writeln!(out, "{}", chart.title);
    if chart.categories.is_empty() || chart.series.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let max = chart.max_value();
    let label_w = chart
        .categories
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0)
        .min(24);
    for (ci, cat) in chart.categories.iter().enumerate() {
        let clipped: String = cat.chars().take(label_w).collect();
        for (si, name) in chart.series.iter().enumerate() {
            let v = chart.values[si][ci];
            let bar_len = if max > 0.0 {
                ((v / max) * width as f64).round() as usize
            } else {
                0
            };
            let glyph = GLYPHS[si % GLYPHS.len()];
            let prefix = if si == 0 {
                format!("{clipped:>label_w$}")
            } else {
                " ".repeat(label_w)
            };
            let _ = writeln!(
                out,
                "  {prefix} │{} {v:.3} ({name})",
                glyph.to_string().repeat(bar_len)
            );
        }
    }
    out
}

/// Render as vertical grouped bars in SVG.
pub fn render_svg(chart: &GroupedBarChart, width: u32, height: u32) -> String {
    let w = width.max(240) as f64;
    let h = height.max(160) as f64;
    let (ml, mr, mt, mb) = (60.0, 20.0, 40.0, 70.0);
    let pw = w - ml - mr;
    let ph = h - mt - mb;
    const PALETTE: &[&str] = &["#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4"];
    let esc = |s: &str| {
        s.replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;")
    };

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(
        out,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="16">{}</text>"#,
        w / 2.0,
        esc(&chart.title)
    );
    let nc = chart.categories.len();
    let ns = chart.series.len();
    if nc > 0 && ns > 0 {
        let max = chart.max_value().max(f64::EPSILON);
        let slot = pw / nc as f64;
        let bar_w = (slot * 0.8 / ns as f64).max(1.0);
        for (ci, cat) in chart.categories.iter().enumerate() {
            for si in 0..ns {
                let v = chart.values[si][ci];
                let bh = v / max * ph;
                let x = ml + slot * ci as f64 + slot * 0.1 + bar_w * si as f64;
                let y = mt + ph - bh;
                let _ = write!(
                    out,
                    r#"<rect x="{x:.2}" y="{y:.2}" width="{bar_w:.2}" height="{bh:.2}" fill="{}"/>"#,
                    PALETTE[si % PALETTE.len()]
                );
            }
            let cx = ml + slot * ci as f64 + slot / 2.0;
            let ty = mt + ph + 12.0;
            let _ = write!(
                out,
                r#"<text x="{cx:.2}" y="{ty:.2}" text-anchor="end" font-family="sans-serif" font-size="9" transform="rotate(-45 {cx:.2} {ty:.2})">{}</text>"#,
                esc(cat)
            );
        }
        for (si, name) in chart.series.iter().enumerate() {
            let ly = mt + 14.0 * si as f64;
            let _ = write!(
                out,
                r#"<rect x="{}" y="{}" width="10" height="10" fill="{}"/><text x="{}" y="{}" font-family="sans-serif" font-size="11">{}</text>"#,
                ml + pw - 140.0,
                ly,
                PALETTE[si % PALETTE.len()],
                ml + pw - 126.0,
                ly + 9.0,
                esc(name)
            );
        }
        let _ = write!(
            out,
            r#"<line x1="{ml}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            mt + ph,
            ml + pw,
            mt + ph
        );
    } else {
        let _ = write!(
            out,
            r#"<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12">(no data)</text>"#,
            w / 2.0,
            h / 2.0
        );
    }
    out.push_str("</svg>");
    out
}

/// Export as CSV: `category,series...` wide rows.
pub fn write_csv<W: std::io::Write>(
    chart: &GroupedBarChart,
    writer: &mut W,
) -> std::io::Result<()> {
    let quote = |f: &str| {
        if f.contains(',') || f.contains('"') {
            format!("\"{}\"", f.replace('"', "\"\""))
        } else {
            f.to_owned()
        }
    };
    let mut header = vec!["category".to_owned()];
    header.extend(chart.series.iter().map(|s| quote(s)));
    writeln!(writer, "{}", header.join(","))?;
    for (ci, cat) in chart.categories.iter().enumerate() {
        let mut row = vec![quote(cat)];
        for si in 0..chart.series.len() {
            row.push(format!("{}", chart.values[si][ci]));
        }
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> GroupedBarChart {
        GroupedBarChart::new(
            "phases",
            vec!["cluster".into(), "merge".into()],
            vec!["Rmerger".into(), "Tmerger".into()],
            vec![vec![10.0, 2.0], vec![8.0, 4.0]],
        )
    }

    #[test]
    fn ascii_contains_all_series_and_categories() {
        let s = render_ascii(&chart(), 30);
        assert!(s.contains("cluster"));
        assert!(s.contains("merge"));
        assert!(s.contains("Rmerger"));
        assert!(s.contains("Tmerger"));
        assert!(s.contains('█'));
        assert!(s.contains('▓'));
    }

    #[test]
    fn svg_has_four_bars_plus_background_and_legend() {
        let svg = render_svg(&chart(), 640, 400);
        // 1 background + 4 bars + 2 legend swatches
        assert_eq!(svg.matches("<rect").count(), 7);
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn csv_is_wide() {
        let mut buf = Vec::new();
        write_csv(&chart(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "category,Rmerger,Tmerger");
        assert_eq!(lines[1], "cluster,10,8");
        assert_eq!(lines[2], "merge,2,4");
    }

    #[test]
    fn series_chart_extracts_one_series() {
        let b = chart().series_chart(1);
        assert!(b.title.contains("Tmerger"));
        assert_eq!(b.values, vec![8.0, 4.0]);
    }

    #[test]
    fn max_value_spans_series() {
        assert_eq!(chart().max_value(), 10.0);
    }

    #[test]
    fn empty_charts_render_placeholders() {
        let empty = GroupedBarChart::new("e", vec![], vec![], vec![]);
        assert!(render_ascii(&empty, 20).contains("(no data)"));
        assert!(render_svg(&empty, 300, 200).contains("(no data)"));
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let _ = GroupedBarChart::new(
            "bad",
            vec!["a".into()],
            vec!["s".into()],
            vec![vec![1.0, 2.0]],
        );
    }
}
