//! Chart data model.

use serde::{Deserialize, Serialize};

/// One named line of `(x, y)` points (e.g. "ARE of Cluster+COAT" over
/// varying `k`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series, sorting points by x.
    pub fn new(name: impl Into<String>, mut points: Vec<(f64, f64)>) -> Self {
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
        Series {
            name: name.into(),
            points,
        }
    }

    /// Minimum and maximum y (None when empty).
    pub fn y_range(&self) -> Option<(f64, f64)> {
        let mut it = self.points.iter().map(|p| p.1);
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for y in it {
            lo = lo.min(y);
            hi = hi.max(y);
        }
        Some((lo, hi))
    }
}

/// A line chart: the varying-parameter plots of the Evaluation and
/// Comparison modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XyChart {
    /// Chart title.
    pub title: String,
    /// X-axis label (the varying parameter, e.g. `k`).
    pub x_label: String,
    /// Y-axis label (the indicator, e.g. `ARE`).
    pub y_label: String,
    /// One series per configuration.
    pub series: Vec<Series>,
}

impl XyChart {
    /// Build an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        XyChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Append a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Build a chart from flat `(series label, x, y)` rows — the shape
    /// that falls out of tabular run records (e.g. a run store's
    /// manifests). Series keep first-appearance order; points within a
    /// series are sorted by x as usual.
    pub fn from_rows(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        rows: impl IntoIterator<Item = (String, f64, f64)>,
    ) -> Self {
        let mut chart = XyChart::new(title, x_label, y_label);
        let mut order: Vec<String> = Vec::new();
        let mut buckets: Vec<Vec<(f64, f64)>> = Vec::new();
        for (label, x, y) in rows {
            match order.iter().position(|l| *l == label) {
                Some(i) => buckets[i].push((x, y)),
                None => {
                    order.push(label);
                    buckets.push(vec![(x, y)]);
                }
            }
        }
        for (label, points) in order.into_iter().zip(buckets) {
            chart.push(Series::new(label, points));
        }
        chart
    }

    /// Bounding box over all series: `((x_min, x_max), (y_min, y_max))`.
    pub fn bounds(&self) -> Option<((f64, f64), (f64, f64))> {
        let mut xs: Option<(f64, f64)> = None;
        let mut ys: Option<(f64, f64)> = None;
        for s in &self.series {
            for &(x, y) in &s.points {
                xs = Some(match xs {
                    Some((lo, hi)) => (lo.min(x), hi.max(x)),
                    None => (x, x),
                });
                ys = Some(match ys {
                    Some((lo, hi)) => (lo.min(y), hi.max(y)),
                    None => (y, y),
                });
            }
        }
        Some((xs?, ys?))
    }
}

/// A bar chart: histograms of attribute values, generalized-value
/// frequencies, per-phase runtimes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Bar labels.
    pub labels: Vec<String>,
    /// Bar heights, parallel to `labels`.
    pub values: Vec<f64>,
}

impl BarChart {
    /// Build from labels and values; panics if lengths differ (caller
    /// bug).
    pub fn new(title: impl Into<String>, labels: Vec<String>, values: Vec<f64>) -> Self {
        assert_eq!(labels.len(), values.len(), "labels/values must align");
        BarChart {
            title: title.into(),
            labels,
            values,
        }
    }

    /// Maximum value (0.0 when empty).
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_sorts_by_x() {
        let s = Series::new("s", vec![(3.0, 1.0), (1.0, 2.0), (2.0, 0.5)]);
        let xs: Vec<f64> = s.points.iter().map(|p| p.0).collect();
        assert_eq!(xs, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.y_range(), Some((0.5, 2.0)));
    }

    #[test]
    fn empty_series_has_no_range() {
        assert_eq!(Series::new("e", vec![]).y_range(), None);
    }

    #[test]
    fn from_rows_groups_by_label_in_first_seen_order() {
        let rows = vec![
            ("b".to_owned(), 2.0, 0.2),
            ("a".to_owned(), 1.0, 0.5),
            ("b".to_owned(), 1.0, 0.1),
            ("a".to_owned(), 2.0, 0.6),
        ];
        let c = XyChart::from_rows("t", "k", "GCP", rows);
        assert_eq!(c.series.len(), 2);
        assert_eq!(c.series[0].name, "b");
        assert_eq!(c.series[0].points, vec![(1.0, 0.1), (2.0, 0.2)]);
        assert_eq!(c.series[1].name, "a");
        assert_eq!(c.series[1].points, vec![(1.0, 0.5), (2.0, 0.6)]);
    }

    #[test]
    fn chart_bounds_span_all_series() {
        let mut c = XyChart::new("t", "x", "y");
        c.push(Series::new("a", vec![(1.0, 5.0), (2.0, 7.0)]));
        c.push(Series::new("b", vec![(0.0, 6.0), (3.0, 1.0)]));
        let ((xlo, xhi), (ylo, yhi)) = c.bounds().unwrap();
        assert_eq!((xlo, xhi), (0.0, 3.0));
        assert_eq!((ylo, yhi), (1.0, 7.0));
    }

    #[test]
    fn empty_chart_has_no_bounds() {
        assert!(XyChart::new("t", "x", "y").bounds().is_none());
        let mut c = XyChart::new("t", "x", "y");
        c.push(Series::new("empty", vec![]));
        assert!(c.bounds().is_none());
    }

    #[test]
    fn bar_chart_max() {
        let b = BarChart::new("t", vec!["a".into(), "b".into()], vec![2.0, 9.0]);
        assert_eq!(b.max_value(), 9.0);
        let empty = BarChart::new("t", vec![], vec![]);
        assert_eq!(empty.max_value(), 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_bar_lengths_panic() {
        let _ = BarChart::new("t", vec!["a".into()], vec![]);
    }
}
