//! CSV export of chart data (Data Export Module).
//!
//! Line charts export as a wide table — first column the varying
//! parameter, one column per series; bar charts as `label,value`
//! rows. Missing points (a series lacking a sample at some x) export
//! as empty cells.

use crate::model::{BarChart, XyChart};
use std::io::Write;

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Export a line chart.
pub fn write_xy<W: Write>(chart: &XyChart, writer: &mut W) -> std::io::Result<()> {
    let mut header = vec![quote(&chart.x_label)];
    header.extend(chart.series.iter().map(|s| quote(&s.name)));
    writeln!(writer, "{}", header.join(","))?;

    // union of x values across series
    let mut xs: Vec<f64> = chart
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    for &x in &xs {
        let mut row = vec![format!("{x}")];
        for s in &chart.series {
            let y = s
                .points
                .iter()
                .find(|p| (p.0 - x).abs() < 1e-12)
                .map(|p| format!("{}", p.1))
                .unwrap_or_default();
            row.push(y);
        }
        writeln!(writer, "{}", row.join(","))?;
    }
    Ok(())
}

/// Export a bar chart.
pub fn write_bar<W: Write>(chart: &BarChart, writer: &mut W) -> std::io::Result<()> {
    writeln!(writer, "label,value")?;
    for (label, value) in chart.labels.iter().zip(&chart.values) {
        writeln!(writer, "{},{}", quote(label), value)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Series;

    #[test]
    fn xy_export_is_wide() {
        let mut c = XyChart::new("t", "k", "ARE");
        c.push(Series::new("a", vec![(2.0, 0.1), (4.0, 0.2)]));
        c.push(Series::new("b", vec![(2.0, 0.3)]));
        let mut buf = Vec::new();
        write_xy(&c, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "k,a,b");
        assert_eq!(lines[1], "2,0.1,0.3");
        assert_eq!(lines[2], "4,0.2,", "missing sample is empty cell");
    }

    #[test]
    fn bar_export() {
        let b = BarChart::new("t", vec!["x,y".into(), "z".into()], vec![1.5, 2.0]);
        let mut buf = Vec::new();
        write_bar(&b, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"x,y\",1.5"));
        assert!(text.contains("z,2"));
    }

    #[test]
    fn empty_exports_have_headers_only() {
        let c = XyChart::new("t", "k", "v");
        let mut buf = Vec::new();
        write_xy(&c, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1);

        let b = BarChart::new("t", vec![], vec![]);
        let mut buf = Vec::new();
        write_bar(&b, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1);
    }
}
