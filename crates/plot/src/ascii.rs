//! Terminal chart rendering.
//!
//! Produces fixed-width text charts for the CLI's "plotting area".
//! Line charts place one glyph per series (`*`, `o`, `x`, …); bar
//! charts render horizontal bars scaled to the widest value.

use crate::model::{BarChart, XyChart};
use std::fmt::Write as _;

const GLYPHS: &[char] = &['*', 'o', 'x', '+', '#', '@', '%', '&'];

/// Render a line chart into a `width × height` character canvas with
/// axes, legend and value range annotations.
pub fn render_xy(chart: &XyChart, width: usize, height: usize) -> String {
    let width = width.clamp(20, 400);
    let height = height.clamp(5, 100);
    let mut out = String::new();
    let _ = writeln!(out, "{}", chart.title);

    let Some(((xlo, xhi), (ylo, yhi))) = chart.bounds() else {
        let _ = writeln!(out, "  (no data)");
        return out;
    };
    let xspan = if (xhi - xlo).abs() < f64::EPSILON {
        1.0
    } else {
        xhi - xlo
    };
    let yspan = if (yhi - ylo).abs() < f64::EPSILON {
        1.0
    } else {
        yhi - ylo
    };

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in chart.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - xlo) / xspan) * (width - 1) as f64).round() as usize;
            let cy = (((y - ylo) / yspan) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            canvas[row][cx.min(width - 1)] = glyph;
        }
    }

    let _ = writeln!(out, "{:>10.4} ┐", yhi);
    for row in canvas {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "{:>10} │{}", "", line);
    }
    let _ = writeln!(out, "{:>10.4} ┴{}", ylo, "─".repeat(width));
    let _ = writeln!(
        out,
        "{:>12}{:<width$}",
        "",
        format!("{xlo:.3} … {xhi:.3}  ({})", chart.x_label),
        width = width
    );
    let _ = writeln!(out, "  y: {}", chart.y_label);
    for (si, s) in chart.series.iter().enumerate() {
        let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.name);
    }
    out
}

/// Render a bar chart as horizontal bars.
pub fn render_bar(chart: &BarChart, width: usize) -> String {
    let width = width.clamp(10, 200);
    let mut out = String::new();
    let _ = writeln!(out, "{}", chart.title);
    if chart.labels.is_empty() {
        let _ = writeln!(out, "  (no data)");
        return out;
    }
    let max = chart.max_value();
    let label_w = chart
        .labels
        .iter()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0)
        .min(24);
    for (label, &value) in chart.labels.iter().zip(&chart.values) {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        let clipped: String = label.chars().take(label_w).collect();
        let _ = writeln!(
            out,
            "  {clipped:>label_w$} │{} {value:.3}",
            "█".repeat(bar_len)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Series;

    fn chart() -> XyChart {
        let mut c = XyChart::new("ARE vs k", "k", "ARE");
        c.push(Series::new(
            "algo-a",
            vec![(2.0, 0.1), (4.0, 0.3), (8.0, 0.7)],
        ));
        c.push(Series::new(
            "algo-b",
            vec![(2.0, 0.2), (4.0, 0.25), (8.0, 0.4)],
        ));
        c
    }

    #[test]
    fn xy_render_contains_title_legend_and_glyphs() {
        let s = render_xy(&chart(), 60, 15);
        assert!(s.contains("ARE vs k"));
        assert!(s.contains("algo-a"));
        assert!(s.contains("algo-b"));
        assert!(s.contains('*'));
        assert!(s.contains('o'));
        assert!(s.contains("(k)"));
    }

    #[test]
    fn xy_render_empty_chart() {
        let c = XyChart::new("empty", "x", "y");
        let s = render_xy(&c, 60, 10);
        assert!(s.contains("(no data)"));
    }

    #[test]
    fn xy_render_single_point() {
        let mut c = XyChart::new("one", "x", "y");
        c.push(Series::new("s", vec![(1.0, 1.0)]));
        let s = render_xy(&c, 30, 8);
        assert!(s.contains('*'));
    }

    #[test]
    fn xy_dimensions_are_clamped() {
        let s = render_xy(&chart(), 1, 1);
        // minimum 5 canvas rows + header/footer
        assert!(s.lines().count() >= 8);
    }

    #[test]
    fn bar_render_scales_to_max() {
        let b = BarChart::new("hist", vec!["aa".into(), "bb".into()], vec![10.0, 5.0]);
        let s = render_bar(&b, 20);
        let lines: Vec<&str> = s.lines().collect();
        let full = lines[1].matches('█').count();
        let half = lines[2].matches('█').count();
        assert_eq!(full, 20);
        assert_eq!(half, 10);
        assert!(s.contains("10.000"));
    }

    #[test]
    fn bar_render_empty_and_zero() {
        let empty = BarChart::new("e", vec![], vec![]);
        assert!(render_bar(&empty, 20).contains("(no data)"));
        let zeros = BarChart::new("z", vec!["a".into()], vec![0.0]);
        let s = render_bar(&zeros, 20);
        assert!(!s.contains('█'));
    }

    #[test]
    fn bar_long_labels_clipped() {
        let b = BarChart::new("t", vec!["x".repeat(100)], vec![1.0]);
        let s = render_bar(&b, 20);
        assert!(s.lines().nth(1).unwrap().len() < 100);
    }
}
