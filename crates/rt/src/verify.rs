//! Post-hoc verification of (k, k^m)-anonymity.

use secreta_data::hash::FxHashMap;
use secreta_metrics::AnonTable;

/// Is `anon` (k, k^m)-anonymous?
///
/// * every equivalence class on the generalized relational signature
///   has at least `k` rows, and
/// * within each class, every itemset of 1..=m published generalized
///   items occurring in some row of the class occurs in at least `k`
///   rows of that class.
pub fn is_k_km_anonymous(anon: &AnonTable, k: usize, m: usize) -> bool {
    if anon.n_rows == 0 {
        return true;
    }
    let (sizes, row_class) = anon.equivalence_classes();
    if sizes.iter().any(|&s| s < k) {
        return false;
    }
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return true,
    };
    let m = m.max(1);

    // per class, count subset supports of published gen items
    let mut class_rows: Vec<Vec<usize>> = vec![Vec::new(); sizes.len()];
    for (row, &c) in row_class.iter().enumerate() {
        class_rows[c as usize].push(row);
    }
    for rows in &class_rows {
        for i in 1..=m {
            let mut sup: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
            for &row in rows {
                let items = tx.row_items(row);
                if items.len() < i {
                    continue;
                }
                subsets(items, i, &mut |s| {
                    *sup.entry(s.to_vec()).or_insert(0) += 1;
                });
            }
            if sup.values().any(|&c| c < k) {
                return false;
            }
        }
    }
    true
}

fn subsets(items: &[u32], i: usize, f: &mut impl FnMut(&[u32])) {
    fn rec(items: &[u32], i: usize, start: usize, cur: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        if cur.len() == i {
            f(cur);
            return;
        }
        let need = i - cur.len();
        for idx in start..=items.len().saturating_sub(need) {
            cur.push(items[idx]);
            rec(items, i, idx + 1, cur, f);
            cur.pop();
        }
    }
    if i == 0 || i > items.len() {
        return;
    }
    rec(items, i, 0, &mut Vec::with_capacity(i), f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_metrics::anon::{AnonTransaction, RelColumn};
    use secreta_metrics::GenEntry;

    /// two classes of two rows each; class 0 shares items {0,1},
    /// class 1 rows have {2} and {2} respectively
    fn anon(class1_second_items: Vec<u32>) -> AnonTable {
        let rel = RelColumn {
            attr: 0,
            domain: vec![GenEntry::Set(vec![0]), GenEntry::Set(vec![1])],
            cells: vec![0, 0, 1, 1],
        };
        let rows = [vec![0u32, 1], vec![0, 1], vec![2], class1_second_items];
        let mut offsets = vec![0u32];
        let mut items = Vec::new();
        for r in &rows {
            items.extend_from_slice(r);
            offsets.push(items.len() as u32);
        }
        let multiplicity = vec![1u16; items.len()];
        AnonTable {
            rel: vec![rel],
            tx: Some(AnonTransaction {
                domain: (0..3).map(|v| GenEntry::Set(vec![v])).collect(),
                offsets,
                items,
                multiplicity,
                suppressed: vec![],
            }),
            n_rows: 4,
        }
    }

    #[test]
    fn accepts_valid_k_km() {
        let a = anon(vec![2]);
        assert!(is_k_km_anonymous(&a, 2, 2));
        assert!(is_k_km_anonymous(&a, 1, 3));
    }

    #[test]
    fn rejects_small_relational_classes() {
        let mut a = anon(vec![2]);
        a.rel[0].cells = vec![0, 0, 0, 1]; // class sizes 3 and 1
        assert!(!is_k_km_anonymous(&a, 2, 1));
    }

    #[test]
    fn rejects_within_class_item_violation() {
        // class 1: rows have {2} and {0} -> each unique within class
        let a = anon(vec![0]);
        assert!(!is_k_km_anonymous(&a, 2, 1));
    }

    #[test]
    fn item_supports_do_not_leak_across_classes() {
        // item 0 appears twice in class 0, once in class 1 -> the
        // class-local count (1 < 2) must fail even though the global
        // count is 3
        let a = anon(vec![0]);
        assert!(!is_k_km_anonymous(&a, 2, 1));
    }

    #[test]
    fn pair_violations_detected_at_m2() {
        // class 0 rows both have {0,1}: pair support 2. OK at k=2.
        // make one class-0 row {0,1}, other {0,1}, fine; class 1 rows
        // {2},{2}: no pairs. So valid at m=2...
        let a = anon(vec![2]);
        assert!(is_k_km_anonymous(&a, 2, 2));
        // now break a pair: class 0 row 1 gets {0,2}: pairs {0,1} and
        // {0,2} each support 1
        let mut b = anon(vec![2]);
        if let Some(tx) = &mut b.tx {
            // row 1 items live at offsets[1]..offsets[2]
            let lo = tx.offsets[1] as usize;
            tx.items[lo + 1] = 2;
        }
        assert!(!is_k_km_anonymous(&b, 2, 2));
    }

    #[test]
    fn empty_table_and_missing_tx_are_vacuous() {
        let empty = AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 0,
        };
        assert!(is_k_km_anonymous(&empty, 5, 5));
        let rel_only = AnonTable {
            rel: vec![RelColumn {
                attr: 0,
                domain: vec![GenEntry::Set(vec![0])],
                cells: vec![0, 0],
            }],
            tx: None,
            n_rows: 2,
        };
        assert!(is_k_km_anonymous(&rel_only, 2, 3));
        assert!(!is_k_km_anonymous(&rel_only, 3, 1));
    }
}
