//! The RT anonymization pipeline: relational partitioning → bounded
//! cluster merging → per-cluster transaction anonymization.

use crate::merge::{merge_clusters, BoundingMethod, ClusterSummary};
use secreta_data::hash::FxHashMap;
use secreta_data::RtTable;
use secreta_hierarchy::Hierarchy;
use secreta_metrics::anon::{AnonTransaction, RelColumn};
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer, PhaseTimes};
use secreta_policy::{PrivacyPolicy, UtilityPolicy};
use secreta_relational::{RelError, RelationalAlgorithm, RelationalInput};
use secreta_transaction::{anonymize_scoped, ClusterTx, TransactionAlgorithm, TxError};
use std::fmt;

/// Errors raised by RT anonymization.
#[derive(Debug, PartialEq, Eq)]
pub enum RtError {
    /// The relational stage failed.
    Rel(RelError),
    /// The transaction stage failed even after exhausting merges.
    Tx(TxError),
    /// Structural problem with the RT input itself.
    BadInput(String),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Rel(e) => write!(f, "relational stage: {e}"),
            RtError::Tx(e) => write!(f, "transaction stage: {e}"),
            RtError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for RtError {}

impl From<RelError> for RtError {
    fn from(e: RelError) -> Self {
        RtError::Rel(e)
    }
}

/// Input to the RT pipeline.
pub struct RtInput<'a> {
    /// The RT-dataset.
    pub table: &'a RtTable,
    /// Quasi-identifier relational attributes.
    pub qi_attrs: Vec<usize>,
    /// Hierarchies parallel to `qi_attrs`.
    pub hierarchies: Vec<Hierarchy>,
    /// Item hierarchy (required when `tx_algo` is hierarchy-based).
    pub item_hierarchy: Option<&'a Hierarchy>,
    /// Protection level for both parts.
    pub k: usize,
    /// Adversary item knowledge for the k^m transaction algorithms.
    pub m: usize,
    /// Merge budget δ: at most this many relational clusters may fuse
    /// into one super-cluster (1 = no merging). Larger δ trades
    /// relational utility for transaction utility.
    pub delta: usize,
    /// Relational algorithm forming the initial partition.
    pub rel_algo: RelationalAlgorithm,
    /// Transaction algorithm run inside each super-cluster.
    pub tx_algo: TransactionAlgorithm,
    /// Bounding method selecting merge partners.
    pub bounding: BoundingMethod,
    /// Privacy policy for COAT/PCTA.
    pub privacy: Option<&'a PrivacyPolicy>,
    /// Utility policy for COAT/PCTA.
    pub utility: Option<&'a UtilityPolicy>,
    /// Seed for the randomized relational Cluster algorithm.
    pub seed: u64,
}

/// Result of an RT run.
#[derive(Debug, Clone)]
pub struct RtOutput {
    /// The published table: generalized relational columns *and*
    /// generalized transaction attribute.
    pub anon: AnonTable,
    /// Per-phase timings (the Figure 3(b) data).
    pub phases: PhaseTimes,
}

/// Run the full RT pipeline.
pub fn anonymize(input: &RtInput) -> Result<RtOutput, RtError> {
    if input.table.schema().transaction_index().is_none() {
        return Err(RtError::BadInput(
            "RT anonymization needs a transaction attribute".into(),
        ));
    }
    let mut timer = PhaseTimer::new();
    let recorder = secreta_obsv::current();

    // 1. relational partition
    let rel_input = RelationalInput {
        table: input.table,
        qi_attrs: input.qi_attrs.clone(),
        hierarchies: input.hierarchies.clone(),
        k: input.k,
    };
    let rel_out = input.rel_algo.run(&rel_input, input.seed)?;
    let (sizes, row_class) = rel_out.anon.equivalence_classes();
    let mut cluster_rows: Vec<Vec<usize>> = vec![Vec::new(); sizes.len()];
    for (row, &c) in row_class.iter().enumerate() {
        cluster_rows[c as usize].push(row);
    }
    // splice the sub-run's phases in here, while "relational
    // partitioning" is still the in-flight phase, so they keep
    // execution order (absorbing via PhaseTimes after finish() used to
    // drop them after "publish")
    timer.absorb(input.rel_algo.name(), rel_out.phases);
    timer.phase("relational partitioning");

    // 2. bounded merging
    let summaries: Vec<ClusterSummary> = cluster_rows
        .into_iter()
        .map(|rows| ClusterSummary::new(input.table, rows, &input.qi_attrs, &input.hierarchies))
        .collect();
    let n_initial = summaries.len();
    let mut clusters = merge_clusters(summaries, input.bounding, &input.hierarchies, input.delta);
    recorder.count("rt/clusters", n_initial as u64);
    recorder.count("rt/merges", (n_initial - clusters.len()) as u64);
    timer.phase("cluster merging");

    // 3. per-cluster transaction anonymization, with feasibility
    // repair: an infeasible cluster (too few non-empty transactions)
    // fuses with its nearest neighbour and retries
    let mut results: Vec<ClusterTx> = Vec::with_capacity(clusters.len());
    let mut repairs = 0u64;
    let mut idx = 0;
    while idx < clusters.len() {
        let scoped = anonymize_scoped(
            input.tx_algo,
            input.table,
            &clusters[idx].rows,
            input.k,
            input.m,
            input.item_hierarchy,
            input.privacy,
            input.utility,
        );
        match scoped {
            Ok(ct) => {
                results.push(ct);
                idx += 1;
            }
            Err(TxError::Infeasible { .. }) if clusters.len() > 1 => {
                // fuse with the nearest other cluster and retry
                repairs += 1;
                let mut best: Option<(usize, f64)> = None;
                for (j, cand) in clusters.iter().enumerate() {
                    if j == idx {
                        continue;
                    }
                    let d = clusters[idx].distance(cand, input.bounding, &input.hierarchies);
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((j, d));
                    }
                }
                let (j, _) = best.expect("len > 1 guarantees a partner");
                let absorbed = clusters.remove(j);
                let tgt = if j < idx { idx - 1 } else { idx };
                clusters[tgt].absorb(absorbed, &input.hierarchies);
                // a fused earlier cluster's result is stale; only
                // earlier indices can be affected when j < idx
                if j < idx {
                    results.remove(j);
                    idx = tgt;
                }
            }
            Err(e) => return Err(RtError::Tx(e)),
        }
    }
    recorder.count("rt/feasibility_repairs", repairs);
    timer.phase("transaction anonymization");

    // 4. publish
    let rel = publish_rel(input, &clusters);
    let tx = publish_tx(input.table, &clusters, &results);
    let anon = AnonTable {
        rel,
        tx: Some(tx),
        n_rows: input.table.n_rows(),
    };
    timer.phase("publish");

    Ok(RtOutput {
        anon,
        phases: timer.finish(),
    })
}

/// Per-super-cluster LCA recoding of the QI attributes.
fn publish_rel(input: &RtInput, clusters: &[ClusterSummary]) -> Vec<RelColumn> {
    let n = input.table.n_rows();
    input
        .qi_attrs
        .iter()
        .enumerate()
        .map(|(pos, &attr)| {
            let mut domain: Vec<GenEntry> = Vec::new();
            let mut index: FxHashMap<GenEntry, u32> = FxHashMap::default();
            let mut cells = vec![0u32; n];
            for c in clusters {
                let entry = GenEntry::Node(c.lcas[pos]);
                let next = domain.len() as u32;
                let id = *index.entry(entry.clone()).or_insert(next);
                if id as usize == domain.len() {
                    domain.push(entry);
                }
                for &row in &c.rows {
                    cells[row] = id;
                }
            }
            RelColumn {
                attr,
                domain,
                cells,
            }
        })
        .collect()
}

/// Assemble the published transaction attribute from the per-cluster
/// recodings.
fn publish_tx(
    table: &RtTable,
    clusters: &[ClusterSummary],
    results: &[ClusterTx],
) -> AnonTransaction {
    let n = table.n_rows();
    let mut domain: Vec<GenEntry> = Vec::new();
    let mut index: FxHashMap<GenEntry, u32> = FxHashMap::default();
    let mut per_row: Vec<Vec<(u32, u16)>> = vec![Vec::new(); n];
    let mut covered = vec![false; table.item_universe()];

    for (c, ct) in clusters.iter().zip(results) {
        debug_assert_eq!(c.rows, ct.rows);
        for (pos, &row) in c.rows.iter().enumerate() {
            let mut counts: FxHashMap<u32, u16> = FxHashMap::default();
            for &it in table.transaction(row) {
                if let Some(entry) = ct.entry(pos, it) {
                    covered[it.index()] = true;
                    let next = domain.len() as u32;
                    let id = *index.entry(entry.clone()).or_insert(next);
                    if id as usize == domain.len() {
                        domain.push(entry);
                    }
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
            let mut items: Vec<(u32, u16)> = counts.into_iter().collect();
            items.sort_unstable_by_key(|&(g, _)| g);
            per_row[row] = items;
        }
    }

    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut items = Vec::new();
    let mut multiplicity = Vec::new();
    for row_items in &per_row {
        for &(g, c) in row_items {
            items.push(g);
            multiplicity.push(c);
        }
        offsets.push(items.len() as u32);
    }

    // dataset-wide suppressed = occurs in the data, never published
    let mut present = vec![false; table.item_universe()];
    for row in 0..n {
        for &it in table.transaction(row) {
            present[it.index()] = true;
        }
    }
    let suppressed = (0..table.item_universe())
        .filter(|&i| present[i] && !covered[i])
        .map(|i| secreta_data::ItemId(i as u32))
        .collect();

    AnonTransaction {
        domain,
        offsets,
        items,
        multiplicity,
        suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_k_km_anonymous;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        for (age, tx) in [
            ("30", vec!["a", "b"]),
            ("31", vec!["a", "b"]),
            ("32", vec!["a", "c"]),
            ("33", vec!["b", "c"]),
            ("60", vec!["a", "b"]),
            ("61", vec!["a", "b"]),
            ("62", vec!["c", "a"]),
            ("63", vec!["b", "c"]),
        ] {
            t.push_row(&[age], &tx).unwrap();
        }
        t
    }

    #[allow(clippy::too_many_arguments)]
    fn input<'a>(
        t: &'a RtTable,
        hs: &'a [Hierarchy],
        item_h: &'a Hierarchy,
        k: usize,
        m: usize,
        delta: usize,
        rel: RelationalAlgorithm,
        tx: TransactionAlgorithm,
        b: BoundingMethod,
    ) -> RtInput<'a> {
        RtInput {
            table: t,
            qi_attrs: vec![0],
            hierarchies: hs.to_vec(),
            item_hierarchy: Some(item_h),
            k,
            m,
            delta,
            rel_algo: rel,
            tx_algo: tx,
            bounding: b,
            privacy: None,
            utility: None,
            seed: 7,
        }
    }

    fn hierarchies(t: &RtTable) -> (Vec<Hierarchy>, Hierarchy) {
        let hs = vec![auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap()];
        let ih = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        (hs, ih)
    }

    #[test]
    fn all_sixty_combinations_satisfy_k_km() {
        let t = table();
        let (hs, ih) = hierarchies(&t);
        for rel in RelationalAlgorithm::all() {
            for tx in TransactionAlgorithm::all() {
                for b in BoundingMethod::all() {
                    let i = input(&t, &hs, &ih, 2, 2, 2, rel, tx, b);
                    let out = anonymize(&i).expect("combination must run");
                    let km_m = match tx {
                        // VPA guarantees k^m per part; check m=1 globally
                        TransactionAlgorithm::Vpa { .. } => 1,
                        // COAT/PCTA protect single items by default
                        TransactionAlgorithm::Coat | TransactionAlgorithm::Pcta => 1,
                        _ => 2,
                    };
                    assert!(
                        is_k_km_anonymous(&out.anon, 2, km_m),
                        "{rel:?}+{tx:?}+{b:?}"
                    );
                    assert!(
                        out.anon.is_truthful(&t, |a| Some(hs[a].clone()), Some(&ih)),
                        "{rel:?}+{tx:?}+{b:?} truthfulness"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_trades_relational_for_transaction_utility() {
        let t = table();
        let (hs, ih) = hierarchies(&t);
        let run = |delta| {
            let i = input(
                &t,
                &hs,
                &ih,
                2,
                2,
                delta,
                RelationalAlgorithm::Cluster,
                TransactionAlgorithm::Apriori,
                BoundingMethod::RMerge,
            );
            anonymize(&i).unwrap()
        };
        let d1 = run(1);
        let d4 = run(4);
        let rel_loss = |o: &RtOutput| secreta_metrics::gcp(&t, &o.anon, |_| Some(hs[0].clone()));
        let tx_loss = |o: &RtOutput| secreta_metrics::transaction_gcp(&t, &o.anon, Some(&ih));
        // merging clusters can only coarsen the relational side...
        assert!(rel_loss(&d4) >= rel_loss(&d1) - 1e-9);
        // ...and gives the transaction side more room (never worse)
        assert!(tx_loss(&d4) <= tx_loss(&d1) + 1e-9);
    }

    #[test]
    fn phases_include_all_stages() {
        let t = table();
        let (hs, ih) = hierarchies(&t);
        let i = input(
            &t,
            &hs,
            &ih,
            2,
            2,
            2,
            RelationalAlgorithm::Cluster,
            TransactionAlgorithm::Apriori,
            BoundingMethod::RtMerge,
        );
        let out = anonymize(&i).unwrap();
        for phase in [
            "relational partitioning",
            "cluster merging",
            "transaction anonymization",
            "publish",
        ] {
            assert!(out.phases.get(phase).is_some(), "missing {phase}");
        }
        // regression: the relational sub-run's phases must be spliced
        // in at their execution position (they used to land after
        // "publish")
        let pos = |name: &str| {
            out.phases
                .phases
                .iter()
                .position(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert!(pos("Cluster/setup") < pos("relational partitioning"));
        assert!(pos("Cluster/recode") < pos("cluster merging"));
    }

    #[test]
    fn missing_transaction_attribute_rejected() {
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30"], &[]).unwrap();
        let hs = vec![auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap()];
        let i = RtInput {
            table: &t,
            qi_attrs: vec![0],
            hierarchies: hs.clone(),
            item_hierarchy: None,
            k: 1,
            m: 1,
            delta: 1,
            rel_algo: RelationalAlgorithm::Cluster,
            tx_algo: TransactionAlgorithm::Coat,
            bounding: BoundingMethod::RMerge,
            privacy: None,
            utility: None,
            seed: 0,
        };
        assert!(matches!(anonymize(&i), Err(RtError::BadInput(_))));
    }

    #[test]
    fn infeasible_k_propagates_from_relational_stage() {
        let t = table();
        let (hs, ih) = hierarchies(&t);
        let i = input(
            &t,
            &hs,
            &ih,
            100,
            1,
            1,
            RelationalAlgorithm::Incognito,
            TransactionAlgorithm::Apriori,
            BoundingMethod::RMerge,
        );
        assert!(matches!(anonymize(&i), Err(RtError::Rel(_))));
    }

    #[test]
    fn feasibility_repair_merges_clusters_with_empty_transactions() {
        // clusters can end up with fewer than k non-empty transactions;
        // the pipeline must fuse and retry instead of failing
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30"], &["a"]).unwrap();
        t.push_row(&["31"], &[]).unwrap();
        t.push_row(&["60"], &["a"]).unwrap();
        t.push_row(&["61"], &[]).unwrap();
        let hs = vec![auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap()];
        let ih = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let i = input(
            &t,
            &hs,
            &ih,
            2,
            1,
            1,
            RelationalAlgorithm::Cluster,
            TransactionAlgorithm::Apriori,
            BoundingMethod::RMerge,
        );
        let out = anonymize(&i).unwrap();
        assert!(is_k_km_anonymous(&out.anon, 2, 1));
    }
}

#[cfg(test)]
mod repair_edge_tests {
    use super::*;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::auto_hierarchy;

    /// When even the fully merged dataset cannot satisfy the
    /// transaction stage, the error must surface instead of looping.
    #[test]
    fn exhausted_merging_reports_tx_error() {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        // only one non-empty transaction in the whole dataset: k=2 on
        // the transaction side is unreachable even after full merging
        t.push_row(&["30"], &["a"]).unwrap();
        t.push_row(&["31"], &[]).unwrap();
        t.push_row(&["60"], &[]).unwrap();
        t.push_row(&["61"], &[]).unwrap();
        let hs = vec![auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap()];
        let ih = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let input = RtInput {
            table: &t,
            qi_attrs: vec![0],
            hierarchies: hs,
            item_hierarchy: Some(&ih),
            k: 2,
            m: 1,
            delta: 1,
            rel_algo: RelationalAlgorithm::Cluster,
            tx_algo: TransactionAlgorithm::Apriori,
            bounding: BoundingMethod::RMerge,
            privacy: None,
            utility: None,
            seed: 0,
        };
        assert!(matches!(anonymize(&input), Err(RtError::Tx(_))));
    }

    /// Repair that triggers while later clusters are pending must not
    /// corrupt the results/clusters bookkeeping (j > idx branch).
    #[test]
    fn forward_merge_repair_keeps_alignment() {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        // cluster A (ages 30-31): both rows non-empty;
        // cluster B (ages 60-61): only one non-empty -> infeasible at
        // k=2 until it merges with A
        t.push_row(&["30"], &["a"]).unwrap();
        t.push_row(&["31"], &["a"]).unwrap();
        t.push_row(&["60"], &["a"]).unwrap();
        t.push_row(&["61"], &[]).unwrap();
        let hs = vec![auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap()];
        let ih = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let input = RtInput {
            table: &t,
            qi_attrs: vec![0],
            hierarchies: hs,
            item_hierarchy: Some(&ih),
            k: 2,
            m: 1,
            delta: 1,
            rel_algo: RelationalAlgorithm::Cluster,
            tx_algo: TransactionAlgorithm::Apriori,
            bounding: BoundingMethod::RMerge,
            privacy: None,
            utility: None,
            seed: 3,
        };
        let out = anonymize(&input).unwrap();
        assert!(crate::verify::is_k_km_anonymous(&out.anon, 2, 1));
        assert_eq!(out.anon.n_rows, 4);
    }
}
