//! Cluster merging — the bounding methods.

use secreta_data::hash::FxHashSet;
use secreta_data::RtTable;
use secreta_hierarchy::{Hierarchy, NodeId};
use std::fmt;

/// The three bounding methods of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundingMethod {
    /// Merge by relational proximity (RMERGE / "Rmerger").
    RMerge,
    /// Merge by transaction similarity (TMERGE / "Tmerger").
    TMerge,
    /// Merge by the combined, normalized criterion (RTMERGE /
    /// "RTmerger").
    RtMerge,
}

impl BoundingMethod {
    /// Display name as the paper spells it.
    pub fn name(self) -> &'static str {
        match self {
            BoundingMethod::RMerge => "Rmerger",
            BoundingMethod::TMerge => "Tmerger",
            BoundingMethod::RtMerge => "RTmerger",
        }
    }

    /// All three methods.
    pub fn all() -> [BoundingMethod; 3] {
        [
            BoundingMethod::RMerge,
            BoundingMethod::TMerge,
            BoundingMethod::RtMerge,
        ]
    }
}

impl fmt::Display for BoundingMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A cluster's summary used by the merge criteria: per-QI LCA nodes
/// and the set of items its transactions contain.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Member rows.
    pub rows: Vec<usize>,
    /// LCA node per QI attribute (parallel to the input's
    /// hierarchies).
    pub lcas: Vec<NodeId>,
    /// Distinct items in the cluster's transactions, sorted.
    pub items: Vec<u32>,
}

impl ClusterSummary {
    /// Summarize the rows of one cluster.
    pub fn new(
        table: &RtTable,
        rows: Vec<usize>,
        qi_attrs: &[usize],
        hierarchies: &[Hierarchy],
    ) -> ClusterSummary {
        let lcas = qi_attrs
            .iter()
            .enumerate()
            .map(|(pos, &attr)| {
                hierarchies[pos]
                    .lca_of_values(rows.iter().map(|&r| table.value(r, attr).0))
                    .expect("cluster is non-empty")
            })
            .collect();
        let mut items: FxHashSet<u32> = FxHashSet::default();
        for &r in &rows {
            items.extend(table.transaction(r).iter().map(|it| it.0));
        }
        let mut items: Vec<u32> = items.into_iter().collect();
        items.sort_unstable();
        ClusterSummary { rows, lcas, items }
    }

    /// Merge `other` into `self`.
    pub fn absorb(&mut self, other: ClusterSummary, hierarchies: &[Hierarchy]) {
        self.rows.extend(other.rows);
        for (pos, h) in hierarchies.iter().enumerate() {
            self.lcas[pos] = h.lca(self.lcas[pos], other.lcas[pos]);
        }
        let mut merged = Vec::with_capacity(self.items.len() + other.items.len());
        merged.extend_from_slice(&self.items);
        merged.extend_from_slice(&other.items);
        merged.sort_unstable();
        merged.dedup();
        self.items = merged;
    }

    /// Relational merge cost: mean NCP of the merged LCAs (0 = merging
    /// identical clusters, 1 = merging forces every attribute to the
    /// root).
    pub fn rel_distance(&self, other: &ClusterSummary, hierarchies: &[Hierarchy]) -> f64 {
        if hierarchies.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for (pos, h) in hierarchies.iter().enumerate() {
            sum += h.ncp(h.lca(self.lcas[pos], other.lcas[pos]));
        }
        sum / hierarchies.len() as f64
    }

    /// Transaction merge cost: Jaccard distance of the clusters' item
    /// sets (0 = identical item usage, 1 = disjoint).
    pub fn tx_distance(&self, other: &ClusterSummary) -> f64 {
        if self.items.is_empty() && other.items.is_empty() {
            return 0.0;
        }
        let mut inter = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.items.len() && j < other.items.len() {
            match self.items[i].cmp(&other.items[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = self.items.len() + other.items.len() - inter;
        1.0 - inter as f64 / union as f64
    }

    /// The selected method's distance.
    pub fn distance(
        &self,
        other: &ClusterSummary,
        method: BoundingMethod,
        hierarchies: &[Hierarchy],
    ) -> f64 {
        match method {
            BoundingMethod::RMerge => self.rel_distance(other, hierarchies),
            BoundingMethod::TMerge => self.tx_distance(other),
            BoundingMethod::RtMerge => {
                0.5 * self.rel_distance(other, hierarchies) + 0.5 * self.tx_distance(other)
            }
        }
    }
}

/// Greedily merge `clusters` into super-clusters of at most `delta`
/// original clusters each, choosing partners by the method's
/// distance. `delta = 1` leaves the partition untouched.
pub fn merge_clusters(
    mut clusters: Vec<ClusterSummary>,
    method: BoundingMethod,
    hierarchies: &[Hierarchy],
    delta: usize,
) -> Vec<ClusterSummary> {
    let delta = delta.max(1);
    if delta == 1 || clusters.len() <= 1 {
        return clusters;
    }
    // process seeds in descending size: big clusters attract partners
    clusters.sort_by_key(|c| std::cmp::Reverse(c.rows.len()));
    let mut consumed = vec![false; clusters.len()];
    let mut out: Vec<ClusterSummary> = Vec::new();
    for i in 0..clusters.len() {
        if consumed[i] {
            continue;
        }
        consumed[i] = true;
        let mut acc = clusters[i].clone();
        let mut absorbed = 1usize;
        while absorbed < delta {
            let mut best: Option<(usize, f64)> = None;
            for (j, cand) in clusters.iter().enumerate() {
                if consumed[j] {
                    continue;
                }
                let d = acc.distance(cand, method, hierarchies);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((j, d));
                }
            }
            match best {
                Some((j, _)) => {
                    consumed[j] = true;
                    acc.absorb(clusters[j].clone(), hierarchies);
                    absorbed += 1;
                }
                None => break,
            }
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30"], &["a", "b"]).unwrap(); // rows 0,1: young, items ab
        t.push_row(&["31"], &["a", "b"]).unwrap();
        t.push_row(&["60"], &["a", "b"]).unwrap(); // rows 2,3: old, items ab
        t.push_row(&["61"], &["b", "a"]).unwrap();
        t.push_row(&["32"], &["x", "y"]).unwrap(); // rows 4,5: young, items xy
        t.push_row(&["33"], &["y", "x"]).unwrap();
        t
    }

    fn hier(t: &RtTable) -> Vec<Hierarchy> {
        vec![auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap()]
    }

    fn summaries(t: &RtTable, hs: &[Hierarchy]) -> Vec<ClusterSummary> {
        vec![
            ClusterSummary::new(t, vec![0, 1], &[0], hs),
            ClusterSummary::new(t, vec![2, 3], &[0], hs),
            ClusterSummary::new(t, vec![4, 5], &[0], hs),
        ]
    }

    #[test]
    fn summary_contents() {
        let t = table();
        let hs = hier(&t);
        let s = ClusterSummary::new(&t, vec![0, 1], &[0], &hs);
        assert_eq!(s.rows, vec![0, 1]);
        assert_eq!(s.items.len(), 2);
        // ages 30,31 are adjacent: LCA well below the root
        assert!(hs[0].ncp(s.lcas[0]) < 0.5);
    }

    #[test]
    fn rel_distance_prefers_adjacent_ages() {
        let t = table();
        let hs = hier(&t);
        let s = summaries(&t, &hs);
        // cluster 0 (30,31) vs cluster 2 (32,33) — near in age
        let near = s[0].rel_distance(&s[2], &hs);
        // cluster 0 vs cluster 1 (60,61) — far in age
        let far = s[0].rel_distance(&s[1], &hs);
        assert!(near < far, "near={near} far={far}");
    }

    #[test]
    fn tx_distance_prefers_shared_items() {
        let t = table();
        let hs = hier(&t);
        let s = summaries(&t, &hs);
        assert_eq!(s[0].tx_distance(&s[1]), 0.0, "identical item sets");
        assert_eq!(s[0].tx_distance(&s[2]), 1.0, "disjoint item sets");
    }

    #[test]
    fn rmerge_and_tmerge_pick_different_partners() {
        let t = table();
        let hs = hier(&t);
        let s = summaries(&t, &hs);
        // from cluster 0's perspective:
        let r_near = s[0].distance(&s[2], BoundingMethod::RMerge, &hs)
            < s[0].distance(&s[1], BoundingMethod::RMerge, &hs);
        let t_near = s[0].distance(&s[1], BoundingMethod::TMerge, &hs)
            < s[0].distance(&s[2], BoundingMethod::TMerge, &hs);
        assert!(r_near, "RMERGE prefers the age-adjacent cluster");
        assert!(t_near, "TMERGE prefers the item-identical cluster");
    }

    #[test]
    fn merge_respects_delta() {
        let t = table();
        let hs = hier(&t);
        let merged1 = merge_clusters(summaries(&t, &hs), BoundingMethod::RMerge, &hs, 1);
        assert_eq!(merged1.len(), 3, "delta=1 is a no-op");
        let merged2 = merge_clusters(summaries(&t, &hs), BoundingMethod::RMerge, &hs, 2);
        assert_eq!(merged2.len(), 2);
        let merged9 = merge_clusters(summaries(&t, &hs), BoundingMethod::RMerge, &hs, 9);
        assert_eq!(merged9.len(), 1);
        // all rows preserved
        let total: usize = merged9[0].rows.len();
        assert_eq!(total, 6);
    }

    #[test]
    fn absorb_updates_lcas_and_items() {
        let t = table();
        let hs = hier(&t);
        let s = summaries(&t, &hs);
        let mut acc = s[0].clone();
        acc.absorb(s[2].clone(), &hs);
        assert_eq!(acc.rows.len(), 4);
        assert_eq!(acc.items.len(), 4);
        assert!(hs[0].is_ancestor_or_self(acc.lcas[0], s[0].lcas[0]));
    }

    #[test]
    fn empty_transaction_clusters_have_zero_distance() {
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["1"], &[]).unwrap();
        t.push_row(&["2"], &[]).unwrap();
        let hs = vec![auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap()];
        let a = ClusterSummary::new(&t, vec![0], &[0], &hs);
        let b = ClusterSummary::new(&t, vec![1], &[0], &hs);
        assert_eq!(a.tx_distance(&b), 0.0);
    }
}
