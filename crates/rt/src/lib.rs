//! # secreta-rt
//!
//! (k, k^m)-anonymization of RT-datasets — datasets with relational
//! *and* transaction attributes — following Poulis, Loukides,
//! Gkoulalas-Divanis, Skiadopoulos (ECML/PKDD 2013), which SECRETA
//! exposes as its three **bounding methods**:
//!
//! * **RMERGE** (`Rmerger`) — clusters are merged by *relational*
//!   proximity (smallest NCP increase of the merged generalization);
//! * **TMERGE** (`Tmerger`) — clusters are merged by *transaction*
//!   similarity (largest overlap of their item sets);
//! * **RTMERGE** (`RTmerger`) — by the normalized combination of both.
//!
//! The pipeline: a relational algorithm partitions the records into
//! equivalence classes of at least `k` (any of the four in
//! `secreta-relational`), the bounding method merges up to `δ`
//! clusters into super-clusters (trading relational utility for
//! transaction utility), and a transaction algorithm (any of the five
//! in `secreta-transaction`) enforces k^m-anonymity (or the policies)
//! *inside each super-cluster*. Every pair of the 4×5 algorithm
//! choices is accepted — the paper's "20 different combinations".
//!
//! The resulting guarantee, verifiable via [`is_k_km_anonymous`]:
//! each record shares its relational generalization with ≥ k−1
//! others, and within each such class every itemset of ≤ m published
//! items appears ≥ k times.

pub mod merge;
pub mod pipeline;
pub mod verify;

pub use merge::BoundingMethod;
pub use pipeline::{anonymize, RtError, RtInput, RtOutput};
pub use verify::is_k_km_anonymous;
