//! Policy data model.

use secreta_data::hash::FxHashSet;
use secreta_data::{ItemId, RtTable};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while building or parsing policies.
#[derive(Debug, PartialEq, Eq)]
pub enum PolicyError {
    /// An item label in a policy file is not in the dataset's universe.
    UnknownItem { line: usize, item: String },
    /// A constraint was empty.
    EmptyConstraint { line: usize },
    /// Underlying I/O failure, stringified.
    Io(String),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::UnknownItem { line, item } => {
                write!(f, "policy line {line}: unknown item {item:?}")
            }
            PolicyError::EmptyConstraint { line } => {
                write!(f, "policy line {line}: empty constraint")
            }
            PolicyError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PolicyError {}

/// A privacy policy: itemsets that must be `k`-protected.
///
/// A published dataset satisfies the policy at level `k` iff each
/// constraint's itemset is supported by **zero or at least `k`**
/// transactions (COAT's privacy model; a single-item constraint is the
/// common case).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrivacyPolicy {
    /// Constraints; each inner vec is sorted and duplicate-free.
    pub constraints: Vec<Vec<ItemId>>,
}

impl PrivacyPolicy {
    /// Normalize (sort/dedup constraints, drop empties, dedup equal
    /// constraints) and build.
    pub fn new(mut constraints: Vec<Vec<ItemId>>) -> Self {
        for c in &mut constraints {
            c.sort_unstable();
            c.dedup();
        }
        constraints.retain(|c| !c.is_empty());
        constraints.sort();
        constraints.dedup();
        Self { constraints }
    }

    /// Every single item of `table`'s universe as its own constraint —
    /// the default "protect everything" policy COAT assumes absent an
    /// explicit specification.
    pub fn all_items(table: &RtTable) -> Self {
        Self {
            constraints: (0..table.item_universe() as u32)
                .map(|i| vec![ItemId(i)])
                .collect(),
        }
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Support of each constraint in `table` (number of transactions
    /// containing the whole itemset).
    pub fn supports(&self, table: &RtTable) -> Vec<u64> {
        let mut sup = vec![0u64; self.constraints.len()];
        for row in 0..table.n_rows() {
            let tx = table.transaction(row);
            'cons: for (ci, c) in self.constraints.iter().enumerate() {
                for it in c {
                    if tx.binary_search(it).is_err() {
                        continue 'cons;
                    }
                }
                sup[ci] += 1;
            }
        }
        sup
    }

    /// Indices of constraints violated in `table` at protection level
    /// `k` (support strictly between 0 and `k`).
    pub fn violations(&self, table: &RtTable, k: u64) -> Vec<usize> {
        self.supports(table)
            .into_iter()
            .enumerate()
            .filter(|&(_, s)| s > 0 && s < k)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A utility policy: groups of interchangeable items.
///
/// A generalized item (set of original items) is **admissible** iff it
/// is a subset of at least one group. Items belonging to no group may
/// only be published unchanged or suppressed.
///
/// ```
/// use secreta_data::ItemId;
/// use secreta_policy::UtilityPolicy;
///
/// // {0,1} may merge; 2 stays alone
/// let u = UtilityPolicy::new(vec![vec![ItemId(0), ItemId(1)]]);
/// assert!(u.admits(&[ItemId(0), ItemId(1)]));
/// assert!(!u.admits(&[ItemId(1), ItemId(2)]));
/// assert!(u.admits(&[ItemId(2)])); // singletons always pass
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UtilityPolicy {
    /// Groups; each inner vec is sorted and duplicate-free.
    pub groups: Vec<Vec<ItemId>>,
}

impl UtilityPolicy {
    /// Normalize and build.
    pub fn new(mut groups: Vec<Vec<ItemId>>) -> Self {
        for g in &mut groups {
            g.sort_unstable();
            g.dedup();
        }
        groups.retain(|g| !g.is_empty());
        groups.sort();
        groups.dedup();
        Self { groups }
    }

    /// The unconstrained policy: one group spanning `table`'s whole
    /// item universe (any generalization admissible).
    pub fn unconstrained(table: &RtTable) -> Self {
        Self {
            groups: vec![(0..table.item_universe() as u32).map(ItemId).collect()],
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no groups are present.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Is the generalized item `items` (sorted) admissible — i.e.
    /// contained in some group? Singletons are always admissible.
    pub fn admits(&self, items: &[ItemId]) -> bool {
        if items.len() <= 1 {
            return true;
        }
        self.groups
            .iter()
            .any(|g| items.iter().all(|it| g.binary_search(it).is_ok()))
    }

    /// Items of group `g` that may be merged with `item` — the
    /// candidate pool COAT draws generalizations from. Union over all
    /// groups containing `item`.
    pub fn mergeable_with(&self, item: ItemId) -> Vec<ItemId> {
        let mut out: FxHashSet<ItemId> = FxHashSet::default();
        for g in &self.groups {
            if g.binary_search(&item).is_ok() {
                out.extend(g.iter().copied());
            }
        }
        out.remove(&item);
        let mut v: Vec<ItemId> = out.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Fraction of `table`'s item universe covered by at least one
    /// group (diagnostic shown by the Configuration Editor).
    pub fn coverage(&self, table: &RtTable) -> f64 {
        let universe = table.item_universe();
        if universe == 0 {
            return 1.0;
        }
        let mut covered = vec![false; universe];
        for g in &self.groups {
            for it in g {
                if it.index() < universe {
                    covered[it.index()] = true;
                }
            }
        }
        covered.iter().filter(|&&b| b).count() as f64 / universe as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, Schema};

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["a", "b"]).unwrap(); // a=0 b=1
        t.push_row(&[], &["a"]).unwrap();
        t.push_row(&[], &["b", "c"]).unwrap(); // c=2
        t.push_row(&[], &["c", "d"]).unwrap(); // d=3
        t
    }

    #[test]
    fn supports_and_violations() {
        let t = table();
        let p = PrivacyPolicy::new(vec![
            vec![ItemId(0)],            // sup 2
            vec![ItemId(3)],            // sup 1
            vec![ItemId(1), ItemId(2)], // sup 1
            vec![ItemId(0), ItemId(3)], // sup 0
        ]);
        // constraints are normalized into sorted order:
        // [a], [a,d], [b,c], [d]
        assert_eq!(p.supports(&t), vec![2, 0, 1, 1]);
        // k=2: constraints with support 1 violate; support 0 is fine
        let v = p.violations(&t, 2);
        assert_eq!(v.len(), 2);
        assert!(p.violations(&t, 1).is_empty());
    }

    #[test]
    fn normalization_dedups() {
        let p = PrivacyPolicy::new(vec![
            vec![ItemId(1), ItemId(0), ItemId(1)],
            vec![ItemId(0), ItemId(1)],
            vec![],
        ]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.constraints[0], vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    fn all_items_policy() {
        let t = table();
        let p = PrivacyPolicy::all_items(&t);
        assert_eq!(p.len(), 4);
        assert!(p.constraints.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn utility_admits_subsets_of_groups() {
        let u = UtilityPolicy::new(vec![
            vec![ItemId(0), ItemId(1), ItemId(2)],
            vec![ItemId(2), ItemId(3)],
        ]);
        assert!(u.admits(&[ItemId(0), ItemId(1)]));
        assert!(u.admits(&[ItemId(0), ItemId(1), ItemId(2)]));
        assert!(u.admits(&[ItemId(2), ItemId(3)]));
        assert!(!u.admits(&[ItemId(1), ItemId(3)]));
        assert!(u.admits(&[ItemId(3)]), "singletons always admissible");
        assert!(u.admits(&[]));
    }

    #[test]
    fn mergeable_with_unions_groups() {
        let u = UtilityPolicy::new(vec![
            vec![ItemId(0), ItemId(1), ItemId(2)],
            vec![ItemId(2), ItemId(3)],
        ]);
        assert_eq!(
            u.mergeable_with(ItemId(2)),
            vec![ItemId(0), ItemId(1), ItemId(3)]
        );
        assert_eq!(u.mergeable_with(ItemId(3)), vec![ItemId(2)]);
        assert!(u.mergeable_with(ItemId(9)).is_empty());
    }

    #[test]
    fn unconstrained_covers_everything() {
        let t = table();
        let u = UtilityPolicy::unconstrained(&t);
        assert_eq!(u.len(), 1);
        assert_eq!(u.coverage(&t), 1.0);
        assert!(u.admits(&[ItemId(0), ItemId(3)]));
    }

    #[test]
    fn coverage_partial() {
        let t = table();
        let u = UtilityPolicy::new(vec![vec![ItemId(0), ItemId(1)]]);
        assert!((u.coverage(&t) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_universe_coverage_is_one() {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let t = RtTable::new(schema);
        assert_eq!(UtilityPolicy::default().coverage(&t), 1.0);
    }
}
