//! Policy file format.
//!
//! One constraint/group per line, item labels separated by spaces.
//! Lines starting with `#` are comments. The same format serves
//! privacy and utility policies (the Configuration Editor keeps them
//! in separate files):
//!
//! ```text
//! # privacy policy: these itemsets must be k-protected
//! herpes
//! hiv pregnancy
//! ```

use crate::model::{PolicyError, PrivacyPolicy, UtilityPolicy};
use secreta_data::{ItemId, RtTable};
use std::io::{BufRead, BufReader, Read, Write};

fn read_itemset_lines<R: Read>(
    reader: R,
    table: &RtTable,
) -> Result<Vec<Vec<ItemId>>, PolicyError> {
    let pool = table
        .item_pool()
        .ok_or_else(|| PolicyError::Io("dataset has no transaction attribute".into()))?;
    let mut out = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| PolicyError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut items = Vec::new();
        for token in trimmed.split_whitespace() {
            let id = pool.get(token).ok_or_else(|| PolicyError::UnknownItem {
                line: lineno + 1,
                item: token.to_owned(),
            })?;
            items.push(ItemId(id));
        }
        if items.is_empty() {
            return Err(PolicyError::EmptyConstraint { line: lineno + 1 });
        }
        out.push(items);
    }
    Ok(out)
}

fn write_itemset_lines<W: Write>(
    sets: &[Vec<ItemId>],
    table: &RtTable,
    writer: &mut W,
) -> Result<(), PolicyError> {
    let pool = table
        .item_pool()
        .ok_or_else(|| PolicyError::Io("dataset has no transaction attribute".into()))?;
    for set in sets {
        let labels: Vec<&str> = set.iter().map(|it| pool.resolve(it.0)).collect();
        writeln!(writer, "{}", labels.join(" ")).map_err(|e| PolicyError::Io(e.to_string()))?;
    }
    Ok(())
}

/// Parse a privacy policy against `table`'s item universe.
pub fn read_privacy<R: Read>(reader: R, table: &RtTable) -> Result<PrivacyPolicy, PolicyError> {
    Ok(PrivacyPolicy::new(read_itemset_lines(reader, table)?))
}

/// Parse a utility policy against `table`'s item universe.
pub fn read_utility<R: Read>(reader: R, table: &RtTable) -> Result<UtilityPolicy, PolicyError> {
    Ok(UtilityPolicy::new(read_itemset_lines(reader, table)?))
}

/// Serialize a privacy policy (Data Export Module).
pub fn write_privacy<W: Write>(
    policy: &PrivacyPolicy,
    table: &RtTable,
    writer: &mut W,
) -> Result<(), PolicyError> {
    write_itemset_lines(&policy.constraints, table, writer)
}

/// Serialize a utility policy (Data Export Module).
pub fn write_utility<W: Write>(
    policy: &UtilityPolicy,
    table: &RtTable,
    writer: &mut W,
) -> Result<(), PolicyError> {
    write_itemset_lines(&policy.groups, table, writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, Schema};

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["hiv", "flu", "cold"]).unwrap();
        t
    }

    #[test]
    fn privacy_roundtrip() {
        let t = table();
        let src = "# protected\nhiv\nflu cold\n";
        let p = read_privacy(src.as_bytes(), &t).unwrap();
        assert_eq!(p.len(), 2);
        let mut buf = Vec::new();
        write_privacy(&p, &t, &mut buf).unwrap();
        let p2 = read_privacy(buf.as_slice(), &t).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn utility_roundtrip() {
        let t = table();
        let src = "hiv flu\ncold\n";
        let u = read_utility(src.as_bytes(), &t).unwrap();
        assert_eq!(u.len(), 2);
        let mut buf = Vec::new();
        write_utility(&u, &t, &mut buf).unwrap();
        let u2 = read_utility(buf.as_slice(), &t).unwrap();
        assert_eq!(u, u2);
    }

    #[test]
    fn unknown_item_rejected_with_line() {
        let t = table();
        let err = read_privacy("hiv\nnope\n".as_bytes(), &t).unwrap_err();
        assert_eq!(
            err,
            PolicyError::UnknownItem {
                line: 2,
                item: "nope".into()
            }
        );
    }

    #[test]
    fn no_transaction_attribute_rejected() {
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let t = secreta_data::RtTable::new(schema);
        assert!(matches!(
            read_privacy("x\n".as_bytes(), &t),
            Err(PolicyError::Io(_))
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = table();
        let p = read_privacy("# c\n\nhiv\n".as_bytes(), &t).unwrap();
        assert_eq!(p.len(), 1);
    }
}
