//! # secreta-policy
//!
//! Privacy and utility policies for the constraint-based transaction
//! algorithms (COAT \[7\] and PCTA \[5\]).
//!
//! The paper's Configuration Editor: *"utility and privacy policies
//! … are only used by these two algorithms to model such
//! requirements. Hierarchies and policies can be uploaded from a
//! file, or automatically derived from the data, using the algorithms
//! in \[7\]."*
//!
//! * A **privacy policy** is a set of *privacy constraints*: itemsets
//!   whose support in the published data must be either 0 or at least
//!   `k` ([`PrivacyPolicy`]).
//! * A **utility policy** is a set of *utility constraints*: groups of
//!   semantically interchangeable items. A generalized item is
//!   admissible only if it stays within one group; items outside every
//!   group may only be published as-is or suppressed
//!   ([`UtilityPolicy`]).
//!
//! [`generate`] implements the automatic derivation strategies and
//! [`io`] the policy file format.

pub mod generate;
pub mod io;
pub mod model;

pub use generate::{generate_privacy, generate_utility, PrivacyStrategy, UtilityStrategy};
pub use model::{PolicyError, PrivacyPolicy, UtilityPolicy};
