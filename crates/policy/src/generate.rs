//! Automatic policy generation strategies.
//!
//! "Hierarchies and policies can be uploaded from a file, or
//! automatically derived from the data, using the algorithms in \[7\]".
//! The COAT paper derives privacy constraints from which items an
//! attacker plausibly knows, and utility constraints from which items
//! are interchangeable for the intended analysis. The strategies below
//! mirror its experimental setups.

use crate::model::{PrivacyPolicy, UtilityPolicy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use secreta_data::{stats::item_supports, ItemId, RtTable};
use secreta_hierarchy::Hierarchy;

/// How to derive privacy constraints from the data.
#[derive(Debug, Clone, PartialEq)]
pub enum PrivacyStrategy {
    /// Protect every single item (COAT's default adversary who may
    /// know any one item).
    AllItems,
    /// Protect only items whose relative support is below
    /// `max_support` — rare items are the identifying ones.
    RareItems {
        /// Support threshold as a fraction of `n_rows` in `(0, 1]`.
        max_support: f64,
    },
    /// Protect `count` random itemsets of size `size`, each sampled
    /// from an actual transaction (so supports are non-zero), modeling
    /// an adversary with `size` items of background knowledge.
    RandomItemsets {
        /// Itemset size (≥ 1).
        size: usize,
        /// Number of constraints to sample.
        count: usize,
        /// RNG seed for reproducibility.
        seed: u64,
    },
}

/// How to derive utility constraints from the data.
#[derive(Debug, Clone, PartialEq)]
pub enum UtilityStrategy {
    /// One group spanning the whole universe: any generalization is
    /// admissible.
    Unconstrained,
    /// Groups are the leaf sets under each hierarchy node at `depth`
    /// (semantically close items per the taxonomy).
    HierarchyLevel {
        /// Depth from the root; clamped to the hierarchy height.
        depth: u32,
    },
    /// Items banded into `bands` groups of similar support: analysts
    /// tolerate merging similarly-frequent items.
    FrequencyBands {
        /// Number of bands (≥ 1).
        bands: usize,
    },
}

/// Derive a privacy policy from `table` with `strategy`.
pub fn generate_privacy(table: &RtTable, strategy: &PrivacyStrategy) -> PrivacyPolicy {
    match strategy {
        PrivacyStrategy::AllItems => PrivacyPolicy::all_items(table),
        PrivacyStrategy::RareItems { max_support } => {
            let supports = item_supports(table);
            let n = table.n_rows().max(1) as f64;
            let constraints = supports
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s > 0 && (s as f64 / n) <= *max_support)
                .map(|(i, _)| vec![ItemId(i as u32)])
                .collect();
            PrivacyPolicy::new(constraints)
        }
        PrivacyStrategy::RandomItemsets { size, count, seed } => {
            let size = (*size).max(1);
            let mut rng = StdRng::seed_from_u64(*seed);
            let eligible: Vec<usize> = (0..table.n_rows())
                .filter(|&r| table.transaction(r).len() >= size)
                .collect();
            let mut constraints = Vec::with_capacity(*count);
            if eligible.is_empty() {
                return PrivacyPolicy::default();
            }
            // cap attempts so duplicate-heavy data cannot loop forever
            let mut attempts = 0usize;
            while constraints.len() < *count && attempts < count * 20 {
                attempts += 1;
                let row = eligible[rng.gen_range(0..eligible.len())];
                let tx = table.transaction(row);
                let mut picked: Vec<ItemId> = tx.choose_multiple(&mut rng, size).copied().collect();
                picked.sort_unstable();
                constraints.push(picked);
            }
            PrivacyPolicy::new(constraints)
        }
    }
}

/// Derive a utility policy from `table` with `strategy`.
/// `item_hierarchy` is required for [`UtilityStrategy::HierarchyLevel`].
pub fn generate_utility(
    table: &RtTable,
    strategy: &UtilityStrategy,
    item_hierarchy: Option<&Hierarchy>,
) -> UtilityPolicy {
    match strategy {
        UtilityStrategy::Unconstrained => UtilityPolicy::unconstrained(table),
        UtilityStrategy::HierarchyLevel { depth } => {
            let h = item_hierarchy.expect("HierarchyLevel strategy requires the item hierarchy");
            let depth = (*depth).min(h.height());
            let groups = h
                .nodes_at_depth(depth)
                .into_iter()
                .map(|n| {
                    let mut g: Vec<ItemId> = h.leaves_under(n).map(ItemId).collect();
                    g.sort_unstable();
                    g
                })
                .collect();
            UtilityPolicy::new(groups)
        }
        UtilityStrategy::FrequencyBands { bands } => {
            let bands = (*bands).max(1);
            let supports = item_supports(table);
            let mut order: Vec<usize> = (0..supports.len()).collect();
            order.sort_by_key(|&i| supports[i]);
            let per_band = order.len().div_ceil(bands).max(1);
            let groups = order
                .chunks(per_band)
                .map(|chunk| {
                    let mut g: Vec<ItemId> = chunk.iter().map(|&i| ItemId(i as u32)).collect();
                    g.sort_unstable();
                    g
                })
                .collect();
            UtilityPolicy::new(groups)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        // a frequent, b medium, c,d rare
        t.push_row(&[], &["a", "b"]).unwrap();
        t.push_row(&[], &["a", "b"]).unwrap();
        t.push_row(&[], &["a", "c"]).unwrap();
        t.push_row(&[], &["a", "d"]).unwrap();
        t
    }

    #[test]
    fn all_items_strategy() {
        let p = generate_privacy(&table(), &PrivacyStrategy::AllItems);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn rare_items_strategy_filters_by_support() {
        let t = table();
        let p = generate_privacy(&t, &PrivacyStrategy::RareItems { max_support: 0.3 });
        // only c and d have support 1/4 <= 0.3
        assert_eq!(p.len(), 2);
        for c in &p.constraints {
            assert!(c[0].0 >= 2, "only rare items protected: {c:?}");
        }
    }

    #[test]
    fn random_itemsets_are_supported_and_deterministic() {
        let t = table();
        let strat = PrivacyStrategy::RandomItemsets {
            size: 2,
            count: 5,
            seed: 7,
        };
        let p1 = generate_privacy(&t, &strat);
        let p2 = generate_privacy(&t, &strat);
        assert_eq!(p1, p2, "same seed, same policy");
        assert!(!p1.is_empty());
        for s in p1.supports(&t) {
            assert!(s > 0, "sampled itemsets come from real transactions");
        }
        for c in &p1.constraints {
            assert_eq!(c.len(), 2);
        }
    }

    #[test]
    fn random_itemsets_on_short_transactions() {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["x"]).unwrap();
        let p = generate_privacy(
            &t,
            &PrivacyStrategy::RandomItemsets {
                size: 3,
                count: 4,
                seed: 1,
            },
        );
        assert!(p.is_empty(), "no transaction long enough");
    }

    #[test]
    fn hierarchy_level_groups_follow_taxonomy() {
        let t = table();
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let u = generate_utility(&t, &UtilityStrategy::HierarchyLevel { depth: 1 }, Some(&h));
        assert!(u.len() >= 2);
        assert!((u.coverage(&t) - 1.0).abs() < 1e-12);
        // depth beyond the height clamps to leaves -> singleton groups
        let u_deep = generate_utility(&t, &UtilityStrategy::HierarchyLevel { depth: 99 }, Some(&h));
        assert!(u_deep.groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn frequency_bands_group_similar_supports() {
        let t = table();
        let u = generate_utility(&t, &UtilityStrategy::FrequencyBands { bands: 2 }, None);
        assert_eq!(u.len(), 2);
        assert!((u.coverage(&t) - 1.0).abs() < 1e-12);
        // the most frequent item 'a' (id 0) must not share a band with
        // the rarest items c,d (ids 2,3)
        let band_of_a = u
            .groups
            .iter()
            .position(|g| g.binary_search(&ItemId(0)).is_ok())
            .unwrap();
        assert!(u.groups[band_of_a].binary_search(&ItemId(2)).is_err());
    }

    #[test]
    fn unconstrained_strategy() {
        let t = table();
        let u = generate_utility(&t, &UtilityStrategy::Unconstrained, None);
        assert_eq!(u.len(), 1);
        assert_eq!(u.groups[0].len(), 4);
    }
}
