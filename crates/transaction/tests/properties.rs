//! Property tests of the transaction algorithms on randomized
//! databases: every guarantee re-verified from the published output.

use proptest::prelude::*;
use secreta_data::{Attribute, AttributeKind, ItemId, RtTable, Schema};
use secreta_hierarchy::auto_hierarchy;
use secreta_metrics::transaction_gcp;
use secreta_policy::{PrivacyPolicy, UtilityPolicy};
use secreta_transaction::rho::{self, RhoParams};
use secreta_transaction::{
    is_km_anonymous, is_rho_uncertain, satisfies_privacy, TransactionAlgorithm, TransactionInput,
    TxError,
};

fn build_table(rows: &[Vec<usize>], universe: usize) -> RtTable {
    let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
    let mut t = RtTable::new(schema);
    for i in 0..universe {
        t.intern_item(&format!("i{i:02}")).unwrap();
    }
    for tx in rows {
        let items: Vec<String> = tx.iter().map(|i| format!("i{:02}", i % universe)).collect();
        let refs: Vec<&str> = items.iter().map(String::as_str).collect();
        t.push_row(&[], &refs).unwrap();
    }
    t
}

fn rows_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..32, 1..6), 4..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn km_algorithms_protect_or_report(
        rows in rows_strategy(),
        universe in 4usize..12,
        k in 2usize..5,
        m in 1usize..3,
        fanout in 2usize..4,
    ) {
        let t = build_table(&rows, universe);
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, fanout)
            .unwrap();
        for algo in [
            TransactionAlgorithm::Apriori,
            TransactionAlgorithm::Lra { partitions: 2 },
        ] {
            let input = TransactionInput::km(&t, k, m, &h);
            match algo.run(&input) {
                Ok(out) => {
                    prop_assert!(
                        is_km_anonymous(&out.anon, k, m, Some(&h)),
                        "{algo:?} k={k} m={m}"
                    );
                    prop_assert!(out.anon.is_truthful(&t, |_| None, Some(&h)));
                    prop_assert!(out.anon.is_complete(&t, Some(&h)));
                }
                Err(TxError::Infeasible { .. }) => {
                    prop_assert!(t.n_rows() < k, "only tiny scopes may be infeasible");
                }
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
        // VPA with its per-part guarantee: global check at m=1
        let input = TransactionInput::km(&t, k, m, &h);
        let out = TransactionAlgorithm::Vpa { parts: 3 }.run(&input).unwrap();
        prop_assert!(is_km_anonymous(&out.anon, k, 1, Some(&h)));
        prop_assert!(out.anon.is_truthful(&t, |_| None, Some(&h)));
    }

    #[test]
    fn constraint_algorithms_always_satisfy_their_policy(
        rows in rows_strategy(),
        universe in 4usize..12,
        k in 2usize..6,
        n_groups in 1usize..4,
    ) {
        let t = build_table(&rows, universe);
        let privacy = PrivacyPolicy::all_items(&t);
        // random-ish banded utility policy derived from group count
        let per = universe.div_ceil(n_groups);
        let groups: Vec<Vec<ItemId>> = (0..universe as u32)
            .collect::<Vec<_>>()
            .chunks(per)
            .map(|c| c.iter().map(|&v| ItemId(v)).collect())
            .collect();
        let utility = UtilityPolicy::new(groups);
        for algo in [TransactionAlgorithm::Coat, TransactionAlgorithm::Pcta] {
            let input = TransactionInput::constrained(&t, k, &privacy, &utility);
            let out = algo.run(&input).expect("constraint repair always terminates");
            prop_assert!(
                satisfies_privacy(&out.anon, &privacy, k, None),
                "{algo:?} k={k}"
            );
            prop_assert!(out.anon.is_truthful(&t, |_| None, None));
            // every published generalized set respects the utility policy
            let tx = out.anon.tx.as_ref().unwrap();
            for e in &tx.domain {
                if let secreta_metrics::GenEntry::Set(s) = e {
                    let set: Vec<ItemId> = s.iter().map(|&v| ItemId(v)).collect();
                    prop_assert!(utility.admits(&set), "{algo:?}: {s:?}");
                }
            }
            let g = transaction_gcp(&t, &out.anon, None);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&g));
        }
    }

    #[test]
    fn rho_uncertainty_always_verifies(
        rows in rows_strategy(),
        universe in 4usize..10,
        rho_pct in 15u32..90,
        n_sensitive in 1usize..3,
        max_antecedent in 0usize..3,
    ) {
        let t = build_table(&rows, universe);
        let params = RhoParams {
            rho: rho_pct as f64 / 100.0,
            sensitive: (0..n_sensitive as u32).map(ItemId).collect(),
            max_antecedent,
        };
        let input = TransactionInput {
            table: &t,
            k: 1,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let out = rho::anonymize(&input, &params).expect("suppression always terminates");
        prop_assert!(is_rho_uncertain(&t, &out.anon, &params));
        prop_assert!(out.anon.is_truthful(&t, |_| None, None));
    }

    #[test]
    fn km_loss_is_monotone_in_m(
        rows in rows_strategy(),
        universe in 4usize..10,
        k in 2usize..4,
    ) {
        let t = build_table(&rows, universe);
        prop_assume!(t.n_rows() >= k);
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2)
            .unwrap();
        let loss_at = |m: usize| -> Option<f64> {
            let input = TransactionInput::km(&t, k, m, &h);
            TransactionAlgorithm::Apriori
                .run(&input)
                .ok()
                .map(|out| transaction_gcp(&t, &out.anon, Some(&h)))
        };
        if let (Some(l1), Some(l2)) = (loss_at(1), loss_at(2)) {
            prop_assert!(l1 <= l2 + 1e-9, "m=1 loss {l1} > m=2 loss {l2}");
        }
    }
}
