//! Cross-checks of the interned/parallel support kernels: every
//! ported algorithm must produce byte-identical output to its naive
//! reference counter on random RT-tables (random universes, duplicate
//! items, empty transactions) and at any thread count.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use secreta_data::{Attribute, AttributeKind, ItemId, RtTable, Schema};
use secreta_hierarchy::auto_hierarchy;
use secreta_transaction::{
    apriori, coat, lra, pcta, rho, rho_td, set_density_threshold, vpa, RhoParams, TransactionInput,
    TxError, TxOutput,
};
use std::sync::Mutex;

/// Tests here mutate process-global knobs (thread cap, bitmap density
/// threshold); they take this lock so the mutations never interleave.
static GLOBALS: Mutex<()> = Mutex::new(());

fn build_table(rows: &[Vec<usize>], universe: usize) -> RtTable {
    let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
    let mut t = RtTable::new(schema);
    for i in 0..universe {
        t.intern_item(&format!("i{i:02}")).unwrap();
    }
    for tx in rows {
        let items: Vec<String> = tx.iter().map(|i| format!("i{:02}", i % universe)).collect();
        let refs: Vec<&str> = items.iter().map(String::as_str).collect();
        t.push_row(&[], &refs).unwrap();
    }
    t
}

/// Transactions may be empty and may repeat items — both must be
/// handled identically by the naive and kernel counters.
fn rows_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..32, 0..6), 4..40)
}

fn agree(
    label: &str,
    fast: Result<TxOutput, TxError>,
    base: Result<TxOutput, TxError>,
) -> Result<(), TestCaseError> {
    match (fast, base) {
        (Ok(f), Ok(b)) => prop_assert_eq!(&f.anon, &b.anon, "{} diverged", label),
        (Err(_), Err(_)) => {}
        (f, b) => prop_assert!(
            false,
            "{label}: kernel ok={} but naive ok={}",
            f.is_ok(),
            b.is_ok()
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Every algorithm, kernel counters vs the naive reference, on the
    /// same random table: identical published output (or identical
    /// failure).
    #[test]
    fn kernels_agree_with_reference(
        rows in rows_strategy(),
        universe in 4usize..12,
        k in 2usize..5,
        m in 1usize..3,
        fanout in 2usize..4,
    ) {
        use secreta_transaction::Counting::{Kernel, Naive};
        let t = build_table(&rows, universe);
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, fanout)
            .unwrap();
        let km = TransactionInput::km(&t, k, m, &h);
        agree(
            "apriori",
            apriori::anonymize_with(&km, Kernel),
            apriori::anonymize_with(&km, Naive),
        )?;
        agree(
            "lra",
            lra::anonymize_with(&km, 2, Kernel),
            lra::anonymize_with(&km, 2, Naive),
        )?;
        agree(
            "vpa",
            vpa::anonymize_with(&km, 3, Kernel),
            vpa::anonymize_with(&km, 3, Naive),
        )?;
        let plain = TransactionInput {
            table: &t,
            k,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        agree(
            "coat",
            coat::anonymize_with(&plain, Kernel),
            coat::anonymize_with(&plain, Naive),
        )?;
        agree(
            "pcta",
            pcta::anonymize_with(&plain, Kernel),
            pcta::anonymize_with(&plain, Naive),
        )?;
        let params = RhoParams {
            rho: k as f64 / 10.0,
            sensitive: vec![ItemId(0), ItemId(1)],
            max_antecedent: m,
        };
        let rho_in = TransactionInput {
            table: &t,
            k: 1,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        agree(
            "rho",
            rho::anonymize_with(&rho_in, &params, Kernel),
            rho::anonymize_with(&rho_in, &params, Naive),
        )?;
        let td = TransactionInput::km(&t, 1, 1, &h);
        agree(
            "rho_td",
            rho_td::anonymize_with(&td, &params, Kernel),
            rho_td::anonymize_with(&td, &params, Naive),
        )?;
    }
}

/// Rows with two forced hot items — item 0 in every transaction and
/// item 1 in every other one — on top of a random sparse tail, so a
/// low density threshold puts both tiers in one table.
fn both_tier_rows(tail: &[Vec<usize>]) -> Vec<Vec<usize>> {
    tail.iter()
        .enumerate()
        .map(|(i, t)| {
            let mut row = vec![0usize];
            if i % 2 == 0 {
                row.push(1);
            }
            row.extend(t.iter().map(|&v| 2 + v));
            row
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Kernel-vs-naive agreement with the density threshold forced
    /// low enough that the hot items go dense while the random tail
    /// stays on CSR postings: every algorithm must produce identical
    /// output with mixed bitmap×CSR row sets in play.
    #[test]
    fn kernels_agree_with_both_tiers_forced(
        tail in prop::collection::vec(prop::collection::vec(0usize..24, 0..5), 8..40),
        k in 2usize..5,
    ) {
        use secreta_transaction::Counting::{Kernel, Naive};
        let _serial = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        let rows = both_tier_rows(&tail);
        let t = build_table(&rows, 26);
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 3)
            .unwrap();
        // items 0/1 clear 5% density by construction; singleton tail
        // items (1 posting in ≥ 8 rows) stay sparse
        set_density_threshold(Some(0.05));
        let km = TransactionInput::km(&t, k, 2, &h);
        let plain = TransactionInput {
            table: &t,
            k,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let params = RhoParams {
            rho: 0.5,
            sensitive: vec![ItemId(0), ItemId(2)],
            max_antecedent: 2,
        };
        let rho_in = TransactionInput {
            table: &t,
            k: 1,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let td = TransactionInput::km(&t, 1, 1, &h);
        let checks = [
            ("apriori", apriori::anonymize_with(&km, Kernel), apriori::anonymize_with(&km, Naive)),
            ("lra", lra::anonymize_with(&km, 2, Kernel), lra::anonymize_with(&km, 2, Naive)),
            ("vpa", vpa::anonymize_with(&km, 3, Kernel), vpa::anonymize_with(&km, 3, Naive)),
            ("coat", coat::anonymize_with(&plain, Kernel), coat::anonymize_with(&plain, Naive)),
            ("pcta", pcta::anonymize_with(&plain, Kernel), pcta::anonymize_with(&plain, Naive)),
            ("rho", rho::anonymize_with(&rho_in, &params, Kernel),
                rho::anonymize_with(&rho_in, &params, Naive)),
            ("rho_td", rho_td::anonymize_with(&td, &params, Kernel),
                rho_td::anonymize_with(&td, &params, Naive)),
        ];
        set_density_threshold(None);
        for (label, fast, base) in checks {
            agree(label, fast, base)?;
        }
    }
}

/// Deterministic skewed basket table, large enough to shard
/// (`support::MIN_ROWS_PER_SHARD` is 128).
fn demo_table(n_rows: usize, universe: usize, max_items: u64) -> RtTable {
    let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
    let mut t = RtTable::new(schema);
    for i in 0..universe {
        t.intern_item(&format!("i{i:02}")).unwrap();
    }
    let mut s: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for _ in 0..n_rows {
        let len = 1 + (next() % max_items) as usize;
        let items: Vec<String> = (0..len)
            .map(|_| {
                // quadratic skew: low ids frequent, high ids rare
                let r = (next() % universe as u64) as usize;
                format!("i{:02}", r * r / universe)
            })
            .collect();
        let refs: Vec<&str> = items.iter().map(String::as_str).collect();
        t.push_row(&[], &refs).unwrap();
    }
    t
}

/// Sharded counting must be byte-identical at any thread count, for
/// every ported algorithm. One test, sequential: the thread cap is
/// process-global, so the sweep must not interleave with itself.
#[test]
fn outputs_invariant_under_thread_count() {
    let _serial = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let t = demo_table(700, 40, 4);
    let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
    let km = TransactionInput::km(&t, 10, 2, &h);
    let plain = TransactionInput {
        table: &t,
        k: 10,
        m: 1,
        hierarchy: None,
        privacy: None,
        utility: None,
    };
    let rho_in = TransactionInput {
        table: &t,
        k: 1,
        m: 1,
        hierarchy: None,
        privacy: None,
        utility: None,
    };
    let td_in = TransactionInput::km(&t, 1, 1, &h);
    // rare items under the quadratic skew: realistic sensitive targets
    let params = RhoParams {
        rho: 0.3,
        sensitive: vec![ItemId(34), ItemId(37)],
        max_antecedent: 2,
    };
    type Run<'a> = (&'a str, Box<dyn Fn() -> secreta_metrics::AnonTable + 'a>);
    let algos: Vec<Run> = vec![
        (
            "apriori",
            Box::new(|| apriori::anonymize(&km).unwrap().anon),
        ),
        ("lra", Box::new(|| lra::anonymize(&km, 2).unwrap().anon)),
        ("vpa", Box::new(|| vpa::anonymize(&km, 4).unwrap().anon)),
        ("coat", Box::new(|| coat::anonymize(&plain).unwrap().anon)),
        ("pcta", Box::new(|| pcta::anonymize(&plain).unwrap().anon)),
        (
            "rho",
            Box::new(|| rho::anonymize(&rho_in, &params).unwrap().anon),
        ),
        (
            "rho_td",
            Box::new(|| rho_td::anonymize(&td_in, &params).unwrap().anon),
        ),
    ];
    for (name, run) in &algos {
        secreta_parallel::set_threads(1);
        let sequential = run();
        for threads in [2, 8] {
            secreta_parallel::set_threads(threads);
            let parallel = run();
            assert_eq!(parallel, sequential, "{name} differs at {threads} threads");
        }
    }
    secreta_parallel::set_threads(0); // restore the default cap
}

/// The tiered path specifically — density threshold forced low enough
/// that the skewed table's frequent items (and the merged groups
/// COAT/PCTA build) go dense — must stay byte-identical at 1/2/8
/// threads: the chunked popcount merges are the only place threading
/// touches the dense tier.
#[test]
fn tiered_outputs_invariant_under_thread_count() {
    let _serial = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let t = demo_table(700, 40, 4);
    let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
    let km = TransactionInput::km(&t, 10, 2, &h);
    let plain = TransactionInput {
        table: &t,
        k: 10,
        m: 1,
        hierarchy: None,
        privacy: None,
        utility: None,
    };
    set_density_threshold(Some(0.01));
    type Run<'a> = (&'a str, Box<dyn Fn() -> secreta_metrics::AnonTable + 'a>);
    let algos: Vec<Run> = vec![
        (
            "apriori",
            Box::new(|| apriori::anonymize(&km).unwrap().anon),
        ),
        ("coat", Box::new(|| coat::anonymize(&plain).unwrap().anon)),
        ("pcta", Box::new(|| pcta::anonymize(&plain).unwrap().anon)),
    ];
    for (name, run) in &algos {
        secreta_parallel::set_threads(1);
        let sequential = run();
        for threads in [2, 8] {
            secreta_parallel::set_threads(threads);
            let parallel = run();
            assert_eq!(
                parallel, sequential,
                "{name} (tiered) differs at {threads} threads"
            );
        }
    }
    secreta_parallel::set_threads(0);
    set_density_threshold(None);
}

/// The RuleCounts dirty-set port (rho / rho_td) specifically: with the
/// density threshold forced to zero, every dirty set computed by
/// `union_rowset` is a dense bitmap, so the `update_rowset` bitmap arm
/// is the only incremental path exercised — outputs must still match
/// the naive recount-everything oracle exactly.
#[test]
fn rule_counts_dense_dirty_sets_match_naive() {
    use secreta_transaction::Counting::{Kernel, Naive};
    let _serial = GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    let t = demo_table(300, 30, 5);
    let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
    let rho_in = TransactionInput {
        table: &t,
        k: 1,
        m: 1,
        hierarchy: None,
        privacy: None,
        utility: None,
    };
    let td_in = TransactionInput::km(&t, 1, 1, &h);
    // frequent low ids as sensitive targets force real suppressions
    // (large dirty sets) through the dense tier
    let params = RhoParams {
        rho: 0.2,
        sensitive: vec![ItemId(0), ItemId(3), ItemId(28)],
        max_antecedent: 2,
    };
    set_density_threshold(Some(0.0));
    let rho_fast = rho::anonymize_with(&rho_in, &params, Kernel);
    let td_fast = rho_td::anonymize_with(&td_in, &params, Kernel);
    set_density_threshold(None);
    let rho_base = rho::anonymize_with(&rho_in, &params, Naive);
    let td_base = rho_td::anonymize_with(&td_in, &params, Naive);
    assert_eq!(
        rho_fast.unwrap().anon,
        rho_base.unwrap().anon,
        "rho dense dirty sets diverged from the naive oracle"
    );
    assert_eq!(
        td_fast.unwrap().anon,
        td_base.unwrap().anon,
        "rho_td dense dirty sets diverged from the naive oracle"
    );
}
