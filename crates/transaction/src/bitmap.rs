//! Word-level bitmap row sets — the dense tier of the tiered
//! support-counting representation.
//!
//! The CSR posting lists of [`crate::support::InvertedIndex`] are the
//! right shape for *rare* items: a handful of sorted row positions,
//! intersected and unioned scalar-wise. For *hot* items (and for the
//! merged groups COAT/PCTA grow round after round) the row sets cover
//! a large fraction of the table, and the scalar set algebra becomes
//! the bottleneck: a union re-sorts tens of thousands of positions per
//! round, an intersection walks both lists element by element. This
//! module provides the dense alternative:
//!
//! * [`Bitset`] — one bit per row position, 64 rows per machine word.
//!   Union is word-wise `OR`, intersection word-wise `AND`,
//!   cardinality a `count_ones` popcount loop. The popcount loop is
//!   chunked through [`secreta_parallel::par_chunks`]; partial sums
//!   are integers merged in fixed chunk order, so the count is
//!   byte-identical at any thread count.
//! * [`RowSet`] — the tiered set: `Sparse` (sorted positions, the CSR
//!   representation) below the density threshold, `Dense` (a
//!   [`Bitset`]) above it. Mixed `Dense`×`Sparse` intersections probe
//!   each sparse position against the bitmap word it falls in — never
//!   materializing the dense side.
//!
//! The tier boundary is the **density threshold**: a row set whose
//! (estimated) cardinality is at least `threshold × n_rows` goes
//! dense. [`density_threshold`] resolves it from
//! [`set_density_threshold`] (tests, benchmarks), else the
//! `SECRETA_BITMAP_THRESHOLD` environment variable, else
//! [`DEFAULT_DENSITY_THRESHOLD`]. Setting a threshold above `1.0`
//! disables the dense tier entirely (no set can be that dense), which
//! is how `secreta bench --suite tiered` resurrects the pure-CSR
//! kernel as its baseline.
//!
//! Determinism: every operation here computes a set cardinality or a
//! sorted position list — values independent of the representation
//! *and* of the thread count. The tier a set lands in depends only on
//! the table and the threshold, never on scheduling.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default density threshold: row sets covering at least 1/16th of
/// the table go dense. A `Bitset` costs `n_rows / 8` bytes; at 1/16
/// density the sparse form would already spend ≥ 4 bytes per set row,
/// so the dense form is no larger and every operation on it is
/// word-parallel.
pub const DEFAULT_DENSITY_THRESHOLD: f64 = 1.0 / 16.0;

/// Sentinel for "no override installed".
const NO_OVERRIDE: u64 = u64::MAX;

/// Process-global override of the density threshold (f64 bits).
static THRESHOLD_OVERRIDE: AtomicU64 = AtomicU64::new(NO_OVERRIDE);

/// The override is process-global, so tests that mutate it must not
/// interleave; every such test takes this lock first.
#[cfg(test)]
pub(crate) static TEST_THRESHOLD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Force the bitmap density threshold for all subsequently built
/// indexes; `None` clears the override. Values above `1.0` disable
/// the dense tier (pure-CSR kernels, the PR-4 behaviour); `0.0` makes
/// every non-empty row set dense. Intended for tests and the
/// `bench --suite tiered` baseline.
pub fn set_density_threshold(t: Option<f64>) {
    let bits = match t {
        Some(v) => v.to_bits(),
        None => NO_OVERRIDE,
    };
    THRESHOLD_OVERRIDE.store(bits, Ordering::SeqCst);
}

/// The density threshold newly built indexes will snapshot: the
/// [`set_density_threshold`] override, else `SECRETA_BITMAP_THRESHOLD`,
/// else [`DEFAULT_DENSITY_THRESHOLD`].
pub fn density_threshold() -> f64 {
    let bits = THRESHOLD_OVERRIDE.load(Ordering::SeqCst);
    if bits != NO_OVERRIDE {
        return f64::from_bits(bits);
    }
    if let Ok(v) = std::env::var("SECRETA_BITMAP_THRESHOLD") {
        if let Ok(t) = v.trim().parse::<f64>() {
            if t >= 0.0 {
                return t;
            }
        }
    }
    DEFAULT_DENSITY_THRESHOLD
}

/// Words per [`secreta_parallel::par_chunks`] shard of a popcount
/// loop: 1 Mi rows per shard — popcounting is so cheap that smaller
/// shards would be pure spawn overhead.
const POPCOUNT_WORDS_PER_CHUNK: usize = 1 << 14;

/// A fixed-universe bit set over row positions `0..n_bits`.
///
/// Bits at positions `>= n_bits` (the tail of the last word) are kept
/// zero by every operation, so popcounts never need masking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    n_bits: usize,
}

impl Bitset {
    /// The empty set over a universe of `n_bits` positions.
    pub fn new(n_bits: usize) -> Bitset {
        Bitset {
            words: vec![0; n_bits.div_ceil(64)],
            n_bits,
        }
    }

    /// Build from sorted (or unsorted — bits commute) positions.
    pub fn from_positions(positions: &[u32], n_bits: usize) -> Bitset {
        let mut b = Bitset::new(n_bits);
        b.insert_all(positions);
        b
    }

    /// Universe size (not the cardinality).
    pub fn universe(&self) -> usize {
        self.n_bits
    }

    /// Set the bit at `pos`.
    #[inline]
    pub fn insert(&mut self, pos: u32) {
        debug_assert!((pos as usize) < self.n_bits);
        self.words[pos as usize >> 6] |= 1u64 << (pos & 63);
    }

    /// Set every bit in `positions`.
    pub fn insert_all(&mut self, positions: &[u32]) {
        for &p in positions {
            self.insert(p);
        }
    }

    /// Is the bit at `pos` set?
    #[inline]
    pub fn contains(&self, pos: u32) -> bool {
        let w = pos as usize >> 6;
        w < self.words.len() && self.words[w] & (1u64 << (pos & 63)) != 0
    }

    /// Word-wise union with `other` (same universe).
    pub fn union_with(&mut self, other: &Bitset) {
        debug_assert_eq!(self.n_bits, other.n_bits);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Word-wise intersection with `other` (same universe).
    pub fn intersect_with(&mut self, other: &Bitset) {
        debug_assert_eq!(self.n_bits, other.n_bits);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Word-wise difference: clear every bit set in `other`.
    pub fn subtract(&mut self, other: &Bitset) {
        debug_assert_eq!(self.n_bits, other.n_bits);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Cardinality, as a chunked popcount loop: per-chunk partial
    /// sums are integers merged in fixed chunk order through
    /// [`secreta_parallel::par_chunks`], so the result is identical
    /// at any thread count (integer addition is associative — there
    /// is nothing scheduling could reorder observably).
    pub fn count_ones(&self) -> usize {
        // a single-shard input would reach par_chunks' sequential
        // fallback anyway, but that path still allocates the partials
        // vector — and support checks popcount small bitsets millions
        // of times, so skip straight to the loop (integer addition is
        // order-independent, the result cannot differ)
        if self.words.len() <= POPCOUNT_WORDS_PER_CHUNK {
            return self
                .words
                .iter()
                .map(|w| w.count_ones() as u64)
                .sum::<u64>() as usize;
        }
        let parts = secreta_parallel::par_chunks(self.words.len(), POPCOUNT_WORDS_PER_CHUNK, {
            let words = &self.words;
            move |lo, hi| {
                words[lo..hi]
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .sum::<u64>()
            }
        });
        parts.into_iter().sum::<u64>() as usize
    }

    /// `|self ∩ other|` without materializing the intersection (same
    /// chunked popcount contract as [`Bitset::count_ones`]).
    pub fn intersect_count(&self, other: &Bitset) -> usize {
        debug_assert_eq!(self.n_bits, other.n_bits);
        // same single-shard shortcut as [`Bitset::count_ones`]
        if self.words.len() <= POPCOUNT_WORDS_PER_CHUNK {
            return self
                .words
                .iter()
                .zip(&other.words)
                .map(|(x, y)| (x & y).count_ones() as u64)
                .sum::<u64>() as usize;
        }
        let parts = secreta_parallel::par_chunks(self.words.len(), POPCOUNT_WORDS_PER_CHUNK, {
            let (a, b) = (&self.words, &other.words);
            move |lo, hi| {
                a[lo..hi]
                    .iter()
                    .zip(&b[lo..hi])
                    .map(|(x, y)| (x & y).count_ones() as u64)
                    .sum::<u64>()
            }
        });
        parts.into_iter().sum::<u64>() as usize
    }

    /// `|self ∩ o₁ ∩ o₂ ∩ …|` for a chain of same-universe bitsets,
    /// with no intermediate materialization: each word of `self` is
    /// AND-ed through the chain (short-circuiting on zero) before its
    /// popcount. The k-way form of [`Bitset::intersect_count`], for
    /// callers like the m-item adversary that need only the
    /// cardinality of a multi-way intersection.
    pub fn intersect_count_many<'a>(
        &self,
        others: impl Iterator<Item = &'a Bitset> + Clone,
    ) -> usize {
        // blocked so each AND pass is a branch-free loop over two
        // contiguous slices (vectorizable), with an early exit between
        // blocks once a prefix proves empty
        const BLOCK: usize = 64;
        let mut buf = [0u64; BLOCK];
        let mut total = 0usize;
        let n = self.words.len();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + BLOCK).min(n);
            let len = hi - lo;
            buf[..len].copy_from_slice(&self.words[lo..hi]);
            for o in others.clone() {
                debug_assert_eq!(self.n_bits, o.n_bits);
                for (b, &w) in buf[..len].iter_mut().zip(&o.words[lo..hi]) {
                    *b &= w;
                }
            }
            total += buf[..len]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
            lo = hi;
        }
        total
    }

    /// How many of the sorted positions in `sorted` are set — the
    /// mixed bitmap×CSR intersection: each sparse position probes the
    /// word it falls in; the dense side is never expanded.
    pub fn probe_count(&self, sorted: &[u32]) -> usize {
        sorted.iter().filter(|&&p| self.contains(p)).count()
    }

    /// Filter `sorted` down to the positions whose bit is set,
    /// appending to `out` (the materializing form of
    /// [`Bitset::probe_count`]).
    pub fn probe_filter(&self, sorted: &[u32], out: &mut Vec<u32>) {
        out.extend(sorted.iter().copied().filter(|&p| self.contains(p)));
    }

    /// Extract the set positions in ascending order into `out`
    /// (cleared first).
    pub fn to_sorted(&self, out: &mut Vec<u32>) {
        out.clear();
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push((wi as u32) << 6 | bit);
                w &= w - 1;
            }
        }
    }
}

/// A tiered row set: sorted positions below the density threshold,
/// a [`Bitset`] above it. Both forms denote the same mathematical
/// set; every query answered from one is identical from the other.
#[derive(Debug, Clone)]
pub enum RowSet {
    /// Sorted, duplicate-free row positions (the CSR tier).
    Sparse(Vec<u32>),
    /// Word-level bitmap (the dense tier).
    Dense(Bitset),
}

impl RowSet {
    /// Cardinality.
    pub fn len(&self) -> usize {
        match self {
            RowSet::Sparse(v) => v.len(),
            RowSet::Dense(b) => b.count_ones(),
        }
    }

    /// True when the set has no rows.
    pub fn is_empty(&self) -> bool {
        match self {
            RowSet::Sparse(v) => v.is_empty(),
            RowSet::Dense(b) => b.words.iter().all(|&w| w == 0),
        }
    }

    /// Is `pos` in the set?
    pub fn contains(&self, pos: u32) -> bool {
        match self {
            RowSet::Sparse(v) => v.binary_search(&pos).is_ok(),
            RowSet::Dense(b) => b.contains(pos),
        }
    }

    /// The set as sorted positions, written into `out` (cleared
    /// first).
    pub fn to_sorted(&self, out: &mut Vec<u32>) {
        match self {
            RowSet::Sparse(v) => {
                out.clear();
                out.extend_from_slice(v);
            }
            RowSet::Dense(b) => b.to_sorted(out),
        }
    }

    /// `self ∩ other`, picking the cheapest path per tier pair:
    /// `Dense`×`Dense` is a word-`AND`, mixed pairs probe the sparse
    /// side against the bitmap, `Sparse`×`Sparse` falls back to the
    /// (galloping) sorted intersection. The result of a mixed or
    /// sparse pair is always `Sparse` — an intersection can only
    /// shrink, so re-densifying would never pay.
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => {
                let mut out = a.clone();
                out.intersect_with(b);
                RowSet::Dense(out)
            }
            (RowSet::Dense(a), RowSet::Sparse(b)) => {
                let mut out = Vec::new();
                a.probe_filter(b, &mut out);
                RowSet::Sparse(out)
            }
            (RowSet::Sparse(a), RowSet::Dense(b)) => {
                let mut out = Vec::new();
                b.probe_filter(a, &mut out);
                RowSet::Sparse(out)
            }
            (RowSet::Sparse(a), RowSet::Sparse(b)) => {
                let mut out = Vec::new();
                crate::support::intersect_sorted(a, b, &mut out);
                RowSet::Sparse(out)
            }
        }
    }

    /// `|self ∩ other|` without materializing the intersection — the
    /// hot final step of a constraint-support check, where only the
    /// cardinality is published.
    pub fn intersect_len(&self, other: &RowSet) -> usize {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => a.intersect_count(b),
            (RowSet::Dense(a), RowSet::Sparse(b)) | (RowSet::Sparse(b), RowSet::Dense(a)) => {
                a.probe_count(b)
            }
            (RowSet::Sparse(a), RowSet::Sparse(b)) => {
                let mut out = Vec::new();
                crate::support::intersect_sorted(a, b, &mut out);
                out.len()
            }
        }
    }

    /// Is this the dense (bitmap) tier?
    pub fn is_dense(&self) -> bool {
        matches!(self, RowSet::Dense(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(b: &Bitset) -> Vec<u32> {
        let mut v = Vec::new();
        b.to_sorted(&mut v);
        v
    }

    #[test]
    fn insert_contains_extract_roundtrip() {
        // 100 bits: universe deliberately not a multiple of 64
        let mut b = Bitset::new(100);
        for p in [0u32, 1, 63, 64, 65, 99] {
            b.insert(p);
        }
        assert!(b.contains(63) && b.contains(64) && b.contains(99));
        assert!(!b.contains(2) && !b.contains(98));
        assert_eq!(sorted(&b), vec![0, 1, 63, 64, 65, 99]);
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    fn empty_and_full_universes() {
        let empty = Bitset::new(70);
        assert_eq!(empty.count_ones(), 0);
        assert_eq!(sorted(&empty), Vec::<u32>::new());
        let all: Vec<u32> = (0..70).collect();
        let full = Bitset::from_positions(&all, 70);
        assert_eq!(full.count_ones(), 70);
        assert_eq!(sorted(&full), all);
        // tail bits of the last word stay clear: intersecting the
        // full set with itself keeps the exact cardinality
        assert_eq!(full.intersect_count(&full), 70);
    }

    #[test]
    fn set_algebra_matches_reference() {
        let a = Bitset::from_positions(&[1, 5, 64, 65, 90], 100);
        let b = Bitset::from_positions(&[5, 64, 66, 99], 100);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(sorted(&u), vec![1, 5, 64, 65, 66, 90, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(sorted(&i), vec![5, 64]);
        assert_eq!(a.intersect_count(&b), 2);
        let mut d = a.clone();
        d.subtract(&b);
        assert_eq!(sorted(&d), vec![1, 65, 90]);
    }

    #[test]
    fn probes_match_materialized_intersection() {
        let dense = Bitset::from_positions(&[0, 2, 64, 128, 129], 130);
        let sparse = [0u32, 1, 64, 127, 129];
        assert_eq!(dense.probe_count(&sparse), 3);
        let mut out = Vec::new();
        dense.probe_filter(&sparse, &mut out);
        assert_eq!(out, vec![0, 64, 129]);
        // probing an empty sparse list is a no-op
        assert_eq!(dense.probe_count(&[]), 0);
    }

    #[test]
    fn chunked_popcount_is_thread_invariant() {
        // large enough to span several popcount chunks
        let n = (POPCOUNT_WORDS_PER_CHUNK * 3 + 7) * 64;
        let mut b = Bitset::new(n);
        let mut z = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..50_000 {
            z ^= z << 13;
            z ^= z >> 7;
            z ^= z << 17;
            b.insert((z % n as u64) as u32);
        }
        secreta_parallel::set_threads(1);
        let seq = b.count_ones();
        for threads in [2, 8] {
            secreta_parallel::set_threads(threads);
            assert_eq!(b.count_ones(), seq, "threads={threads}");
        }
        secreta_parallel::set_threads(0);
    }

    #[test]
    fn rowset_intersections_agree_across_tiers() {
        let n = 130usize;
        let a: Vec<u32> = (0..n as u32).filter(|p| p % 3 == 0).collect();
        let b: Vec<u32> = (0..n as u32).filter(|p| p % 5 == 0).collect();
        let expect: Vec<u32> = (0..n as u32).filter(|p| p % 15 == 0).collect();
        let tiers_a = [
            RowSet::Sparse(a.clone()),
            RowSet::Dense(Bitset::from_positions(&a, n)),
        ];
        let tiers_b = [
            RowSet::Sparse(b.clone()),
            RowSet::Dense(Bitset::from_positions(&b, n)),
        ];
        for ta in &tiers_a {
            for tb in &tiers_b {
                let got = ta.intersect(tb);
                let mut v = Vec::new();
                got.to_sorted(&mut v);
                assert_eq!(v, expect);
                assert_eq!(got.len(), expect.len());
            }
        }
    }

    #[test]
    fn rowset_edge_cases() {
        // empty × anything, and an all-rows set in both tiers
        let n = 67usize;
        let all: Vec<u32> = (0..n as u32).collect();
        let dense_all = RowSet::Dense(Bitset::from_positions(&all, n));
        let empty = RowSet::Sparse(Vec::new());
        assert!(empty.intersect(&dense_all).is_empty());
        assert!(dense_all.intersect(&empty).is_empty());
        assert_eq!(dense_all.intersect(&dense_all).len(), n);
        assert!(dense_all.contains(66) && !dense_all.contains(67));
    }

    #[test]
    fn threshold_override_resolves() {
        let _serial = TEST_THRESHOLD_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        set_density_threshold(Some(0.25));
        assert_eq!(density_threshold(), 0.25);
        set_density_threshold(Some(2.0));
        assert!(density_threshold() > 1.0);
        set_density_threshold(None);
        assert!(density_threshold() <= 1.0);
    }
}
