//! Apriori anonymization (AA) — k^m-anonymity by global full-subtree
//! generalization (Terrovitis, Mamoulis, Kalnis — VLDB Journal 2011).
//!
//! A published database is **k^m-anonymous** when every itemset of
//! size at most `m` that appears in some published transaction appears
//! in at least `k` of them. AA exploits the apriori principle: it
//! fixes violations of size `i = 1..m` in order, since an `i`-sized
//! violation implies violations among its subsets would already have
//! been handled. Violations are repaired by *full-subtree global
//! recoding* over the item hierarchy: replacing an item node (and all
//! its siblings under the chosen parent) by that parent everywhere.
//!
//! The repair choice is greedy: the node participating in the most
//! outstanding violations is generalized one level, breaking ties
//! toward the smaller NCP increase — the "most promising cut move"
//! heuristic of the original.

use crate::common::{TransactionInput, TxError, TxOutput};
use crate::support::{Counting, InvertedIndex, KernelStats, RowSupport};
use secreta_data::hash::FxHashMap;
use secreta_data::ItemId;
use secreta_hierarchy::{Cut, Hierarchy, NodeId};
use secreta_metrics::anon::AnonTransaction;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};

/// Internal state of an AA run over a row subset.
pub(crate) struct AaState {
    /// The full-subtree cut over the item hierarchy.
    pub cut: Cut,
    /// Leaves suppressed because no in-ceiling generalization could
    /// repair their violations (only reachable with a ceiling, i.e.
    /// under VPA).
    pub suppressed: Vec<bool>,
}

impl AaState {
    /// Published generalized node of item `it`, `None` if suppressed.
    pub fn map(&self, it: ItemId) -> Option<NodeId> {
        if self.suppressed[it.index()] {
            None
        } else {
            Some(self.cut.node_of(it.0))
        }
    }
}

/// The repair chosen from one round's involvement map.
enum Repair {
    /// Generalize the cut to this (allowed) parent node.
    Generalize(NodeId),
    /// No allowed parent exists: suppress this node's leaves.
    Suppress(NodeId),
}

/// Pick the repair move from a round's involvement map: the node with
/// the most outstanding violation mass is generalized one level,
/// breaking ties by smaller parent NCP, then smaller parent id.
///
/// The comparison is a strict total order — involvement descending,
/// then `f64::total_cmp` on NCP ascending, then `NodeId` ascending —
/// so the choice is independent of map iteration order and exactly
/// reproducible across platforms (the former epsilon tie-break could
/// flip on sub-1e-15 NCP differences depending on visit order).
fn select_repair(
    h: &Hierarchy,
    allowed: &impl Fn(NodeId) -> bool,
    involvement: &FxHashMap<NodeId, u64>,
) -> Repair {
    let mut best: Option<(NodeId, u64, f64)> = None; // (parent, involvement, ncp)
    for (&node, &inv) in involvement {
        let Some(parent) = h.parent(node) else {
            continue;
        };
        if !allowed(parent) {
            continue;
        }
        let ncp = h.ncp(parent);
        let better = match best {
            None => true,
            Some((bp, binv, bncp)) => {
                inv > binv
                    || (inv == binv
                        && match ncp.total_cmp(&bncp) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => parent < bp,
                            std::cmp::Ordering::Greater => false,
                        })
            }
        };
        if better {
            best = Some((parent, inv, ncp));
        }
    }
    match best {
        Some((parent, _, _)) => Repair::Generalize(parent),
        None => {
            // ceiling reached everywhere (VPA): suppress the
            // most-involved node's leaves
            let (&node, _) = involvement
                .iter()
                .max_by_key(|&(&n, &inv)| (inv, std::cmp::Reverse(n)))
                .expect("violations imply involvement");
            Repair::Suppress(node)
        }
    }
}

/// Work counters of one `anonymize_rows` call, flushed once at exit.
#[derive(Default)]
struct AaCounters {
    rounds: u64,
    violations: u64,
    generalizations: u64,
    suppressions: u64,
}

/// Core AA loop over the rows in `rows`, with an optional ceiling:
/// only nodes satisfying `allowed` may enter the cut (VPA confines
/// recoding to a vertical part; `|_| true` for plain AA, where the
/// root is always allowed and suppression never triggers).
#[allow(clippy::too_many_arguments)]
pub(crate) fn anonymize_rows(
    table: &secreta_data::RtTable,
    rows: &[usize],
    k: usize,
    m: usize,
    h: &Hierarchy,
    allowed: impl Fn(NodeId) -> bool,
    relevant: impl Fn(ItemId) -> bool + Sync,
    allow_suppression: bool,
    counting: Counting,
) -> Result<AaState, TxError> {
    let non_empty = rows
        .iter()
        .filter(|&&r| table.transaction(r).iter().any(|&it| relevant(it)))
        .count();
    if !allow_suppression && non_empty > 0 && non_empty < k {
        return Err(TxError::Infeasible { k, non_empty });
    }

    let mut state = AaState {
        cut: Cut::leaves(h),
        suppressed: vec![false; h.n_leaves()],
    };
    let m = m.max(1);

    let recorder = secreta_obsv::current();
    let mut c = AaCounters::default();

    match counting {
        Counting::Naive => {
            for i in 1..=m {
                aa_level_naive(
                    table, rows, k, i, h, &allowed, &relevant, &mut state, &mut c,
                );
            }
        }
        Counting::Kernel => {
            let index = InvertedIndex::build(table, rows, h.n_leaves(), &relevant);
            let mut stats = KernelStats::default();
            stats.record_index(&index);
            for i in 1..=m {
                aa_level_kernel(
                    table, rows, k, i, h, &allowed, &relevant, &index, &mut state, &mut c,
                    &mut stats,
                );
            }
            stats.flush(&recorder);
        }
    }

    recorder.count("apriori/support_rounds", c.rounds);
    recorder.count("apriori/violations", c.violations);
    recorder.count("apriori/generalizations", c.generalizations);
    recorder.count("apriori/suppressions", c.suppressions);
    Ok(state)
}

/// Apply `repair` to `state`, updating counters. Returns the node
/// whose subtree changed (the generalization target or suppressed
/// node).
fn apply_repair(h: &Hierarchy, state: &mut AaState, repair: Repair, c: &mut AaCounters) -> NodeId {
    match repair {
        Repair::Generalize(parent) => {
            c.generalizations += 1;
            state.cut.generalize_to(h, parent);
            parent
        }
        Repair::Suppress(node) => {
            for v in h.leaves_under(node) {
                c.suppressions += 1;
                state.suppressed[v as usize] = true;
            }
            node
        }
    }
}

/// One `i`-level of the naive (recount-everything) AA loop — the
/// reference implementation the kernels are checked against.
#[allow(clippy::too_many_arguments)]
fn aa_level_naive(
    table: &secreta_data::RtTable,
    rows: &[usize],
    k: usize,
    i: usize,
    h: &Hierarchy,
    allowed: &impl Fn(NodeId) -> bool,
    relevant: &impl Fn(ItemId) -> bool,
    state: &mut AaState,
    c: &mut AaCounters,
) {
    loop {
        c.rounds += 1;
        // published transactions: distinct, sorted live cut nodes
        let mut sup: FxHashMap<Vec<NodeId>, u32> = FxHashMap::default();
        let mut nodes_buf: Vec<NodeId> = Vec::new();
        for &r in rows {
            nodes_buf.clear();
            for &it in table.transaction(r) {
                if relevant(it) && !state.suppressed[it.index()] {
                    nodes_buf.push(state.cut.node_of(it.0));
                }
            }
            nodes_buf.sort_unstable();
            nodes_buf.dedup();
            if nodes_buf.len() < i {
                continue;
            }
            for_each_subset(&nodes_buf, i, &mut |subset| {
                *sup.entry(subset.to_vec()).or_insert(0) += 1;
            });
        }

        // violations: support strictly below k
        let mut involvement: FxHashMap<NodeId, u64> = FxHashMap::default();
        let mut any = false;
        for (subset, &count) in &sup {
            if (count as usize) < k {
                any = true;
                c.violations += 1;
                for &n in subset {
                    *involvement.entry(n).or_insert(0) += (k as u64) - count as u64;
                }
            }
        }
        if !any {
            break;
        }

        let repair = select_repair(h, allowed, &involvement);
        apply_repair(h, state, repair, c);
    }
}

/// One `i`-level of the kernelized AA loop: the level's subset
/// supports are built once (sharded across threads), then each repair
/// re-enumerates only the rows containing a leaf whose published node
/// changed — found through the inverted index.
#[allow(clippy::too_many_arguments)]
fn aa_level_kernel(
    table: &secreta_data::RtTable,
    rows: &[usize],
    k: usize,
    i: usize,
    h: &Hierarchy,
    allowed: &impl Fn(NodeId) -> bool,
    relevant: &(impl Fn(ItemId) -> bool + Sync),
    index: &InvertedIndex,
    state: &mut AaState,
    c: &mut AaCounters,
    stats: &mut KernelStats,
) {
    // the published token list of the row at position `pos`
    let fill_row = |st: &AaState, pos: usize, buf: &mut Vec<u32>| {
        for &it in table.transaction(rows[pos]) {
            if relevant(it) && !st.suppressed[it.index()] {
                buf.push(st.cut.node_of(it.0).0);
            }
        }
        buf.sort_unstable();
        buf.dedup();
    };
    let mut rs = RowSupport::build(rows.len(), i, |pos, buf| fill_row(state, pos, buf));
    let mut dirty: Vec<u32> = Vec::new();
    loop {
        c.rounds += 1;
        let mut involvement: FxHashMap<NodeId, u64> = FxHashMap::default();
        let mut any = false;
        for (subset, count) in rs.map.iter() {
            // zero-count keys are stale leftovers of earlier rounds
            if count > 0 && (count as usize) < k {
                any = true;
                c.violations += 1;
                for &v in subset {
                    *involvement.entry(NodeId(v)).or_insert(0) += (k as u64) - count as u64;
                }
            }
        }
        if !any {
            break;
        }

        let repair = select_repair(h, allowed, &involvement);
        let changed = apply_repair(h, state, repair, c);
        // every row containing a leaf under the changed node must be
        // re-enumerated; all others keep their counts
        index.union_into(h.leaves_under(changed), &mut dirty);
        rs.stats.posting_unions += 1;
        rs.update(&dirty, |pos, buf| fill_row(state, pos, buf));
    }
    stats.absorb(&rs.stats);
}

/// Invoke `f` on every `i`-sized subset of `items` (which is sorted
/// and duplicate-free).
pub(crate) fn for_each_subset(items: &[NodeId], i: usize, f: &mut impl FnMut(&[NodeId])) {
    fn rec(
        items: &[NodeId],
        i: usize,
        start: usize,
        cur: &mut Vec<NodeId>,
        f: &mut impl FnMut(&[NodeId]),
    ) {
        if cur.len() == i {
            f(cur);
            return;
        }
        let need = i - cur.len();
        // prune: not enough items left
        for idx in start..=items.len().saturating_sub(need) {
            cur.push(items[idx]);
            rec(items, i, idx + 1, cur, f);
            cur.pop();
        }
    }
    if i == 0 || i > items.len() {
        return;
    }
    let mut cur = Vec::with_capacity(i);
    rec(items, i, 0, &mut cur, f);
}

/// Run plain AA on `input` (global recoding, all rows) with the
/// kernelized support counters.
pub fn anonymize(input: &TransactionInput) -> Result<TxOutput, TxError> {
    anonymize_with(input, Counting::Kernel)
}

/// Run plain AA with the naive reference counters (the oracle for
/// `bench --suite tx` and the kernel-agreement tests).
pub fn anonymize_reference(input: &TransactionInput) -> Result<TxOutput, TxError> {
    anonymize_with(input, Counting::Naive)
}

/// Run plain AA with an explicit counting implementation.
pub fn anonymize_with(input: &TransactionInput, counting: Counting) -> Result<TxOutput, TxError> {
    input.validate()?;
    let h = input
        .hierarchy
        .ok_or_else(|| TxError::BadInput("Apriori requires an item hierarchy".into()))?;
    let mut timer = PhaseTimer::new();
    let rows: Vec<usize> = (0..input.table.n_rows()).collect();
    timer.phase("setup");

    let state = anonymize_rows(
        input.table,
        &rows,
        input.k,
        input.m,
        h,
        |_| true,
        |_| true,
        false,
        counting,
    )?;
    timer.phase("apriori recoding");

    let anon = build_anon(input.table, h, |_, it| state.map(it));
    timer.phase("publish");

    Ok(TxOutput {
        anon,
        phases: timer.finish(),
    })
}

/// Assemble an [`AnonTable`] from a row-aware item → node mapping.
pub(crate) fn build_anon(
    table: &secreta_data::RtTable,
    _h: &Hierarchy,
    map: impl Fn(usize, ItemId) -> Option<NodeId>,
) -> AnonTable {
    // collect the distinct published nodes into a generalized domain
    let mut index: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut domain: Vec<GenEntry> = Vec::new();
    for row in 0..table.n_rows() {
        for &it in table.transaction(row) {
            if let Some(n) = map(row, it) {
                let next = domain.len() as u32;
                let id = *index.entry(n).or_insert(next);
                if id as usize == domain.len() {
                    domain.push(GenEntry::Node(n));
                }
            }
        }
    }
    let tx =
        AnonTransaction::from_row_mapping(table, domain, |row, it| map(row, it).map(|n| index[&n]));
    AnonTable {
        rel: Vec::new(),
        tx: Some(tx),
        n_rows: table.n_rows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_km_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::auto_hierarchy;
    use secreta_metrics::transaction_gcp;

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for tx in [
            vec!["a", "b"],
            vec!["a", "b"],
            vec!["a", "c"],
            vec!["b", "c"],
            vec!["a", "b", "c"],
            vec!["d"],
            vec!["a", "d"],
            vec!["b", "d"],
        ] {
            t.push_row(&[], &tx).unwrap();
        }
        t
    }

    fn hierarchy(t: &RtTable) -> Hierarchy {
        auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap()
    }

    #[test]
    fn output_is_km_anonymous_for_various_k_m() {
        let t = table();
        let h = hierarchy(&t);
        for k in [2, 3, 4] {
            for m in [1, 2, 3] {
                let out = anonymize(&TransactionInput::km(&t, k, m, &h)).unwrap();
                assert!(is_km_anonymous(&out.anon, k, m, Some(&h)), "k={k} m={m}");
                assert!(out.anon.is_truthful(&t, |_| None, Some(&h)));
                assert!(out.anon.is_complete(&t, Some(&h)));
            }
        }
    }

    #[test]
    fn k1_keeps_original_items() {
        let t = table();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 1, 2, &h)).unwrap();
        assert_eq!(transaction_gcp(&t, &out.anon, Some(&h)), 0.0);
    }

    #[test]
    fn loss_monotone_in_k_and_m() {
        let t = table();
        let h = hierarchy(&t);
        let loss = |k, m| {
            let out = anonymize(&TransactionInput::km(&t, k, m, &h)).unwrap();
            transaction_gcp(&t, &out.anon, Some(&h))
        };
        assert!(loss(2, 1) <= loss(4, 1) + 1e-12);
        assert!(loss(2, 1) <= loss(2, 2) + 1e-12);
        assert!(loss(2, 2) <= loss(4, 3) + 1e-12);
    }

    #[test]
    fn never_suppresses_without_ceiling() {
        let t = table();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 4, 3, &h)).unwrap();
        assert!(out.anon.tx.as_ref().unwrap().suppressed.is_empty());
    }

    #[test]
    fn infeasible_when_fewer_nonempty_than_k() {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["a"]).unwrap();
        t.push_row(&[], &["b"]).unwrap();
        t.push_row(&[], &[]).unwrap();
        let h = hierarchy(&t);
        assert!(matches!(
            anonymize(&TransactionInput::km(&t, 3, 1, &h)),
            Err(TxError::Infeasible { .. })
        ));
    }

    #[test]
    fn empty_dataset_is_fine() {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &[]).unwrap();
        t.push_row(&[], &[]).unwrap();
        // universe empty: nothing to anonymize; hierarchy cannot be
        // built over an empty pool, so skip AA entirely — the
        // framework never routes such datasets here. Assert the
        // feasibility helper instead.
        assert_eq!(t.item_universe(), 0);
    }

    #[test]
    fn subsets_enumerated_correctly() {
        let items: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut count = 0;
        for_each_subset(&items, 2, &mut |s| {
            assert_eq!(s.len(), 2);
            assert!(s[0] < s[1]);
            count += 1;
        });
        assert_eq!(count, 6);
        let mut count3 = 0;
        for_each_subset(&items, 3, &mut |_| count3 += 1);
        assert_eq!(count3, 4);
        let mut none = 0;
        for_each_subset(&items, 5, &mut |_| none += 1);
        assert_eq!(none, 0);
        for_each_subset(&items, 0, &mut |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn tie_break_on_equal_ncp_is_total_and_deterministic() {
        // a balanced universe of 4 leaves under a fanout-2 hierarchy:
        // both internal parents have *identical* NCP, so the old
        // epsilon comparison hit its tie window. The fixed order must
        // pick by (involvement desc, ncp total_cmp asc, NodeId asc) —
        // and must do so identically however the involvement map is
        // iterated, which kernel vs. naive counting exercises.
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        // p, q, r, s each appear once => every singleton violates k=2,
        // with equal involvement and equal parent NCP
        for items in [["p"], ["q"], ["r"], ["s"]] {
            t.push_row(&[], &items).unwrap();
        }
        let h = hierarchy(&t);
        // verify the tie premise: both parents share one NCP value
        let l0 = h.leaf(0);
        let l2 = h.leaf(2);
        let p0 = h.parent(l0).unwrap();
        let p2 = h.parent(l2).unwrap();
        assert_ne!(p0, p2);
        assert_eq!(h.ncp(p0).to_bits(), h.ncp(p2).to_bits(), "tie premise");

        let naive = anonymize_reference(&TransactionInput::km(&t, 2, 1, &h)).unwrap();
        let kernel = anonymize(&TransactionInput::km(&t, 2, 1, &h)).unwrap();
        assert_eq!(naive.anon, kernel.anon, "tie resolution must agree");
        assert!(is_km_anonymous(&kernel.anon, 2, 1, Some(&h)));

        // and selection is reproducible run-to-run
        let again = anonymize(&TransactionInput::km(&t, 2, 1, &h)).unwrap();
        assert_eq!(kernel.anon, again.anon);
    }

    #[test]
    fn kernel_and_reference_agree_on_fixture() {
        let t = table();
        let h = hierarchy(&t);
        for k in [2, 3, 4] {
            for m in [1, 2, 3] {
                let a = anonymize_reference(&TransactionInput::km(&t, k, m, &h)).unwrap();
                let b = anonymize(&TransactionInput::km(&t, k, m, &h)).unwrap();
                assert_eq!(a.anon, b.anon, "k={k} m={m}");
            }
        }
    }

    #[test]
    fn phases_recorded() {
        let t = table();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 2, 2, &h)).unwrap();
        assert!(out.phases.get("apriori recoding").is_some());
    }

    #[test]
    fn skewed_singleton_items_generalize() {
        // one rare item must merge with a sibling to reach support k
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for _ in 0..5 {
            t.push_row(&[], &["common"]).unwrap();
        }
        t.push_row(&[], &["rare"]).unwrap();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 2, 1, &h)).unwrap();
        assert!(is_km_anonymous(&out.anon, 2, 1, Some(&h)));
        // the rare item cannot be published as itself
        let tx = out.anon.tx.as_ref().unwrap();
        let rare_leaf = h.leaf(t.item_pool().unwrap().get("rare").unwrap());
        for e in &tx.domain {
            if let GenEntry::Node(n) = e {
                assert_ne!(*n, rare_leaf, "rare leaf must be generalized");
            }
        }
    }
}
