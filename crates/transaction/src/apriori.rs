//! Apriori anonymization (AA) — k^m-anonymity by global full-subtree
//! generalization (Terrovitis, Mamoulis, Kalnis — VLDB Journal 2011).
//!
//! A published database is **k^m-anonymous** when every itemset of
//! size at most `m` that appears in some published transaction appears
//! in at least `k` of them. AA exploits the apriori principle: it
//! fixes violations of size `i = 1..m` in order, since an `i`-sized
//! violation implies violations among its subsets would already have
//! been handled. Violations are repaired by *full-subtree global
//! recoding* over the item hierarchy: replacing an item node (and all
//! its siblings under the chosen parent) by that parent everywhere.
//!
//! The repair choice is greedy: the node participating in the most
//! outstanding violations is generalized one level, breaking ties
//! toward the smaller NCP increase — the "most promising cut move"
//! heuristic of the original.

use crate::common::{TransactionInput, TxError, TxOutput};
use secreta_data::hash::FxHashMap;
use secreta_data::ItemId;
use secreta_hierarchy::{Cut, Hierarchy, NodeId};
use secreta_metrics::anon::AnonTransaction;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};

/// Internal state of an AA run over a row subset.
pub(crate) struct AaState {
    /// The full-subtree cut over the item hierarchy.
    pub cut: Cut,
    /// Leaves suppressed because no in-ceiling generalization could
    /// repair their violations (only reachable with a ceiling, i.e.
    /// under VPA).
    pub suppressed: Vec<bool>,
}

impl AaState {
    /// Published generalized node of item `it`, `None` if suppressed.
    pub fn map(&self, it: ItemId) -> Option<NodeId> {
        if self.suppressed[it.index()] {
            None
        } else {
            Some(self.cut.node_of(it.0))
        }
    }
}

/// Core AA loop over the rows in `rows`, with an optional ceiling:
/// only nodes satisfying `allowed` may enter the cut (VPA confines
/// recoding to a vertical part; `|_| true` for plain AA, where the
/// root is always allowed and suppression never triggers).
#[allow(clippy::too_many_arguments)]
pub(crate) fn anonymize_rows(
    table: &secreta_data::RtTable,
    rows: &[usize],
    k: usize,
    m: usize,
    h: &Hierarchy,
    allowed: impl Fn(NodeId) -> bool,
    relevant: impl Fn(ItemId) -> bool,
    allow_suppression: bool,
) -> Result<AaState, TxError> {
    let non_empty = rows
        .iter()
        .filter(|&&r| table.transaction(r).iter().any(|&it| relevant(it)))
        .count();
    if !allow_suppression && non_empty > 0 && non_empty < k {
        return Err(TxError::Infeasible { k, non_empty });
    }

    let mut state = AaState {
        cut: Cut::leaves(h),
        suppressed: vec![false; h.n_leaves()],
    };
    let m = m.max(1);

    let recorder = secreta_obsv::current();
    let mut rounds = 0u64;
    let mut violations = 0u64;
    let mut generalizations = 0u64;
    let mut suppressions = 0u64;

    for i in 1..=m {
        loop {
            rounds += 1;
            // published transactions: distinct, sorted live cut nodes
            let mut sup: FxHashMap<Vec<NodeId>, u32> = FxHashMap::default();
            let mut nodes_buf: Vec<NodeId> = Vec::new();
            for &r in rows {
                nodes_buf.clear();
                for &it in table.transaction(r) {
                    if relevant(it) && !state.suppressed[it.index()] {
                        nodes_buf.push(state.cut.node_of(it.0));
                    }
                }
                nodes_buf.sort_unstable();
                nodes_buf.dedup();
                if nodes_buf.len() < i {
                    continue;
                }
                for_each_subset(&nodes_buf, i, &mut |subset| {
                    *sup.entry(subset.to_vec()).or_insert(0) += 1;
                });
            }

            // violations: support strictly below k
            let mut involvement: FxHashMap<NodeId, u64> = FxHashMap::default();
            let mut any = false;
            for (subset, &count) in &sup {
                if (count as usize) < k {
                    any = true;
                    violations += 1;
                    for &n in subset {
                        *involvement.entry(n).or_insert(0) += (k as u64) - count as u64;
                    }
                }
            }
            if !any {
                break;
            }

            // candidate moves: generalize an involved node to its
            // parent (if the parent is allowed)
            let mut best: Option<(NodeId, u64, f64)> = None; // (parent, involvement, ncp)
            for (&node, &inv) in &involvement {
                let Some(parent) = h.parent(node) else {
                    continue;
                };
                if !allowed(parent) {
                    continue;
                }
                let ncp = h.ncp(parent);
                let better = match best {
                    None => true,
                    Some((bp, binv, bncp)) => {
                        inv > binv
                            || (inv == binv
                                && (ncp < bncp - 1e-15 || (ncp <= bncp + 1e-15 && parent < bp)))
                    }
                };
                if better {
                    best = Some((parent, inv, ncp));
                }
            }

            match best {
                Some((parent, _, _)) => {
                    generalizations += 1;
                    state.cut.generalize_to(h, parent);
                }
                None => {
                    // ceiling reached everywhere (VPA): suppress the
                    // most-involved node's leaves
                    let (&node, _) = involvement
                        .iter()
                        .max_by_key(|&(&n, &inv)| (inv, std::cmp::Reverse(n)))
                        .expect("violations imply involvement");
                    for v in h.leaves_under(node) {
                        suppressions += 1;
                        state.suppressed[v as usize] = true;
                    }
                }
            }
        }
    }
    recorder.count("apriori/support_rounds", rounds);
    recorder.count("apriori/violations", violations);
    recorder.count("apriori/generalizations", generalizations);
    recorder.count("apriori/suppressions", suppressions);
    Ok(state)
}

/// Invoke `f` on every `i`-sized subset of `items` (which is sorted
/// and duplicate-free).
pub(crate) fn for_each_subset(items: &[NodeId], i: usize, f: &mut impl FnMut(&[NodeId])) {
    fn rec(
        items: &[NodeId],
        i: usize,
        start: usize,
        cur: &mut Vec<NodeId>,
        f: &mut impl FnMut(&[NodeId]),
    ) {
        if cur.len() == i {
            f(cur);
            return;
        }
        let need = i - cur.len();
        // prune: not enough items left
        for idx in start..=items.len().saturating_sub(need) {
            cur.push(items[idx]);
            rec(items, i, idx + 1, cur, f);
            cur.pop();
        }
    }
    if i == 0 || i > items.len() {
        return;
    }
    let mut cur = Vec::with_capacity(i);
    rec(items, i, 0, &mut cur, f);
}

/// Run plain AA on `input` (global recoding, all rows).
pub fn anonymize(input: &TransactionInput) -> Result<TxOutput, TxError> {
    input.validate()?;
    let h = input
        .hierarchy
        .ok_or_else(|| TxError::BadInput("Apriori requires an item hierarchy".into()))?;
    let mut timer = PhaseTimer::new();
    let rows: Vec<usize> = (0..input.table.n_rows()).collect();
    timer.phase("setup");

    let state = anonymize_rows(
        input.table,
        &rows,
        input.k,
        input.m,
        h,
        |_| true,
        |_| true,
        false,
    )?;
    timer.phase("apriori recoding");

    let anon = build_anon(input.table, h, |_, it| state.map(it));
    timer.phase("publish");

    Ok(TxOutput {
        anon,
        phases: timer.finish(),
    })
}

/// Assemble an [`AnonTable`] from a row-aware item → node mapping.
pub(crate) fn build_anon(
    table: &secreta_data::RtTable,
    _h: &Hierarchy,
    map: impl Fn(usize, ItemId) -> Option<NodeId>,
) -> AnonTable {
    // collect the distinct published nodes into a generalized domain
    let mut index: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut domain: Vec<GenEntry> = Vec::new();
    for row in 0..table.n_rows() {
        for &it in table.transaction(row) {
            if let Some(n) = map(row, it) {
                let next = domain.len() as u32;
                let id = *index.entry(n).or_insert(next);
                if id as usize == domain.len() {
                    domain.push(GenEntry::Node(n));
                }
            }
        }
    }
    let tx =
        AnonTransaction::from_row_mapping(table, domain, |row, it| map(row, it).map(|n| index[&n]));
    AnonTable {
        rel: Vec::new(),
        tx: Some(tx),
        n_rows: table.n_rows(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_km_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::auto_hierarchy;
    use secreta_metrics::transaction_gcp;

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for tx in [
            vec!["a", "b"],
            vec!["a", "b"],
            vec!["a", "c"],
            vec!["b", "c"],
            vec!["a", "b", "c"],
            vec!["d"],
            vec!["a", "d"],
            vec!["b", "d"],
        ] {
            t.push_row(&[], &tx).unwrap();
        }
        t
    }

    fn hierarchy(t: &RtTable) -> Hierarchy {
        auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap()
    }

    #[test]
    fn output_is_km_anonymous_for_various_k_m() {
        let t = table();
        let h = hierarchy(&t);
        for k in [2, 3, 4] {
            for m in [1, 2, 3] {
                let out = anonymize(&TransactionInput::km(&t, k, m, &h)).unwrap();
                assert!(is_km_anonymous(&out.anon, k, m, Some(&h)), "k={k} m={m}");
                assert!(out.anon.is_truthful(&t, |_| None, Some(&h)));
                assert!(out.anon.is_complete(&t, Some(&h)));
            }
        }
    }

    #[test]
    fn k1_keeps_original_items() {
        let t = table();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 1, 2, &h)).unwrap();
        assert_eq!(transaction_gcp(&t, &out.anon, Some(&h)), 0.0);
    }

    #[test]
    fn loss_monotone_in_k_and_m() {
        let t = table();
        let h = hierarchy(&t);
        let loss = |k, m| {
            let out = anonymize(&TransactionInput::km(&t, k, m, &h)).unwrap();
            transaction_gcp(&t, &out.anon, Some(&h))
        };
        assert!(loss(2, 1) <= loss(4, 1) + 1e-12);
        assert!(loss(2, 1) <= loss(2, 2) + 1e-12);
        assert!(loss(2, 2) <= loss(4, 3) + 1e-12);
    }

    #[test]
    fn never_suppresses_without_ceiling() {
        let t = table();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 4, 3, &h)).unwrap();
        assert!(out.anon.tx.as_ref().unwrap().suppressed.is_empty());
    }

    #[test]
    fn infeasible_when_fewer_nonempty_than_k() {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["a"]).unwrap();
        t.push_row(&[], &["b"]).unwrap();
        t.push_row(&[], &[]).unwrap();
        let h = hierarchy(&t);
        assert!(matches!(
            anonymize(&TransactionInput::km(&t, 3, 1, &h)),
            Err(TxError::Infeasible { .. })
        ));
    }

    #[test]
    fn empty_dataset_is_fine() {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &[]).unwrap();
        t.push_row(&[], &[]).unwrap();
        // universe empty: nothing to anonymize; hierarchy cannot be
        // built over an empty pool, so skip AA entirely — the
        // framework never routes such datasets here. Assert the
        // feasibility helper instead.
        assert_eq!(t.item_universe(), 0);
    }

    #[test]
    fn subsets_enumerated_correctly() {
        let items: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut count = 0;
        for_each_subset(&items, 2, &mut |s| {
            assert_eq!(s.len(), 2);
            assert!(s[0] < s[1]);
            count += 1;
        });
        assert_eq!(count, 6);
        let mut count3 = 0;
        for_each_subset(&items, 3, &mut |_| count3 += 1);
        assert_eq!(count3, 4);
        let mut none = 0;
        for_each_subset(&items, 5, &mut |_| none += 1);
        assert_eq!(none, 0);
        for_each_subset(&items, 0, &mut |_| none += 1);
        assert_eq!(none, 0);
    }

    #[test]
    fn phases_recorded() {
        let t = table();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 2, 2, &h)).unwrap();
        assert!(out.phases.get("apriori recoding").is_some());
    }

    #[test]
    fn skewed_singleton_items_generalize() {
        // one rare item must merge with a sibling to reach support k
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for _ in 0..5 {
            t.push_row(&[], &["common"]).unwrap();
        }
        t.push_row(&[], &["rare"]).unwrap();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 2, 1, &h)).unwrap();
        assert!(is_km_anonymous(&out.anon, 2, 1, Some(&h)));
        // the rare item cannot be published as itself
        let tx = out.anon.tx.as_ref().unwrap();
        let rare_leaf = h.leaf(t.item_pool().unwrap().get("rare").unwrap());
        for e in &tx.domain {
            if let GenEntry::Node(n) = e {
                assert_ne!(*n, rare_leaf, "rare leaf must be generalized");
            }
        }
    }
}
