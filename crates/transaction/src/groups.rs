//! Disjoint-set item groups for the hierarchy-free algorithms.
//!
//! COAT and PCTA generalize by *merging items into sets* instead of
//! climbing a hierarchy. [`ItemGroups`] is a union-find over the item
//! universe with member lists (small-to-large merged) and a per-item
//! suppression flag, which together fully describe the published
//! recoding: each live item maps to its group's member set; suppressed
//! items map to nothing.

use secreta_data::ItemId;

/// Union-find over item ids with member tracking and suppression.
#[derive(Debug, Clone)]
pub struct ItemGroups {
    parent: Vec<u32>,
    /// Members of each *root*; non-roots hold empty vecs.
    members: Vec<Vec<u32>>,
    suppressed: Vec<bool>,
}

impl ItemGroups {
    /// Singleton groups over a universe of `n` items.
    pub fn new(n: usize) -> Self {
        ItemGroups {
            parent: (0..n as u32).collect(),
            members: (0..n as u32).map(|i| vec![i]).collect(),
            suppressed: vec![false; n],
        }
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True for an empty universe.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Root of `item`'s group (path-halving).
    pub fn find(&mut self, item: u32) -> u32 {
        let mut x = item;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Root of `item`'s group without path compression (for immutable
    /// contexts).
    pub fn find_const(&self, item: u32) -> u32 {
        let mut x = item;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the groups of `a` and `b`; returns the surviving root.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        // small-to-large on member lists
        let (big, small) = if self.members[ra as usize].len() >= self.members[rb as usize].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        let moved = std::mem::take(&mut self.members[small as usize]);
        self.members[big as usize].extend(moved);
        big
    }

    /// Sorted members of `item`'s group.
    pub fn group_members(&mut self, item: u32) -> Vec<u32> {
        let r = self.find(item);
        let mut m = self.members[r as usize].clone();
        m.sort_unstable();
        m
    }

    /// Group size of `item`'s group.
    pub fn group_size(&mut self, item: u32) -> usize {
        let r = self.find(item);
        self.members[r as usize].len()
    }

    /// Mark `item` (the whole item, not its group) as suppressed.
    pub fn suppress(&mut self, item: u32) {
        self.suppressed[item as usize] = true;
    }

    /// Is `item` suppressed?
    pub fn is_suppressed(&self, item: u32) -> bool {
        self.suppressed[item as usize]
    }

    /// Published mapping of `item`: `None` when suppressed, otherwise
    /// its group root.
    pub fn map(&mut self, item: ItemId) -> Option<u32> {
        if self.suppressed[item.index()] {
            None
        } else {
            Some(self.find(item.0))
        }
    }

    /// Members of the group rooted at `root`, in merge order (empty
    /// for non-roots). Borrowed view for the support kernels; use
    /// [`ItemGroups::group_members`] for a sorted copy.
    pub fn members_of_root(&self, root: u32) -> &[u32] {
        &self.members[root as usize]
    }

    /// All current roots (deterministic order).
    pub fn roots(&mut self) -> Vec<u32> {
        (0..self.len() as u32)
            .filter(|&i| self.find(i) == i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_union() {
        let mut g = ItemGroups::new(4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.find(2), 2);
        let r = g.union(0, 1);
        assert_eq!(g.find(0), g.find(1));
        assert_eq!(g.group_members(0), vec![0, 1]);
        assert_eq!(g.group_size(1), 2);
        assert_eq!(g.find(0), r);
        // idempotent union
        assert_eq!(g.union(0, 1), r);
    }

    #[test]
    fn small_to_large_keeps_big_root() {
        let mut g = ItemGroups::new(5);
        g.union(0, 1);
        g.union(0, 2); // group {0,1,2}
        let r = g.find(0);
        let merged = g.union(3, 0);
        assert_eq!(merged, r, "bigger group's root survives");
        assert_eq!(g.group_members(3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn suppression_is_per_item() {
        let mut g = ItemGroups::new(3);
        g.union(0, 1);
        g.suppress(0);
        assert!(g.is_suppressed(0));
        assert!(!g.is_suppressed(1));
        assert_eq!(g.map(ItemId(0)), None);
        assert_eq!(g.map(ItemId(1)), Some(g.find(1)));
    }

    #[test]
    fn roots_shrink_with_unions() {
        let mut g = ItemGroups::new(4);
        assert_eq!(g.roots().len(), 4);
        g.union(0, 1);
        g.union(2, 3);
        assert_eq!(g.roots().len(), 2);
        g.union(0, 3);
        assert_eq!(g.roots().len(), 1);
    }

    #[test]
    fn find_const_agrees_with_find() {
        let mut g = ItemGroups::new(6);
        g.union(0, 1);
        g.union(1, 2);
        g.union(4, 5);
        for i in 0..6 {
            assert_eq!(g.find_const(i), g.clone().find(i));
        }
    }
}
