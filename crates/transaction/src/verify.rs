//! Post-hoc verification of transaction privacy guarantees.

use crate::apriori::for_each_subset;
use secreta_data::hash::FxHashMap;
use secreta_hierarchy::{Hierarchy, NodeId};
use secreta_metrics::AnonTable;
use secreta_policy::PrivacyPolicy;

/// Is the published transaction part of `anon` k^m-anonymous — every
/// itemset of up to `m` *published* (generalized) items that occurs in
/// some published transaction occurs in at least `k` of them?
///
/// Checked from the output alone; `tx_hierarchy` is unused for the
/// counting itself (generalized ids suffice) but kept in the signature
/// for symmetry with the metrics API.
pub fn is_km_anonymous(
    anon: &AnonTable,
    k: usize,
    m: usize,
    _tx_hierarchy: Option<&Hierarchy>,
) -> bool {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return true,
    };
    let m = m.max(1);
    for i in 1..=m {
        let mut sup: FxHashMap<Vec<NodeId>, u32> = FxHashMap::default();
        for row in 0..tx.n_rows() {
            let items = tx.row_items(row);
            if items.len() < i {
                continue;
            }
            // reuse the subset enumerator via a NodeId view of gen ids
            let view: Vec<NodeId> = items.iter().map(|&g| NodeId(g)).collect();
            for_each_subset(&view, i, &mut |s| {
                *sup.entry(s.to_vec()).or_insert(0) += 1;
            });
        }
        if sup.values().any(|&c| (c as usize) < k) {
            return false;
        }
    }
    true
}

/// Does the published output satisfy `privacy` at level `k`?
///
/// A constraint's published support is the number of transactions
/// whose generalized items cover **all** of the constraint's original
/// items; COAT's guarantee is support ≥ k or = 0 for every
/// constraint.
pub fn satisfies_privacy(
    anon: &AnonTable,
    privacy: &PrivacyPolicy,
    k: usize,
    tx_hierarchy: Option<&Hierarchy>,
) -> bool {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return privacy.is_empty(),
    };
    for c in &privacy.constraints {
        let mut sup = 0usize;
        for row in 0..tx.n_rows() {
            let items = tx.row_items(row);
            let all_covered = c.iter().all(|it| {
                items
                    .iter()
                    .any(|&g| tx.domain[g as usize].covers(it.0, tx_hierarchy))
            });
            if all_covered && !c.is_empty() {
                sup += 1;
            }
        }
        if sup > 0 && sup < k {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, ItemId, RtTable, Schema};
    use secreta_metrics::anon::{AnonTransaction, GenEntry};

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["a", "b"]).unwrap();
        t.push_row(&[], &["a", "b"]).unwrap();
        t.push_row(&[], &["c"]).unwrap();
        t
    }

    fn identity_anon(t: &RtTable) -> AnonTable {
        AnonTable::identity(t, &[])
    }

    #[test]
    fn km_detects_violations() {
        let t = table();
        let a = identity_anon(&t);
        // {a,b} appears twice, {c} once
        assert!(is_km_anonymous(&a, 1, 2, None));
        assert!(!is_km_anonymous(&a, 2, 1, None), "c has support 1");
        // merge c into a gen item with a? then supports change
        let dom = vec![GenEntry::set(vec![0, 2]), GenEntry::Set(vec![1])];
        let tx = AnonTransaction::from_mapping(&t, dom, |it| Some(if it.0 == 1 { 1 } else { 0 }));
        let merged = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 3,
        };
        // published: {0,1},{0,1},{0} -> item 0 sup 3, item 1 sup 2,
        // pair {0,1} sup 2
        assert!(is_km_anonymous(&merged, 2, 2, None));
        assert!(!is_km_anonymous(&merged, 3, 2, None));
    }

    #[test]
    fn km_without_tx_is_vacuous() {
        let a = AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 3,
        };
        assert!(is_km_anonymous(&a, 99, 2, None));
    }

    #[test]
    fn privacy_satisfaction() {
        let t = table();
        let a = identity_anon(&t);
        let p_ok = PrivacyPolicy::new(vec![vec![ItemId(0)]]); // a: sup 2
        assert!(satisfies_privacy(&a, &p_ok, 2, None));
        let p_bad = PrivacyPolicy::new(vec![vec![ItemId(2)]]); // c: sup 1
        assert!(!satisfies_privacy(&a, &p_bad, 2, None));
        // zero support is fine
        let dom = vec![GenEntry::Set(vec![0]), GenEntry::Set(vec![1])];
        let tx = AnonTransaction::from_mapping(&t, dom, |it| {
            if it.0 < 2 {
                Some(it.0)
            } else {
                None // suppress c
            }
        });
        let suppressed = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 3,
        };
        assert!(satisfies_privacy(&suppressed, &p_bad, 2, None));
    }

    #[test]
    fn multi_item_constraints() {
        let t = table();
        let a = identity_anon(&t);
        let pair = PrivacyPolicy::new(vec![vec![ItemId(0), ItemId(1)]]); // {a,b}: sup 2
        assert!(satisfies_privacy(&a, &pair, 2, None));
        assert!(!satisfies_privacy(&a, &pair, 3, None));
    }
}
