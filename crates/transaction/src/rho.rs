//! ρ-uncertainty — inference-proof transaction anonymization (Cao,
//! Karras, Raïssi, Tan — PVLDB 2010).
//!
//! The paper's conclusion names this model as SECRETA's planned
//! extension ("we will extend our system, by incorporating additional
//! algorithms, such as those in \[2\]"); this module implements it.
//!
//! **Model.** Items are split into *sensitive* and non-sensitive.
//! A published database is ρ-uncertain iff for every *sensitive
//! association rule* `q → s` (antecedent `q` a published itemset, `s`
//! a sensitive item not in `q`) the confidence
//! `sup(q ∪ {s}) / sup(q)` is below `ρ`. Unlike k^m-anonymity the
//! guarantee is recursive — suppressing or generalizing items changes
//! the rule set — and holds against adversaries with *any* amount of
//! background knowledge, which is why Cao et al.'s reference
//! implementation bounds rule antecedents by a constant (`q ≤ m`) in
//! its mining loop; we do the same.
//!
//! **Algorithm.** A faithful rendition of their *SuppressControl*
//! greedy: while a violating rule exists, suppress the item whose
//! removal kills the most violating rules per unit of information
//! loss (global suppression; sensitive items may themselves be
//! suppressed as a last resort). Suppression preserves truthfulness
//! and needs no hierarchy, matching the original's TDControl-free
//! baseline configuration.

use crate::common::{TransactionInput, TxError, TxOutput};
use crate::support::{Counting, InvertedIndex, RuleCounts};
use secreta_data::hash::{FxHashMap, FxHashSet};
use secreta_data::{stats::item_supports, ItemId, RtTable};
use secreta_metrics::anon::AnonTransaction;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};

/// Parameters of a ρ-uncertainty run.
#[derive(Debug, Clone, PartialEq)]
pub struct RhoParams {
    /// Confidence threshold in `(0, 1]`; published rules `q → s` must
    /// have confidence `< rho`.
    pub rho: f64,
    /// Sensitive items (the `s` of the rules).
    pub sensitive: Vec<ItemId>,
    /// Antecedent size bound of the mining loop (≥ 0; 0 checks only
    /// the priors `∅ → s`, i.e. plain support disclosure).
    pub max_antecedent: usize,
}

impl RhoParams {
    /// Standard setup: threshold plus sensitive items, antecedents up
    /// to 2 (the setting of the original evaluation).
    pub fn new(rho: f64, mut sensitive: Vec<ItemId>) -> RhoParams {
        sensitive.sort_unstable();
        sensitive.dedup();
        RhoParams {
            rho,
            sensitive,
            max_antecedent: 2,
        }
    }
}

/// A violating sensitive association rule found during mining.
#[derive(Debug, Clone, PartialEq)]
struct Violation {
    antecedent: Vec<u32>,
    sensitive: u32,
    confidence: f64,
}

/// Mine violating rules `q → s` with `|q| <= max_antecedent` from the
/// rows' live (non-suppressed) items.
fn violations(
    table: &RtTable,
    rows: &[usize],
    suppressed: &[bool],
    params: &RhoParams,
) -> Vec<Violation> {
    let sensitive: FxHashSet<u32> = params
        .sensitive
        .iter()
        .filter(|s| !suppressed[s.index()])
        .map(|s| s.0)
        .collect();
    if sensitive.is_empty() || params.rho >= 1.0 {
        return Vec::new();
    }

    // count antecedent supports and antecedent∪{s} supports in one pass
    let mut sup_q: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut sup_qs: FxHashMap<(Vec<u32>, u32), u32> = FxHashMap::default();
    let mut live: Vec<u32> = Vec::new();
    for &r in rows {
        live.clear();
        live.extend(
            table
                .transaction(r)
                .iter()
                .filter(|it| !suppressed[it.index()])
                .map(|it| it.0),
        );
        if live.is_empty() {
            continue;
        }
        let present_sensitive: Vec<u32> = live
            .iter()
            .copied()
            .filter(|v| sensitive.contains(v))
            .collect();
        // enumerate antecedents of size 0..=max_antecedent over live
        // items (the empty antecedent models prior disclosure)
        for size in 0..=params.max_antecedent.min(live.len()) {
            enumerate_subsets(&live, size, &mut |q| {
                *sup_q.entry(q.to_vec()).or_insert(0) += 1;
                for &s in &present_sensitive {
                    if !q.contains(&s) {
                        *sup_qs.entry((q.to_vec(), s)).or_insert(0) += 1;
                    }
                }
            });
        }
    }

    let mut out = Vec::new();
    for ((q, s), &qs) in &sup_qs {
        let q_sup = *sup_q.get(q).expect("antecedent counted");
        let confidence = qs as f64 / q_sup as f64;
        if confidence >= params.rho {
            out.push(Violation {
                antecedent: q.clone(),
                sensitive: *s,
                confidence,
            });
        }
    }
    out
}

fn enumerate_subsets(items: &[u32], size: usize, f: &mut impl FnMut(&[u32])) {
    fn rec(
        items: &[u32],
        size: usize,
        start: usize,
        cur: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]),
    ) {
        if cur.len() == size {
            f(cur);
            return;
        }
        let need = size - cur.len();
        for i in start..=items.len().saturating_sub(need) {
            cur.push(items[i]);
            rec(items, size, i + 1, cur, f);
            cur.pop();
        }
    }
    if size > items.len() {
        return;
    }
    rec(items, size, 0, &mut Vec::with_capacity(size), f);
}

/// Pick the suppression victim from a round's kill counts: the item
/// killing the most violations per unit of lost occurrences (the
/// gain/loss greedy of SuppressControl). Ties break toward the
/// smaller item id — a strict total order, so the choice is
/// independent of map iteration order.
fn select_victim(kill_count: &FxHashMap<u32, usize>, base_supports: &[u64]) -> u32 {
    let (&victim, _) = kill_count
        .iter()
        .max_by(|(&a, &ka), (&b, &kb)| {
            let la = (base_supports[a as usize] as f64).max(1.0);
            let lb = (base_supports[b as usize] as f64).max(1.0);
            (ka as f64 / la)
                .partial_cmp(&(kb as f64 / lb))
                .expect("finite scores")
                // deterministic tie-break
                .then(b.cmp(&a))
        })
        .expect("violations imply candidates");
    victim
}

/// Run SuppressControl on `input` with `params` and the kernelized
/// (incremental, sharded) rule counters. `input.k`/`input.m` are
/// unused — ρ-uncertainty has its own parameters.
pub fn anonymize(input: &TransactionInput, params: &RhoParams) -> Result<TxOutput, TxError> {
    anonymize_with(input, params, Counting::Kernel)
}

/// Run SuppressControl with the naive reference counters (full rule
/// re-mining every round).
pub fn anonymize_reference(
    input: &TransactionInput,
    params: &RhoParams,
) -> Result<TxOutput, TxError> {
    anonymize_with(input, params, Counting::Naive)
}

/// Run SuppressControl with an explicit counting implementation.
pub fn anonymize_with(
    input: &TransactionInput,
    params: &RhoParams,
    counting: Counting,
) -> Result<TxOutput, TxError> {
    input.validate()?;
    if !(params.rho > 0.0 && params.rho <= 1.0) {
        return Err(TxError::BadInput(format!(
            "rho must be in (0, 1], got {}",
            params.rho
        )));
    }
    let universe = input.table.item_universe();
    for s in &params.sensitive {
        if s.index() >= universe {
            return Err(TxError::BadInput(format!(
                "sensitive item id {s} outside the universe"
            )));
        }
    }
    let mut timer = PhaseTimer::new();
    // empty transactions carry no rules: filter them once per run
    let rows = input.non_empty_rows();
    let mut suppressed = vec![false; universe];
    let base_supports = item_supports(input.table);
    timer.phase("setup");

    let recorder = secreta_obsv::current();
    let mut mining_rounds = 0u64;
    let mut rules_checked = 0u64;
    let mut n_suppressed = 0u64;
    match counting {
        Counting::Naive => loop {
            mining_rounds += 1;
            let viols = violations(input.table, &rows, &suppressed, params);
            rules_checked += viols.len() as u64;
            if viols.is_empty() {
                break;
            }
            let mut kill_count: FxHashMap<u32, usize> = FxHashMap::default();
            for v in &viols {
                for &q in &v.antecedent {
                    *kill_count.entry(q).or_insert(0) += 1;
                }
                *kill_count.entry(v.sensitive).or_insert(0) += 1;
            }
            let victim = select_victim(&kill_count, &base_supports);
            suppressed[victim as usize] = true;
            n_suppressed += 1;
        },
        Counting::Kernel => {
            let sensitive: FxHashSet<u32> = params.sensitive.iter().map(|s| s.0).collect();
            // rho >= 1.0 (or no sensitive items) is vacuous — mirror
            // the reference miner's short-circuit without counting
            let vacuous = sensitive.is_empty() || params.rho >= 1.0;
            let table = input.table;
            // transactions are stored sorted+deduped, so the filtered
            // live list is sorted too
            let fill_row = |sup: &[bool], pos: usize, buf: &mut Vec<u32>| {
                buf.extend(
                    table
                        .transaction(rows[pos])
                        .iter()
                        .filter(|it| !sup[it.index()])
                        .map(|it| it.0),
                );
            };
            let is_target = |t: u32| sensitive.contains(&t);
            let index = InvertedIndex::build(table, &rows, universe, |_| true);
            let mut rc = if vacuous {
                RuleCounts::default()
            } else {
                let mut rc = RuleCounts::build(
                    rows.len(),
                    params.max_antecedent,
                    true,
                    |pos, buf| fill_row(&suppressed, pos, buf),
                    is_target,
                );
                rc.stats.record_index(&index);
                rc
            };
            loop {
                mining_rounds += 1;
                let mut kill_count: FxHashMap<u32, usize> = FxHashMap::default();
                let mut viols = 0u64;
                if !vacuous {
                    for (q, s, qs, q_sup) in rc.rules() {
                        let confidence = qs as f64 / q_sup as f64;
                        if confidence >= params.rho {
                            viols += 1;
                            for &v in q {
                                *kill_count.entry(v).or_insert(0) += 1;
                            }
                            *kill_count.entry(s).or_insert(0) += 1;
                        }
                    }
                }
                rules_checked += viols;
                if viols == 0 {
                    break;
                }
                let victim = select_victim(&kill_count, &base_supports);
                suppressed[victim as usize] = true;
                n_suppressed += 1;
                // only rows containing the victim change their live
                // lists — everything else keeps its counts; the dirty
                // set rides the tiered RowSet path (dense bitmap when
                // the victim is a hot item)
                let dirty = index.union_rowset(std::iter::once(victim), &mut rc.stats);
                rc.stats.posting_unions += 1;
                rc.update_rowset(
                    &dirty,
                    |pos, buf| fill_row(&suppressed, pos, buf),
                    is_target,
                );
            }
            rc.stats.flush(&recorder);
        }
    }
    recorder.count("rho/mining_rounds", mining_rounds);
    recorder.count("rho/violating_rules", rules_checked);
    recorder.count("rho/suppressions", n_suppressed);
    timer.phase("suppress-control");

    let domain: Vec<GenEntry> = (0..universe as u32)
        .map(|v| GenEntry::Set(vec![v]))
        .collect();
    let tx = AnonTransaction::from_mapping(input.table, domain, |it| {
        if suppressed[it.index()] {
            None
        } else {
            Some(it.0)
        }
    });
    let anon = AnonTable {
        rel: Vec::new(),
        tx: Some(tx),
        n_rows: input.table.n_rows(),
    };
    timer.phase("publish");

    Ok(TxOutput {
        anon,
        phases: timer.finish(),
    })
}

/// Verify ρ-uncertainty of a published output (support/confidence
/// recomputed from the anonymized table alone, antecedents bounded by
/// `params.max_antecedent`).
pub fn is_rho_uncertain(table: &RtTable, anon: &AnonTable, params: &RhoParams) -> bool {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return true,
    };
    // reconstruct the suppression set; SuppressControl publishes
    // singleton entries so gen id == item id for live items
    let universe = table.item_universe();
    let mut suppressed = vec![true; universe];
    for row in 0..tx.n_rows() {
        for &g in tx.row_items(row) {
            if let GenEntry::Set(s) = &tx.domain[g as usize] {
                for &v in s {
                    suppressed[v as usize] = false;
                }
            }
        }
    }
    let rows: Vec<usize> = (0..table.n_rows()).collect();
    violations(table, &rows, &suppressed, params).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, Schema};

    /// 10 transactions; "hiv" co-occurs with "marker" 3/3 times.
    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for tx in [
            vec!["marker", "hiv"],
            vec!["marker", "hiv", "flu"],
            vec!["marker", "hiv"],
            vec!["flu", "cold"],
            vec!["flu", "cold"],
            vec!["flu"],
            vec!["cold"],
            vec!["flu", "cold"],
            vec!["cold", "flu"],
            vec!["flu"],
        ] {
            t.push_row(&[], &tx).unwrap();
        }
        t
    }

    fn input(t: &RtTable) -> TransactionInput<'_> {
        TransactionInput {
            table: t,
            k: 1,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        }
    }

    fn hiv(t: &RtTable) -> ItemId {
        ItemId(t.item_pool().unwrap().get("hiv").unwrap())
    }

    #[test]
    fn breaks_perfect_inference_rules() {
        let t = table();
        // marker -> hiv has confidence 1.0; demand < 0.5
        let params = RhoParams::new(0.5, vec![hiv(&t)]);
        let out = anonymize(&input(&t), &params).unwrap();
        assert!(is_rho_uncertain(&t, &out.anon, &params));
        assert!(out.anon.is_truthful(&t, |_| None, None));
        // something had to be suppressed
        assert!(!out.anon.tx.as_ref().unwrap().suppressed.is_empty());
    }

    #[test]
    fn lenient_rho_changes_nothing() {
        let t = table();
        // hiv prior is 3/10; any antecedent raises it to 1.0, so only
        // rho > 1.0-equivalent settings leave data untouched. Use a
        // non-sensitive-free policy instead: no sensitive items.
        let params = RhoParams::new(0.5, vec![]);
        let out = anonymize(&input(&t), &params).unwrap();
        assert!(out.anon.tx.as_ref().unwrap().suppressed.is_empty());
        assert!(is_rho_uncertain(&t, &out.anon, &params));
    }

    #[test]
    fn prior_disclosure_is_caught_by_empty_antecedent() {
        let t = table();
        // hiv prior = 0.3; demanding rho <= 0.3 forces suppression of
        // hiv itself even with max_antecedent = 0
        let params = RhoParams {
            rho: 0.3,
            sensitive: vec![hiv(&t)],
            max_antecedent: 0,
        };
        let out = anonymize(&input(&t), &params).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        assert!(tx.suppressed.binary_search(&hiv(&t)).is_ok());
        assert!(is_rho_uncertain(&t, &out.anon, &params));
    }

    #[test]
    fn suppression_prefers_low_loss_items() {
        let t = table();
        // killing marker->hiv: suppressing "marker" (sup 3) loses less
        // than suppressing "flu" (sup 7) and kills the rule; hiv's
        // prior (0.3) is below 0.6 so hiv itself can stay
        let params = RhoParams::new(0.6, vec![hiv(&t)]);
        let out = anonymize(&input(&t), &params).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        let flu = ItemId(t.item_pool().unwrap().get("flu").unwrap());
        assert!(tx.suppressed.binary_search(&flu).is_err(), "flu kept");
        assert!(is_rho_uncertain(&t, &out.anon, &params));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let t = table();
        assert!(matches!(
            anonymize(&input(&t), &RhoParams::new(0.0, vec![])),
            Err(TxError::BadInput(_))
        ));
        assert!(matches!(
            anonymize(&input(&t), &RhoParams::new(1.5, vec![])),
            Err(TxError::BadInput(_))
        ));
        assert!(matches!(
            anonymize(&input(&t), &RhoParams::new(0.5, vec![ItemId(999)])),
            Err(TxError::BadInput(_))
        ));
    }

    #[test]
    fn verifier_rejects_unprotected_output() {
        let t = table();
        let identity = AnonTable::identity(&t, &[]);
        let params = RhoParams::new(0.5, vec![hiv(&t)]);
        assert!(!is_rho_uncertain(&t, &identity, &params));
    }

    #[test]
    fn rho_one_is_vacuous() {
        let t = table();
        let params = RhoParams::new(1.0, vec![hiv(&t)]);
        let out = anonymize(&input(&t), &params).unwrap();
        assert!(out.anon.tx.as_ref().unwrap().suppressed.is_empty());
    }

    #[test]
    fn deterministic() {
        let t = table();
        let params = RhoParams::new(0.4, vec![hiv(&t)]);
        let a = anonymize(&input(&t), &params).unwrap();
        let b = anonymize(&input(&t), &params).unwrap();
        assert_eq!(a.anon, b.anon);
    }
}
