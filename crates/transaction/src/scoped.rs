//! Scoped runs: any transaction algorithm over a row subset.
//!
//! The RT bounding methods of [Poulis et al., ECML/PKDD 2013] enforce
//! k^m-anonymity *within each relational cluster*, so every algorithm
//! must also run against a subset of rows and report its recoding
//! instead of a fully assembled table. [`anonymize_scoped`] is that
//! entry point; the result is a [`ClusterTx`] describing, for each
//! in-scope row, where each of its items goes.

use crate::apriori::anonymize_rows;
use crate::coat::constrain;
use crate::common::{TransactionAlgorithm, TxError};
use crate::groups::ItemGroups;
use crate::pcta::cluster_items;
use crate::support::Counting;
use secreta_data::{ItemId, RtTable};
use secreta_hierarchy::{Hierarchy, NodeId};
use secreta_metrics::GenEntry;
use secreta_policy::{PrivacyPolicy, UtilityPolicy};

/// Item recoding of one (chunk of a) scoped run.
#[derive(Debug, Clone)]
pub enum ItemMap {
    /// Hierarchy recoding: item id → node (or suppressed).
    Nodes(Vec<Option<NodeId>>),
    /// Set recoding: item id → sorted member set (or suppressed).
    Sets(Vec<Option<Vec<u32>>>),
}

impl ItemMap {
    /// The published generalized entry of `it` under this map.
    pub fn entry(&self, it: ItemId) -> Option<GenEntry> {
        match self {
            ItemMap::Nodes(v) => v[it.index()].map(GenEntry::Node),
            ItemMap::Sets(v) => v[it.index()].as_ref().map(|s| GenEntry::Set(s.clone())),
        }
    }

    fn from_groups(mut groups: ItemGroups) -> ItemMap {
        let n = groups.len();
        let mut v: Vec<Option<Vec<u32>>> = Vec::with_capacity(n);
        for i in 0..n as u32 {
            if groups.is_suppressed(i) {
                v.push(None);
            } else {
                v.push(Some(groups.group_members(i)));
            }
        }
        ItemMap::Sets(v)
    }
}

/// The transaction recoding of one relational (super-)cluster.
#[derive(Debug, Clone)]
pub struct ClusterTx {
    /// The rows this recoding covers, in the order given to
    /// [`anonymize_scoped`].
    pub rows: Vec<usize>,
    /// Chunk index of each row (parallel to `rows`; all zero except
    /// under LRA's horizontal partitioning).
    pub chunk_of_row: Vec<u32>,
    /// Per-chunk item maps.
    pub chunks: Vec<ItemMap>,
}

impl ClusterTx {
    /// Published entry of item `it` in the row at position `row_pos`
    /// of `rows`.
    pub fn entry(&self, row_pos: usize, it: ItemId) -> Option<GenEntry> {
        self.chunks[self.chunk_of_row[row_pos] as usize].entry(it)
    }
}

/// Run `algo` over exactly the rows in `rows`, enforcing `k`/`m` (or
/// the policies, for COAT/PCTA) within that scope.
#[allow(clippy::too_many_arguments)]
pub fn anonymize_scoped(
    algo: TransactionAlgorithm,
    table: &RtTable,
    rows: &[usize],
    k: usize,
    m: usize,
    hierarchy: Option<&Hierarchy>,
    privacy: Option<&PrivacyPolicy>,
    utility: Option<&UtilityPolicy>,
) -> Result<ClusterTx, TxError> {
    let need_h = || {
        hierarchy
            .ok_or_else(|| TxError::BadInput(format!("{} requires an item hierarchy", algo.name())))
    };
    let default_privacy;
    let privacy = match privacy {
        Some(p) => p,
        None => {
            default_privacy = PrivacyPolicy::all_items(table);
            &default_privacy
        }
    };
    let default_utility;
    let utility = match utility {
        Some(u) => u,
        None => {
            default_utility = UtilityPolicy::unconstrained(table);
            &default_utility
        }
    };

    match algo {
        TransactionAlgorithm::Apriori => {
            let h = need_h()?;
            let state = anonymize_rows(
                table,
                rows,
                k,
                m,
                h,
                |_| true,
                |_| true,
                false,
                Counting::Kernel,
            )?;
            let map = (0..h.n_leaves() as u32)
                .map(|v| state.map(ItemId(v)))
                .collect();
            Ok(ClusterTx {
                rows: rows.to_vec(),
                chunk_of_row: vec![0; rows.len()],
                chunks: vec![ItemMap::Nodes(map)],
            })
        }
        TransactionAlgorithm::Lra { partitions } => {
            let h = need_h()?;
            let partitions = partitions.max(1);
            // sort in-scope non-empty rows by content, chunk, AA each
            let mut order: Vec<usize> = (0..rows.len())
                .filter(|&p| !table.transaction(rows[p]).is_empty())
                .collect();
            order.sort_by(|&a, &b| table.transaction(rows[a]).cmp(table.transaction(rows[b])));
            let mut chunk_of_row = vec![0u32; rows.len()];
            let mut chunks: Vec<ItemMap> = Vec::new();
            if order.is_empty() {
                chunks.push(ItemMap::Nodes(vec![None; h.n_leaves()]));
            } else {
                if order.len() < k {
                    return Err(TxError::Infeasible {
                        k,
                        non_empty: order.len(),
                    });
                }
                let target = order.len().div_ceil(partitions).max(k);
                let mut chunk_rows: Vec<Vec<usize>> =
                    order.chunks(target).map(|c| c.to_vec()).collect();
                if chunk_rows.len() > 1 && chunk_rows.last().map(Vec::len).unwrap_or(0) < k {
                    let tail = chunk_rows.pop().expect("non-empty");
                    chunk_rows
                        .last_mut()
                        .expect("len > 1 before pop")
                        .extend(tail);
                }
                for positions in chunk_rows {
                    let abs: Vec<usize> = positions.iter().map(|&p| rows[p]).collect();
                    let state = anonymize_rows(
                        table,
                        &abs,
                        k,
                        m,
                        h,
                        |_| true,
                        |_| true,
                        false,
                        Counting::Kernel,
                    )?;
                    let ci = chunks.len() as u32;
                    for &p in &positions {
                        chunk_of_row[p] = ci;
                    }
                    let map = (0..h.n_leaves() as u32)
                        .map(|v| state.map(ItemId(v)))
                        .collect();
                    chunks.push(ItemMap::Nodes(map));
                }
            }
            Ok(ClusterTx {
                rows: rows.to_vec(),
                chunk_of_row,
                chunks,
            })
        }
        TransactionAlgorithm::Vpa { parts } => {
            let h = need_h()?;
            let parts = parts.max(1).min(h.n_leaves().max(1));
            let dfs: Vec<u32> = h.leaves_under(h.root()).collect();
            let per_part = dfs.len().div_ceil(parts);
            let mut part_of = vec![0usize; h.n_leaves()];
            for (pos, &leaf) in dfs.iter().enumerate() {
                part_of[leaf as usize] = pos / per_part;
            }
            let n_parts = dfs.len().div_ceil(per_part);
            let mut map: Vec<Option<NodeId>> = vec![None; h.n_leaves()];
            for p in 0..n_parts {
                let state = anonymize_rows(
                    table,
                    rows,
                    k,
                    m,
                    h,
                    |node| h.leaves_under(node).all(|v| part_of[v as usize] == p),
                    |it| part_of[it.index()] == p,
                    true,
                    Counting::Kernel,
                )?;
                for v in 0..h.n_leaves() as u32 {
                    if part_of[v as usize] == p {
                        map[v as usize] = state.map(ItemId(v));
                    }
                }
            }
            Ok(ClusterTx {
                rows: rows.to_vec(),
                chunk_of_row: vec![0; rows.len()],
                chunks: vec![ItemMap::Nodes(map)],
            })
        }
        TransactionAlgorithm::Coat => {
            let groups = constrain(table, rows, k, privacy, utility, false, Counting::Kernel);
            Ok(ClusterTx {
                rows: rows.to_vec(),
                chunk_of_row: vec![0; rows.len()],
                chunks: vec![ItemMap::from_groups(groups)],
            })
        }
        TransactionAlgorithm::Pcta => {
            let groups = cluster_items(table, rows, k, privacy, utility, Counting::Kernel);
            Ok(ClusterTx {
                rows: rows.to_vec(),
                chunk_of_row: vec![0; rows.len()],
                chunks: vec![ItemMap::from_groups(groups)],
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for tx in [
            vec!["a", "b"],
            vec!["a", "b"],
            vec!["a", "c"],
            vec!["b", "c"],
            vec!["c", "d"],
            vec!["c", "d"],
        ] {
            t.push_row(&[], &tx).unwrap();
        }
        t
    }

    #[test]
    fn scoped_apriori_ignores_out_of_scope_rows() {
        let t = table();
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        // only rows 4,5 in scope: {c,d} twice is already 2^2-anonymous
        let ct = anonymize_scoped(
            TransactionAlgorithm::Apriori,
            &t,
            &[4, 5],
            2,
            2,
            Some(&h),
            None,
            None,
        )
        .unwrap();
        let c_id = ItemId(t.item_pool().unwrap().get("c").unwrap());
        let entry = ct.entry(0, c_id).unwrap();
        assert_eq!(entry.leaf_count(Some(&h)), 1, "no generalization needed");
    }

    #[test]
    fn scoped_run_respects_scope_k() {
        let t = table();
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        // rows 0..4: d never occurs; a,b,c all have support >= 2 in scope
        let ct = anonymize_scoped(
            TransactionAlgorithm::Apriori,
            &t,
            &[0, 1, 2, 3],
            2,
            1,
            Some(&h),
            None,
            None,
        )
        .unwrap();
        for (pos, _) in [0, 1, 2, 3].iter().enumerate() {
            for &it in t.transaction(pos) {
                assert!(ct.entry(pos, it).is_some());
            }
        }
    }

    #[test]
    fn scoped_coat_and_pcta_work_without_hierarchy() {
        let t = table();
        for algo in [TransactionAlgorithm::Coat, TransactionAlgorithm::Pcta] {
            let ct = anonymize_scoped(algo, &t, &[0, 1, 2, 3], 2, 1, None, None, None).unwrap();
            assert_eq!(ct.chunks.len(), 1);
            // every in-scope item published somehow (merge, not suppress)
            for pos in 0..4usize {
                for &it in t.transaction(pos) {
                    assert!(ct.entry(pos, it).is_some(), "{algo:?}");
                }
            }
        }
    }

    #[test]
    fn scoped_lra_chunks_rows() {
        let t = table();
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let ct = anonymize_scoped(
            TransactionAlgorithm::Lra { partitions: 3 },
            &t,
            &[0, 1, 2, 3, 4, 5],
            2,
            1,
            Some(&h),
            None,
            None,
        )
        .unwrap();
        assert!(ct.chunks.len() >= 2, "six rows, k=2, 3 partitions");
    }

    #[test]
    fn scoped_hierarchy_required_for_km_algorithms() {
        let t = table();
        for algo in [
            TransactionAlgorithm::Apriori,
            TransactionAlgorithm::Lra { partitions: 2 },
            TransactionAlgorithm::Vpa { parts: 2 },
        ] {
            assert!(matches!(
                anonymize_scoped(algo, &t, &[0, 1], 2, 1, None, None, None),
                Err(TxError::BadInput(_))
            ));
        }
    }

    #[test]
    fn scoped_infeasible_propagates() {
        let t = table();
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        assert!(matches!(
            anonymize_scoped(
                TransactionAlgorithm::Apriori,
                &t,
                &[0],
                2,
                1,
                Some(&h),
                None,
                None
            ),
            Err(TxError::Infeasible { .. })
        ));
    }
}
