//! VPA — vertical partitioning anonymization (Terrovitis et al.,
//! VLDB J. 2011).
//!
//! Splits the *item domain* into vertical parts (contiguous runs of
//! the hierarchy's DFS leaf order, so subtrees stay intact), projects
//! every transaction onto each part, and runs Apriori anonymization on
//! each projected sub-database independently. Recoding inside a part
//! may not climb above the part — the part's *ceiling* — so when a
//! violation cannot be repaired within the ceiling the offending
//! items are suppressed (the cross-part trade-off the original paper
//! accepts: protection is guaranteed per part, and adversary
//! knowledge spanning parts is the documented residual risk; with
//! `m = 1` the guarantee is global).

use crate::apriori::{anonymize_rows, build_anon};
use crate::common::{TransactionInput, TxError, TxOutput};
use crate::support::Counting;
use secreta_metrics::PhaseTimer;

/// Run VPA with `parts` vertical parts (kernelized support counting).
pub fn anonymize(input: &TransactionInput, parts: usize) -> Result<TxOutput, TxError> {
    anonymize_with(input, parts, Counting::Kernel)
}

/// Run VPA with the naive reference counters.
pub fn anonymize_reference(input: &TransactionInput, parts: usize) -> Result<TxOutput, TxError> {
    anonymize_with(input, parts, Counting::Naive)
}

/// Run VPA with an explicit counting implementation.
pub fn anonymize_with(
    input: &TransactionInput,
    parts: usize,
    counting: Counting,
) -> Result<TxOutput, TxError> {
    input.validate()?;
    let h = input
        .hierarchy
        .ok_or_else(|| TxError::BadInput("VPA requires an item hierarchy".into()))?;
    let parts = parts.max(1).min(h.n_leaves().max(1));
    let mut timer = PhaseTimer::new();

    // vertical parts: contiguous runs of the DFS leaf order
    let dfs: Vec<u32> = h.leaves_under(h.root()).collect();
    let per_part = dfs.len().div_ceil(parts);
    let mut part_of = vec![0usize; h.n_leaves()];
    for (pos, &leaf) in dfs.iter().enumerate() {
        part_of[leaf as usize] = pos / per_part;
    }
    let n_parts = dfs.len().div_ceil(per_part);
    secreta_obsv::current().count("vpa/parts", n_parts as u64);
    timer.phase("vertical partitioning");

    let rows: Vec<usize> = (0..input.table.n_rows()).collect();
    let mut states = Vec::with_capacity(n_parts);
    for p in 0..n_parts {
        // the part's ceiling: a node is allowed iff all its leaves are
        // in part p
        let state = anonymize_rows(
            input.table,
            &rows,
            input.k,
            input.m,
            h,
            |node| h.leaves_under(node).all(|v| part_of[v as usize] == p),
            |it| part_of[it.index()] == p,
            true,
            counting,
        )?;
        states.push(state);
    }
    timer.phase("per-part recoding");

    let anon = build_anon(input.table, h, |_, it| states[part_of[it.index()]].map(it));
    timer.phase("publish");

    Ok(TxOutput {
        anon,
        phases: timer.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori;
    use crate::verify::is_km_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::{auto_hierarchy, Hierarchy};
    use secreta_metrics::transaction_gcp;

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for tx in [
            vec!["a", "b", "x"],
            vec!["a", "b", "y"],
            vec!["a", "c", "x"],
            vec!["b", "c", "y"],
            vec!["a", "b", "x"],
            vec!["c", "y"],
            vec!["a", "x", "y"],
            vec!["b", "c", "x"],
        ] {
            t.push_row(&[], &tx).unwrap();
        }
        t
    }

    fn hierarchy(t: &RtTable) -> Hierarchy {
        auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap()
    }

    #[test]
    fn m1_guarantee_is_global() {
        let t = table();
        let h = hierarchy(&t);
        for parts in [1, 2, 3] {
            let out = anonymize(&TransactionInput::km(&t, 2, 1, &h), parts).unwrap();
            assert!(is_km_anonymous(&out.anon, 2, 1, Some(&h)), "parts={parts}");
            assert!(out.anon.is_truthful(&t, |_| None, Some(&h)));
        }
    }

    #[test]
    fn one_part_equals_apriori() {
        let t = table();
        let h = hierarchy(&t);
        let vpa = anonymize(&TransactionInput::km(&t, 2, 2, &h), 1).unwrap();
        let aa = apriori::anonymize(&TransactionInput::km(&t, 2, 2, &h)).unwrap();
        assert!(
            (transaction_gcp(&t, &vpa.anon, Some(&h)) - transaction_gcp(&t, &aa.anon, Some(&h)))
                .abs()
                < 1e-12
        );
        assert!(is_km_anonymous(&vpa.anon, 2, 2, Some(&h)));
    }

    #[test]
    fn per_part_protection_holds_for_higher_m() {
        // project the published data onto each part and check k^m there
        let t = table();
        let h = hierarchy(&t);
        let parts = 2;
        let out = anonymize(&TransactionInput::km(&t, 2, 2, &h), parts).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();

        let dfs: Vec<u32> = h.leaves_under(h.root()).collect();
        let per_part = dfs.len().div_ceil(parts);
        let mut part_of = vec![0usize; h.n_leaves()];
        for (pos, &leaf) in dfs.iter().enumerate() {
            part_of[leaf as usize] = pos / per_part;
        }
        for p in 0..parts {
            // keep only this part's gen items per row, then re-count
            use secreta_data::hash::FxHashMap;
            let mut sup: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
            for row in 0..tx.n_rows() {
                let mine: Vec<u32> = tx
                    .row_items(row)
                    .iter()
                    .copied()
                    .filter(|&g| {
                        // a gen item belongs to the part of its leaves
                        match &tx.domain[g as usize] {
                            secreta_metrics::GenEntry::Node(n) => {
                                h.leaves_under(*n).all(|v| part_of[v as usize] == p)
                            }
                            _ => false,
                        }
                    })
                    .collect();
                for i in 1..=2usize.min(mine.len()) {
                    let view: Vec<secreta_hierarchy::NodeId> =
                        mine.iter().map(|&g| secreta_hierarchy::NodeId(g)).collect();
                    crate::apriori::for_each_subset(&view, i, &mut |s| {
                        let key: Vec<u32> = s.iter().map(|n| n.0).collect();
                        *sup.entry(key).or_insert(0) += 1;
                    });
                }
            }
            for (set, &c) in &sup {
                assert!(c >= 2, "part {p}: {set:?} has support {c}");
            }
        }
    }

    #[test]
    fn suppression_only_under_ceiling_pressure() {
        // strict global AA never suppresses; VPA may, but on this easy
        // data it should not need to for k=2,m=1
        let t = table();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 2, 1, &h), 2).unwrap();
        assert!(out.anon.tx.as_ref().unwrap().suppressed.len() <= 1);
    }

    #[test]
    fn extreme_parts_suppress_rare_items() {
        // every item its own part and a k larger than some item's
        // support forces suppression of rare items
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for _ in 0..4 {
            t.push_row(&[], &["common"]).unwrap();
        }
        t.push_row(&[], &["common", "rare"]).unwrap();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 2, 1, &h), h.n_leaves()).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        let rare = t.item_pool().unwrap().get("rare").unwrap();
        assert!(tx
            .suppressed
            .binary_search(&secreta_data::ItemId(rare))
            .is_ok());
        assert!(is_km_anonymous(&out.anon, 2, 1, Some(&h)));
    }

    #[test]
    fn too_small_input_suppresses_everything() {
        // unlike AA, VPA resolves unfixable violations by suppression,
        // so a single transaction with k=2 publishes empty
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["a"]).unwrap();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 2, 1, &h), 1).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        assert!(tx.row_items(0).is_empty());
        assert_eq!(tx.suppressed.len(), 1);
        assert!(is_km_anonymous(&out.anon, 2, 1, Some(&h)));
    }
}
