//! Shared types for the transaction algorithms.

use secreta_data::RtTable;
use secreta_hierarchy::Hierarchy;
use secreta_metrics::{AnonTable, PhaseTimes};
use secreta_policy::{PrivacyPolicy, UtilityPolicy};
use std::fmt;

/// Errors raised by transaction anonymization.
#[derive(Debug, PartialEq, Eq)]
pub enum TxError {
    /// Fewer than `k` non-empty transactions exist: k^m-anonymity is
    /// unreachable by generalization alone.
    Infeasible {
        /// Requested protection level.
        k: usize,
        /// Non-empty transactions available.
        non_empty: usize,
    },
    /// Input is structurally unusable.
    BadInput(String),
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::Infeasible { k, non_empty } => write!(
                f,
                "k^m-anonymity infeasible: k={k} but only {non_empty} non-empty transactions"
            ),
            TxError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for TxError {}

/// Input to every transaction algorithm.
pub struct TransactionInput<'a> {
    /// The dataset (must have a transaction attribute).
    pub table: &'a RtTable,
    /// Protection level.
    pub k: usize,
    /// Adversary knowledge bound for the k^m algorithms (AA, LRA,
    /// VPA). COAT/PCTA take their threat model from `privacy`.
    pub m: usize,
    /// Item hierarchy (required by AA, LRA, VPA; ignored by
    /// COAT/PCTA).
    pub hierarchy: Option<&'a Hierarchy>,
    /// Privacy policy for COAT/PCTA; `None` defaults to protecting
    /// every single item.
    pub privacy: Option<&'a PrivacyPolicy>,
    /// Utility policy for COAT/PCTA; `None` defaults to unconstrained.
    pub utility: Option<&'a UtilityPolicy>,
}

impl<'a> TransactionInput<'a> {
    /// Minimal input for the k^m algorithms.
    pub fn km(table: &'a RtTable, k: usize, m: usize, hierarchy: &'a Hierarchy) -> Self {
        TransactionInput {
            table,
            k,
            m,
            hierarchy: Some(hierarchy),
            privacy: None,
            utility: None,
        }
    }

    /// Minimal input for the constraint-based algorithms.
    pub fn constrained(
        table: &'a RtTable,
        k: usize,
        privacy: &'a PrivacyPolicy,
        utility: &'a UtilityPolicy,
    ) -> Self {
        TransactionInput {
            table,
            k,
            m: 1,
            hierarchy: None,
            privacy: Some(privacy),
            utility: Some(utility),
        }
    }

    /// Validate invariants shared by all algorithms.
    pub fn validate(&self) -> Result<(), TxError> {
        if self.k == 0 {
            return Err(TxError::BadInput("k must be at least 1".into()));
        }
        if self.table.schema().transaction_index().is_none() {
            return Err(TxError::BadInput(
                "dataset has no transaction attribute".into(),
            ));
        }
        if let Some(h) = self.hierarchy {
            if h.n_leaves() != self.table.item_universe() {
                return Err(TxError::BadInput(format!(
                    "item hierarchy covers {} items, universe has {}",
                    h.n_leaves(),
                    self.table.item_universe()
                )));
            }
        }
        Ok(())
    }

    /// Rows with a non-empty transaction.
    pub fn non_empty_rows(&self) -> Vec<usize> {
        (0..self.table.n_rows())
            .filter(|&r| !self.table.transaction(r).is_empty())
            .collect()
    }
}

/// Result of a transaction run.
#[derive(Debug, Clone)]
pub struct TxOutput {
    /// Anonymized table (transaction part populated, `rel` empty).
    pub anon: AnonTable,
    /// Per-phase wall-clock times.
    pub phases: PhaseTimes,
}

/// Algorithm selector for the framework's configuration layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransactionAlgorithm {
    /// Apriori anonymization (AA) — global full-subtree recoding.
    Apriori,
    /// Local recoding over horizontal partitions; the payload is the
    /// target number of partitions.
    Lra {
        /// Number of horizontal partitions (≥ 1).
        partitions: usize,
    },
    /// Vertical partitioning; the payload is the number of item-domain
    /// parts.
    Vpa {
        /// Number of vertical parts (≥ 1).
        parts: usize,
    },
    /// COAT — constraint-based generalization and suppression.
    Coat,
    /// PCTA — UL-guided item clustering.
    Pcta,
}

impl TransactionAlgorithm {
    /// Display name (as in the GUI's algorithm selectors).
    pub fn name(self) -> &'static str {
        match self {
            TransactionAlgorithm::Apriori => "Apriori",
            TransactionAlgorithm::Lra { .. } => "LRA",
            TransactionAlgorithm::Vpa { .. } => "VPA",
            TransactionAlgorithm::Coat => "COAT",
            TransactionAlgorithm::Pcta => "PCTA",
        }
    }

    /// The five algorithms with default parameters, in the paper's
    /// listing order.
    pub fn all() -> [TransactionAlgorithm; 5] {
        [
            TransactionAlgorithm::Coat,
            TransactionAlgorithm::Pcta,
            TransactionAlgorithm::Apriori,
            TransactionAlgorithm::Lra { partitions: 2 },
            TransactionAlgorithm::Vpa { parts: 4 },
        ]
    }

    /// Run the selected algorithm.
    pub fn run(self, input: &TransactionInput) -> Result<TxOutput, TxError> {
        match self {
            TransactionAlgorithm::Apriori => crate::apriori::anonymize(input),
            TransactionAlgorithm::Lra { partitions } => crate::lra::anonymize(input, partitions),
            TransactionAlgorithm::Vpa { parts } => crate::vpa::anonymize(input, parts),
            TransactionAlgorithm::Coat => crate::coat::anonymize(input),
            TransactionAlgorithm::Pcta => crate::pcta::anonymize(input),
        }
    }
}

impl fmt::Display for TransactionAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionAlgorithm::Lra { partitions } => write!(f, "LRA(p={partitions})"),
            TransactionAlgorithm::Vpa { parts } => write!(f, "VPA(p={parts})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["a", "b"]).unwrap();
        t.push_row(&[], &[]).unwrap();
        t.push_row(&[], &["c"]).unwrap();
        t
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let t = table();
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let mut i = TransactionInput::km(&t, 2, 2, &h);
        assert!(i.validate().is_ok());
        i.k = 0;
        assert!(matches!(i.validate(), Err(TxError::BadInput(_))));

        let rel_only = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let rt = RtTable::new(rel_only);
        let j = TransactionInput {
            table: &rt,
            k: 2,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        assert!(matches!(j.validate(), Err(TxError::BadInput(_))));
    }

    #[test]
    fn hierarchy_domain_mismatch_rejected() {
        let t = table();
        let mut other_pool = secreta_data::ValuePool::new();
        other_pool.intern("x");
        let h = auto_hierarchy(&other_pool, AttributeKind::Categorical, 2).unwrap();
        let i = TransactionInput::km(&t, 2, 1, &h);
        assert!(matches!(i.validate(), Err(TxError::BadInput(_))));
    }

    #[test]
    fn non_empty_rows_skips_blanks() {
        let t = table();
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let i = TransactionInput::km(&t, 2, 1, &h);
        assert_eq!(i.non_empty_rows(), vec![0, 2]);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(TransactionAlgorithm::Coat.to_string(), "COAT");
        assert_eq!(
            TransactionAlgorithm::Lra { partitions: 3 }.to_string(),
            "LRA(p=3)"
        );
        assert_eq!(TransactionAlgorithm::all().len(), 5);
    }
}
