//! # secreta-transaction
//!
//! The five transaction anonymization algorithms SECRETA integrates:
//!
//! | Algorithm | Model | Transformation | Reference |
//! |---|---|---|---|
//! | [`apriori`] (AA) | k^m-anonymity | hierarchy, global full-subtree | Terrovitis et al., VLDB J. 2011 |
//! | [`lra`] | k^m-anonymity | hierarchy, **local** recoding per horizontal partition | Terrovitis et al., VLDB J. 2011 |
//! | [`vpa`] | k^m-anonymity per vertical part | hierarchy, per-part recoding | Terrovitis et al., VLDB J. 2011 |
//! | [`coat`] | privacy/utility constraints | hierarchy-free set merging + suppression | Loukides et al., KAIS 2011 |
//! | [`pcta`] | privacy constraints | hierarchy-free UL-guided item clustering | Gkoulalas-Divanis & Loukides, TDP 2012 |
//!
//! All five consume a [`TransactionInput`] and emit an
//! [`secreta_metrics::AnonTable`] (transaction part only) plus phase
//! timings; [`verify`] re-checks k^m-anonymity and policy satisfaction
//! from the published output alone.
//!
//! Support counting — the shared hot path of every algorithm here —
//! runs on the kernels in [`support`] (interned itemset keys, inverted
//! indexes, incremental rounds, deterministic sharded counting). Each
//! algorithm also keeps its original recount-everything implementation
//! behind [`support::Counting::Naive`], reachable through the
//! `anonymize_reference` entry points, as the oracle for equivalence
//! tests and `secreta bench --suite tx`.

#![deny(missing_docs)]

pub mod apriori;
pub mod bitmap;
pub mod coat;
pub mod common;
pub mod groups;
pub mod lra;
pub mod pcta;
pub mod rho;
pub mod rho_td;
pub mod scoped;
pub mod support;
pub mod verify;
pub mod vpa;

pub use bitmap::{density_threshold, set_density_threshold, Bitset, RowSet};
pub use common::{TransactionAlgorithm, TransactionInput, TxError, TxOutput};
pub use rho::{is_rho_uncertain, RhoParams};
pub use rho_td::is_rho_uncertain_published;
pub use scoped::{anonymize_scoped, ClusterTx, ItemMap};
pub use support::Counting;
pub use verify::{is_km_anonymous, satisfies_privacy};
