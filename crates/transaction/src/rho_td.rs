//! TDControl — generalization-based ρ-uncertainty (Cao, Karras,
//! Raïssi, Tan — PVLDB 2010), the companion of `rho`'s
//! SuppressControl.
//!
//! Where SuppressControl deletes items, TDControl *generalizes* the
//! non-sensitive vocabulary over the item hierarchy, publishing
//! sensitive items untouched (generalizing a sensitive item would
//! change what the rule `q → s` even means). The algorithm is
//! top-down: start from the most general cut, repeatedly try the
//! specialization that recovers the most information, and keep it only
//! if every sensitive association rule stays below the confidence
//! threshold ρ. Sensitive items whose *prior* already violates ρ can
//! be saved by nothing but suppression, which remains the fallback.
//!
//! As in [`crate::rho`], mined antecedents are bounded
//! (`max_antecedent`), matching the reference implementation's
//! practical bound.

use crate::common::{TransactionInput, TxError, TxOutput};
use crate::rho::RhoParams;
use crate::support::{Counting, InvertedIndex, KernelStats, RuleCounts};
use secreta_data::hash::{FxHashMap, FxHashSet};
use secreta_data::{ItemId, RtTable};
use secreta_hierarchy::{Cut, NodeId};
use secreta_metrics::anon::AnonTransaction;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};

/// Kernel token encoding: sensitive tokens carry the high bit so they
/// sort after every generalized-node token, mirroring the
/// `Gen < Sensitive` order of the naive [`Token`] enum. Node and item
/// ids stay well below 2^31 in practice (they index in-memory arrays).
const SENSITIVE_BIT: u32 = 0x8000_0000;

/// The published state during the search: a cut for non-sensitive
/// items, raw sensitive items, and per-item suppression.
struct State {
    cut: Cut,
    sensitive: FxHashSet<u32>,
    suppressed: Vec<bool>,
}

/// A published token: either a generalized non-sensitive node or a raw
/// sensitive item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Token {
    Gen(NodeId),
    Sensitive(u32),
}

impl State {
    fn token_of(&self, it: ItemId) -> Option<Token> {
        if self.suppressed[it.index()] {
            None
        } else if self.sensitive.contains(&it.0) {
            Some(Token::Sensitive(it.0))
        } else {
            Some(Token::Gen(self.cut.node_of(it.0)))
        }
    }

    /// [`State::token_of`] under the packed `u32` encoding used by the
    /// interned kernel counters.
    fn token_u32(&self, it: ItemId) -> Option<u32> {
        if self.suppressed[it.index()] {
            None
        } else if self.sensitive.contains(&it.0) {
            Some(SENSITIVE_BIT | it.0)
        } else {
            Some(self.cut.node_of(it.0).0)
        }
    }

    /// [`State::has_violation`] with an explicit counting
    /// implementation. The kernel arm here is a one-shot from-scratch
    /// count (parallel shards, zero per-subset allocation); the main
    /// search in [`anonymize_with`] instead maintains one incremental
    /// [`RuleCounts`] across rounds, re-enumerating only the rows a
    /// suppression or cut move dirtied via the tiered
    /// [`InvertedIndex::union_rowset`] path.
    fn has_violation_with(
        &self,
        table: &RtTable,
        rows: &[usize],
        params: &RhoParams,
        counting: Counting,
        stats: &mut KernelStats,
    ) -> bool {
        match counting {
            Counting::Naive => self.has_violation(table, rows, params),
            Counting::Kernel => {
                if params.rho >= 1.0 {
                    return false;
                }
                let fill = |pos: usize, buf: &mut Vec<u32>| {
                    buf.extend(
                        table
                            .transaction(rows[pos])
                            .iter()
                            .filter_map(|&it| self.token_u32(it)),
                    );
                    buf.sort_unstable();
                    buf.dedup();
                };
                let rc =
                    RuleCounts::build(rows.len(), params.max_antecedent, false, fill, |t: u32| {
                        t & SENSITIVE_BIT != 0
                    });
                stats.absorb(&rc.stats);
                rc.any_violation(params.rho)
            }
        }
    }

    /// Mine sensitive rules `q → s` (|q| ≤ max_antecedent) over the
    /// published tokens of `rows`; true iff some rule reaches ρ.
    fn has_violation(&self, table: &RtTable, rows: &[usize], params: &RhoParams) -> bool {
        if params.rho >= 1.0 {
            return false;
        }
        let mut sup_q: FxHashMap<Vec<Token>, u32> = FxHashMap::default();
        let mut sup_qs: FxHashMap<(Vec<Token>, u32), u32> = FxHashMap::default();
        let mut toks: Vec<Token> = Vec::new();
        for &r in rows {
            toks.clear();
            toks.extend(
                table
                    .transaction(r)
                    .iter()
                    .filter_map(|&it| self.token_of(it)),
            );
            toks.sort_unstable();
            toks.dedup();
            if toks.is_empty() {
                continue;
            }
            let present_sensitive: Vec<u32> = toks
                .iter()
                .filter_map(|t| match t {
                    Token::Sensitive(s) => Some(*s),
                    Token::Gen(_) => None,
                })
                .collect();
            for size in 0..=params.max_antecedent.min(toks.len()) {
                subsets(&toks, size, &mut |q| {
                    *sup_q.entry(q.to_vec()).or_insert(0) += 1;
                    for &s in &present_sensitive {
                        if !q.contains(&Token::Sensitive(s)) {
                            *sup_qs.entry((q.to_vec(), s)).or_insert(0) += 1;
                        }
                    }
                });
            }
        }
        sup_qs.iter().any(|((q, _), &qs)| {
            let q_sup = *sup_q.get(q).expect("antecedent counted");
            qs as f64 / q_sup as f64 >= params.rho
        })
    }
}

fn subsets(items: &[Token], size: usize, f: &mut impl FnMut(&[Token])) {
    fn rec(
        items: &[Token],
        size: usize,
        start: usize,
        cur: &mut Vec<Token>,
        f: &mut impl FnMut(&[Token]),
    ) {
        if cur.len() == size {
            f(cur);
            return;
        }
        let need = size - cur.len();
        for i in start..=items.len().saturating_sub(need) {
            cur.push(items[i]);
            rec(items, size, i + 1, cur, f);
            cur.pop();
        }
    }
    if size > items.len() {
        return;
    }
    rec(items, size, 0, &mut Vec::with_capacity(size), f);
}

/// Run TDControl on `input` with `params` using the kernelized
/// counters. Requires the item hierarchy; `input.k`/`input.m` are
/// unused.
pub fn anonymize(input: &TransactionInput, params: &RhoParams) -> Result<TxOutput, TxError> {
    anonymize_with(input, params, Counting::Kernel)
}

/// Run TDControl with the naive reference counters (the oracle the
/// kernel path is tested against).
pub fn anonymize_reference(
    input: &TransactionInput,
    params: &RhoParams,
) -> Result<TxOutput, TxError> {
    anonymize_with(input, params, Counting::Naive)
}

/// Run TDControl with an explicit counting implementation.
pub fn anonymize_with(
    input: &TransactionInput,
    params: &RhoParams,
    counting: Counting,
) -> Result<TxOutput, TxError> {
    input.validate()?;
    let h = input
        .hierarchy
        .ok_or_else(|| TxError::BadInput("TDControl requires an item hierarchy".into()))?;
    if !(params.rho > 0.0 && params.rho <= 1.0) {
        return Err(TxError::BadInput(format!(
            "rho must be in (0, 1], got {}",
            params.rho
        )));
    }
    let universe = input.table.item_universe();
    for s in &params.sensitive {
        if s.index() >= universe {
            return Err(TxError::BadInput(format!(
                "sensitive item id {s} outside the universe"
            )));
        }
    }
    let mut timer = PhaseTimer::new();
    // empty transactions contribute nothing to any rule or prior:
    // filter them once per run instead of rescanning them every check
    let rows = input.non_empty_rows();
    let mut state = State {
        cut: Cut::root(h),
        sensitive: params.sensitive.iter().map(|s| s.0).collect(),
        suppressed: vec![false; universe],
    };
    let mut stats = KernelStats::default();
    // Raw supports never change under recoding, so the index answers
    // every prior-victim scan for the whole run.
    let index = match counting {
        Counting::Kernel => Some(InvertedIndex::build(input.table, &rows, universe, |_| true)),
        Counting::Naive => None,
    };
    if let Some(ix) = &index {
        stats.record_index(ix);
    }
    // The incremental kernel counter: built once at the fully general
    // cut with per-row token lists retained, then maintained across
    // every suppression and cut move by re-enumerating only the dirty
    // rows, delivered as tiered [`RowSet`]s from the index. `None` on
    // the naive path and when ρ ≥ 1.0 makes every rule vacuous.
    let fill_tokens = |state: &State, pos: usize, buf: &mut Vec<u32>| {
        buf.extend(
            input
                .table
                .transaction(rows[pos])
                .iter()
                .filter_map(|&it| state.token_u32(it)),
        );
        buf.sort_unstable();
        buf.dedup();
    };
    let is_target = |t: u32| t & SENSITIVE_BIT != 0;
    let mut rc = match (&index, params.rho < 1.0) {
        (Some(_), true) => Some(RuleCounts::build(
            rows.len(),
            params.max_antecedent,
            true,
            |pos, buf| fill_tokens(&state, pos, buf),
            is_target,
        )),
        _ => None,
    };
    timer.phase("setup");

    // Priors first: a sensitive item violating at the fully general
    // cut can only be rescued by suppressing it (or, transitively,
    // other sensitive items feeding its rules).
    let recorder = secreta_obsv::current();
    let mut prior_suppressions = 0u64;
    loop {
        let violating = match &rc {
            Some(rc) => rc.any_violation(params.rho),
            None => state.has_violation_with(input.table, &rows, params, counting, &mut stats),
        };
        if !violating {
            break;
        }
        // suppress the most exposed sensitive item (highest prior)
        let victim = params
            .sensitive
            .iter()
            .filter(|s| !state.suppressed[s.index()])
            .max_by_key(|s| match &index {
                Some(ix) => ix.support(s.0),
                None => rows
                    .iter()
                    .filter(|&&r| input.table.transaction(r).binary_search(s).is_ok())
                    .count(),
            });
        match victim {
            Some(s) => {
                let s = *s;
                prior_suppressions += 1;
                state.suppressed[s.index()] = true;
                if let (Some(rc), Some(ix)) = (rc.as_mut(), index.as_ref()) {
                    let dirty = ix.union_rowset(std::iter::once(s.0), &mut rc.stats);
                    rc.stats.posting_unions += 1;
                    rc.update_rowset(&dirty, |pos, buf| fill_tokens(&state, pos, buf), is_target);
                }
            }
            None => {
                // no sensitive item left, yet still violating: cannot
                // happen (no rules without sensitive targets), but
                // guard against drift
                return Err(TxError::BadInput(
                    "rho-uncertainty unreachable at the fully generalized cut".into(),
                ));
            }
        }
    }
    recorder.count("rho_td/prior_suppressions", prior_suppressions);
    timer.phase("prior control");

    // Top-down specialization: keep splitting while some split leaves
    // the rules below rho. Candidates are ordered by how much
    // information the split recovers (leaf count first).
    let mut specializations = 0u64;
    let mut reverts = 0u64;
    loop {
        let mut cands = state.cut.specialization_candidates(h);
        cands.sort_by_key(|&n| std::cmp::Reverse(h.leaf_count(n)));
        let mut accepted = false;
        for cand in cands {
            // skip nodes that only cover sensitive/suppressed leaves —
            // splitting them changes nothing
            let affected: Vec<u32> = h
                .leaves_under(cand)
                .filter(|&v| !state.sensitive.contains(&v) && !state.suppressed[v as usize])
                .collect();
            if affected.is_empty() {
                continue;
            }
            match (rc.as_mut(), index.as_ref()) {
                (Some(rc), Some(ix)) => {
                    // only rows holding a live leaf under `cand` change
                    // tokens under this split (and under its revert)
                    let dirty = ix.union_rowset(affected.iter().copied(), &mut rc.stats);
                    rc.stats.posting_unions += 1;
                    state.cut.specialize(h, cand);
                    rc.update_rowset(&dirty, |pos, buf| fill_tokens(&state, pos, buf), is_target);
                    if rc.any_violation(params.rho) {
                        // revert: re-generalize the whole subtree
                        reverts += 1;
                        state.cut.generalize_to(h, cand);
                        rc.update_rowset(
                            &dirty,
                            |pos, buf| fill_tokens(&state, pos, buf),
                            is_target,
                        );
                    } else {
                        specializations += 1;
                        accepted = true;
                    }
                }
                _ => {
                    state.cut.specialize(h, cand);
                    if state.has_violation_with(input.table, &rows, params, counting, &mut stats) {
                        // revert: re-generalize the whole subtree
                        reverts += 1;
                        state.cut.generalize_to(h, cand);
                    } else {
                        specializations += 1;
                        accepted = true;
                    }
                }
            }
        }
        if !accepted {
            break;
        }
    }
    recorder.count("rho_td/specializations", specializations);
    recorder.count("rho_td/reverts", reverts);
    if let Some(rc) = &rc {
        stats.absorb(&rc.stats);
    }
    stats.flush(&recorder);
    timer.phase("top-down specialization");

    // publish: sensitive → singleton sets; non-sensitive → the cut
    // node's leaf set *minus sensitive items* (a sensitive item must
    // never be covered by a generalized value — coverage would let
    // query estimation and adversaries place it inside the set)
    let mut index: FxHashMap<GenEntry, u32> = FxHashMap::default();
    let mut domain: Vec<GenEntry> = Vec::new();
    let mut entry_of = |e: GenEntry| -> u32 {
        let next = domain.len() as u32;
        let id = *index.entry(e.clone()).or_insert(next);
        if id as usize == domain.len() {
            domain.push(e);
        }
        id
    };
    let mut map: Vec<Option<u32>> = Vec::with_capacity(universe);
    for v in 0..universe as u32 {
        let it = ItemId(v);
        map.push(match state.token_of(it) {
            None => None,
            Some(Token::Sensitive(s)) => Some(entry_of(GenEntry::Set(vec![s]))),
            Some(Token::Gen(n)) => {
                let members: Vec<u32> = h
                    .leaves_under(n)
                    .filter(|leaf| !state.sensitive.contains(leaf))
                    .collect();
                Some(entry_of(GenEntry::set(members)))
            }
        });
    }
    let tx = AnonTransaction::from_mapping(input.table, domain, |it| map[it.index()]);
    let anon = AnonTable {
        rel: Vec::new(),
        tx: Some(tx),
        n_rows: input.table.n_rows(),
    };
    timer.phase("publish");

    Ok(TxOutput {
        anon,
        phases: timer.finish(),
    })
}

/// Verify ρ-uncertainty of a TDControl-style published output: mines
/// rules over the published generalized tokens, treating singleton
/// entries of sensitive items as the rule targets.
pub fn is_rho_uncertain_published(_table: &RtTable, anon: &AnonTable, params: &RhoParams) -> bool {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return true,
    };
    if params.rho >= 1.0 {
        return true;
    }
    let sensitive: FxHashSet<u32> = params.sensitive.iter().map(|s| s.0).collect();
    // gen id -> is it a sensitive singleton?
    let target_of: Vec<Option<u32>> = tx
        .domain
        .iter()
        .map(|e| match e {
            GenEntry::Set(s) if s.len() == 1 && sensitive.contains(&s[0]) => Some(s[0]),
            _ => None,
        })
        .collect();
    let mut sup_q: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut sup_qs: FxHashMap<(Vec<u32>, u32), u32> = FxHashMap::default();
    for row in 0..tx.n_rows() {
        let items = tx.row_items(row);
        if items.is_empty() {
            continue;
        }
        let present: Vec<u32> = items
            .iter()
            .filter_map(|&g| target_of[g as usize])
            .collect();
        for size in 0..=params.max_antecedent.min(items.len()) {
            subsets_u32(items, size, &mut |q| {
                *sup_q.entry(q.to_vec()).or_insert(0) += 1;
                for &s in &present {
                    // the antecedent may not contain the target itself
                    let contains_target = q.iter().any(|&g| target_of[g as usize] == Some(s));
                    if !contains_target {
                        *sup_qs.entry((q.to_vec(), s)).or_insert(0) += 1;
                    }
                }
            });
        }
    }
    !sup_qs.iter().any(|((q, _), &qs)| {
        let q_sup = *sup_q.get(q).expect("antecedent counted");
        qs as f64 / q_sup as f64 >= params.rho
    })
}

fn subsets_u32(items: &[u32], size: usize, f: &mut impl FnMut(&[u32])) {
    fn rec(
        items: &[u32],
        size: usize,
        start: usize,
        cur: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]),
    ) {
        if cur.len() == size {
            f(cur);
            return;
        }
        let need = size - cur.len();
        for i in start..=items.len().saturating_sub(need) {
            cur.push(items[i]);
            rec(items, size, i + 1, cur, f);
            cur.pop();
        }
    }
    if size > items.len() {
        return;
    }
    rec(items, size, 0, &mut Vec::with_capacity(size), f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::{Attribute, AttributeKind, Schema};
    use secreta_hierarchy::{auto_hierarchy, Hierarchy};
    use secreta_metrics::transaction_gcp;

    /// "marker" perfectly predicts "hiv"; plenty of benign traffic.
    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for tx in [
            vec!["marker", "hiv"],
            vec!["marker", "hiv", "flu"],
            vec!["marker", "hiv"],
            vec!["flu", "cold"],
            vec!["flu", "cold"],
            vec!["flu"],
            vec!["cold"],
            vec!["flu", "cold"],
            vec!["cold", "flu"],
            vec!["flu"],
        ] {
            t.push_row(&[], &tx).unwrap();
        }
        t
    }

    fn setup(t: &RtTable) -> (Hierarchy, ItemId) {
        let h = auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap();
        let hiv = ItemId(t.item_pool().unwrap().get("hiv").unwrap());
        (h, hiv)
    }

    fn input<'a>(t: &'a RtTable, h: &'a Hierarchy) -> TransactionInput<'a> {
        TransactionInput::km(t, 1, 1, h)
    }

    #[test]
    fn generalization_breaks_the_marker_rule() {
        let t = table();
        let (h, hiv) = setup(&t);
        let params = RhoParams::new(0.6, vec![hiv]);
        let out = anonymize(&input(&t, &h), &params).unwrap();
        assert!(is_rho_uncertain_published(&t, &out.anon, &params));
        assert!(out.anon.is_truthful(&t, |_| None, Some(&h)));
        // prior of hiv is 0.3 < 0.6, so no suppression was needed —
        // generalization alone must carry the protection
        assert!(out.anon.tx.as_ref().unwrap().suppressed.is_empty());
        // ...and the published data is NOT fully generalized
        let g = transaction_gcp(&t, &out.anon, Some(&h));
        assert!(g < 1.0, "TDControl must keep some specificity: {g}");
    }

    #[test]
    fn sensitive_items_stay_unmerged() {
        let t = table();
        let (h, hiv) = setup(&t);
        let params = RhoParams::new(0.6, vec![hiv]);
        let out = anonymize(&input(&t, &h), &params).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        // hiv appears only as the singleton set {hiv}
        for e in &tx.domain {
            match e {
                GenEntry::Set(s) => {
                    assert!(
                        !s.contains(&hiv.0) || s.len() == 1,
                        "sensitive item leaked into a generalized set: {s:?}"
                    );
                }
                GenEntry::Node(_) => panic!("TDControl publishes set entries"),
                GenEntry::Suppressed => {}
            }
        }
    }

    #[test]
    fn violated_priors_force_suppression() {
        let t = table();
        let (h, hiv) = setup(&t);
        // hiv prior is 0.3: demand rho <= 0.3
        let params = RhoParams {
            rho: 0.25,
            sensitive: vec![hiv],
            max_antecedent: 1,
        };
        let out = anonymize(&input(&t, &h), &params).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        assert!(tx.suppressed.binary_search(&hiv).is_ok());
        assert!(is_rho_uncertain_published(&t, &out.anon, &params));
    }

    #[test]
    fn lenient_rho_publishes_everything_unchanged() {
        let t = table();
        let (h, hiv) = setup(&t);
        let params = RhoParams::new(1.0, vec![hiv]);
        let out = anonymize(&input(&t, &h), &params).unwrap();
        assert_eq!(transaction_gcp(&t, &out.anon, Some(&h)), 0.0);
    }

    #[test]
    fn stricter_rho_never_reduces_loss() {
        let t = table();
        let (h, hiv) = setup(&t);
        let loss_at = |rho: f64| {
            let params = RhoParams::new(rho, vec![hiv]);
            let out = anonymize(&input(&t, &h), &params).unwrap();
            transaction_gcp(&t, &out.anon, Some(&h))
        };
        let lenient = loss_at(0.95);
        let strict = loss_at(0.5);
        assert!(strict >= lenient - 1e-12, "{strict} < {lenient}");
    }

    #[test]
    fn verifier_rejects_identity_on_violating_data() {
        let t = table();
        let (_, hiv) = setup(&t);
        let identity = AnonTable::identity(&t, &[]);
        let params = RhoParams::new(0.6, vec![hiv]);
        assert!(!is_rho_uncertain_published(&t, &identity, &params));
    }

    #[test]
    fn requires_hierarchy_and_valid_params() {
        let t = table();
        let (h, hiv) = setup(&t);
        let mut i = input(&t, &h);
        i.hierarchy = None;
        assert!(matches!(
            anonymize(&i, &RhoParams::new(0.5, vec![hiv])),
            Err(TxError::BadInput(_))
        ));
        assert!(matches!(
            anonymize(&input(&t, &h), &RhoParams::new(0.0, vec![hiv])),
            Err(TxError::BadInput(_))
        ));
    }

    #[test]
    fn kernel_and_reference_agree_on_fixture() {
        let t = table();
        let (h, hiv) = setup(&t);
        for rho in [0.25, 0.5, 0.6, 0.95, 1.0] {
            for max_antecedent in [1, 2] {
                let params = RhoParams {
                    rho,
                    sensitive: vec![hiv],
                    max_antecedent,
                };
                let fast = anonymize(&input(&t, &h), &params).unwrap();
                let base = anonymize_reference(&input(&t, &h), &params).unwrap();
                assert_eq!(fast.anon, base.anon, "rho={rho} m={max_antecedent}");
            }
        }
    }

    #[test]
    fn tdcontrol_loses_less_than_suppresscontrol_here() {
        // generalization preserves occurrences that suppression drops
        let t = table();
        let (h, hiv) = setup(&t);
        let params = RhoParams::new(0.6, vec![hiv]);
        let td = anonymize(&input(&t, &h), &params).unwrap();
        let sc = crate::rho::anonymize(&input(&t, &h), &params).unwrap();
        let td_dropped = td.anon.tx.as_ref().unwrap().suppressed.len();
        let sc_dropped = sc.anon.tx.as_ref().unwrap().suppressed.len();
        assert!(
            td_dropped <= sc_dropped,
            "TD {td_dropped} > SC {sc_dropped}"
        );
    }
}
