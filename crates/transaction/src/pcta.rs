//! PCTA — Privacy-Constrained Clustering-based Transaction
//! Anonymization (Gkoulalas-Divanis & Loukides — TDP 2012).
//!
//! Like COAT, PCTA protects a privacy policy by building generalized
//! items (clusters of original items) and suppressing as a last
//! resort; unlike COAT's constraint-local, utility-group-driven
//! partner search, PCTA is a *clustering* algorithm: every item
//! starts as its own cluster and, while any constraint is violated,
//! the globally cheapest admissible cluster merge — measured by the
//! **UL** (utility loss) increase over *all* items of *all* violated
//! constraints — is applied. The hierarchy-free recoding and the UL
//! guidance are the signature properties of the original.

use crate::coat::{pow2m1, publish, RoundSupport};
use crate::common::{TransactionInput, TxError, TxOutput};
use crate::groups::ItemGroups;
use crate::support::Counting;
use secreta_data::ItemId;
use secreta_metrics::PhaseTimer;
use secreta_policy::{PrivacyPolicy, UtilityPolicy};

/// The PCTA core over a row subset (shared with the RT bounding
/// methods).
pub(crate) fn cluster_items(
    table: &secreta_data::RtTable,
    rows: &[usize],
    k: usize,
    privacy: &PrivacyPolicy,
    utility: &UtilityPolicy,
    counting: Counting,
) -> ItemGroups {
    let universe = table.item_universe();
    let mut groups = ItemGroups::new(universe);
    let mut support = RoundSupport::new(counting, table, rows);

    let recorder = secreta_obsv::current();
    let mut rounds = 0u64;
    let mut merges = 0u64;
    let mut suppressions = 0u64;
    loop {
        rounds += 1;
        support.begin_round(table, rows, &mut groups);
        // all violated constraints this round
        let mut violated: Vec<usize> = Vec::new();
        for (ci, c) in privacy.constraints.iter().enumerate() {
            let s = support.constraint_support(&mut groups, c);
            if s > 0 && (s as usize) < k {
                violated.push(ci);
            }
        }
        if violated.is_empty() {
            break;
        }

        // globally cheapest admissible merge over the items of every
        // violated constraint
        let mut best: Option<(u32, u32, f64)> = None;
        let mut considered: Vec<u32> = Vec::new();
        for &ci in &violated {
            for it in &privacy.constraints[ci] {
                if groups.is_suppressed(it.0) {
                    continue;
                }
                let ga = groups.find(it.0);
                if considered.contains(&ga) {
                    continue;
                }
                considered.push(ga);
                let members_a = groups.group_members(it.0);
                let sup_a = support.sup_of(&mut groups, ga) as f64;
                let mut seen: Vec<u32> = Vec::new();
                for j in 0..universe as u32 {
                    if groups.is_suppressed(j) {
                        continue;
                    }
                    let gb = groups.find(j);
                    if gb == ga || seen.contains(&gb) {
                        continue;
                    }
                    seen.push(gb);
                    let members_b = groups.group_members(j);
                    let mut merged: Vec<ItemId> = members_a
                        .iter()
                        .chain(members_b.iter())
                        .map(|&v| ItemId(v))
                        .collect();
                    merged.sort_unstable();
                    if !utility.admits(&merged) {
                        continue;
                    }
                    let (sa, sb) = (members_a.len(), members_b.len());
                    let sup_b = support.sup_of(&mut groups, gb) as f64;
                    let cost =
                        pow2m1(sa + sb) * (sup_a + sup_b) - pow2m1(sa) * sup_a - pow2m1(sb) * sup_b;
                    if best.as_ref().is_none_or(|&(_, _, c)| cost < c) {
                        best = Some((ga, gb, cost));
                    }
                }
            }
        }

        match best {
            Some((a, b, _)) => {
                merges += 1;
                groups.union(a, b);
                support.note_merge(a, b);
            }
            None => {
                // no admissible merge: suppress the rarest live item of
                // the most violated constraint (fewest published rows,
                // then smallest item id — a strict total order)
                let mut victim: Option<(u32, u32)> = None; // (sup, item)
                for it in violated
                    .iter()
                    .flat_map(|&ci| privacy.constraints[ci].iter())
                {
                    if groups.is_suppressed(it.0) {
                        continue;
                    }
                    let g = groups.find(it.0);
                    let key = (support.sup_of(&mut groups, g), it.0);
                    if victim.is_none_or(|v| key < v) {
                        victim = Some(key);
                    }
                }
                match victim {
                    Some((_, item)) => {
                        suppressions += 1;
                        // suppression leaves union-find parents
                        // untouched, so the root is stable
                        let root = groups.find(item);
                        groups.suppress(item);
                        support.note_suppress(root);
                    }
                    None => break, // everything relevant suppressed
                }
            }
        }
    }
    recorder.count("pcta/clustering_rounds", rounds);
    recorder.count("pcta/merges", merges);
    recorder.count("pcta/suppressions", suppressions);
    support.flush(&recorder);
    groups
}

/// Run PCTA on `input` with the kernelized support oracle.
pub fn anonymize(input: &TransactionInput) -> Result<TxOutput, TxError> {
    anonymize_with(input, Counting::Kernel)
}

/// Run PCTA with the naive reference counters.
pub fn anonymize_reference(input: &TransactionInput) -> Result<TxOutput, TxError> {
    anonymize_with(input, Counting::Naive)
}

/// Run PCTA with an explicit counting implementation.
pub fn anonymize_with(input: &TransactionInput, counting: Counting) -> Result<TxOutput, TxError> {
    input.validate()?;
    let mut timer = PhaseTimer::new();
    let default_privacy;
    let privacy = match input.privacy {
        Some(p) => p,
        None => {
            default_privacy = PrivacyPolicy::all_items(input.table);
            &default_privacy
        }
    };
    let default_utility;
    let utility = match input.utility {
        Some(u) => u,
        None => {
            default_utility = UtilityPolicy::unconstrained(input.table);
            &default_utility
        }
    };
    // empty transactions can never support a constraint: filter them
    // once per run instead of rescanning them every round
    let rows = input.non_empty_rows();
    timer.phase("setup");

    let mut groups = cluster_items(input.table, &rows, input.k, privacy, utility, counting);
    timer.phase("ul-guided clustering");

    let anon = publish(input.table, &mut groups);
    timer.phase("publish");

    Ok(TxOutput {
        anon,
        phases: timer.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::satisfies_privacy;
    use secreta_data::{Attribute, RtTable, Schema};
    use secreta_metrics::{utility_loss, GenEntry};

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for tx in [
            vec!["flu", "cold"],
            vec!["flu", "cold"],
            vec!["flu", "hiv"],
            vec!["cold", "herpes"],
            vec!["flu"],
            vec!["cold"],
        ] {
            t.push_row(&[], &tx).unwrap();
        }
        t
    }

    fn run(t: &RtTable, k: usize) -> crate::common::TxOutput {
        let input = TransactionInput {
            table: t,
            k,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        anonymize(&input).unwrap()
    }

    #[test]
    fn protects_default_policy() {
        let t = table();
        let out = run(&t, 2);
        let p = PrivacyPolicy::all_items(&t);
        assert!(satisfies_privacy(&out.anon, &p, 2, None));
        assert!(out.anon.is_truthful(&t, |_| None, None));
        assert!(out.anon.tx.as_ref().unwrap().suppressed.is_empty());
    }

    #[test]
    fn k1_changes_nothing() {
        let t = table();
        let out = run(&t, 1);
        assert_eq!(utility_loss(&t, &out.anon, None), 0.0);
    }

    #[test]
    fn loss_monotone_in_k() {
        let t = table();
        let l2 = utility_loss(&t, &run(&t, 2).anon, None);
        let l3 = utility_loss(&t, &run(&t, 3).anon, None);
        assert!(l2 <= l3 + 1e-12, "l2={l2} l3={l3}");
    }

    #[test]
    fn respects_utility_policy() {
        let t = table();
        let pool = t.item_pool().unwrap();
        let flu = ItemId(pool.get("flu").unwrap());
        let cold = ItemId(pool.get("cold").unwrap());
        let hiv = ItemId(pool.get("hiv").unwrap());
        let herpes = ItemId(pool.get("herpes").unwrap());
        let u = UtilityPolicy::new(vec![vec![flu, cold], vec![hiv, herpes]]);
        let p = PrivacyPolicy::all_items(&t);
        let input = TransactionInput::constrained(&t, 2, &p, &u);
        let out = anonymize(&input).unwrap();
        assert!(satisfies_privacy(&out.anon, &p, 2, None));
        let tx = out.anon.tx.as_ref().unwrap();
        for e in &tx.domain {
            if let GenEntry::Set(s) = e {
                let set: Vec<ItemId> = s.iter().map(|&v| ItemId(v)).collect();
                assert!(u.admits(&set));
            }
        }
    }

    #[test]
    fn impossible_merges_fall_back_to_suppression() {
        let t = table();
        let p = PrivacyPolicy::all_items(&t);
        let u = UtilityPolicy::new(vec![]); // no merges admissible
        let input = TransactionInput::constrained(&t, 2, &p, &u);
        let out = anonymize(&input).unwrap();
        assert!(satisfies_privacy(&out.anon, &p, 2, None));
        assert!(!out.anon.tx.as_ref().unwrap().suppressed.is_empty());
    }

    #[test]
    fn pcta_merges_low_support_items_first() {
        // hiv and herpes both have support 1: UL-cheapest merge is
        // between two rare items, not rare+frequent
        let t = table();
        let out = run(&t, 2);
        let tx = out.anon.tx.as_ref().unwrap();
        let pool = t.item_pool().unwrap();
        let hiv = pool.get("hiv").unwrap();
        let herpes = pool.get("herpes").unwrap();
        let merged_rare = tx
            .domain
            .iter()
            .any(|e| matches!(e, GenEntry::Set(s) if s.contains(&hiv) && s.contains(&herpes)));
        assert!(
            merged_rare,
            "rare items should cluster together: {:?}",
            tx.domain
        );
    }

    #[test]
    fn phases_recorded() {
        let t = table();
        let out = run(&t, 2);
        assert!(out.phases.get("ul-guided clustering").is_some());
    }
}
