//! COAT — COnstraint-based Anonymization of Transactions (Loukides,
//! Gkoulalas-Divanis, Malin — KAIS 2011).
//!
//! COAT takes a **privacy policy** (itemsets whose published support
//! must be ≥ k or 0) and a **utility policy** (groups of items that
//! are semantically interchangeable; a generalized item must stay
//! within one group). It repairs the most-violated constraint first:
//! the constraint's item whose cheapest admissible merge exists is
//! generalized by merging its generalized item with the partner that
//! minimizes the utility-loss increase; when no admissible merge
//! remains for any item of the constraint, the rarest item is
//! **suppressed** — exactly the generalize-then-suppress fallback of
//! the original.

use crate::common::{TransactionInput, TxError, TxOutput};
use crate::groups::ItemGroups;
use crate::support::{Counting, GroupSupportOracle};
use secreta_data::hash::FxHashMap;
use secreta_data::{ItemId, RtTable};
use secreta_metrics::anon::AnonTransaction;
use secreta_metrics::{AnonTable, GenEntry, PhaseTimer};
use secreta_policy::{PrivacyPolicy, UtilityPolicy};

/// Clamped `2^n - 1` used by the UL-style merge cost.
pub(crate) fn pow2m1(n: usize) -> f64 {
    if n >= 60 {
        f64::MAX / 1e16
    } else {
        ((1u64 << n) - 1) as f64
    }
}

/// Published transactions (sorted, duplicate-free group roots per
/// row) — computed once per repair round and shared by every support
/// query of that round.
pub(crate) fn published_rows(
    table: &RtTable,
    groups: &mut ItemGroups,
    rows: &[usize],
) -> Vec<Vec<u32>> {
    rows.iter()
        .map(|&r| {
            let mut buf: Vec<u32> = table
                .transaction(r)
                .iter()
                .filter_map(|&it| groups.map(it))
                .collect();
            buf.sort_unstable();
            buf.dedup();
            buf
        })
        .collect()
}

/// Published support of each group root.
pub(crate) fn group_supports(rows_pub: &[Vec<u32>]) -> FxHashMap<u32, u32> {
    let mut sup: FxHashMap<u32, u32> = FxHashMap::default();
    for row in rows_pub {
        for &g in row {
            *sup.entry(g).or_insert(0) += 1;
        }
    }
    sup
}

/// Published support of one privacy constraint against precomputed
/// published transactions.
pub(crate) fn constraint_support(
    rows_pub: &[Vec<u32>],
    groups: &mut ItemGroups,
    constraint: &[ItemId],
) -> u32 {
    // a suppressed item can never be matched -> support 0
    let mut image: Vec<u32> = Vec::with_capacity(constraint.len());
    for it in constraint {
        match groups.map(*it) {
            Some(g) => image.push(g),
            None => return 0,
        }
    }
    image.sort_unstable();
    image.dedup();
    rows_pub
        .iter()
        .filter(|buf| image.iter().all(|g| buf.binary_search(g).is_ok()))
        .count() as u32
}

/// Per-round support provider shared by COAT and PCTA: either the
/// naive recount (published rows rebuilt and scanned from scratch
/// every round) or the [`GroupSupportOracle`] answering the same
/// queries from memoized posting-list unions and intersections.
// exactly one RoundSupport exists per anonymization round, so the
// size gap between the variants never multiplies across a collection
#[allow(clippy::large_enum_variant)]
pub(crate) enum RoundSupport {
    /// Rebuild-and-scan (the reference implementation).
    Naive {
        /// This round's published transactions.
        rows_pub: Vec<Vec<u32>>,
        /// This round's per-root supports.
        sup: FxHashMap<u32, u32>,
    },
    /// Inverted-index oracle, memoized per round.
    Kernel(GroupSupportOracle),
}

impl RoundSupport {
    pub(crate) fn new(counting: Counting, table: &RtTable, rows: &[usize]) -> RoundSupport {
        match counting {
            Counting::Naive => RoundSupport::Naive {
                rows_pub: Vec::new(),
                sup: FxHashMap::default(),
            },
            Counting::Kernel => RoundSupport::Kernel(GroupSupportOracle::new(table, rows)),
        }
    }

    /// Refresh for a new repair round (the recoding changed). The
    /// oracle keeps its memo across rounds — mutations invalidate
    /// selectively through [`RoundSupport::note_merge`] /
    /// [`RoundSupport::note_suppress`] instead.
    pub(crate) fn begin_round(&mut self, table: &RtTable, rows: &[usize], groups: &mut ItemGroups) {
        match self {
            RoundSupport::Naive { rows_pub, sup } => {
                *rows_pub = published_rows(table, groups, rows);
                *sup = group_supports(rows_pub);
            }
            RoundSupport::Kernel(_) => {}
        }
    }

    /// The groups rooted at `ra` and `rb` were merged: drop both
    /// memoized row sets (either root may survive as the union root;
    /// every other group's member set — and therefore row set — is
    /// unchanged).
    pub(crate) fn note_merge(&mut self, ra: u32, rb: u32) {
        if let RoundSupport::Kernel(oracle) = self {
            oracle.invalidate_root(ra);
            oracle.invalidate_root(rb);
        }
    }

    /// An item of the group rooted at `root` was suppressed: drop that
    /// group's memoized row set.
    pub(crate) fn note_suppress(&mut self, root: u32) {
        if let RoundSupport::Kernel(oracle) = self {
            oracle.invalidate_root(root);
        }
    }

    /// Published support of `constraint` this round.
    pub(crate) fn constraint_support(
        &mut self,
        groups: &mut ItemGroups,
        constraint: &[ItemId],
    ) -> u32 {
        match self {
            RoundSupport::Naive { rows_pub, .. } => {
                constraint_support(rows_pub, groups, constraint)
            }
            RoundSupport::Kernel(oracle) => oracle.constraint_support(groups, constraint),
        }
    }

    /// Published support of the group rooted at `root` this round.
    pub(crate) fn sup_of(&mut self, groups: &mut ItemGroups, root: u32) -> u32 {
        match self {
            RoundSupport::Naive { sup, .. } => sup.get(&root).copied().unwrap_or(0),
            RoundSupport::Kernel(oracle) => oracle.group_support(groups, root),
        }
    }

    /// Flush kernel work counters (no-op for the naive provider).
    pub(crate) fn flush(&self, recorder: &secreta_obsv::Recorder) {
        if let RoundSupport::Kernel(oracle) = self {
            oracle.stats.flush(recorder);
        }
    }
}

/// The COAT core, shared with PCTA (which plugs a different merge
/// selector): repeatedly repair the most-violated constraint until
/// the policy holds over `rows`.
pub(crate) fn constrain(
    table: &RtTable,
    rows: &[usize],
    k: usize,
    privacy: &PrivacyPolicy,
    utility: &UtilityPolicy,
    global_partner_pool: bool,
    counting: Counting,
) -> ItemGroups {
    let universe = table.item_universe();
    let mut groups = ItemGroups::new(universe);
    let mut support = RoundSupport::new(counting, table, rows);

    let recorder = secreta_obsv::current();
    let mut rounds = 0u64;
    let mut merges = 0u64;
    let mut suppressions = 0u64;
    loop {
        rounds += 1;
        support.begin_round(table, rows, &mut groups);
        // most-violated constraint (smallest positive support < k)
        let mut worst: Option<(usize, u32)> = None;
        for (ci, c) in privacy.constraints.iter().enumerate() {
            let s = support.constraint_support(&mut groups, c);
            if s > 0 && (s as usize) < k && worst.as_ref().is_none_or(|&(_, ws)| s < ws) {
                worst = Some((ci, s));
            }
        }
        let Some((ci, _)) = worst else {
            break;
        };
        let constraint = privacy.constraints[ci].clone();

        // candidate merges: for each live item of the constraint,
        // partners from its utility groups (COAT) or every live group
        // (PCTA's global pool), filtered by admissibility
        let mut best: Option<(u32, u32, f64)> = None; // (a, b, cost)
        for it in &constraint {
            if groups.is_suppressed(it.0) {
                continue;
            }
            let ga = groups.find(it.0);
            let members_a = groups.group_members(it.0);
            let sup_a = support.sup_of(&mut groups, ga) as f64;
            let partner_items: Vec<u32> = if global_partner_pool {
                (0..universe as u32).collect()
            } else {
                utility
                    .mergeable_with(*it)
                    .into_iter()
                    .map(|j| j.0)
                    .collect()
            };
            let mut seen_roots: Vec<u32> = Vec::new();
            for j in partner_items {
                if groups.is_suppressed(j) {
                    continue;
                }
                let gb = groups.find(j);
                if gb == ga || seen_roots.contains(&gb) {
                    continue;
                }
                seen_roots.push(gb);
                let members_b = groups.group_members(j);
                let mut merged: Vec<ItemId> = members_a
                    .iter()
                    .chain(members_b.iter())
                    .map(|&v| ItemId(v))
                    .collect();
                merged.sort_unstable();
                if !utility.admits(&merged) {
                    continue;
                }
                // UL-style merge cost: the merged generalized item is
                // charged for its subset blow-up, weighted by an upper
                // bound of its support
                let sa = members_a.len();
                let sb = members_b.len();
                let sup_b = support.sup_of(&mut groups, gb) as f64;
                let cost =
                    pow2m1(sa + sb) * (sup_a + sup_b) - pow2m1(sa) * sup_a - pow2m1(sb) * sup_b;
                if best.as_ref().is_none_or(|&(_, _, c)| cost < c) {
                    best = Some((ga, gb, cost));
                }
            }
        }

        match best {
            Some((a, b, _)) => {
                merges += 1;
                groups.union(a, b);
                support.note_merge(a, b);
            }
            None => {
                // no admissible merge anywhere in the constraint:
                // suppress its rarest live item (fewest published
                // rows, then smallest item id — a strict total order)
                let mut victim: Option<(u32, u32)> = None; // (sup, item)
                for it in &constraint {
                    if groups.is_suppressed(it.0) {
                        continue;
                    }
                    let g = groups.find(it.0);
                    let key = (support.sup_of(&mut groups, g), it.0);
                    if victim.is_none_or(|v| key < v) {
                        victim = Some(key);
                    }
                }
                // victim is None only when every item of the
                // constraint is already suppressed, in which case the
                // support is 0 and the outer loop drops the constraint
                if let Some((_, item)) = victim {
                    suppressions += 1;
                    // suppression leaves union-find parents untouched,
                    // so the root is the same before and after
                    let root = groups.find(item);
                    groups.suppress(item);
                    support.note_suppress(root);
                }
            }
        }
    }
    recorder.count("coat/repair_rounds", rounds);
    recorder.count("coat/merges", merges);
    recorder.count("coat/suppressions", suppressions);
    support.flush(&recorder);
    groups
}

/// Build the published [`AnonTable`] from final item groups.
pub(crate) fn publish(table: &RtTable, groups: &mut ItemGroups) -> AnonTable {
    // domain: one Set entry per live root that actually occurs
    let mut index: FxHashMap<u32, u32> = FxHashMap::default();
    let mut domain: Vec<GenEntry> = Vec::new();
    for row in 0..table.n_rows() {
        for &it in table.transaction(row) {
            if let Some(root) = groups.map(it) {
                if let std::collections::hash_map::Entry::Vacant(e) = index.entry(root) {
                    e.insert(domain.len() as u32);
                    domain.push(GenEntry::set(groups.group_members(root)));
                }
            }
        }
    }
    let g2 = groups.clone();
    let tx = AnonTransaction::from_mapping(table, domain, |it| {
        if g2.is_suppressed(it.0) {
            None
        } else {
            Some(index[&g2.find_const(it.0)])
        }
    });
    AnonTable {
        rel: Vec::new(),
        tx: Some(tx),
        n_rows: table.n_rows(),
    }
}

/// Run COAT on `input` with the kernelized support oracle.
pub fn anonymize(input: &TransactionInput) -> Result<TxOutput, TxError> {
    anonymize_with(input, Counting::Kernel)
}

/// Run COAT with the naive reference counters.
pub fn anonymize_reference(input: &TransactionInput) -> Result<TxOutput, TxError> {
    anonymize_with(input, Counting::Naive)
}

/// Run COAT with an explicit counting implementation.
pub fn anonymize_with(input: &TransactionInput, counting: Counting) -> Result<TxOutput, TxError> {
    input.validate()?;
    let mut timer = PhaseTimer::new();
    let default_privacy;
    let privacy = match input.privacy {
        Some(p) => p,
        None => {
            default_privacy = PrivacyPolicy::all_items(input.table);
            &default_privacy
        }
    };
    let default_utility;
    let utility = match input.utility {
        Some(u) => u,
        None => {
            default_utility = UtilityPolicy::unconstrained(input.table);
            &default_utility
        }
    };
    // empty transactions can never support a constraint: filter them
    // once per run instead of rescanning them every round
    let rows = input.non_empty_rows();
    timer.phase("setup");

    let mut groups = constrain(
        input.table,
        &rows,
        input.k,
        privacy,
        utility,
        false,
        counting,
    );
    timer.phase("constraint repair");

    let anon = publish(input.table, &mut groups);
    timer.phase("publish");

    Ok(TxOutput {
        anon,
        phases: timer.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::satisfies_privacy;
    use secreta_data::{Attribute, Schema};
    use secreta_metrics::utility_loss;

    fn table() -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for tx in [
            vec!["flu", "cold"],
            vec!["flu", "cold"],
            vec!["flu", "hiv"],
            vec!["cold", "herpes"],
            vec!["flu"],
            vec!["cold"],
        ] {
            t.push_row(&[], &tx).unwrap();
        }
        t
    }

    #[test]
    fn default_policies_protect_every_item() {
        let t = table();
        let input = TransactionInput {
            table: &t,
            k: 2,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let out = anonymize(&input).unwrap();
        let p = PrivacyPolicy::all_items(&t);
        assert!(satisfies_privacy(&out.anon, &p, 2, None));
        assert!(out.anon.is_truthful(&t, |_| None, None));
    }

    #[test]
    fn rare_items_merge_rather_than_suppress_when_allowed() {
        let t = table();
        let p = PrivacyPolicy::all_items(&t);
        let u = UtilityPolicy::unconstrained(&t);
        let input = TransactionInput::constrained(&t, 2, &p, &u);
        let out = anonymize(&input).unwrap();
        // unconstrained utility: nothing needs suppression
        assert!(out.anon.tx.as_ref().unwrap().suppressed.is_empty());
        assert!(satisfies_privacy(&out.anon, &p, 2, None));
    }

    #[test]
    fn tight_utility_policy_forces_suppression() {
        let t = table();
        // hiv (sup 1) may merge with nothing: singleton-only groups
        let p = PrivacyPolicy::all_items(&t);
        let u = UtilityPolicy::new(vec![]); // nothing mergeable
        let input = TransactionInput::constrained(&t, 2, &p, &u);
        let out = anonymize(&input).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        assert!(!tx.suppressed.is_empty(), "rare items must be suppressed");
        assert!(satisfies_privacy(&out.anon, &p, 2, None));
        // frequent items survive untouched
        let pool = t.item_pool().unwrap();
        let flu = ItemId(pool.get("flu").unwrap());
        assert!(tx.suppressed.binary_search(&flu).is_err());
    }

    #[test]
    fn utility_groups_bound_generalization() {
        let t = table();
        let pool = t.item_pool().unwrap();
        let flu = ItemId(pool.get("flu").unwrap());
        let cold = ItemId(pool.get("cold").unwrap());
        let hiv = ItemId(pool.get("hiv").unwrap());
        let herpes = ItemId(pool.get("herpes").unwrap());
        // STDs may merge together but never with respiratory items
        let u = UtilityPolicy::new(vec![vec![flu, cold], vec![hiv, herpes]]);
        let p = PrivacyPolicy::new(vec![vec![hiv], vec![herpes]]);
        let input = TransactionInput::constrained(&t, 2, &p, &u);
        let out = anonymize(&input).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        assert!(satisfies_privacy(&out.anon, &p, 2, None));
        for e in &tx.domain {
            if let GenEntry::Set(s) = e {
                if s.len() > 1 {
                    let set: Vec<ItemId> = s.iter().map(|&v| ItemId(v)).collect();
                    assert!(u.admits(&set), "inadmissible generalized item {s:?}");
                }
            }
        }
        // the {hiv,herpes} merge is the only way to satisfy p
        let merged = tx
            .domain
            .iter()
            .any(|e| matches!(e, GenEntry::Set(s) if s.len() == 2));
        assert!(merged);
    }

    #[test]
    fn multi_item_constraints_protected() {
        let t = table();
        let pool = t.item_pool().unwrap();
        let flu = ItemId(pool.get("flu").unwrap());
        let hiv = ItemId(pool.get("hiv").unwrap());
        // {flu, hiv} appears once -> must end >=2 or 0
        let p = PrivacyPolicy::new(vec![vec![flu, hiv]]);
        let u = UtilityPolicy::unconstrained(&t);
        let input = TransactionInput::constrained(&t, 2, &p, &u);
        let out = anonymize(&input).unwrap();
        assert!(satisfies_privacy(&out.anon, &p, 2, None));
    }

    #[test]
    fn satisfied_policy_changes_nothing() {
        let t = table();
        let pool = t.item_pool().unwrap();
        let flu = ItemId(pool.get("flu").unwrap());
        let p = PrivacyPolicy::new(vec![vec![flu]]); // sup 4 >= 2
        let u = UtilityPolicy::unconstrained(&t);
        let input = TransactionInput::constrained(&t, 2, &p, &u);
        let out = anonymize(&input).unwrap();
        assert_eq!(utility_loss(&t, &out.anon, None), 0.0);
    }

    #[test]
    fn k1_is_always_satisfied() {
        let t = table();
        let input = TransactionInput {
            table: &t,
            k: 1,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let out = anonymize(&input).unwrap();
        assert_eq!(utility_loss(&t, &out.anon, None), 0.0);
    }

    #[test]
    fn phases_recorded() {
        let t = table();
        let input = TransactionInput {
            table: &t,
            k: 2,
            m: 1,
            hierarchy: None,
            privacy: None,
            utility: None,
        };
        let out = anonymize(&input).unwrap();
        assert!(out.phases.get("constraint repair").is_some());
    }
}
