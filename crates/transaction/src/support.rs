//! Shared support-counting kernels for the transaction algorithms.
//!
//! Every transaction algorithm in this crate is, at its core, a loop
//! of *support queries* — "in how many published transactions does
//! this itemset appear?" — interleaved with small recoding steps
//! (generalize one node, merge two groups, suppress one item). The
//! naive implementations recount the whole table from scratch on every
//! round, allocating a fresh `Vec` key per enumerated subset. This
//! module replaces that with three reusable kernels:
//!
//! * [`SupportMap`] — an **interned itemset counter**: sorted `u32`
//!   keys live in one flat arena, looked up by hashing the candidate
//!   slice directly, so counting a subset allocates nothing. Tokens
//!   (arena indices) are stable for the map's lifetime, which is what
//!   makes incremental maintenance and `(itemset, item)` pair keys
//!   cheap.
//! * [`InvertedIndex`] — a CSR **item → row-position index** built
//!   once per run. Recoding steps touch few items; the index turns
//!   "which transactions does this step affect?" and "which rows
//!   contain this whole image?" into posting-list unions and
//!   intersections instead of full-table scans. The index is
//!   **tiered** (see [`crate::bitmap`]): items whose postings density
//!   clears the [`crate::bitmap::density_threshold`] additionally
//!   carry a word-level [`crate::bitmap::Bitset`], and unions /
//!   intersections whose estimated result is dense run word-at-a-time
//!   instead of scalar-wise, with mixed bitmap×CSR intersections
//!   probing sparse positions against bitmap words.
//! * [`RowSupport`] / [`RuleCounts`] — **incremental, sharded
//!   counters** on top of the two: the initial count shards rows
//!   across `secreta-parallel` workers (per-shard maps merged in fixed
//!   shard order, so counts are identical at any thread count), and
//!   later rounds re-enumerate only the rows a recoding step dirtied.
//!
//! Determinism contract: kernel counts equal the sequential naive
//! counts key-for-key. Iteration *order* over a merged map may depend
//! on the thread count, so algorithm selection logic must be
//! order-independent (the crate's greedy selectors all use strict
//! total orders — see `apriori`'s move selection).
//!
//! The [`Counting`] switch keeps the naive implementations alive as
//! reference oracles: `anonymize_reference` entry points run them for
//! benchmarking (`secreta bench --suite tx`) and for the agreement
//! proptests in `tests/kernels.rs`.

use crate::bitmap::{Bitset, RowSet};
use crate::groups::ItemGroups;
use secreta_data::hash::{FxHashMap, FxHasher};
use secreta_data::{ChunkedTable, ItemId, RowChunk, RtTable, TxChunk};
use std::hash::Hasher;

/// Which support-counting implementation an algorithm run uses.
///
/// `Kernel` is the production default; `Naive` preserves the original
/// recount-everything implementations as a reference oracle for
/// benchmarks and equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counting {
    /// Recount the whole table every round with per-subset `Vec` keys.
    Naive,
    /// Interned keys, inverted indexes, incremental rounds, sharded
    /// initial counts.
    Kernel,
}

/// Rows per shard below which sharded counting stays sequential;
/// subset enumeration is cheap enough that tiny shards would be pure
/// spawn overhead.
const MIN_ROWS_PER_SHARD: usize = 128;

/// Work counters accumulated by the kernels of one algorithm run,
/// flushed into the [`secreta_obsv`] recorder under the `support/`
/// prefix (see the counter registry in `docs/GUIDE.md`).
#[derive(Debug, Default, Clone, Copy)]
pub struct KernelStats {
    /// Rows re-enumerated by incremental update rounds.
    pub rows_reenumerated: u64,
    /// Rows an incremental round did *not* have to touch (the naive
    /// implementation would have re-enumerated these too).
    pub rows_skipped: u64,
    /// Distinct itemset keys interned across all support maps.
    pub interned_keys: u64,
    /// Per-shard partial maps merged into a global map.
    pub shard_merges: u64,
    /// Posting-list unions computed through an [`InvertedIndex`].
    pub posting_unions: u64,
    /// Items that received a dense bitmap at index build time.
    pub dense_items: u64,
    /// Items kept on CSR postings alone at index build time.
    pub sparse_items: u64,
    /// Unions routed through the dense (bitmap) tier.
    pub bitmap_unions: u64,
    /// Intersections with at least one dense operand (word-`AND` or
    /// bitmap-probe).
    pub bitmap_intersections: u64,
    /// Rows-per-item density histogram cached at index build time:
    /// items (with ≥ 1 posting) whose density is `< 0.1%`, `< 1%`,
    /// `< 10%`, and `≥ 10%` of the indexed rows.
    pub density_hist: [u64; 4],
}

impl KernelStats {
    /// Add `other`'s totals into `self`.
    pub fn absorb(&mut self, other: &KernelStats) {
        self.rows_reenumerated += other.rows_reenumerated;
        self.rows_skipped += other.rows_skipped;
        self.interned_keys += other.interned_keys;
        self.shard_merges += other.shard_merges;
        self.posting_unions += other.posting_unions;
        self.dense_items += other.dense_items;
        self.sparse_items += other.sparse_items;
        self.bitmap_unions += other.bitmap_unions;
        self.bitmap_intersections += other.bitmap_intersections;
        for (h, o) in self.density_hist.iter_mut().zip(other.density_hist) {
            *h += o;
        }
    }

    /// Record the tier split and density histogram of a freshly built
    /// [`InvertedIndex`] (call once per index build site).
    pub fn record_index(&mut self, index: &InvertedIndex) {
        self.dense_items += index.dense_items;
        self.sparse_items += index.sparse_items;
        for (h, o) in self.density_hist.iter_mut().zip(index.density_hist) {
            *h += o;
        }
    }

    /// Flush the totals as `support/*` counters into `recorder`.
    pub fn flush(&self, recorder: &secreta_obsv::Recorder) {
        recorder.count("support/rows_reenumerated", self.rows_reenumerated);
        recorder.count("support/rows_skipped", self.rows_skipped);
        recorder.count("support/interned_keys", self.interned_keys);
        recorder.count("support/shard_merges", self.shard_merges);
        recorder.count("support/posting_unions", self.posting_unions);
        recorder.count("support/dense_items", self.dense_items);
        recorder.count("support/sparse_items", self.sparse_items);
        recorder.count("support/bitmap_unions", self.bitmap_unions);
        recorder.count("support/bitmap_intersections", self.bitmap_intersections);
        recorder.count("support/density_lt_0_1pct", self.density_hist[0]);
        recorder.count("support/density_lt_1pct", self.density_hist[1]);
        recorder.count("support/density_lt_10pct", self.density_hist[2]);
        recorder.count("support/density_ge_10pct", self.density_hist[3]);
    }
}

fn hash_key(key: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    h.write_usize(key.len());
    for &v in key {
        h.write_u32(v);
    }
    h.finish()
}

/// An interned multiset-of-itemsets counter.
///
/// Keys are sorted, duplicate-free `u32` slices. Each distinct key is
/// copied **once** into a flat arena and addressed by a stable token
/// (its insertion index); lookups hash the candidate slice in place,
/// so the per-subset cost of counting is a hash + probe with zero
/// heap allocation. Counts may be decremented (incremental rounds
/// subtract a dirty row's old subsets before adding its new ones);
/// keys whose count returns to zero stay interned and must be skipped
/// by readers.
#[derive(Debug, Default, Clone)]
pub struct SupportMap {
    arena: Vec<u32>,
    /// `(start, len)` of each token's key in `arena`, insertion order.
    spans: Vec<(u32, u32)>,
    counts: Vec<u32>,
    /// Open-addressing slot table; `0` = empty, else `token + 1`.
    slots: Vec<u32>,
}

impl SupportMap {
    /// An empty map.
    pub fn new() -> SupportMap {
        SupportMap::with_capacity(16)
    }

    /// An empty map pre-sized for about `cap` distinct keys.
    pub fn with_capacity(cap: usize) -> SupportMap {
        let slots = (cap.max(4) * 2).next_power_of_two();
        SupportMap {
            arena: Vec::new(),
            spans: Vec::with_capacity(cap),
            counts: Vec::with_capacity(cap),
            slots: vec![0; slots],
        }
    }

    /// Number of distinct interned keys (including zero-count ones).
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no key has ever been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The key slice of `token`.
    pub fn key_of(&self, token: u32) -> &[u32] {
        let (start, len) = self.spans[token as usize];
        &self.arena[start as usize..(start + len) as usize]
    }

    /// The current count of `token`.
    pub fn count_of(&self, token: u32) -> u32 {
        self.counts[token as usize]
    }

    /// The token of `key`, if interned.
    pub fn token_of(&self, key: &[u32]) -> Option<u32> {
        let mask = self.slots.len() - 1;
        let mut idx = (hash_key(key) as usize) & mask;
        loop {
            let slot = self.slots[idx];
            if slot == 0 {
                return None;
            }
            let token = slot - 1;
            if self.key_of(token) == key {
                return Some(token);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// The count of `key` (`None` when never interned).
    pub fn get(&self, key: &[u32]) -> Option<u32> {
        self.token_of(key).map(|t| self.count_of(t))
    }

    /// Intern `key` (count starts at 0) and/or add `delta` to its
    /// count; returns the stable token.
    pub fn add(&mut self, key: &[u32], delta: u32) -> u32 {
        let token = self.intern(key);
        self.counts[token as usize] += delta;
        token
    }

    /// Add a signed delta; the key must already be interned when
    /// `delta < 0` and the count must not underflow.
    pub fn add_signed(&mut self, key: &[u32], delta: i32) -> u32 {
        let token = self.intern(key);
        let c = &mut self.counts[token as usize];
        if delta >= 0 {
            *c += delta as u32;
        } else {
            debug_assert!(*c >= (-delta) as u32, "support underflow for {key:?}");
            *c -= (-delta) as u32;
        }
        token
    }

    /// Intern `key` without touching its count; returns the token.
    pub fn intern(&mut self, key: &[u32]) -> u32 {
        if self.spans.len() * 4 >= self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut idx = (hash_key(key) as usize) & mask;
        loop {
            let slot = self.slots[idx];
            if slot == 0 {
                let token = self.spans.len() as u32;
                let start = self.arena.len() as u32;
                self.arena.extend_from_slice(key);
                self.spans.push((start, key.len() as u32));
                self.counts.push(0);
                self.slots[idx] = token + 1;
                return token;
            }
            let token = slot - 1;
            if self.key_of(token) == key {
                return token;
            }
            idx = (idx + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(8);
        let mask = new_len - 1;
        let mut slots = vec![0u32; new_len];
        for token in 0..self.spans.len() as u32 {
            let mut idx = (hash_key(self.key_of(token)) as usize) & mask;
            while slots[idx] != 0 {
                idx = (idx + 1) & mask;
            }
            slots[idx] = token + 1;
        }
        self.slots = slots;
    }

    /// Iterate `(key, count)` in token (insertion) order, including
    /// zero-count entries.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], u32)> + '_ {
        (0..self.spans.len() as u32).map(|t| (self.key_of(t), self.count_of(t)))
    }

    /// Add every `(key, count)` of `other` into `self` (used to merge
    /// per-shard partial maps in fixed shard order).
    pub fn merge_from(&mut self, other: &SupportMap) {
        for (key, count) in other.iter() {
            self.add(key, count);
        }
    }
}

/// Invoke `f` on every sorted `size`-subset of `items` (sorted,
/// duplicate-free). Unlike `apriori::for_each_subset`, `size == 0`
/// yields the empty subset once — the ρ-uncertainty miners use it to
/// model prior (no-background-knowledge) disclosure.
pub fn for_each_subset_u32(items: &[u32], size: usize, f: &mut impl FnMut(&[u32])) {
    fn rec(
        items: &[u32],
        size: usize,
        start: usize,
        cur: &mut Vec<u32>,
        f: &mut impl FnMut(&[u32]),
    ) {
        if cur.len() == size {
            f(cur);
            return;
        }
        let need = size - cur.len();
        for i in start..=items.len().saturating_sub(need) {
            cur.push(items[i]);
            rec(items, size, i + 1, cur, f);
            cur.pop();
        }
    }
    if size > items.len() {
        return;
    }
    let mut cur = Vec::with_capacity(size);
    rec(items, size, 0, &mut cur, f);
}

/// Tiered CSR inverted index: item id → sorted positions (into the
/// run's row slice) of the rows whose transaction contains that item,
/// plus a dense [`Bitset`] tier for hot items (see [`crate::bitmap`]).
///
/// Built once per run over the *original* table — recoding never
/// changes which raw items a row contains, only their published
/// images, so the index stays valid for the whole run. The density
/// threshold is snapshotted at build time, so a run's tier split is
/// fixed even if the process-global override changes mid-run.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    offsets: Vec<u32>,
    postings: Vec<u32>,
    /// Rows the index was built over (the bitmap universe).
    n_rows: usize,
    /// Minimum postings length for an item to earn a bitmap; `None`
    /// when the dense tier is disabled (threshold > 1.0).
    hot_min: Option<usize>,
    /// Per-item bitmap, present iff `postings(item).len() >= hot_min`.
    hot: Vec<Option<Bitset>>,
    /// Items that received a bitmap at build time.
    dense_items: u64,
    /// Indexed items (≥ 1 posting) left on CSR postings alone.
    sparse_items: u64,
    /// Build-time rows-per-item density histogram (buckets of
    /// [`KernelStats::density_hist`]).
    density_hist: [u64; 4],
}

impl InvertedIndex {
    /// Build the index over `rows` (positions index into `rows`, not
    /// the table), keeping only items accepted by `relevant`.
    ///
    /// When `rows` is the whole table in order — the common case for
    /// per-run index construction — the build walks the CSR buffers
    /// chunk-by-chunk ([`RtTable::tx_chunks`]) instead of issuing one
    /// random access per row; arbitrary row subsets take the
    /// position-indexed path. Both produce identical indexes.
    pub fn build(
        table: &RtTable,
        rows: &[usize],
        universe: usize,
        relevant: impl Fn(ItemId) -> bool,
    ) -> InvertedIndex {
        let identity =
            rows.len() == table.n_rows() && rows.iter().enumerate().all(|(pos, &row)| pos == row);
        if identity {
            let chunk_rows = secreta_data::chunk::chunk_rows();
            return Self::from_tx_chunks(
                table.n_rows(),
                universe,
                || table.tx_chunks(chunk_rows),
                relevant,
            );
        }
        Self::from_fn(rows.len(), universe, |pos, buf| {
            buf.extend(
                table
                    .transaction(rows[pos])
                    .iter()
                    .copied()
                    .filter(|&it| relevant(it))
                    .map(|it| it.0),
            )
        })
    }

    /// Build the index from a re-iterable stream of [`TxChunk`]s (the
    /// two CSR passes each walk the stream once). This is how both
    /// the identity-rows [`InvertedIndex::build`] fast path and the
    /// no-materialization [`InvertedIndex::from_chunked`] build walk
    /// their data chunk-by-chunk.
    pub fn from_tx_chunks<'a, I: Iterator<Item = TxChunk<'a>>>(
        n_rows: usize,
        universe: usize,
        chunks: impl Fn() -> I,
        relevant: impl Fn(ItemId) -> bool,
    ) -> InvertedIndex {
        let mut counts = vec![0u32; universe];
        for chunk in chunks() {
            for (_, tx) in chunk.rows() {
                for &it in tx {
                    if relevant(it) {
                        counts[it.index()] += 1;
                    }
                }
            }
        }
        let mut offsets = Vec::with_capacity(universe + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut slots = offsets.clone();
        let mut postings = vec![0u32; acc as usize];
        for chunk in chunks() {
            for (row, tx) in chunk.rows() {
                for &it in tx {
                    if relevant(it) {
                        let slot = slots[it.index()];
                        postings[slot as usize] = row as u32;
                        slots[it.index()] += 1;
                    }
                }
            }
        }
        Self::assemble(n_rows, offsets, postings)
    }

    /// Build the index directly over a [`ChunkedTable`]'s sealed
    /// chunks, without materializing an [`RtTable`] first. Positions
    /// are global row indices (the chunked table's row order).
    pub fn from_chunked(
        chunked: &ChunkedTable,
        relevant: impl Fn(ItemId) -> bool,
    ) -> InvertedIndex {
        Self::from_tx_chunks(
            chunked.n_rows(),
            chunked.item_universe(),
            || chunked.chunks().iter().map(RowChunk::as_tx_chunk),
            relevant,
        )
    }

    /// Build the index from an arbitrary row source: `fill(pos, buf)`
    /// writes row `pos`'s duplicate-free item-id list. This is the
    /// generic core behind [`InvertedIndex::build`]; other crates use
    /// it to index rows that are not raw [`RtTable`] transactions —
    /// `secreta-risk` indexes *published* (generalized) rows with it.
    pub fn from_fn(
        n_rows: usize,
        universe: usize,
        fill: impl Fn(usize, &mut Vec<u32>),
    ) -> InvertedIndex {
        let mut counts = vec![0u32; universe];
        let mut buf: Vec<u32> = Vec::new();
        for pos in 0..n_rows {
            buf.clear();
            fill(pos, &mut buf);
            for &it in &buf {
                counts[it as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(universe + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut slots = offsets.clone();
        let mut postings = vec![0u32; acc as usize];
        for pos in 0..n_rows {
            buf.clear();
            fill(pos, &mut buf);
            for &it in &buf {
                let slot = slots[it as usize];
                postings[slot as usize] = pos as u32;
                slots[it as usize] += 1;
            }
        }
        Self::assemble(n_rows, offsets, postings)
    }

    /// Assemble the tiered index from filled CSR buffers: assign each
    /// indexed item to the bitmap or CSR tier by postings density and
    /// record the build-time density histogram. Shared tail of every
    /// build path.
    fn assemble(n_rows: usize, offsets: Vec<u32>, postings: Vec<u32>) -> InvertedIndex {
        let universe = offsets.len() - 1;
        let hot_min = dense_cutoff(n_rows);
        let mut dense_items = 0u64;
        let mut sparse_items = 0u64;
        let mut density_hist = [0u64; 4];
        let hot: Vec<Option<Bitset>> = (0..universe)
            .map(|item| {
                let p = &postings[offsets[item] as usize..offsets[item + 1] as usize];
                if p.is_empty() {
                    return None;
                }
                let density = p.len() as f64 / n_rows.max(1) as f64;
                let bucket = if density < 0.001 {
                    0
                } else if density < 0.01 {
                    1
                } else if density < 0.1 {
                    2
                } else {
                    3
                };
                density_hist[bucket] += 1;
                match hot_min {
                    Some(min) if p.len() >= min => {
                        dense_items += 1;
                        Some(Bitset::from_positions(p, n_rows))
                    }
                    _ => {
                        sparse_items += 1;
                        None
                    }
                }
            })
            .collect();
        InvertedIndex {
            offsets,
            postings,
            n_rows,
            hot_min,
            hot,
            dense_items,
            sparse_items,
            density_hist,
        }
    }

    /// Sorted row positions containing `item`.
    pub fn postings(&self, item: u32) -> &[u32] {
        &self.postings
            [self.offsets[item as usize] as usize..self.offsets[item as usize + 1] as usize]
    }

    /// Number of rows containing `item`.
    pub fn support(&self, item: u32) -> usize {
        self.postings(item).len()
    }

    /// Number of rows the index was built over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The dense-tier bitmap of `item`, if it earned one at build
    /// time.
    pub fn hot(&self, item: u32) -> Option<&Bitset> {
        self.hot.get(item as usize).and_then(Option::as_ref)
    }

    /// Sorted, duplicate-free union of the posting lists of `items`,
    /// written into `out`. When the estimated result is dense the
    /// union runs through a scratch bitmap (word-`OR` of hot items'
    /// bitsets, bit-sets for the tail) and is extracted back sorted —
    /// the output is identical either way.
    pub fn union_into(&self, items: impl IntoIterator<Item = u32>, out: &mut Vec<u32>) {
        match self.union_rowset(items, &mut KernelStats::default()) {
            RowSet::Sparse(v) => *out = v,
            RowSet::Dense(b) => b.to_sorted(out),
        }
    }

    /// Tiered union of the posting lists of `items`: `Dense` when the
    /// estimated cardinality (sum of postings lengths — an upper
    /// bound) clears the build-time density cutoff, `Sparse`
    /// (sort + dedup, the CSR path) otherwise. Both tiers denote the
    /// same row set. Tier work is tallied into `stats`.
    pub fn union_rowset(
        &self,
        items: impl IntoIterator<Item = u32>,
        stats: &mut KernelStats,
    ) -> RowSet {
        let items: Vec<u32> = items.into_iter().collect();
        let estimate: usize = items.iter().map(|&it| self.support(it)).sum();
        if let Some(min) = self.hot_min {
            if estimate >= min {
                let mut bits = Bitset::new(self.n_rows);
                for &it in &items {
                    match self.hot(it) {
                        Some(hot) => bits.union_with(hot),
                        None => bits.insert_all(self.postings(it)),
                    }
                }
                stats.bitmap_unions += 1;
                return RowSet::Dense(bits);
            }
        }
        let mut out: Vec<u32> = Vec::with_capacity(estimate);
        for &it in &items {
            out.extend_from_slice(self.postings(it));
        }
        out.sort_unstable();
        out.dedup();
        RowSet::Sparse(out)
    }
}

/// The postings length at which an item (or unioned row set) goes
/// dense for a table of `n_rows`, per the current
/// [`crate::bitmap::density_threshold`]; `None` when the dense tier is
/// disabled (threshold above `1.0`).
fn dense_cutoff(n_rows: usize) -> Option<usize> {
    let threshold = crate::bitmap::density_threshold();
    if threshold > 1.0 || n_rows == 0 {
        return None;
    }
    Some(((threshold * n_rows as f64).ceil() as usize).max(1))
}

/// When the short side of an intersection is at least this many times
/// shorter than the long side, switch from the linear merge to
/// galloping (exponential + binary) search over the long side.
const GALLOP_RATIO: usize = 8;

/// Intersection of two sorted, duplicate-free lists into `out`.
///
/// Skew-adaptive: when one list is ≥ `GALLOP_RATIO`× shorter it
/// gallops — for each short element, an exponential probe from the
/// current long-side offset finds a bracketing window, then a binary
/// search lands in it — turning the `O(|a| + |b|)` merge into
/// `O(|short| · log |long|)`. Balanced lists keep the linear merge.
pub fn intersect_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.len() * GALLOP_RATIO <= long.len() {
        let mut lo = 0usize;
        for &x in short {
            // exponential probe: bracket x in long[lo..] by doubling
            let mut step = 1usize;
            let mut hi = lo;
            while hi < long.len() && long[hi] < x {
                lo = hi + 1;
                hi += step;
                step *= 2;
            }
            // the probe may have landed exactly on x — keep index `hi`
            // inside the binary-search window
            let hi = (hi + 1).min(long.len());
            match long[lo..hi].binary_search(&x) {
                Ok(pos) => {
                    out.push(x);
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= long.len() {
                break;
            }
        }
        return;
    }
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Incrementally maintained subset-support counts for the Apriori
/// family: the published (sorted, deduplicated) token list of every
/// row plus the support of each of its `size`-subsets.
///
/// [`RowSupport::build`] shards the initial count across threads;
/// [`RowSupport::update`] re-enumerates only the dirty rows of a
/// recoding step (subtracting their old subsets, adding the new).
#[derive(Debug)]
pub struct RowSupport {
    size: usize,
    /// Subset key → support.
    pub map: SupportMap,
    lists: Vec<Vec<u32>>,
    /// Kernel work counters accumulated by this structure.
    pub stats: KernelStats,
}

impl RowSupport {
    /// Count every `size`-subset of every row's published list.
    /// `fill(pos, buf)` must write row `pos`'s sorted, duplicate-free
    /// published tokens into `buf`.
    pub fn build<F>(n_rows: usize, size: usize, fill: F) -> RowSupport
    where
        F: Fn(usize, &mut Vec<u32>) + Sync,
    {
        let parts = secreta_parallel::par_chunks(n_rows, MIN_ROWS_PER_SHARD, |lo, hi| {
            let mut map = SupportMap::new();
            let mut lists: Vec<Vec<u32>> = Vec::with_capacity(hi - lo);
            let mut buf: Vec<u32> = Vec::new();
            for pos in lo..hi {
                buf.clear();
                fill(pos, &mut buf);
                if buf.len() >= size {
                    for_each_subset_u32(&buf, size, &mut |s| {
                        map.add(s, 1);
                    });
                }
                lists.push(buf.clone());
            }
            (map, lists)
        });
        let mut stats = KernelStats::default();
        let mut iter = parts.into_iter();
        let (mut map, mut lists) = iter.next().unwrap_or_default();
        for (m, ls) in iter {
            map.merge_from(&m);
            lists.extend(ls);
            stats.shard_merges += 1;
        }
        debug_assert_eq!(lists.len(), n_rows);
        stats.interned_keys += map.len() as u64;
        RowSupport {
            size,
            map,
            lists,
            stats,
        }
    }

    /// The stored published list of row `pos`.
    pub fn list(&self, pos: usize) -> &[u32] {
        &self.lists[pos]
    }

    /// Re-enumerate exactly the rows in `dirty` (positions, sorted or
    /// not): subtract each row's previous subsets, recompute its list
    /// via `fill`, add the new subsets.
    pub fn update<F>(&mut self, dirty: &[u32], fill: F)
    where
        F: Fn(usize, &mut Vec<u32>),
    {
        let before = self.map.len();
        let mut buf: Vec<u32> = Vec::new();
        for &pos in dirty {
            let pos = pos as usize;
            let old = std::mem::take(&mut self.lists[pos]);
            let map = &mut self.map;
            if old.len() >= self.size {
                for_each_subset_u32(&old, self.size, &mut |s| {
                    map.add_signed(s, -1);
                });
            }
            buf.clear();
            fill(pos, &mut buf);
            if buf.len() >= self.size {
                for_each_subset_u32(&buf, self.size, &mut |s| {
                    map.add(s, 1);
                });
            }
            self.lists[pos] = buf.clone();
        }
        self.stats.rows_reenumerated += dirty.len() as u64;
        self.stats.rows_skipped += (self.lists.len() - dirty.len()) as u64;
        self.stats.interned_keys += (self.map.len() - before) as u64;
    }
}

/// Pack an `(antecedent token, target)` pair key.
fn pack(token: u32, target: u32) -> u64 {
    ((token as u64) << 32) | target as u64
}

/// Support counts for sensitive-rule mining (`q → s`): the support of
/// every antecedent `q` with `|q| ≤ max_antecedent` plus, per pair,
/// the joint support of `q ∪ {s}` for every target token `s`.
///
/// Antecedent keys are interned in [`SupportMap`]; pair keys reuse the
/// antecedent's stable token packed with the target into a `u64`, so
/// the per-row inner loop allocates nothing. Used one-shot by
/// TDControl's violation check and incrementally by SuppressControl
/// (a suppression only dirties the rows that contain the victim).
#[derive(Debug, Default)]
pub struct RuleCounts {
    max_antecedent: usize,
    /// Antecedent key → support.
    pub sup_q: SupportMap,
    /// `(antecedent token, target)` → joint support.
    pub sup_qs: FxHashMap<u64, u32>,
    lists: Vec<Vec<u32>>,
    /// Kernel work counters accumulated by this structure.
    pub stats: KernelStats,
}

impl RuleCounts {
    /// Sharded count over all rows. `fill(pos, buf)` writes row
    /// `pos`'s live sorted token list; `is_target` classifies tokens
    /// as rule targets (sensitive). `keep_lists` retains per-row lists
    /// for later [`RuleCounts::update`] calls.
    pub fn build<F, T>(
        n_rows: usize,
        max_antecedent: usize,
        keep_lists: bool,
        fill: F,
        is_target: T,
    ) -> RuleCounts
    where
        F: Fn(usize, &mut Vec<u32>) + Sync,
        T: Fn(u32) -> bool + Sync,
    {
        let parts = secreta_parallel::par_chunks(n_rows, MIN_ROWS_PER_SHARD, |lo, hi| {
            let mut acc = RuleCounts {
                max_antecedent,
                ..RuleCounts::default()
            };
            let mut buf: Vec<u32> = Vec::new();
            let mut targets: Vec<u32> = Vec::new();
            for pos in lo..hi {
                buf.clear();
                fill(pos, &mut buf);
                acc.apply_row(&buf, 1, &is_target, &mut targets);
                if keep_lists {
                    acc.lists.push(buf.clone());
                }
            }
            acc
        });
        let mut iter = parts.into_iter();
        let mut global = iter.next().unwrap_or_else(|| RuleCounts {
            max_antecedent,
            ..RuleCounts::default()
        });
        for part in iter {
            // remap the shard's antecedent tokens into the global map,
            // in shard order, so counts add up exactly
            let mut remap: Vec<u32> = Vec::with_capacity(part.sup_q.len());
            for (key, count) in part.sup_q.iter() {
                remap.push(global.sup_q.add(key, count));
            }
            for (&pair, &count) in &part.sup_qs {
                let (token, target) = ((pair >> 32) as u32, pair as u32);
                let key = pack(remap[token as usize], target);
                *global.sup_qs.entry(key).or_insert(0) += count;
            }
            global.lists.extend(part.lists);
            global.stats.shard_merges += 1;
        }
        global.stats.interned_keys += global.sup_q.len() as u64;
        global
    }

    /// Add (`delta = 1`) or subtract (`delta = -1`) one row's
    /// contribution to the counts.
    fn apply_row(
        &mut self,
        toks: &[u32],
        delta: i32,
        is_target: &impl Fn(u32) -> bool,
        targets: &mut Vec<u32>,
    ) {
        if toks.is_empty() {
            return;
        }
        targets.clear();
        targets.extend(toks.iter().copied().filter(|&t| is_target(t)));
        for size in 0..=self.max_antecedent.min(toks.len()) {
            let sup_q = &mut self.sup_q;
            let sup_qs = &mut self.sup_qs;
            let targets = &targets[..];
            for_each_subset_u32(toks, size, &mut |q| {
                let token = sup_q.add_signed(q, delta);
                for &s in targets {
                    if !q.contains(&s) {
                        let e = sup_qs.entry(pack(token, s)).or_insert(0);
                        if delta >= 0 {
                            *e += delta as u32;
                        } else {
                            debug_assert!(*e >= (-delta) as u32, "pair underflow");
                            *e -= (-delta) as u32;
                        }
                    }
                }
            });
        }
    }

    /// Re-enumerate the rows in `dirty` after a recoding step;
    /// requires `keep_lists` at build time.
    pub fn update<F, T>(&mut self, dirty: &[u32], fill: F, is_target: T)
    where
        F: Fn(usize, &mut Vec<u32>),
        T: Fn(u32) -> bool,
    {
        let before = self.sup_q.len();
        let mut buf: Vec<u32> = Vec::new();
        let mut targets: Vec<u32> = Vec::new();
        for &pos in dirty {
            let pos = pos as usize;
            let old = std::mem::take(&mut self.lists[pos]);
            self.apply_row(&old, -1, &is_target, &mut targets);
            buf.clear();
            fill(pos, &mut buf);
            self.apply_row(&buf, 1, &is_target, &mut targets);
            self.lists[pos] = buf.clone();
        }
        self.stats.rows_reenumerated += dirty.len() as u64;
        self.stats.rows_skipped += (self.lists.len() - dirty.len()) as u64;
        self.stats.interned_keys += (self.sup_q.len() - before) as u64;
    }

    /// [`RuleCounts::update`] with the dirty rows given as a tiered
    /// [`RowSet`] — the direct output of
    /// [`InvertedIndex::union_rowset`] — so dense dirty sets ride the
    /// bitmap tier until the row walk itself. Both tiers re-enumerate
    /// the same rows in the same ascending order, so the resulting
    /// counts are identical.
    pub fn update_rowset<F, T>(&mut self, dirty: &RowSet, fill: F, is_target: T)
    where
        F: Fn(usize, &mut Vec<u32>),
        T: Fn(u32) -> bool,
    {
        match dirty {
            RowSet::Sparse(rows) => self.update(rows, fill, is_target),
            RowSet::Dense(bits) => {
                let mut rows = Vec::with_capacity(bits.count_ones());
                bits.to_sorted(&mut rows);
                self.update(&rows, fill, is_target);
            }
        }
    }

    /// Iterate live rules as `(antecedent, target, joint, antecedent
    /// support)`, skipping pairs whose joint support dropped to zero.
    pub fn rules(&self) -> impl Iterator<Item = (&[u32], u32, u32, u32)> + '_ {
        self.sup_qs
            .iter()
            .filter(|(_, &qs)| qs > 0)
            .map(|(&pair, &qs)| {
                let (token, target) = ((pair >> 32) as u32, pair as u32);
                (
                    self.sup_q.key_of(token),
                    target,
                    qs,
                    self.sup_q.count_of(token),
                )
            })
    }

    /// True iff some rule's confidence `joint / antecedent` reaches
    /// `rho`.
    pub fn any_violation(&self, rho: f64) -> bool {
        self.rules()
            .any(|(_, _, qs, q)| qs as f64 / q as f64 >= rho)
    }
}

/// Published-support oracle for the hierarchy-free algorithms (COAT,
/// PCTA).
///
/// The published support of a generalized item (a group of original
/// items) is the number of rows containing at least one live member —
/// the union of the members' posting lists. A privacy constraint's
/// support is the intersection of its image groups' row sets. Both are
/// answered from the tiered [`InvertedIndex`]: group row sets are
/// [`RowSet`]s (dense bitmaps once a group covers enough rows —
/// exactly the groups COAT/PCTA grow largest and query most), and
/// constraint intersections pick the word-`AND` / bitmap-probe /
/// galloping path per tier pair.
///
/// Memoized row sets survive across repair rounds: a group's row set
/// is a pure function of its live member set, and the only mutations
/// the algorithms perform are merging two groups and suppressing one
/// item — each invalidates the memo of the affected root(s) only
/// (see [`GroupSupportOracle::invalidate_root`]), so every other
/// group's cached rows stay valid.
#[derive(Debug)]
pub struct GroupSupportOracle {
    index: InvertedIndex,
    rows_of_root: FxHashMap<u32, RowSet>,
    /// Kernel work counters accumulated by this oracle.
    pub stats: KernelStats,
}

impl GroupSupportOracle {
    /// Build the oracle's index over `rows` of `table`.
    pub fn new(table: &RtTable, rows: &[usize]) -> GroupSupportOracle {
        let universe = table.item_universe();
        let index = InvertedIndex::build(table, rows, universe, |_| true);
        let mut stats = KernelStats::default();
        stats.record_index(&index);
        GroupSupportOracle {
            index,
            rows_of_root: FxHashMap::default(),
            stats,
        }
    }

    /// Invalidate every memoized row set. Kept for callers that mutate
    /// groups without telling the oracle which roots changed;
    /// [`GroupSupportOracle::invalidate_root`] is the cheap path.
    pub fn begin_round(&mut self) {
        self.rows_of_root.clear();
    }

    /// Drop the memoized row set of one root. Call with both former
    /// roots after a merge (either may survive as the union root) and
    /// with the suppressed item's root after a suppression; all other
    /// memo entries remain valid.
    pub fn invalidate_root(&mut self, root: u32) {
        self.rows_of_root.remove(&root);
    }

    fn ensure_rows(&mut self, groups: &mut ItemGroups, root: u32) {
        if self.rows_of_root.contains_key(&root) {
            return;
        }
        let live = groups
            .members_of_root(root)
            .iter()
            .copied()
            .filter(|&m| !groups.is_suppressed(m))
            .collect::<Vec<u32>>();
        let rows = self.index.union_rowset(live, &mut self.stats);
        self.stats.posting_unions += 1;
        self.rows_of_root.insert(root, rows);
    }

    /// Published support of the group rooted at `root`.
    pub fn group_support(&mut self, groups: &mut ItemGroups, root: u32) -> u32 {
        self.ensure_rows(groups, root);
        self.rows_of_root[&root].len() as u32
    }

    /// Published support of `constraint` (0 if any item is
    /// suppressed).
    pub fn constraint_support(&mut self, groups: &mut ItemGroups, constraint: &[ItemId]) -> u32 {
        let mut image: Vec<u32> = Vec::with_capacity(constraint.len());
        for it in constraint {
            match groups.map(*it) {
                Some(g) => image.push(g),
                None => return 0,
            }
        }
        image.sort_unstable();
        image.dedup();
        for &g in &image {
            self.ensure_rows(groups, g);
        }
        // intersect smallest-first: cache cardinalities once (a dense
        // set's len is a popcount) and keep the order deterministic by
        // breaking length ties on the root id
        let mut by_len: Vec<(usize, u32)> = image
            .iter()
            .map(|&g| (self.rows_of_root[&g].len(), g))
            .collect();
        by_len.sort_unstable();
        // only the cardinality is published, so the final pairing is
        // counted without materializing its intersection — the 1- and
        // 2-group images that dominate real policies never clone a
        // row set at all
        let mut bitmap_ops = 0u64;
        let support = {
            let rows = &self.rows_of_root;
            match by_len.as_slice() {
                [(len, _)] => *len,
                [(_, a), (_, b)] => {
                    let (a, b) = (&rows[a], &rows[b]);
                    bitmap_ops += (a.is_dense() || b.is_dense()) as u64;
                    a.intersect_len(b)
                }
                [(_, first), mids @ .., (_, last)] => {
                    let mut cur = rows[first].clone();
                    let mut emptied = false;
                    for (_, g) in mids {
                        let next = &rows[g];
                        bitmap_ops += (cur.is_dense() || next.is_dense()) as u64;
                        cur = cur.intersect(next);
                        if cur.is_empty() {
                            emptied = true;
                            break;
                        }
                    }
                    if emptied {
                        0
                    } else {
                        let last = &rows[last];
                        bitmap_ops += (cur.is_dense() || last.is_dense()) as u64;
                        cur.intersect_len(last)
                    }
                }
                [] => unreachable!("constraint image is non-empty"),
            }
        };
        self.stats.bitmap_intersections += bitmap_ops;
        support as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use secreta_data::{Attribute, Schema};

    #[test]
    fn support_map_counts_and_interns() {
        let mut m = SupportMap::new();
        assert!(m.is_empty());
        let a = m.add(&[1, 2], 1);
        let b = m.add(&[1, 2], 1);
        assert_eq!(a, b);
        assert_eq!(m.get(&[1, 2]), Some(2));
        assert_eq!(m.get(&[2, 1]), None);
        let c = m.add(&[], 1);
        assert_ne!(a, c);
        assert_eq!(m.get(&[]), Some(1));
        m.add_signed(&[1, 2], -2);
        assert_eq!(m.get(&[1, 2]), Some(0));
        assert_eq!(m.len(), 2);
        assert_eq!(m.key_of(a), &[1, 2]);
    }

    #[test]
    fn support_map_survives_growth() {
        let mut m = SupportMap::new();
        for i in 0u32..500 {
            m.add(&[i, i + 1000], 1);
        }
        for i in 0u32..500 {
            assert_eq!(m.get(&[i, i + 1000]), Some(1), "i={i}");
        }
        assert_eq!(m.len(), 500);
        // insertion-order iteration
        let keys: Vec<Vec<u32>> = m.iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys[0], vec![0, 1000]);
        assert_eq!(keys[499], vec![499, 1499]);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = SupportMap::new();
        a.add(&[1], 2);
        a.add(&[2, 3], 1);
        let mut b = SupportMap::new();
        b.add(&[2, 3], 4);
        b.add(&[9], 1);
        a.merge_from(&b);
        assert_eq!(a.get(&[1]), Some(2));
        assert_eq!(a.get(&[2, 3]), Some(5));
        assert_eq!(a.get(&[9]), Some(1));
    }

    #[test]
    fn subsets_include_empty_at_size_zero() {
        let mut n = 0;
        for_each_subset_u32(&[1, 2, 3], 0, &mut |s| {
            assert!(s.is_empty());
            n += 1;
        });
        assert_eq!(n, 1);
        let mut pairs = Vec::new();
        for_each_subset_u32(&[1, 2, 3], 2, &mut |s| pairs.push(s.to_vec()));
        assert_eq!(pairs, vec![vec![1, 2], vec![1, 3], vec![2, 3]]);
    }

    fn tiny_table(rows: &[&[&str]]) -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        for r in rows {
            t.push_row(&[], r).unwrap();
        }
        t
    }

    #[test]
    fn inverted_index_postings() {
        let t = tiny_table(&[&["a", "b"], &[], &["b", "c"], &["a"]]);
        let rows: Vec<usize> = (0..t.n_rows()).collect();
        let idx = InvertedIndex::build(&t, &rows, t.item_universe(), |_| true);
        let a = t.item_pool().unwrap().get("a").unwrap();
        let b = t.item_pool().unwrap().get("b").unwrap();
        let c = t.item_pool().unwrap().get("c").unwrap();
        assert_eq!(idx.postings(a), &[0, 3]);
        assert_eq!(idx.postings(b), &[0, 2]);
        assert_eq!(idx.postings(c), &[2]);
        assert_eq!(idx.support(a), 2);
        let mut out = Vec::new();
        idx.union_into([a, c], &mut out);
        assert_eq!(out, vec![0, 2, 3]);
    }

    #[test]
    fn chunk_walk_builds_identical_indexes() {
        let t = tiny_table(&[&["a", "b"], &[], &["b", "c"], &["a"], &["c", "a"], &["b"]]);
        let universe = t.item_universe();
        let b = t.item_pool().unwrap().get("b").unwrap();
        // drop one item so the filter path is exercised too
        let relevant = |it: ItemId| it.0 != b;
        let reference = InvertedIndex::from_fn(t.n_rows(), universe, |pos, buf| {
            buf.extend(
                t.transaction(pos)
                    .iter()
                    .copied()
                    .filter(|&it| relevant(it))
                    .map(|it| it.0),
            )
        });
        for block in [1, 2, 3, 100] {
            let idx = InvertedIndex::from_tx_chunks(
                t.n_rows(),
                universe,
                || t.tx_chunks(block),
                relevant,
            );
            assert_eq!(idx.offsets, reference.offsets, "block={block}");
            assert_eq!(idx.postings, reference.postings, "block={block}");
        }
        // the identity-rows dispatch in build() lands on the same index
        let rows: Vec<usize> = (0..t.n_rows()).collect();
        let built = InvertedIndex::build(&t, &rows, universe, relevant);
        assert_eq!(built.offsets, reference.offsets);
        assert_eq!(built.postings, reference.postings);
    }

    #[test]
    fn from_chunked_matches_materialized_build() {
        use secreta_data::MemoryBudget;
        let rows: &[&[&str]] = &[&["a", "b"], &[], &["b", "c"], &["a"], &["c", "a"]];
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut chunked = ChunkedTable::new(schema, 2, MemoryBudget::unlimited());
        for r in rows {
            chunked.push_row(&[], r).unwrap();
        }
        chunked.finish().unwrap();
        let idx = InvertedIndex::from_chunked(&chunked, |_| true);
        let t = tiny_table(rows);
        let all: Vec<usize> = (0..t.n_rows()).collect();
        let reference = InvertedIndex::build(&t, &all, t.item_universe(), |_| true);
        assert_eq!(idx.offsets, reference.offsets);
        assert_eq!(idx.postings, reference.postings);
        assert_eq!(idx.n_rows, reference.n_rows);
    }

    #[test]
    fn tiered_union_matches_csr_union() {
        let _serial = crate::bitmap::TEST_THRESHOLD_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // force every non-empty item dense, then fully sparse, and
        // check union_into is byte-identical in both regimes
        let t = tiny_table(&[&["a", "b"], &["b"], &["b", "c"], &["a", "b"]]);
        let rows: Vec<usize> = (0..t.n_rows()).collect();
        let a = t.item_pool().unwrap().get("a").unwrap();
        let b = t.item_pool().unwrap().get("b").unwrap();
        let c = t.item_pool().unwrap().get("c").unwrap();

        crate::bitmap::set_density_threshold(Some(0.0));
        let dense_idx = InvertedIndex::build(&t, &rows, t.item_universe(), |_| true);
        assert!(dense_idx.hot(b).is_some());
        crate::bitmap::set_density_threshold(Some(2.0));
        let sparse_idx = InvertedIndex::build(&t, &rows, t.item_universe(), |_| true);
        assert!(sparse_idx.hot(b).is_none());
        crate::bitmap::set_density_threshold(None);

        for items in [vec![a], vec![a, c], vec![a, b, c], vec![]] {
            let (mut lhs, mut rhs) = (Vec::new(), Vec::new());
            dense_idx.union_into(items.iter().copied(), &mut lhs);
            sparse_idx.union_into(items.iter().copied(), &mut rhs);
            assert_eq!(lhs, rhs, "items={items:?}");
        }
        // density histogram counted each non-empty item exactly once
        assert_eq!(dense_idx.density_hist.iter().sum::<u64>(), 3);
        assert_eq!(dense_idx.dense_items, 3);
        assert_eq!(sparse_idx.sparse_items, 3);
    }

    #[test]
    fn intersect_sorted_basics() {
        let mut out = Vec::new();
        intersect_sorted(&[1, 3, 5, 7], &[2, 3, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7]);
        intersect_sorted(&[], &[1], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn intersect_sorted_skewed_lists_gallop() {
        // long side ≥ 8× the short side in every case below, so the
        // galloping path is exercised (either argument order)
        let long: Vec<u32> = (0..200).map(|i| i * 3).collect();
        let mut out = Vec::new();
        // hits at both ends, a middle hit, and misses between
        intersect_sorted(&[0, 7, 300, 597], &long, &mut out);
        assert_eq!(out, vec![0, 300, 597]);
        intersect_sorted(&long, &[0, 7, 300, 597], &mut out);
        assert_eq!(out, vec![0, 300, 597]);
        // short list entirely past the long list's range
        intersect_sorted(&[1000, 2000], &long, &mut out);
        assert!(out.is_empty());
        // short list entirely before it
        intersect_sorted(&long, &[1, 2], &mut out);
        assert!(out.is_empty());
        // every short element present (consecutive long elements)
        intersect_sorted(&[3, 6, 9], &long, &mut out);
        assert_eq!(out, vec![3, 6, 9]);
        // single-element short side
        intersect_sorted(&[300], &long, &mut out);
        assert_eq!(out, vec![300]);
        intersect_sorted(&[301], &long, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn row_support_incremental_matches_rebuild() {
        // 6 rows over items 0..5; dirty a few rows, compare with a
        // from-scratch rebuild of the mutated lists
        let lists: Vec<Vec<u32>> = vec![
            vec![0, 1, 2],
            vec![1, 2],
            vec![0, 3],
            vec![2, 3, 4],
            vec![],
            vec![0, 1, 2, 4],
        ];
        let mutated: Vec<Vec<u32>> = vec![
            vec![0, 1],
            vec![1, 2],
            vec![3],
            vec![2, 3, 4],
            vec![],
            vec![0, 1, 4],
        ];
        for size in 1..=3usize {
            let mut rs = RowSupport::build(lists.len(), size, |pos, buf| {
                buf.extend_from_slice(&lists[pos])
            });
            rs.update(&[0, 2, 5], |pos, buf| buf.extend_from_slice(&mutated[pos]));
            let fresh = RowSupport::build(mutated.len(), size, |pos, buf| {
                buf.extend_from_slice(&mutated[pos])
            });
            for (key, count) in fresh.map.iter() {
                assert_eq!(rs.map.get(key), Some(count), "size={size} key={key:?}");
            }
            // stale keys must have dropped to zero
            for (key, count) in rs.map.iter() {
                if fresh.map.get(key).unwrap_or(0) == 0 {
                    assert_eq!(count, 0, "stale key {key:?} kept support");
                }
            }
            assert_eq!(rs.stats.rows_reenumerated, 3);
            assert_eq!(rs.stats.rows_skipped, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The interned map agrees with a naive Vec-keyed HashMap on
        /// random subset streams (random universes, duplicate rows,
        /// empty rows).
        #[test]
        fn support_map_matches_naive_counter(
            rows in prop::collection::vec(
                prop::collection::vec(0u32..24, 0..7), 0..40),
            size in 0usize..4,
        ) {
            let mut naive: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
            let mut kernel = SupportMap::new();
            for row in &rows {
                let mut sorted = row.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() < size {
                    continue;
                }
                for_each_subset_u32(&sorted, size, &mut |s| {
                    *naive.entry(s.to_vec()).or_insert(0) += 1;
                    kernel.add(s, 1);
                });
            }
            prop_assert_eq!(naive.len(), kernel.len());
            for (key, &count) in &naive {
                prop_assert_eq!(kernel.get(key), Some(count));
            }
        }

        /// The skew-adaptive intersection agrees with a reference
        /// linear merge for arbitrary (including heavily skewed)
        /// sorted inputs.
        #[test]
        fn galloping_intersection_matches_linear(
            short_raw in prop::collection::vec(0u32..4000, 0..12),
            long_raw in prop::collection::vec(0u32..4000, 0..600),
        ) {
            let mut short = short_raw;
            short.sort_unstable();
            short.dedup();
            let mut long = long_raw;
            long.sort_unstable();
            long.dedup();
            let expect: Vec<u32> =
                short.iter().copied().filter(|x| long.contains(x)).collect();
            let mut out = Vec::new();
            intersect_sorted(&short, &long, &mut out);
            prop_assert_eq!(&out, &expect);
            intersect_sorted(&long, &short, &mut out);
            prop_assert_eq!(&out, &expect);
        }

        /// Sharded RowSupport::build equals the sequential count for
        /// any thread count.
        #[test]
        fn sharded_build_matches_sequential(seed in 0u64..500) {
            // deterministic pseudo-random lists, enough rows to shard
            let n = 300usize;
            let list_of = |pos: usize| -> Vec<u32> {
                let mut v = Vec::new();
                let mut z = seed.wrapping_add(pos as u64).wrapping_mul(0x9E3779B97F4A7C15);
                for _ in 0..(z % 5) {
                    z ^= z >> 13;
                    z = z.wrapping_mul(0x2545F4914F6CDD1D);
                    v.push((z % 12) as u32);
                }
                v.sort_unstable();
                v.dedup();
                v
            };
            secreta_parallel::set_threads(1);
            let seq = RowSupport::build(n, 2, |pos, buf| buf.extend_from_slice(&list_of(pos)));
            secreta_parallel::set_threads(4);
            let par = RowSupport::build(n, 2, |pos, buf| buf.extend_from_slice(&list_of(pos)));
            secreta_parallel::set_threads(0);
            prop_assert_eq!(seq.map.len(), par.map.len());
            for (key, count) in seq.map.iter() {
                prop_assert_eq!(par.map.get(key), Some(count));
            }
        }
    }
}
