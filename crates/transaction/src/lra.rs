//! LRA — local recoding anonymization (Terrovitis et al., VLDB J.
//! 2011).
//!
//! Sorts the transactions so similar ones are adjacent, splits them
//! into horizontal partitions, and runs Apriori anonymization
//! *independently inside each partition*. Because every partition is
//! k^m-anonymous on its own counting, the union is k^m-anonymous too,
//! while each partition's cut stays close to its local data — local
//! recoding loses less information than AA's one-global-cut at the
//! cost of a less regular output domain.

use crate::apriori::{anonymize_rows, build_anon};
use crate::common::{TransactionInput, TxError, TxOutput};
use crate::support::Counting;
use secreta_metrics::PhaseTimer;

/// Run LRA with `partitions` horizontal partitions (kernelized
/// support counting).
pub fn anonymize(input: &TransactionInput, partitions: usize) -> Result<TxOutput, TxError> {
    anonymize_with(input, partitions, Counting::Kernel)
}

/// Run LRA with the naive reference counters.
pub fn anonymize_reference(
    input: &TransactionInput,
    partitions: usize,
) -> Result<TxOutput, TxError> {
    anonymize_with(input, partitions, Counting::Naive)
}

/// Run LRA with an explicit counting implementation.
pub fn anonymize_with(
    input: &TransactionInput,
    partitions: usize,
    counting: Counting,
) -> Result<TxOutput, TxError> {
    input.validate()?;
    let h = input
        .hierarchy
        .ok_or_else(|| TxError::BadInput("LRA requires an item hierarchy".into()))?;
    let partitions = partitions.max(1);
    let mut timer = PhaseTimer::new();

    // Sort non-empty rows by transaction content so similar
    // transactions land in the same partition (the original sorts by
    // a space-filling order; lexicographic item-id order is its
    // deterministic stand-in).
    let mut rows = input.non_empty_rows();
    rows.sort_by(|&a, &b| input.table.transaction(a).cmp(input.table.transaction(b)));

    // chunk into partitions, each at least k rows (merge short tails)
    let mut chunks: Vec<Vec<usize>> = Vec::new();
    if !rows.is_empty() {
        if rows.len() < input.k {
            return Err(TxError::Infeasible {
                k: input.k,
                non_empty: rows.len(),
            });
        }
        let target = rows.len().div_ceil(partitions).max(input.k);
        for chunk in rows.chunks(target) {
            chunks.push(chunk.to_vec());
        }
        if let Some(last) = chunks.last() {
            if last.len() < input.k && chunks.len() > 1 {
                let tail = chunks.pop().expect("checked non-empty");
                chunks.last_mut().expect("len > 1 before pop").extend(tail);
            }
        }
    }
    secreta_obsv::current().count("lra/partitions", chunks.len() as u64);
    timer.phase("partitioning");

    // AA per partition
    let mut row_state: Vec<Option<usize>> = vec![None; input.table.n_rows()];
    let mut states = Vec::with_capacity(chunks.len());
    for (ci, chunk) in chunks.iter().enumerate() {
        let state = anonymize_rows(
            input.table,
            chunk,
            input.k,
            input.m,
            h,
            |_| true,
            |_| true,
            false,
            counting,
        )?;
        for &r in chunk {
            row_state[r] = Some(ci);
        }
        states.push(state);
    }
    timer.phase("per-partition recoding");

    let anon = build_anon(input.table, h, |row, it| {
        row_state[row].and_then(|ci| states[ci].map(it))
    });
    timer.phase("publish");

    Ok(TxOutput {
        anon,
        phases: timer.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori;
    use crate::verify::is_km_anonymous;
    use secreta_data::{Attribute, AttributeKind, RtTable, Schema};
    use secreta_hierarchy::{auto_hierarchy, Hierarchy};
    use secreta_metrics::transaction_gcp;

    fn table(n: usize) -> RtTable {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        // two "clusters" of transactions over disjoint item groups
        for i in 0..n {
            if i % 2 == 0 {
                t.push_row(&[], &["a1", if i % 4 == 0 { "a2" } else { "a3" }])
                    .unwrap();
            } else {
                t.push_row(&[], &["b1", if i % 4 == 1 { "b2" } else { "b3" }])
                    .unwrap();
            }
        }
        t
    }

    fn hierarchy(t: &RtTable) -> Hierarchy {
        auto_hierarchy(t.item_pool().unwrap(), AttributeKind::Categorical, 2).unwrap()
    }

    #[test]
    fn per_partition_km_holds_globally() {
        let t = table(24);
        let h = hierarchy(&t);
        for p in [1, 2, 4] {
            let out = anonymize(&TransactionInput::km(&t, 2, 2, &h), p).unwrap();
            assert!(is_km_anonymous(&out.anon, 2, 2, Some(&h)), "partitions={p}");
            assert!(out.anon.is_truthful(&t, |_| None, Some(&h)));
        }
    }

    #[test]
    fn one_partition_equals_apriori() {
        let t = table(16);
        let h = hierarchy(&t);
        let lra = anonymize(&TransactionInput::km(&t, 2, 2, &h), 1).unwrap();
        let aa = apriori::anonymize(&TransactionInput::km(&t, 2, 2, &h)).unwrap();
        assert!(
            (transaction_gcp(&t, &lra.anon, Some(&h)) - transaction_gcp(&t, &aa.anon, Some(&h)))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn more_partitions_never_hurt_on_clustered_data() {
        let t = table(40);
        let h = hierarchy(&t);
        let g1 = transaction_gcp(
            &t,
            &anonymize(&TransactionInput::km(&t, 3, 2, &h), 1)
                .unwrap()
                .anon,
            Some(&h),
        );
        let g4 = transaction_gcp(
            &t,
            &anonymize(&TransactionInput::km(&t, 3, 2, &h), 4)
                .unwrap()
                .anon,
            Some(&h),
        );
        // local recoding on separable data should not lose more
        assert!(g4 <= g1 + 1e-9, "g4={g4} g1={g1}");
    }

    #[test]
    fn short_tail_partitions_are_merged() {
        let t = table(10);
        let h = hierarchy(&t);
        // 10 rows, k=4, 3 partitions -> chunks of 4/4/2, tail merged
        let out = anonymize(&TransactionInput::km(&t, 4, 1, &h), 3).unwrap();
        assert!(is_km_anonymous(&out.anon, 4, 1, Some(&h)));
    }

    #[test]
    fn empty_transactions_pass_through() {
        let schema = Schema::new(vec![Attribute::transaction("Items")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&[], &["x", "y"]).unwrap();
        t.push_row(&[], &[]).unwrap();
        t.push_row(&[], &["x", "y"]).unwrap();
        let h = hierarchy(&t);
        let out = anonymize(&TransactionInput::km(&t, 2, 2, &h), 2).unwrap();
        let tx = out.anon.tx.as_ref().unwrap();
        assert!(tx.row_items(1).is_empty());
        assert!(!tx.row_items(0).is_empty());
    }

    #[test]
    fn infeasible_small_input() {
        let t = table(2);
        let h = hierarchy(&t);
        assert!(matches!(
            anonymize(&TransactionInput::km(&t, 5, 1, &h), 2),
            Err(TxError::Infeasible { .. })
        ));
    }
}
