//! Automatic hierarchy generation.
//!
//! SECRETA's Policy Specification Module "invokes algorithms that
//! automatically generate hierarchies \[10\]". Following Terrovitis et
//! al., the generated hierarchies are balanced trees over the sorted
//! attribute domain with a fixed fan-out:
//!
//! * **numeric** attributes sort by numeric value and interior nodes
//!   are labelled as intervals, e.g. `[30-44]`;
//! * **categorical** attributes (and transaction items) sort
//!   lexicographically and interior nodes are labelled by their first
//!   and last member, e.g. `{BSc..MSc}`.

use crate::tree::{Hierarchy, HierarchyBuilder, HierarchyError, NodeId};
use secreta_data::{AttributeKind, ValuePool};

/// Generate a balanced hierarchy over `pool`'s values.
///
/// ```
/// use secreta_data::{AttributeKind, ValuePool};
/// use secreta_hierarchy::auto_hierarchy;
///
/// let mut ages = ValuePool::new();
/// for a in [25, 31, 47, 52, 60, 68] {
///     ages.intern(&a.to_string());
/// }
/// let h = auto_hierarchy(&ages, AttributeKind::Numeric, 2)?;
/// assert_eq!(h.n_leaves(), 6);
/// // the root covers everything; NCP grows toward it
/// assert_eq!(h.leaf_count(h.root()), 6);
/// assert_eq!(h.ncp(h.root()), 1.0);
/// # Ok::<(), secreta_hierarchy::HierarchyError>(())
/// ```
///
/// * `kind` selects the sort order and labelling scheme
///   ([`AttributeKind::Numeric`] vs anything else);
/// * `fanout` (≥ 2) is the number of children grouped under each
///   interior node.
///
/// Leaves keep the pool's value ids, so the hierarchy plugs directly
/// into tables built against the same pool.
pub fn auto_hierarchy(
    pool: &ValuePool,
    kind: AttributeKind,
    fanout: usize,
) -> Result<Hierarchy, HierarchyError> {
    if pool.is_empty() {
        return Err(HierarchyError::Empty);
    }
    let fanout = fanout.max(2);

    // sort value ids by domain order
    let mut order: Vec<u32> = (0..pool.len() as u32).collect();
    if kind == AttributeKind::Numeric {
        order.sort_by(|&a, &b| {
            let fa = pool.resolve(a).trim().parse::<f64>();
            let fb = pool.resolve(b).trim().parse::<f64>();
            match (fa, fb) {
                (Ok(x), Ok(y)) => x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal),
                // non-numeric strays sort after numbers, lexicographically
                (Ok(_), Err(_)) => std::cmp::Ordering::Less,
                (Err(_), Ok(_)) => std::cmp::Ordering::Greater,
                (Err(_), Err(_)) => pool.resolve(a).cmp(pool.resolve(b)),
            }
        });
    } else {
        order.sort_by(|&a, &b| pool.resolve(a).cmp(pool.resolve(b)));
    }

    // Build bottom-up: `groups` holds (first-label, last-label, members)
    // where members are node ids of the previous layer.
    let mut b = HierarchyBuilder::new();
    // We must create parents before children in HierarchyBuilder, so
    // plan the tree shape first: compute the chain of layer sizes.
    let mut sizes = vec![order.len()];
    while *sizes.last().expect("sizes non-empty") > 1 {
        let prev = *sizes.last().expect("sizes non-empty");
        sizes.push(prev.div_ceil(fanout));
    }
    // `sizes` ends with 1 (the root layer). For a single-value domain
    // the chain is just [1]; still emit a distinct root above the leaf
    // so that `generalize(v, 1)` suppresses even degenerate domains.
    let n_layers = sizes.len();

    // Top-down construction: layer 0 = root, layer n_layers-1 = leaves.
    // Node at layer L, index i covers leaf positions
    // [i * stride, min((i+1) * stride, n)) where stride = fanout^(depth below).
    let n = order.len();
    let label_for = |lo: usize, hi: usize| -> String {
        let first = pool.resolve(order[lo]);
        let last = pool.resolve(order[hi - 1]);
        if hi - lo == 1 {
            return first.to_owned();
        }
        if kind == AttributeKind::Numeric {
            format!("[{first}-{last}]")
        } else {
            format!("{{{first}..{last}}}")
        }
    };

    let root = b.add_node("*", None);
    if n_layers == 1 {
        // single value: one leaf under the root
        b.add_leaf(pool.resolve(order[0]), root, order[0]);
        return b.build(pool.len());
    }

    // stride at layer L (distance below root = L): each node covers
    // fanout^(n_layers-1-L) leaves.
    let mut parents: Vec<(NodeId, usize, usize)> = vec![(root, 0, n)]; // (node, lo, hi)
    for layer in 1..n_layers {
        let stride = fanout.pow((n_layers - 1 - layer) as u32);
        let mut next: Vec<(NodeId, usize, usize)> = Vec::new();
        for &(pnode, plo, phi) in &parents {
            let mut lo = plo;
            while lo < phi {
                let hi = (lo + stride).min(phi);
                if layer == n_layers - 1 {
                    // leaf layer: stride is 1 here by construction
                    debug_assert_eq!(stride, 1);
                    b.add_leaf(pool.resolve(order[lo]), pnode, order[lo]);
                } else {
                    let node = b.add_node(&label_for(lo, hi), Some(pnode));
                    next.push((node, lo, hi));
                }
                lo = hi;
            }
        }
        parents = next;
    }

    b.build(pool.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(values: &[&str]) -> ValuePool {
        let mut p = ValuePool::new();
        for v in values {
            p.intern(v);
        }
        p
    }

    #[test]
    fn numeric_hierarchy_sorts_numerically() {
        // interleaved insertion order: ids do not match numeric order
        let p = pool(&["30", "9", "100", "25"]);
        let h = auto_hierarchy(&p, AttributeKind::Numeric, 2).unwrap();
        assert_eq!(h.n_leaves(), 4);
        // DFS leaf order must be numeric: 9, 25, 30, 100
        let order: Vec<&str> = h
            .leaves_under(h.root())
            .map(|v| p.resolve(v))
            .collect::<Vec<_>>();
        assert_eq!(order, vec!["9", "25", "30", "100"]);
        // interval labels
        assert!(h.node_by_label("[9-25]").is_some());
        assert!(h.node_by_label("[30-100]").is_some());
    }

    #[test]
    fn categorical_hierarchy_sorts_lexicographically() {
        let p = pool(&["delta", "alpha", "charlie", "bravo"]);
        let h = auto_hierarchy(&p, AttributeKind::Categorical, 2).unwrap();
        let order: Vec<&str> = h.leaves_under(h.root()).map(|v| p.resolve(v)).collect();
        assert_eq!(order, vec!["alpha", "bravo", "charlie", "delta"]);
        assert!(h.node_by_label("{alpha..bravo}").is_some());
    }

    #[test]
    fn fanout_three_gives_shallower_tree() {
        let vals: Vec<String> = (0..27).map(|i| format!("v{i:02}")).collect();
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        let p = pool(&refs);
        let h2 = auto_hierarchy(&p, AttributeKind::Categorical, 2).unwrap();
        let h3 = auto_hierarchy(&p, AttributeKind::Categorical, 3).unwrap();
        assert!(h3.height() < h2.height());
        assert_eq!(h3.height(), 3); // 27 = 3^3
                                    // all leaves present in both
        assert_eq!(h2.n_leaves(), 27);
        assert_eq!(h3.n_leaves(), 27);
    }

    #[test]
    fn every_leaf_reachable_and_generalizable() {
        let vals: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        let p = pool(&refs);
        let h = auto_hierarchy(&p, AttributeKind::Numeric, 3).unwrap();
        for v in 0..10u32 {
            assert_eq!(h.leaf_value(h.leaf(v)), Some(v));
            assert_eq!(h.generalize(v, h.height()), h.root());
            assert!(h.contains(h.root(), v));
        }
    }

    #[test]
    fn single_value_domain_gets_root_above_leaf() {
        let p = pool(&["only"]);
        let h = auto_hierarchy(&p, AttributeKind::Categorical, 2).unwrap();
        assert_eq!(h.n_leaves(), 1);
        assert_eq!(h.height(), 1);
        assert_eq!(h.label(h.root()), "*");
        assert_eq!(h.generalize(0, 1), h.root());
    }

    #[test]
    fn empty_pool_rejected() {
        let p = ValuePool::new();
        assert_eq!(
            auto_hierarchy(&p, AttributeKind::Categorical, 2).unwrap_err(),
            HierarchyError::Empty
        );
    }

    #[test]
    fn fanout_below_two_is_clamped() {
        let p = pool(&["a", "b", "c"]);
        let h = auto_hierarchy(&p, AttributeKind::Categorical, 0).unwrap();
        assert_eq!(h.n_leaves(), 3);
        assert!(h.height() >= 2);
    }

    #[test]
    fn uneven_domain_sizes_partition_fully() {
        for n in [2usize, 3, 5, 7, 13, 100] {
            let vals: Vec<String> = (0..n).map(|i| format!("x{i:03}")).collect();
            let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
            let p = pool(&refs);
            let h = auto_hierarchy(&p, AttributeKind::Categorical, 4).unwrap();
            assert_eq!(h.n_leaves(), n, "n={n}");
            assert_eq!(h.leaf_count(h.root()), n, "n={n}");
        }
    }

    #[test]
    fn non_numeric_strays_sort_after_numbers() {
        let p = pool(&["n/a", "5", "2"]);
        let h = auto_hierarchy(&p, AttributeKind::Numeric, 2).unwrap();
        let order: Vec<&str> = h.leaves_under(h.root()).map(|v| p.resolve(v)).collect();
        assert_eq!(order, vec!["2", "5", "n/a"]);
    }
}
