//! # secreta-hierarchy
//!
//! Generalization hierarchies for SECRETA-rs.
//!
//! A [`Hierarchy`] is a rooted tree whose leaves are the domain values
//! of one attribute (relational values or transaction items). Interior
//! nodes are *generalized values*: replacing a leaf by an ancestor is
//! the value transformation all hierarchy-based algorithms in the
//! paper perform (Incognito, Top-down, Full-subtree bottom-up,
//! Apriori/LRA/VPA).
//!
//! The paper's Configuration Editor lets hierarchies be "uploaded from
//! a file, or automatically derived from the data, using the
//! algorithms in \[7\]/\[10\]" — both paths exist here:
//!
//! * [`io`] reads/writes the leaf-to-root path CSV format,
//! * [`build`] derives balanced hierarchies automatically
//!   (categorical fan-out grouping and numeric interval trees).
//!
//! Leaves are indexed by the attribute's interned value ids, so a
//! hierarchy is always constructed against a concrete
//! [`secreta_data::ValuePool`] ordering.

pub mod build;
pub mod cut;
pub mod io;
pub mod tree;

pub use build::auto_hierarchy;
pub use cut::Cut;
pub use tree::{Hierarchy, HierarchyBuilder, HierarchyError, NodeId};
