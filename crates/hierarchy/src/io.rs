//! Hierarchy file format.
//!
//! One line per leaf, listing the full generalization path from the
//! leaf to the root, delimiter-separated (`;` by default — values may
//! contain commas):
//!
//! ```text
//! BSc;{BSc..MSc};*
//! MSc;{BSc..MSc};*
//! PhD;{PhD..PhD};*
//! ```
//!
//! This is the format the Configuration Editor loads ("the user will
//! load a predefined hierarchy from a file") and the Data Export
//! Module writes.

use crate::tree::{Hierarchy, HierarchyBuilder, HierarchyError, NodeId};
use secreta_data::hash::FxHashMap;
use secreta_data::ValuePool;
use std::io::{BufRead, BufReader, Read, Write};

/// Default intra-line delimiter.
pub const DEFAULT_DELIMITER: char = ';';

/// Parse a hierarchy for the values of `pool` from `reader`.
///
/// Every value in `pool` must appear as the first field of exactly one
/// line; interior nodes are identified by their *path from the root*,
/// so equal labels in different branches stay distinct nodes. Leaves
/// that do not occur in `pool` are skipped — taxonomy files routinely
/// cover a superset of the values a concrete dataset contains.
pub fn read_hierarchy<R: Read>(
    reader: R,
    pool: &ValuePool,
    delimiter: char,
) -> Result<Hierarchy, HierarchyError> {
    // (file line number, leaf value id, path fields)
    let mut paths: Vec<(usize, u32, Vec<String>)> = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| HierarchyError::Parse {
            line: lineno + 1,
            message: e.to_string(),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<String> = line.split(delimiter).map(|s| s.trim().to_owned()).collect();
        if fields.len() < 2 {
            return Err(HierarchyError::Parse {
                line: lineno + 1,
                message: "a path needs at least a leaf and a root".into(),
            });
        }
        // leaves outside the pool belong to the taxonomy, not the data
        let Some(value) = pool.get(&fields[0]) else {
            continue;
        };
        paths.push((lineno + 1, value, fields));
    }
    let Some((_, _, first_path)) = paths.first() else {
        return Err(HierarchyError::Empty);
    };

    // All paths must share the same root label. Every path has ≥ 2
    // fields (checked above), so `last()` cannot fail.
    let root_label = first_path.last().cloned().unwrap_or_default();
    for (lineno, _, p) in &paths {
        if p.last() != Some(&root_label) {
            return Err(HierarchyError::Parse {
                line: *lineno,
                message: format!("all paths must end at the same root ({root_label:?})"),
            });
        }
    }

    let mut b = HierarchyBuilder::new();
    let root = b.add_node(&root_label, None);
    // key: path-from-root joined with '\u{0}' (cannot appear in fields
    // after trimming a delimiter-split) -> node id
    let mut interior: FxHashMap<String, NodeId> = FxHashMap::default();
    interior.insert(root_label.clone(), root);

    for (_, value, path) in &paths {
        // walk from root (last field) towards the leaf (first field)
        let mut parent = root;
        let mut key = root_label.clone();
        for field in path.iter().rev().skip(1).take(path.len().saturating_sub(2)) {
            key.push('\u{0}');
            key.push_str(field);
            parent = *interior
                .entry(key.clone())
                .or_insert_with(|| b.add_node(field, Some(parent)));
        }
        b.add_leaf(&path[0], parent, *value);
    }

    b.build(pool.len())
}

/// Serialize `hierarchy` in the path format, one line per leaf in
/// value-id order.
pub fn write_hierarchy<W: Write>(
    hierarchy: &Hierarchy,
    writer: &mut W,
    delimiter: char,
) -> std::io::Result<()> {
    for v in 0..hierarchy.n_leaves() as u32 {
        let path = hierarchy.path_to_root(v);
        writeln!(writer, "{}", path.join(&delimiter.to_string()))?;
    }
    Ok(())
}

/// Read a hierarchy from a file path. I/O failures (missing file,
/// permissions) surface as [`HierarchyError::Io`] carrying the path;
/// malformed content keeps its line-numbered [`HierarchyError::Parse`].
pub fn read_hierarchy_path(
    path: impl AsRef<std::path::Path>,
    pool: &ValuePool,
    delimiter: char,
) -> Result<Hierarchy, HierarchyError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| HierarchyError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    read_hierarchy(file, pool, delimiter)
}

/// Write a hierarchy to a file path.
pub fn write_hierarchy_path(
    hierarchy: &Hierarchy,
    path: impl AsRef<std::path::Path>,
    delimiter: char,
) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_hierarchy(hierarchy, &mut file, delimiter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::AttributeKind;

    fn pool(values: &[&str]) -> ValuePool {
        let mut p = ValuePool::new();
        for v in values {
            p.intern(v);
        }
        p
    }

    const SAMPLE: &str = "\
BSc;Uni;*
MSc;Uni;*
PhD;Uni;*
HS;School;*
Primary;School;*
";

    #[test]
    fn read_builds_expected_tree() {
        let p = pool(&["BSc", "MSc", "PhD", "HS", "Primary"]);
        let h = read_hierarchy(SAMPLE.as_bytes(), &p, ';').unwrap();
        assert_eq!(h.n_leaves(), 5);
        assert_eq!(h.height(), 2);
        let uni = h.node_by_label("Uni").unwrap();
        assert_eq!(h.leaf_count(uni), 3);
        assert!(h.contains(uni, p.get("MSc").unwrap()));
        assert!(!h.contains(uni, p.get("HS").unwrap()));
    }

    #[test]
    fn roundtrip() {
        let p = pool(&["BSc", "MSc", "PhD", "HS", "Primary"]);
        let h = read_hierarchy(SAMPLE.as_bytes(), &p, ';').unwrap();
        let mut buf = Vec::new();
        write_hierarchy(&h, &mut buf, ';').unwrap();
        let h2 = read_hierarchy(buf.as_slice(), &p, ';').unwrap();
        assert_eq!(h.n_nodes(), h2.n_nodes());
        assert_eq!(h.height(), h2.height());
        for v in 0..5u32 {
            assert_eq!(h.path_to_root(v), h2.path_to_root(v));
        }
    }

    #[test]
    fn same_label_in_different_branches_stays_distinct() {
        // "Other" appears under both A and B; they must not merge.
        let src = "a1;Other;A;*\nb1;Other;B;*\n";
        let p = pool(&["a1", "b1"]);
        let h = read_hierarchy(src.as_bytes(), &p, ';').unwrap();
        // two distinct "Other" nodes
        let others: Vec<_> = h.all_nodes().filter(|&n| h.label(n) == "Other").collect();
        assert_eq!(others.len(), 2);
        assert_eq!(h.lca(h.leaf(0), h.leaf(1)), h.root());
    }

    #[test]
    fn unknown_leaves_are_skipped_as_unused_taxonomy() {
        let p = pool(&["BSc"]);
        // MSc is in the taxonomy but absent from this dataset
        let h = read_hierarchy("MSc;Uni;*\nBSc;Uni;*\n".as_bytes(), &p, ';').unwrap();
        assert_eq!(h.n_leaves(), 1);
        assert!(h.node_by_label("Uni").is_some());
        // a file that matches nothing cannot build a hierarchy
        let err = read_hierarchy("MSc;*\n".as_bytes(), &p, ';').unwrap_err();
        assert!(matches!(
            err,
            HierarchyError::Empty | HierarchyError::MissingLeaf(_)
        ));
    }

    #[test]
    fn missing_value_rejected_by_builder() {
        let p = pool(&["BSc", "MSc"]);
        let err = read_hierarchy("BSc;*\n".as_bytes(), &p, ';').unwrap_err();
        assert!(matches!(err, HierarchyError::MissingLeaf(_)));
    }

    #[test]
    fn inconsistent_roots_rejected() {
        let p = pool(&["a", "b"]);
        let err = read_hierarchy("a;*\nb;ROOT\n".as_bytes(), &p, ';').unwrap_err();
        assert!(matches!(err, HierarchyError::Parse { .. }));
    }

    #[test]
    fn inconsistent_root_reports_the_file_line() {
        // blank lines and taxonomy-only leaves sit between the good
        // path and the bad one: the error must name the file line of
        // the offending path, not its index among the kept paths
        let p = pool(&["a", "b"]);
        let src = "a;*\n\nskipped;*\nb;ROOT\n";
        let err = read_hierarchy(src.as_bytes(), &p, ';').unwrap_err();
        assert_eq!(
            err,
            HierarchyError::Parse {
                line: 4,
                message: "all paths must end at the same root (\"*\")".into()
            }
        );
    }

    #[test]
    fn missing_file_is_an_io_error_with_the_path() {
        let p = pool(&["a"]);
        let err = read_hierarchy_path("/nonexistent/h.csv", &p, ';').unwrap_err();
        match err {
            HierarchyError::Io { path, .. } => {
                assert_eq!(path, std::path::PathBuf::from("/nonexistent/h.csv"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn short_line_rejected() {
        let p = pool(&["a"]);
        let err = read_hierarchy("a\n".as_bytes(), &p, ';').unwrap_err();
        assert!(matches!(err, HierarchyError::Parse { .. }));
    }

    #[test]
    fn empty_file_rejected() {
        let p = pool(&["a"]);
        assert_eq!(
            read_hierarchy("".as_bytes(), &p, ';').unwrap_err(),
            HierarchyError::Empty
        );
    }

    #[test]
    fn generated_hierarchy_roundtrips_through_file_format() {
        let vals: Vec<String> = (0..17).map(|i| format!("{i}")).collect();
        let refs: Vec<&str> = vals.iter().map(String::as_str).collect();
        let p = pool(&refs);
        let h = crate::build::auto_hierarchy(&p, AttributeKind::Numeric, 3).unwrap();
        let mut buf = Vec::new();
        write_hierarchy(&h, &mut buf, ';').unwrap();
        let h2 = read_hierarchy(buf.as_slice(), &p, ';').unwrap();
        assert_eq!(h.n_nodes(), h2.n_nodes());
        for v in 0..17u32 {
            assert_eq!(h.path_to_root(v), h2.path_to_root(v));
        }
    }

    #[test]
    fn blank_lines_ignored() {
        let p = pool(&["a", "b"]);
        let h = read_hierarchy("a;*\n\nb;*\n".as_bytes(), &p, ';').unwrap();
        assert_eq!(h.n_leaves(), 2);
    }
}
