//! Hierarchy cuts — the state of full-subtree recoding.
//!
//! A *cut* is an antichain of hierarchy nodes covering every leaf;
//! full-subtree global recoding maps each value to the unique cut node
//! above it. Top-down specialization moves the cut towards the leaves;
//! bottom-up generalization moves it towards the root.

use crate::tree::{Hierarchy, NodeId};

/// A cut through one attribute's hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Cut node of each leaf value (index = value id).
    of_value: Vec<NodeId>,
    /// Distinct nodes in the cut (kept sorted for deterministic
    /// iteration).
    nodes: Vec<NodeId>,
}

impl Cut {
    /// The most specific cut: every leaf maps to itself.
    pub fn leaves(h: &Hierarchy) -> Cut {
        let of_value: Vec<NodeId> = (0..h.n_leaves() as u32).map(|v| h.leaf(v)).collect();
        let mut nodes = of_value.clone();
        nodes.sort_unstable();
        nodes.dedup();
        Cut { of_value, nodes }
    }

    /// The most general cut: every leaf maps to the root.
    pub fn root(h: &Hierarchy) -> Cut {
        Cut {
            of_value: vec![h.root(); h.n_leaves()],
            nodes: vec![h.root()],
        }
    }

    /// Cut node of value `v`.
    #[inline]
    pub fn node_of(&self, v: u32) -> NodeId {
        self.of_value[v as usize]
    }

    /// Distinct cut nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Is `node` currently in the cut?
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Generalize: every leaf under `target` now maps to `target`; cut
    /// nodes strictly below it leave the cut. `target` must be above
    /// (or equal to) the current cut everywhere in its subtree, which
    /// is automatic when it is chosen as the parent of a cut node.
    pub fn generalize_to(&mut self, h: &Hierarchy, target: NodeId) {
        for v in h.leaves_under(target) {
            self.of_value[v as usize] = target;
        }
        self.rebuild_nodes();
    }

    /// Specialize: replace `node` (which must be in the cut and not a
    /// leaf) by its children. Returns false (no-op) otherwise.
    pub fn specialize(&mut self, h: &Hierarchy, node: NodeId) -> bool {
        if !self.contains(node) || h.is_leaf(node) {
            return false;
        }
        for &child in h.children(node) {
            for v in h.leaves_under(child) {
                self.of_value[v as usize] = child;
            }
        }
        self.rebuild_nodes();
        true
    }

    /// Candidate generalization targets: parents of current cut nodes
    /// (deduplicated, sorted). Applying any of them keeps the cut a
    /// valid antichain.
    pub fn generalization_candidates(&self, h: &Hierarchy) -> Vec<NodeId> {
        let mut parents: Vec<NodeId> = self.nodes.iter().filter_map(|&n| h.parent(n)).collect();
        parents.sort_unstable();
        parents.dedup();
        parents
    }

    /// Candidate specializations: non-leaf cut nodes.
    pub fn specialization_candidates(&self, h: &Hierarchy) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|&n| !h.is_leaf(n))
            .collect()
    }

    /// Is this the fully generalized cut?
    pub fn is_root(&self, h: &Hierarchy) -> bool {
        self.nodes == [h.root()]
    }

    /// Weighted NCP of publishing under this cut, given per-value
    /// record counts: `Σ_v count(v) · ncp(node_of(v)) / Σ_v count(v)`.
    pub fn weighted_ncp(&self, h: &Hierarchy, counts: &[u64]) -> f64 {
        debug_assert_eq!(counts.len(), self.of_value.len());
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .of_value
            .iter()
            .zip(counts)
            .map(|(&n, &c)| h.ncp(n) * c as f64)
            .sum();
        sum / total as f64
    }

    fn rebuild_nodes(&mut self) {
        let mut nodes = self.of_value.clone();
        nodes.sort_unstable();
        nodes.dedup();
        self.nodes = nodes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::auto_hierarchy;
    use secreta_data::{AttributeKind, ValuePool};

    fn hierarchy(n: usize) -> Hierarchy {
        let mut p = ValuePool::new();
        for i in 0..n {
            p.intern(&format!("v{i:02}"));
        }
        auto_hierarchy(&p, AttributeKind::Categorical, 2).unwrap()
    }

    #[test]
    fn leaves_and_root_cuts() {
        let h = hierarchy(8);
        let leaves = Cut::leaves(&h);
        assert_eq!(leaves.nodes().len(), 8);
        assert!(!leaves.is_root(&h));
        for v in 0..8u32 {
            assert_eq!(leaves.node_of(v), h.leaf(v));
        }
        let root = Cut::root(&h);
        assert!(root.is_root(&h));
        assert_eq!(root.nodes().len(), 1);
    }

    #[test]
    fn generalize_collapses_subtree() {
        let h = hierarchy(8);
        let mut cut = Cut::leaves(&h);
        let parent = h.parent(h.leaf(0)).unwrap();
        cut.generalize_to(&h, parent);
        let covered: Vec<u32> = h.leaves_under(parent).collect();
        for &v in &covered {
            assert_eq!(cut.node_of(v), parent);
        }
        assert_eq!(cut.nodes().len(), 8 - covered.len() + 1);
        assert!(cut.contains(parent));
    }

    #[test]
    fn specialize_undoes_generalize() {
        let h = hierarchy(8);
        let mut cut = Cut::leaves(&h);
        let parent = h.parent(h.leaf(0)).unwrap();
        cut.generalize_to(&h, parent);
        assert!(cut.specialize(&h, parent));
        assert_eq!(cut, Cut::leaves(&h));
    }

    #[test]
    fn specialize_rejects_leaves_and_non_cut_nodes() {
        let h = hierarchy(4);
        let mut cut = Cut::leaves(&h);
        assert!(!cut.specialize(&h, h.leaf(0)));
        assert!(!cut.specialize(&h, h.root()));
    }

    #[test]
    fn root_cut_specializes_to_children() {
        let h = hierarchy(4);
        let mut cut = Cut::root(&h);
        assert!(cut.specialize(&h, h.root()));
        assert_eq!(cut.nodes().len(), h.children(h.root()).len());
        assert!(!cut.is_root(&h));
    }

    #[test]
    fn candidates() {
        let h = hierarchy(8);
        let cut = Cut::leaves(&h);
        let gens = cut.generalization_candidates(&h);
        assert_eq!(gens.len(), 4, "8 leaves under fanout-2 parents");
        assert!(cut.specialization_candidates(&h).is_empty());

        let root = Cut::root(&h);
        assert_eq!(root.generalization_candidates(&h), vec![]);
        assert_eq!(root.specialization_candidates(&h), vec![h.root()]);
    }

    #[test]
    fn weighted_ncp_scales_with_counts() {
        let h = hierarchy(4);
        let mut cut = Cut::leaves(&h);
        assert_eq!(cut.weighted_ncp(&h, &[5, 5, 5, 5]), 0.0);
        let parent = h.parent(h.leaf(0)).unwrap();
        cut.generalize_to(&h, parent);
        // two leaves under parent pay ncp(parent) = 1/3
        let w_all = cut.weighted_ncp(&h, &[1, 1, 1, 1]);
        assert!((w_all - (2.0 / 4.0) * (1.0 / 3.0)).abs() < 1e-12);
        // weight concentrated on unaffected leaves -> ncp 0
        let unaffected: Vec<u64> = (0..4u32)
            .map(|v| if cut.node_of(v) == parent { 0 } else { 10 })
            .collect();
        assert_eq!(cut.weighted_ncp(&h, &unaffected), 0.0);
        assert_eq!(cut.weighted_ncp(&h, &[0, 0, 0, 0]), 0.0);
    }
}
