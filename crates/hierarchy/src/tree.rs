//! Arena-allocated generalization tree.
//!
//! Leaves correspond 1:1 to the interned value ids (`0..n_leaves`) of
//! the attribute the hierarchy governs. Each node stores the DFS span
//! of leaves below it, so subset/containment tests, `leaf_count` and
//! NCP are O(1). LCA queries are answered in O(1) from an Euler tour
//! plus a sparse table (depth range-minimum), built once at
//! construction; the information-loss penalty of every node is also
//! precomputed, so the `ncp(lca(a, b))` kernel at the heart of the
//! clustering algorithms costs two array reads.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within its [`Hierarchy`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors raised while building or validating hierarchies.
#[derive(Debug, PartialEq, Eq)]
pub enum HierarchyError {
    /// A leaf value id is missing from the hierarchy.
    MissingLeaf(u32),
    /// Two leaves carry the same value id.
    DuplicateLeaf(u32),
    /// The builder produced a forest or a cycle instead of one tree.
    NotATree(String),
    /// Hierarchy file was malformed.
    Parse { line: usize, message: String },
    /// Reading or writing a hierarchy file failed at the I/O layer.
    Io {
        path: std::path::PathBuf,
        message: String,
    },
    /// The hierarchy has no nodes.
    Empty,
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::MissingLeaf(v) => {
                write!(f, "value id {v} has no leaf in the hierarchy")
            }
            HierarchyError::DuplicateLeaf(v) => {
                write!(f, "value id {v} appears as two different leaves")
            }
            HierarchyError::NotATree(msg) => write!(f, "not a tree: {msg}"),
            HierarchyError::Parse { line, message } => {
                write!(f, "hierarchy file line {line}: {message}")
            }
            HierarchyError::Io { path, message } => {
                write!(f, "hierarchy file {}: {message}", path.display())
            }
            HierarchyError::Empty => write!(f, "hierarchy has no nodes"),
        }
    }
}

impl std::error::Error for HierarchyError {}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    label: String,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Leaf value id when this node is a leaf.
    leaf: Option<u32>,
    /// Depth from the root (root = 0).
    depth: u32,
    /// DFS leaf span `[lo, hi)` of leaves below (inclusive of self for
    /// leaves).
    span: (u32, u32),
}

/// An immutable generalization hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hierarchy {
    nodes: Vec<Node>,
    root: NodeId,
    /// Leaf node per value id (`leaf_of[v]` is the node whose
    /// `leaf == v`).
    leaf_of: Vec<NodeId>,
    /// DFS position of each value id's leaf.
    leaf_pos: Vec<u32>,
    /// Value id at each DFS position (inverse of `leaf_pos`).
    pos_leaf: Vec<u32>,
    height: u32,
    /// Euler tour of the tree: node at each tour step (2n-1 steps).
    euler: Vec<u32>,
    /// First tour step at which each node appears.
    first_visit: Vec<u32>,
    /// Sparse table over the tour for O(1) depth range-minimum:
    /// `rmq[k][i]` is the tour step of the shallowest node in the
    /// window `[i, i + 2^k)`; ties keep the leftmost step.
    rmq: Vec<Vec<u32>>,
    /// Precomputed `ncp()` per node.
    ncp_of: Vec<f64>,
}

impl Hierarchy {
    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes (leaves + interior).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves (= attribute domain size).
    pub fn n_leaves(&self) -> usize {
        self.leaf_of.len()
    }

    /// Tree height: maximum leaf depth (root at depth 0). A hierarchy
    /// of bare leaves under a root has height 1.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Display label of `node`.
    pub fn label(&self, node: NodeId) -> &str {
        &self.nodes[node.index()].label
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.nodes[node.index()].parent
    }

    /// Children of `node` (empty for leaves).
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.nodes[node.index()].children
    }

    /// Depth of `node` from the root (root = 0).
    pub fn depth(&self, node: NodeId) -> u32 {
        self.nodes[node.index()].depth
    }

    /// True when `node` is a leaf.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.nodes[node.index()].leaf.is_some()
    }

    /// The value id of a leaf node, `None` for interior nodes.
    pub fn leaf_value(&self, node: NodeId) -> Option<u32> {
        self.nodes[node.index()].leaf
    }

    /// The leaf node of value id `value`.
    #[inline]
    pub fn leaf(&self, value: u32) -> NodeId {
        self.leaf_of[value as usize]
    }

    /// Number of leaves below `node` (1 for leaves).
    #[inline]
    pub fn leaf_count(&self, node: NodeId) -> usize {
        let (lo, hi) = self.nodes[node.index()].span;
        (hi - lo) as usize
    }

    /// Does the subtree of `node` contain the leaf of value `value`?
    #[inline]
    pub fn contains(&self, node: NodeId, value: u32) -> bool {
        let (lo, hi) = self.nodes[node.index()].span;
        let pos = self.leaf_pos[value as usize];
        lo <= pos && pos < hi
    }

    /// Value ids of all leaves below `node`, in DFS order.
    pub fn leaves_under(&self, node: NodeId) -> impl Iterator<Item = u32> + '_ {
        let (lo, hi) = self.nodes[node.index()].span;
        (lo..hi).map(move |p| self.pos_leaf[p as usize])
    }

    /// Is `anc` an ancestor of (or equal to) `node`?
    pub fn is_ancestor_or_self(&self, anc: NodeId, node: NodeId) -> bool {
        let (alo, ahi) = self.nodes[anc.index()].span;
        let (nlo, nhi) = self.nodes[node.index()].span;
        alo <= nlo && nhi <= ahi && self.depth(anc) <= self.depth(node)
    }

    /// Lowest common ancestor of two nodes, in O(1).
    ///
    /// Answers a depth range-minimum query on the Euler tour between
    /// the nodes' first visits. The shallowest node on that tour
    /// segment is unique (leaving the LCA's subtree is impossible
    /// without stepping above it), so no tie-breaking is needed.
    #[inline]
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        if a == b {
            return a;
        }
        let (mut i, mut j) = (
            self.first_visit[a.index()] as usize,
            self.first_visit[b.index()] as usize,
        );
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let k = (j - i + 1).ilog2() as usize;
        let left = self.rmq[k][i];
        let right = self.rmq[k][j + 1 - (1usize << k)];
        let best = if self.depth_at_step(right) < self.depth_at_step(left) {
            right
        } else {
            left
        };
        NodeId(self.euler[best as usize])
    }

    #[inline]
    fn depth_at_step(&self, step: u32) -> u32 {
        self.nodes[self.euler[step as usize] as usize].depth
    }

    /// Lowest common ancestor by walking parent pointers — O(height).
    ///
    /// The pre-Euler-tour implementation, kept as an independently
    /// correct reference for property tests and kernel benchmarks.
    pub fn lca_walk(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a).expect("deeper node has a parent");
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b).expect("deeper node has a parent");
        }
        while a != b {
            a = self.parent(a).expect("non-root differs from sibling");
            b = self.parent(b).expect("non-root differs from sibling");
        }
        a
    }

    /// Lowest common ancestor of the leaves of a set of value ids.
    /// Returns `None` for an empty set.
    pub fn lca_of_values(&self, values: impl IntoIterator<Item = u32>) -> Option<NodeId> {
        let mut it = values.into_iter();
        let first = self.leaf(it.next()?);
        Some(it.fold(first, |acc, v| self.lca(acc, self.leaf(v))))
    }

    /// Ancestor of `node` exactly `steps` levels up, clamped at the
    /// root. `steps == 0` returns `node`.
    pub fn ancestor_up(&self, node: NodeId, steps: u32) -> NodeId {
        let mut n = node;
        for _ in 0..steps {
            match self.parent(n) {
                Some(p) => n = p,
                None => break,
            }
        }
        n
    }

    /// Full-domain generalization of value `value` to level `level`
    /// (0 = original value, `height()` = root). For unbalanced trees a
    /// leaf shallower than `level` clamps at the root, matching the
    /// conventional leaf-padding semantics of full-domain recoding.
    pub fn generalize(&self, value: u32, level: u32) -> NodeId {
        self.ancestor_up(self.leaf(value), level)
    }

    /// Full-domain recode table of `level`: entry `v` is
    /// [`Hierarchy::generalize`]`(v, level)` for every value id in the
    /// domain. Computed with one parent step per level over the whole
    /// table instead of a per-value ancestor walk, so exporting all
    /// levels of a hierarchy costs O(height · n_leaves). Values whose
    /// leaves sit shallower than `level` clamp at the root, matching
    /// [`Hierarchy::generalize`]. The relational counting kernels
    /// precompute these tables once per run and never call
    /// `generalize` in a hot loop.
    pub fn level_table(&self, level: u32) -> Vec<NodeId> {
        let mut table = self.leaf_of.clone();
        for _ in 0..level {
            for n in table.iter_mut() {
                if let Some(p) = self.parent(*n) {
                    *n = p;
                }
            }
        }
        table
    }

    /// Normalized Certainty Penalty of publishing `node` instead of a
    /// leaf: `(leaves(node) - 1) / (n_leaves - 1)`; 0 for leaves and
    /// for degenerate single-value domains, 1 for the root.
    /// Precomputed at construction — a single array read.
    #[inline]
    pub fn ncp(&self, node: NodeId) -> f64 {
        self.ncp_of[node.index()]
    }

    /// First node carrying `label` in arena order (labels are unique in
    /// auto-generated hierarchies but files may repeat them).
    pub fn node_by_label(&self, label: &str) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| n.label == label)
            .map(|i| NodeId(i as u32))
    }

    /// All nodes at depth `d`, in DFS-span order.
    pub fn nodes_at_depth(&self, d: u32) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.depth(n) == d)
            .collect();
        v.sort_by_key(|n| self.nodes[n.index()].span.0);
        v
    }

    /// Iterate every node id.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Path of labels from a leaf value to the root (inclusive).
    pub fn path_to_root(&self, value: u32) -> Vec<&str> {
        let mut path = Vec::new();
        let mut n = Some(self.leaf(value));
        while let Some(node) = n {
            path.push(self.label(node));
            n = self.parent(node);
        }
        path
    }
}

/// Incremental builder for [`Hierarchy`].
#[derive(Debug, Default)]
pub struct HierarchyBuilder {
    labels: Vec<String>,
    parents: Vec<Option<NodeId>>,
    leaves: Vec<Option<u32>>,
}

impl HierarchyBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; `parent` must already exist. Returns its id.
    pub fn add_node(&mut self, label: &str, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.labels.len() as u32);
        self.labels.push(label.to_owned());
        self.parents.push(parent);
        self.leaves.push(None);
        id
    }

    /// Add a leaf for value id `value` under `parent`.
    pub fn add_leaf(&mut self, label: &str, parent: NodeId, value: u32) -> NodeId {
        let id = self.add_node(label, Some(parent));
        self.leaves[id.index()] = Some(value);
        id
    }

    /// Validate and freeze. `n_values` is the attribute's domain size;
    /// every value id in `0..n_values` must appear exactly once as a
    /// leaf.
    pub fn build(self, n_values: usize) -> Result<Hierarchy, HierarchyError> {
        if self.labels.is_empty() {
            return Err(HierarchyError::Empty);
        }
        let n = self.labels.len();

        // find the root, reject forests
        let mut root = None;
        for (i, p) in self.parents.iter().enumerate() {
            if p.is_none() {
                if root.is_some() {
                    return Err(HierarchyError::NotATree("multiple parentless nodes".into()));
                }
                root = Some(NodeId(i as u32));
            }
        }
        let root = root.ok_or_else(|| HierarchyError::NotATree("no root".into()))?;

        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, p) in self.parents.iter().enumerate() {
            if let Some(p) = p {
                if p.index() >= n {
                    return Err(HierarchyError::NotATree(format!(
                        "node {i} references unknown parent {p}"
                    )));
                }
                children[p.index()].push(NodeId(i as u32));
            }
        }

        // leaf coverage
        let mut leaf_of = vec![None; n_values];
        for (i, l) in self.leaves.iter().enumerate() {
            if let Some(v) = l {
                let v = *v;
                if v as usize >= n_values {
                    return Err(HierarchyError::NotATree(format!(
                        "leaf value id {v} exceeds domain size {n_values}"
                    )));
                }
                if leaf_of[v as usize].is_some() {
                    return Err(HierarchyError::DuplicateLeaf(v));
                }
                if !children[i].is_empty() {
                    return Err(HierarchyError::NotATree(format!(
                        "leaf node {i} has children"
                    )));
                }
                leaf_of[v as usize] = Some(NodeId(i as u32));
            }
        }
        for (v, l) in leaf_of.iter().enumerate() {
            if l.is_none() {
                return Err(HierarchyError::MissingLeaf(v as u32));
            }
        }
        let leaf_of: Vec<NodeId> = leaf_of.into_iter().map(Option::unwrap).collect();

        // Interior nodes with no leaf below are tolerated only if they
        // have children; childless interior nodes are dead weight and
        // indicate a malformed file.
        for (i, ch) in children.iter().enumerate() {
            if self.leaves[i].is_none() && ch.is_empty() {
                return Err(HierarchyError::NotATree(format!(
                    "interior node {:?} has no children",
                    self.labels[i]
                )));
            }
        }

        // iterative DFS computing depth + spans, detecting cycles via
        // visit counting
        let mut depth = vec![0u32; n];
        let mut span = vec![(0u32, 0u32); n];
        let mut leaf_pos = vec![0u32; n_values];
        let mut pos_leaf = vec![0u32; n_values];
        let mut next_pos = 0u32;
        let mut visited = 0usize;
        let mut height = 0u32;

        // stack of (node, child_cursor)
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        visited += 1;
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let ni = node.index();
            if *cursor == 0 {
                // entering
                if let Some(v) = self.leaves[ni] {
                    span[ni] = (next_pos, next_pos + 1);
                    leaf_pos[v as usize] = next_pos;
                    pos_leaf[next_pos as usize] = v;
                    next_pos += 1;
                    height = height.max(depth[ni]);
                    stack.pop();
                    continue;
                }
                span[ni].0 = next_pos;
            }
            if *cursor < children[ni].len() {
                let child = children[ni][*cursor];
                *cursor += 1;
                depth[child.index()] = depth[ni] + 1;
                visited += 1;
                if visited > n {
                    return Err(HierarchyError::NotATree("cycle detected".into()));
                }
                stack.push((child, 0));
            } else {
                span[ni].1 = next_pos;
                stack.pop();
            }
        }
        if visited != n {
            return Err(HierarchyError::NotATree(format!(
                "{} of {} nodes reachable from root",
                visited, n
            )));
        }

        let nodes: Vec<Node> = children
            .iter_mut()
            .enumerate()
            .map(|(i, ch)| Node {
                label: self.labels[i].clone(),
                parent: self.parents[i],
                children: std::mem::take(ch),
                leaf: self.leaves[i],
                depth: depth[i],
                span: span[i],
            })
            .collect();

        let (euler, first_visit, rmq) = build_lca_tables(&nodes, root);
        let ncp_of = build_ncp_table(&nodes, n_values);

        Ok(Hierarchy {
            nodes,
            root,
            leaf_of,
            leaf_pos,
            pos_leaf,
            height,
            euler,
            first_visit,
            rmq,
            ncp_of,
        })
    }
}

/// Euler tour + sparse table for O(1) LCA queries.
///
/// The tour visits a node once on entry and again after each child's
/// subtree (2n-1 steps for n nodes); an LCA query becomes a depth
/// range-minimum over the tour segment between the two nodes' first
/// visits. The sparse table answers that in O(1) with
/// O(n log n) u32s of storage.
fn build_lca_tables(nodes: &[Node], root: NodeId) -> (Vec<u32>, Vec<u32>, Vec<Vec<u32>>) {
    let n = nodes.len();
    let mut euler: Vec<u32> = Vec::with_capacity(2 * n - 1);
    let mut first_visit = vec![u32::MAX; n];

    // iterative tour: (node, next-child cursor)
    let mut stack: Vec<(u32, usize)> = vec![(root.0, 0)];
    while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
        let ni = node as usize;
        if *cursor == 0 {
            first_visit[ni] = euler.len() as u32;
        }
        euler.push(node);
        if *cursor < nodes[ni].children.len() {
            let child = nodes[ni].children[*cursor];
            *cursor += 1;
            stack.push((child.0, 0));
        } else {
            stack.pop();
        }
    }

    let m = euler.len();
    let levels = if m <= 1 { 1 } else { m.ilog2() as usize + 1 };
    let mut rmq: Vec<Vec<u32>> = Vec::with_capacity(levels);
    rmq.push((0..m as u32).collect());
    let mut k = 1usize;
    while (1usize << k) <= m {
        let half = 1usize << (k - 1);
        let prev = &rmq[k - 1];
        let mut row = Vec::with_capacity(m + 1 - (1 << k));
        for i in 0..=m - (1 << k) {
            let a = prev[i];
            let b = prev[i + half];
            // ties keep the leftmost step
            let da = nodes[euler[a as usize] as usize].depth;
            let db = nodes[euler[b as usize] as usize].depth;
            row.push(if db < da { b } else { a });
        }
        rmq.push(row);
        k += 1;
    }

    (euler, first_visit, rmq)
}

/// NCP of every node, precomputed with the same formula as the old
/// on-demand implementation: `(leaves(node) - 1) / (n_leaves - 1)`.
fn build_ncp_table(nodes: &[Node], n_values: usize) -> Vec<f64> {
    if n_values <= 1 {
        return vec![0.0; nodes.len()];
    }
    let denom = (n_values - 1) as f64;
    nodes
        .iter()
        .map(|node| {
            let leaves = (node.span.1 - node.span.0) as usize;
            (leaves - 1) as f64 / denom
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root
    /// ├── A: a0 a1
    /// └── B: b0 b1 b2
    /// with value ids interleaved: a0=0, b0=1, a1=2, b1=3, b2=4
    fn sample() -> Hierarchy {
        let mut b = HierarchyBuilder::new();
        let root = b.add_node("*", None);
        let a = b.add_node("A", Some(root));
        let bb = b.add_node("B", Some(root));
        b.add_leaf("a0", a, 0);
        b.add_leaf("a1", a, 2);
        b.add_leaf("b0", bb, 1);
        b.add_leaf("b1", bb, 3);
        b.add_leaf("b2", bb, 4);
        b.build(5).unwrap()
    }

    #[test]
    fn structure_queries() {
        let h = sample();
        assert_eq!(h.n_leaves(), 5);
        assert_eq!(h.n_nodes(), 8);
        assert_eq!(h.height(), 2);
        assert_eq!(h.label(h.root()), "*");
        assert_eq!(h.leaf_count(h.root()), 5);
        let a = h.node_by_label("A").unwrap();
        assert_eq!(h.leaf_count(a), 2);
        assert_eq!(h.depth(a), 1);
        assert!(!h.is_leaf(a));
        assert!(h.is_leaf(h.leaf(0)));
        assert_eq!(h.leaf_value(h.leaf(3)), Some(3));
    }

    #[test]
    fn containment_respects_interleaved_ids() {
        let h = sample();
        let a = h.node_by_label("A").unwrap();
        let b = h.node_by_label("B").unwrap();
        assert!(h.contains(a, 0));
        assert!(h.contains(a, 2));
        assert!(!h.contains(a, 1));
        assert!(h.contains(b, 1));
        assert!(h.contains(b, 4));
        assert!(!h.contains(b, 2));
        assert!(h.contains(h.root(), 3));
        let under_a: Vec<u32> = h.leaves_under(a).collect();
        assert_eq!(under_a, vec![0, 2]);
        let under_b: Vec<u32> = h.leaves_under(b).collect();
        assert_eq!(under_b, vec![1, 3, 4]);
    }

    #[test]
    fn lca_and_ancestry() {
        let h = sample();
        let a = h.node_by_label("A").unwrap();
        let b = h.node_by_label("B").unwrap();
        assert_eq!(h.lca(h.leaf(0), h.leaf(2)), a);
        assert_eq!(h.lca(h.leaf(0), h.leaf(1)), h.root());
        assert_eq!(h.lca(a, h.leaf(2)), a);
        assert_eq!(h.lca_of_values([1, 3, 4]), Some(b));
        assert_eq!(h.lca_of_values([1, 2]), Some(h.root()));
        assert_eq!(h.lca_of_values(Vec::<u32>::new()), None);
        assert!(h.is_ancestor_or_self(h.root(), a));
        assert!(h.is_ancestor_or_self(a, a));
        assert!(!h.is_ancestor_or_self(a, b));
        assert!(!h.is_ancestor_or_self(h.leaf(0), a));
    }

    #[test]
    fn euler_lca_agrees_with_parent_walk() {
        let h = sample();
        for a in h.all_nodes() {
            for b in h.all_nodes() {
                assert_eq!(h.lca(a, b), h.lca_walk(a, b), "lca({a}, {b})");
            }
        }
    }

    #[test]
    fn euler_lca_on_single_node_tree() {
        let mut b = HierarchyBuilder::new();
        let root = b.add_node("*", None);
        b.add_leaf("x", root, 0);
        let h = b.build(1).unwrap();
        assert_eq!(h.lca(h.root(), h.root()), h.root());
        assert_eq!(h.lca(h.leaf(0), h.root()), h.root());
    }

    #[test]
    fn precomputed_ncp_matches_formula() {
        let h = sample();
        for n in h.all_nodes() {
            let expected = (h.leaf_count(n) - 1) as f64 / (h.n_leaves() - 1) as f64;
            assert_eq!(h.ncp(n), expected, "{n}");
        }
    }

    #[test]
    fn generalize_levels() {
        let h = sample();
        assert_eq!(h.generalize(0, 0), h.leaf(0));
        assert_eq!(h.generalize(0, 1), h.node_by_label("A").unwrap());
        assert_eq!(h.generalize(0, 2), h.root());
        // clamps past the root
        assert_eq!(h.generalize(0, 99), h.root());
    }

    #[test]
    fn level_table_matches_generalize() {
        let h = sample();
        for level in 0..=h.height() + 1 {
            let table = h.level_table(level);
            assert_eq!(table.len(), h.n_leaves());
            for v in 0..h.n_leaves() as u32 {
                assert_eq!(
                    table[v as usize],
                    h.generalize(v, level),
                    "v={v} level={level}"
                );
            }
        }
    }

    #[test]
    fn level_table_clamps_unbalanced_leaves() {
        // root -> (deep -> d0), s0: the shallow leaf reaches the root
        // one level before the deep one and stays there
        let mut b = HierarchyBuilder::new();
        let root = b.add_node("*", None);
        let deep = b.add_node("deep", Some(root));
        b.add_leaf("d0", deep, 0);
        b.add_leaf("s0", root, 1);
        let h = b.build(2).unwrap();
        assert_eq!(
            h.level_table(1),
            vec![h.node_by_label("deep").unwrap(), h.root()]
        );
        assert_eq!(h.level_table(2), vec![h.root(), h.root()]);
    }

    #[test]
    fn ncp_values() {
        let h = sample();
        assert_eq!(h.ncp(h.leaf(0)), 0.0);
        assert_eq!(h.ncp(h.root()), 1.0);
        let a = h.node_by_label("A").unwrap();
        assert!((h.ncp(a) - 0.25).abs() < 1e-12); // (2-1)/(5-1)
    }

    #[test]
    fn nodes_at_depth_ordered_by_span() {
        let h = sample();
        let d1 = h.nodes_at_depth(1);
        let labels: Vec<&str> = d1.iter().map(|&n| h.label(n)).collect();
        assert_eq!(labels, vec!["A", "B"]);
        assert_eq!(h.nodes_at_depth(0), vec![h.root()]);
        assert_eq!(h.nodes_at_depth(2).len(), 5);
    }

    #[test]
    fn path_to_root() {
        let h = sample();
        assert_eq!(h.path_to_root(4), vec!["b2", "B", "*"]);
    }

    #[test]
    fn missing_leaf_rejected() {
        let mut b = HierarchyBuilder::new();
        let root = b.add_node("*", None);
        b.add_leaf("x", root, 0);
        assert_eq!(b.build(2).unwrap_err(), HierarchyError::MissingLeaf(1));
    }

    #[test]
    fn duplicate_leaf_rejected() {
        let mut b = HierarchyBuilder::new();
        let root = b.add_node("*", None);
        b.add_leaf("x", root, 0);
        b.add_leaf("y", root, 0);
        assert_eq!(b.build(1).unwrap_err(), HierarchyError::DuplicateLeaf(0));
    }

    #[test]
    fn forest_rejected() {
        let mut b = HierarchyBuilder::new();
        let r1 = b.add_node("r1", None);
        b.add_node("r2", None);
        b.add_leaf("x", r1, 0);
        assert!(matches!(
            b.build(1).unwrap_err(),
            HierarchyError::NotATree(_)
        ));
    }

    #[test]
    fn childless_interior_rejected() {
        let mut b = HierarchyBuilder::new();
        let root = b.add_node("*", None);
        b.add_node("dead", Some(root));
        b.add_leaf("x", root, 0);
        assert!(matches!(
            b.build(1).unwrap_err(),
            HierarchyError::NotATree(_)
        ));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            HierarchyBuilder::new().build(0).unwrap_err(),
            HierarchyError::Empty
        );
    }

    #[test]
    fn single_leaf_domain() {
        let mut b = HierarchyBuilder::new();
        let root = b.add_node("*", None);
        b.add_leaf("only", root, 0);
        let h = b.build(1).unwrap();
        assert_eq!(h.height(), 1);
        assert_eq!(h.ncp(h.root()), 0.0, "degenerate domain has zero NCP");
        assert_eq!(h.generalize(0, 1), h.root());
    }

    #[test]
    fn unbalanced_tree_heights() {
        // root -> (deep -> d0), s0
        let mut b = HierarchyBuilder::new();
        let root = b.add_node("*", None);
        let deep = b.add_node("deep", Some(root));
        b.add_leaf("d0", deep, 0);
        b.add_leaf("s0", root, 1);
        let h = b.build(2).unwrap();
        assert_eq!(h.height(), 2);
        // shallow leaf clamps at root when generalized by 2
        assert_eq!(h.generalize(1, 2), h.root());
        assert_eq!(h.generalize(0, 1), h.node_by_label("deep").unwrap());
    }
}
