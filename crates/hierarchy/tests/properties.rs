//! Property tests of hierarchy and cut invariants.

use proptest::prelude::*;
use secreta_data::{AttributeKind, ValuePool};
use secreta_hierarchy::{auto_hierarchy, Cut};

fn pool_of(n: usize) -> ValuePool {
    let mut p = ValuePool::new();
    for i in 0..n {
        p.intern(&format!("v{i:04}"));
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn auto_hierarchy_structural_invariants(
        n in 1usize..200,
        fanout in 2usize..7,
        numeric in any::<bool>(),
    ) {
        let p = pool_of(n);
        let kind = if numeric { AttributeKind::Numeric } else { AttributeKind::Categorical };
        let h = auto_hierarchy(&p, kind, fanout).unwrap();

        prop_assert_eq!(h.n_leaves(), n);
        prop_assert_eq!(h.leaf_count(h.root()), n);
        // every leaf id maps to a leaf node carrying that id
        for v in 0..n as u32 {
            prop_assert_eq!(h.leaf_value(h.leaf(v)), Some(v));
            prop_assert!(h.contains(h.root(), v));
        }
        // interior nodes partition their children's leaves
        for node in h.all_nodes() {
            if !h.is_leaf(node) {
                let child_sum: usize =
                    h.children(node).iter().map(|&c| h.leaf_count(c)).sum();
                prop_assert_eq!(child_sum, h.leaf_count(node));
                // children's depths = node depth + 1
                for &c in h.children(node) {
                    prop_assert_eq!(h.depth(c), h.depth(node) + 1);
                    prop_assert!(h.is_ancestor_or_self(node, c));
                }
            }
        }
        // ncp grows monotonically towards the root on every leaf path
        for v in (0..n as u32).step_by(1 + n / 16) {
            let mut node = h.leaf(v);
            let mut last = h.ncp(node);
            while let Some(parent) = h.parent(node) {
                let ncp = h.ncp(parent);
                prop_assert!(ncp >= last - 1e-15);
                last = ncp;
                node = parent;
            }
            let expected_root_ncp = if n == 1 { 0.0 } else { 1.0 };
            prop_assert!((last - expected_root_ncp).abs() < 1e-12);
        }
    }

    #[test]
    fn lca_properties(
        n in 2usize..150,
        fanout in 2usize..5,
        a in 0u32..150,
        b in 0u32..150,
    ) {
        let (a, b) = (a % n as u32, b % n as u32);
        let p = pool_of(n);
        let h = auto_hierarchy(&p, AttributeKind::Categorical, fanout).unwrap();
        let la = h.leaf(a);
        let lb = h.leaf(b);
        let lca = h.lca(la, lb);
        prop_assert!(h.is_ancestor_or_self(lca, la));
        prop_assert!(h.is_ancestor_or_self(lca, lb));
        prop_assert_eq!(h.lca(lb, la), lca, "lca is symmetric");
        prop_assert_eq!(h.lca(la, la), la, "lca is idempotent");
        // minimality: no child of the lca covers both
        for &c in h.children(lca) {
            prop_assert!(!(h.contains(c, a) && h.contains(c, b)));
        }
    }

    #[test]
    fn euler_tour_lca_matches_parent_walk(
        n in 2usize..300,
        fanout in 2usize..7,
        pairs in prop::collection::vec((0u32..300, 0u32..300), 1..40),
    ) {
        let p = pool_of(n);
        let h = auto_hierarchy(&p, AttributeKind::Categorical, fanout).unwrap();
        for (a, b) in pairs {
            let la = h.leaf(a % n as u32);
            let lb = h.leaf(b % n as u32);
            prop_assert_eq!(h.lca(la, lb), h.lca_walk(la, lb));
            // interior nodes too: lift one side to an arbitrary ancestor
            let anc = h.ancestor_up(la, (a % 4) + 1);
            prop_assert_eq!(h.lca(anc, lb), h.lca_walk(anc, lb));
        }
    }

    #[test]
    fn cut_moves_preserve_partition(
        n in 2usize..100,
        fanout in 2usize..5,
        moves in prop::collection::vec(0usize..1000, 0..20),
    ) {
        let p = pool_of(n);
        let h = auto_hierarchy(&p, AttributeKind::Categorical, fanout).unwrap();
        let mut cut = Cut::leaves(&h);
        for mv in moves {
            let cands = cut.generalization_candidates(&h);
            if cands.is_empty() {
                break;
            }
            cut.generalize_to(&h, cands[mv % cands.len()]);
            // invariant: every value maps to exactly one cut node that
            // contains it, and cut nodes never nest
            for v in 0..n as u32 {
                prop_assert!(h.contains(cut.node_of(v), v));
            }
            let nodes = cut.nodes();
            for (i, &x) in nodes.iter().enumerate() {
                for &y in &nodes[i + 1..] {
                    prop_assert!(!h.is_ancestor_or_self(x, y));
                    prop_assert!(!h.is_ancestor_or_self(y, x));
                }
            }
        }
    }

    #[test]
    fn generalize_then_specialize_roundtrips(
        n in 2usize..80,
        fanout in 2usize..5,
        pick in 0usize..1000,
    ) {
        let p = pool_of(n);
        let h = auto_hierarchy(&p, AttributeKind::Categorical, fanout).unwrap();
        let mut cut = Cut::leaves(&h);
        let cands = cut.generalization_candidates(&h);
        prop_assume!(!cands.is_empty());
        let target = cands[pick % cands.len()];
        let before = cut.clone();
        cut.generalize_to(&h, target);
        prop_assert!(cut.specialize(&h, target));
        prop_assert_eq!(cut, before);
    }

    #[test]
    fn file_roundtrip_random_domains(
        n in 1usize..120,
        fanout in 2usize..6,
    ) {
        let p = pool_of(n);
        let h = auto_hierarchy(&p, AttributeKind::Categorical, fanout).unwrap();
        let mut buf = Vec::new();
        secreta_hierarchy::io::write_hierarchy(&h, &mut buf, ';').unwrap();
        let h2 = secreta_hierarchy::io::read_hierarchy(buf.as_slice(), &p, ';').unwrap();
        prop_assert_eq!(h.n_nodes(), h2.n_nodes());
        prop_assert_eq!(h.height(), h2.height());
        for v in 0..n as u32 {
            prop_assert_eq!(h.path_to_root(v), h2.path_to_root(v));
            prop_assert_eq!(h.leaf_count(h.leaf(v)), 1);
        }
    }
}
