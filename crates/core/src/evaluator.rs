//! The Method Evaluator / Comparator — threaded fan-out of runs.
//!
//! "Based on the selected interface, anonymization algorithm(s) and
//! parameters, this component invokes one or more instances (threads)
//! of the Anonymization Module. After all instances finish, \[it\]
//! collects the anonymization results and forwards them to the
//! Experimentation Module." — the paper's Figure 1, `N threads` box.
//!
//! [`run_many`] executes a batch of independent jobs on a bounded
//! scoped thread pool and returns results in submission order.
//! Workers claim job indices from a shared atomic counter and buffer
//! `(index, result)` pairs locally; the buffers are merged after the
//! scope joins, so no lock is held while jobs execute.

use crate::anonymizer::{run_isolated, RunError, RunResult};
use crate::config::MethodSpec;
use crate::context::SessionContext;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One unit of work for the evaluator.
#[derive(Debug, Clone)]
pub struct Job {
    /// The configured method.
    pub spec: MethodSpec,
    /// Seed for randomized algorithms.
    pub seed: u64,
}

/// Execute `jobs` against `ctx` on up to `threads` worker threads,
/// returning per-job results in the order submitted.
pub fn run_many(
    ctx: &SessionContext,
    jobs: &[Job],
    threads: usize,
) -> Vec<Result<RunResult, RunError>> {
    run_many_with(ctx, jobs, threads, |_, _| {})
}

/// [`run_many`] plus a completion hook: `on_complete(index, result)`
/// fires on the worker thread the moment each job finishes, before
/// the batch joins. The orchestrator uses it to persist results as
/// they land, so a killed sweep keeps everything completed so far.
/// The hook must be `Sync`; workers call it concurrently.
///
/// Jobs are panic-isolated ([`run_isolated`]): a panicking or
/// deadline-cancelled job yields its typed `Err` and the pool keeps
/// draining the rest of the batch.
pub fn run_many_with(
    ctx: &SessionContext,
    jobs: &[Job],
    threads: usize,
    on_complete: impl Fn(usize, &Result<RunResult, RunError>) + Sync,
) -> Vec<Result<RunResult, RunError>> {
    let threads = threads.clamp(1, jobs.len().max(1));
    if threads == 1 || jobs.len() <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                let r = run_isolated(ctx, &j.spec, j.seed);
                on_complete(i, &r);
                r
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut buffers: Vec<Vec<(usize, Result<RunResult, RunError>)>> = Vec::with_capacity(threads);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let on_complete = &on_complete;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        let r = run_isolated(ctx, &jobs[i].spec, jobs[i].seed);
                        on_complete(i, &r);
                        local.push((i, r));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // jobs are individually isolated, so a worker unwind can
            // only come from the on_complete hook itself
            buffers.push(h.join().expect("evaluator workers do not panic"));
        }
    });

    let mut slots: Vec<Option<Result<RunResult, RunError>>> =
        (0..jobs.len()).map(|_| None).collect();
    for (i, result) in buffers.into_iter().flatten() {
        slots[i] = Some(result);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every job index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelAlgo;
    use secreta_gen::DatasetSpec;

    fn ctx() -> SessionContext {
        SessionContext::auto(DatasetSpec::adult_like(80, 1).generate(), 4).unwrap()
    }

    fn jobs(ks: &[usize]) -> Vec<Job> {
        ks.iter()
            .map(|&k| Job {
                spec: MethodSpec::Relational {
                    algo: RelAlgo::Cluster,
                    k,
                },
                seed: 7,
            })
            .collect()
    }

    #[test]
    fn results_arrive_in_submission_order() {
        let ctx = ctx();
        let js = jobs(&[2, 4, 8, 16]);
        let out = run_many(&ctx, &js, 4);
        assert_eq!(out.len(), 4);
        for (j, r) in js.iter().zip(&out) {
            let r = r.as_ref().unwrap();
            assert!(r.indicators.avg_class_size >= j.spec.k() as f64);
        }
    }

    #[test]
    fn threaded_matches_sequential() {
        let ctx = ctx();
        let js = jobs(&[2, 4, 8]);
        let seq = run_many(&ctx, &js, 1);
        let par = run_many(&ctx, &js, 3);
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.anon, b.anon, "determinism across thread counts");
        }
    }

    #[test]
    fn failures_are_per_job() {
        let ctx = ctx();
        let mut js = jobs(&[2]);
        js.push(Job {
            spec: MethodSpec::Relational {
                algo: RelAlgo::Incognito,
                k: 1_000_000,
            },
            seed: 0,
        });
        let out = run_many(&ctx, &js, 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn empty_job_list() {
        let ctx = ctx();
        assert!(run_many(&ctx, &[], 4).is_empty());
    }
}
