//! Serializable method configurations.
//!
//! The SECRETA GUI collects an algorithm choice plus its parameters
//! from the Evaluation/Comparison screens; this module is the
//! file-format equivalent (JSON), so CLI sessions can be saved,
//! replayed and shipped with benchmark definitions.

use secreta_relational::RelationalAlgorithm;
use secreta_rt::BoundingMethod;
use secreta_transaction::TransactionAlgorithm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Serializable mirror of [`RelationalAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelAlgo {
    /// Incognito (full-domain).
    Incognito,
    /// Top-down specialization.
    TopDown,
    /// Full-subtree bottom-up generalization.
    BottomUp,
    /// Greedy k-member clustering.
    Cluster,
}

impl From<RelAlgo> for RelationalAlgorithm {
    fn from(a: RelAlgo) -> Self {
        match a {
            RelAlgo::Incognito => RelationalAlgorithm::Incognito,
            RelAlgo::TopDown => RelationalAlgorithm::TopDown,
            RelAlgo::BottomUp => RelationalAlgorithm::BottomUp,
            RelAlgo::Cluster => RelationalAlgorithm::Cluster,
        }
    }
}

impl RelAlgo {
    /// All four, in the paper's order.
    pub fn all() -> [RelAlgo; 4] {
        [
            RelAlgo::Incognito,
            RelAlgo::Cluster,
            RelAlgo::TopDown,
            RelAlgo::BottomUp,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        RelationalAlgorithm::from(self).name()
    }
}

/// Serializable mirror of [`TransactionAlgorithm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxAlgo {
    /// COAT.
    Coat,
    /// PCTA.
    Pcta,
    /// Apriori anonymization.
    Apriori,
    /// LRA with this many horizontal partitions.
    Lra {
        /// Number of partitions.
        partitions: usize,
    },
    /// VPA with this many vertical parts.
    Vpa {
        /// Number of item-domain parts.
        parts: usize,
    },
}

impl From<TxAlgo> for TransactionAlgorithm {
    fn from(a: TxAlgo) -> Self {
        match a {
            TxAlgo::Coat => TransactionAlgorithm::Coat,
            TxAlgo::Pcta => TransactionAlgorithm::Pcta,
            TxAlgo::Apriori => TransactionAlgorithm::Apriori,
            TxAlgo::Lra { partitions } => TransactionAlgorithm::Lra { partitions },
            TxAlgo::Vpa { parts } => TransactionAlgorithm::Vpa { parts },
        }
    }
}

impl TxAlgo {
    /// All five with default parameters, in the paper's order.
    pub fn all() -> [TxAlgo; 5] {
        [
            TxAlgo::Coat,
            TxAlgo::Pcta,
            TxAlgo::Apriori,
            TxAlgo::Lra { partitions: 2 },
            TxAlgo::Vpa { parts: 4 },
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        TransactionAlgorithm::from(self).name()
    }
}

/// Serializable mirror of [`BoundingMethod`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bounding {
    /// RMERGE.
    RMerge,
    /// TMERGE.
    TMerge,
    /// RTMERGE.
    RtMerge,
}

impl From<Bounding> for BoundingMethod {
    fn from(b: Bounding) -> Self {
        match b {
            Bounding::RMerge => BoundingMethod::RMerge,
            Bounding::TMerge => BoundingMethod::TMerge,
            Bounding::RtMerge => BoundingMethod::RtMerge,
        }
    }
}

impl Bounding {
    /// All three.
    pub fn all() -> [Bounding; 3] {
        [Bounding::RMerge, Bounding::TMerge, Bounding::RtMerge]
    }

    /// Display name as the paper spells it.
    pub fn name(self) -> &'static str {
        BoundingMethod::from(self).name()
    }
}

/// A complete method configuration: which algorithm(s) with which
/// privacy parameters. The three variants correspond to the three
/// dataset classes SECRETA handles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MethodSpec {
    /// k-anonymity over the relational attributes.
    Relational {
        /// The algorithm.
        algo: RelAlgo,
        /// Protection level.
        k: usize,
    },
    /// Protection of the transaction attribute (k^m or policy-based).
    Transaction {
        /// The algorithm.
        algo: TxAlgo,
        /// Protection level.
        k: usize,
        /// Adversary knowledge bound (k^m algorithms).
        m: usize,
    },
    /// (k, k^m)-anonymity of an RT-dataset via a bounding method.
    Rt {
        /// Relational algorithm (initial partition).
        rel: RelAlgo,
        /// Transaction algorithm (per super-cluster).
        tx: TxAlgo,
        /// Bounding method.
        bounding: Bounding,
        /// Protection level for both parts.
        k: usize,
        /// Adversary knowledge bound.
        m: usize,
        /// Merge budget δ.
        delta: usize,
    },
    /// ρ-uncertainty of the transaction attribute (the extension the
    /// paper's conclusion announces, Cao et al. \[2\]).
    Rho {
        /// Confidence threshold in `(0, 1]`.
        rho: f64,
        /// Labels of the sensitive items (resolved against the
        /// dataset at run time).
        sensitive: Vec<String>,
        /// Antecedent size bound of the rule-mining loop.
        max_antecedent: usize,
        /// `false` = SuppressControl (delete items); `true` =
        /// TDControl (generalize the non-sensitive vocabulary over the
        /// item hierarchy, suppressing only as a last resort).
        #[serde(default)]
        generalize: bool,
    },
}

impl MethodSpec {
    /// Human-readable label, used as the default legend entry.
    pub fn label(&self) -> String {
        match self {
            MethodSpec::Relational { algo, k } => format!("{} (k={k})", algo.name()),
            MethodSpec::Transaction { algo, k, m } => {
                format!("{} (k={k}, m={m})", algo.name())
            }
            MethodSpec::Rt {
                rel,
                tx,
                bounding,
                k,
                m,
                delta,
            } => format!(
                "{}+{} via {} (k={k}, m={m}, δ={delta})",
                rel.name(),
                tx.name(),
                bounding.name()
            ),
            MethodSpec::Rho {
                rho,
                sensitive,
                max_antecedent,
                generalize,
            } => format!(
                "ρ-uncertainty/{} (ρ={rho}, {} sensitive, |q|≤{max_antecedent})",
                if *generalize {
                    "TDControl"
                } else {
                    "SuppressControl"
                },
                sensitive.len()
            ),
        }
    }

    /// The `k` of this configuration (0 for ρ-uncertainty, which has
    /// no k).
    pub fn k(&self) -> usize {
        match self {
            MethodSpec::Relational { k, .. }
            | MethodSpec::Transaction { k, .. }
            | MethodSpec::Rt { k, .. } => *k,
            MethodSpec::Rho { .. } => 0,
        }
    }

    /// Set `k` (used by parameter sweeps; no-op for ρ-uncertainty).
    pub fn set_k(&mut self, value: usize) {
        match self {
            MethodSpec::Relational { k, .. }
            | MethodSpec::Transaction { k, .. }
            | MethodSpec::Rt { k, .. } => *k = value,
            MethodSpec::Rho { .. } => {}
        }
    }

    /// Set `m` where applicable. For ρ-uncertainty, `m` is the
    /// antecedent bound; no-op for purely relational methods.
    pub fn set_m(&mut self, value: usize) {
        match self {
            MethodSpec::Transaction { m, .. } | MethodSpec::Rt { m, .. } => *m = value,
            MethodSpec::Rho { max_antecedent, .. } => *max_antecedent = value,
            MethodSpec::Relational { .. } => {}
        }
    }

    /// Set `δ` where applicable (no-op otherwise).
    pub fn set_delta(&mut self, value: usize) {
        if let MethodSpec::Rt { delta, .. } = self {
            *delta = value;
        }
    }
}

impl fmt::Display for MethodSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip_names() {
        for a in RelAlgo::all() {
            assert_eq!(a.name(), RelationalAlgorithm::from(a).name());
        }
        for a in TxAlgo::all() {
            assert_eq!(a.name(), TransactionAlgorithm::from(a).name());
        }
        for b in Bounding::all() {
            assert_eq!(b.name(), BoundingMethod::from(b).name());
        }
    }

    #[test]
    fn twenty_rt_combinations_exist() {
        let mut combos = 0;
        for _rel in RelAlgo::all() {
            for _tx in TxAlgo::all() {
                combos += 1;
            }
        }
        assert_eq!(combos, 20, "the paper's 20 combinations");
    }

    #[test]
    fn spec_parameter_setters() {
        let mut s = MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Apriori,
            bounding: Bounding::RMerge,
            k: 2,
            m: 2,
            delta: 1,
        };
        s.set_k(5);
        s.set_m(3);
        s.set_delta(4);
        assert_eq!(s.k(), 5);
        match s {
            MethodSpec::Rt { m, delta, .. } => {
                assert_eq!(m, 3);
                assert_eq!(delta, 4);
            }
            _ => unreachable!(),
        }
        let mut r = MethodSpec::Relational {
            algo: RelAlgo::Incognito,
            k: 2,
        };
        r.set_m(9); // no-op
        r.set_delta(9); // no-op
        assert_eq!(r.k(), 2);
    }

    #[test]
    fn labels_are_descriptive() {
        let s = MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Coat,
            bounding: Bounding::TMerge,
            k: 5,
            m: 2,
            delta: 3,
        };
        let label = s.label();
        assert!(label.contains("Cluster"));
        assert!(label.contains("COAT"));
        assert!(label.contains("Tmerger"));
        assert!(label.contains("k=5"));
    }

    #[test]
    fn json_roundtrip() {
        let s = MethodSpec::Transaction {
            algo: TxAlgo::Lra { partitions: 8 },
            k: 4,
            m: 2,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: MethodSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
