//! Session context: everything a run needs besides the method spec.
//!
//! Bundles the loaded dataset with its hierarchies, query workload and
//! policies — the state the SECRETA GUI accumulates across the Dataset
//! Editor, Configuration Editor and Queries Editor before any
//! algorithm runs.

use secreta_data::{AttributeKind, ChunkStats, RtTable};
use secreta_hierarchy::{auto_hierarchy, Hierarchy, HierarchyError};
use secreta_metrics::Workload;
use secreta_obsv::ObsvConfig;
use secreta_policy::{PrivacyPolicy, UtilityPolicy};

/// A fully prepared session.
#[derive(Debug, Clone)]
pub struct SessionContext {
    /// The dataset under anonymization.
    pub table: RtTable,
    /// Quasi-identifier attribute indices (relational).
    pub qi_attrs: Vec<usize>,
    /// Hierarchies parallel to `qi_attrs`.
    pub hierarchies: Vec<Hierarchy>,
    /// Item hierarchy for the transaction attribute, if present.
    pub item_hierarchy: Option<Hierarchy>,
    /// Query workload for ARE (may be empty).
    pub workload: Workload,
    /// Privacy policy for COAT/PCTA (None = protect all items).
    pub privacy: Option<PrivacyPolicy>,
    /// Utility policy for COAT/PCTA (None = unconstrained).
    pub utility: Option<UtilityPolicy>,
    /// Observability settings: whether runs record profiles and where
    /// traces stream. Deliberately excluded from run identity (cache
    /// keys) — tracing a run must not change what it computes.
    pub obsv: ObsvConfig,
    /// Counters from a chunked ingest, when the dataset was loaded
    /// through [`secreta_data::ChunkedTable`]; flushed into every
    /// run's profile as the `chunk/*` and `budget/*` counter families.
    /// Like `obsv`, excluded from run identity — how the table was
    /// ingested must not change what a run computes.
    pub ingest: Option<ChunkStats>,
}

impl SessionContext {
    /// Build a context with automatically derived hierarchies (the
    /// Policy Specification Module's generator) over every relational
    /// attribute and the item universe, with the given fan-out.
    pub fn auto(table: RtTable, fanout: usize) -> Result<SessionContext, HierarchyError> {
        let qi_attrs = table.schema().relational_indices();
        let mut hierarchies = Vec::with_capacity(qi_attrs.len());
        for &attr in &qi_attrs {
            let kind = table
                .schema()
                .attribute(attr)
                .map(|a| a.kind)
                .unwrap_or(AttributeKind::Categorical);
            hierarchies.push(auto_hierarchy(table.pool(attr), kind, fanout)?);
        }
        let item_hierarchy = match table.item_pool() {
            Some(pool) if !pool.is_empty() => {
                Some(auto_hierarchy(pool, AttributeKind::Categorical, fanout)?)
            }
            _ => None,
        };
        Ok(SessionContext {
            table,
            qi_attrs,
            hierarchies,
            item_hierarchy,
            workload: Workload::default(),
            privacy: None,
            utility: None,
            obsv: ObsvConfig::disabled(),
            ingest: None,
        })
    }

    /// Replace the query workload.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Replace the observability settings.
    pub fn with_obsv(mut self, obsv: ObsvConfig) -> Self {
        self.obsv = obsv;
        self
    }

    /// Give every run in this session a soft wall-clock deadline. The
    /// budget is per job (each run starts its own clock) and is
    /// enforced cooperatively at phase boundaries, yielding
    /// `RunError::TimedOut` through the evaluator's panic isolation.
    /// Like all [`ObsvConfig`] settings, it is excluded from run
    /// identity — a deadline changes whether a run finishes, never
    /// what it computes.
    pub fn with_job_deadline(mut self, budget: std::time::Duration) -> Self {
        self.obsv = self.obsv.with_deadline(budget);
        self
    }

    /// Attach a cancellation token checked by every run at its phase
    /// boundaries; tripping it yields `RunError::Cancelled` for the
    /// jobs still in flight.
    pub fn with_cancel(mut self, token: secreta_obsv::CancelToken) -> Self {
        self.obsv = self.obsv.with_cancel(token);
        self
    }

    /// Give every run in this session a memory budget of `mb`
    /// megabytes: once the process peak RSS crosses it the run is
    /// cancelled at a phase boundary, yielding
    /// `RunError::BudgetExceeded` through the evaluator's panic
    /// isolation. This is the runtime backstop behind the data
    /// layer's deterministic accounting (see
    /// [`secreta_data::MemoryBudget`]); like all [`ObsvConfig`]
    /// settings it is excluded from run identity.
    pub fn with_memory_budget(mut self, mb: u64) -> Self {
        self.obsv = self.obsv.with_mem_budget(mb.saturating_mul(1024 * 1024));
        self
    }

    /// Attach the counters of the chunked ingest that produced this
    /// session's table, so runs publish them as `chunk/*` and
    /// `budget/*` counters.
    pub fn with_ingest_stats(mut self, stats: ChunkStats) -> Self {
        self.ingest = Some(stats);
        self
    }

    /// Attach COAT/PCTA policies.
    pub fn with_policies(
        mut self,
        privacy: Option<PrivacyPolicy>,
        utility: Option<UtilityPolicy>,
    ) -> Self {
        self.privacy = privacy;
        self.utility = utility;
        self
    }

    /// The hierarchy of relational attribute `attr`, if it is a QI.
    pub fn hierarchy_of(&self, attr: usize) -> Option<&Hierarchy> {
        self.qi_attrs
            .iter()
            .position(|&a| a == attr)
            .map(|pos| &self.hierarchies[pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_gen::DatasetSpec;

    #[test]
    fn auto_builds_all_hierarchies() {
        let t = DatasetSpec::adult_like(100, 1).generate();
        let ctx = SessionContext::auto(t, 4).unwrap();
        assert_eq!(ctx.qi_attrs.len(), 4);
        assert_eq!(ctx.hierarchies.len(), 4);
        assert!(ctx.item_hierarchy.is_some());
        for (pos, &attr) in ctx.qi_attrs.iter().enumerate() {
            assert_eq!(ctx.hierarchies[pos].n_leaves(), ctx.table.domain_size(attr));
        }
        assert_eq!(
            ctx.item_hierarchy.as_ref().unwrap().n_leaves(),
            ctx.table.item_universe()
        );
    }

    #[test]
    fn relational_only_has_no_item_hierarchy() {
        let t = DatasetSpec::census(50, 1).generate();
        let ctx = SessionContext::auto(t, 3).unwrap();
        assert!(ctx.item_hierarchy.is_none());
        assert!(ctx.workload.is_empty());
    }

    #[test]
    fn hierarchy_of_resolves_qi_position() {
        let t = DatasetSpec::adult_like(50, 2).generate();
        let ctx = SessionContext::auto(t, 4).unwrap();
        assert!(ctx.hierarchy_of(0).is_some());
        assert!(ctx.hierarchy_of(4).is_none(), "tx attr is not a QI");
    }
}
