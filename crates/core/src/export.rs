//! Data Export Module.
//!
//! "This module allows exporting datasets, hierarchies, policies, and
//! query workloads, in CSV format, and graphs, in PDF, JPG, BMP or PNG
//! format." Datasets/hierarchies/policies/workloads keep their CSV
//! formats (implemented next to their types); this module adds the
//! anonymized-dataset CSV writer and the graph writers (SVG + CSV in
//! place of Qt's raster formats).

use crate::context::SessionContext;
use secreta_metrics::{AnonTable, Indicators};
use secreta_plot::{ascii, csv as plot_csv, grouped, svg, BarChart, GroupedBarChart, XyChart};
use secreta_store::RunManifest;
use std::io::Write;
use std::path::Path;

/// Write the anonymized dataset as CSV: one column per anonymized
/// relational attribute (generalized labels), then the transaction
/// attribute as space-separated generalized item labels.
pub fn write_anonymized<W: Write>(
    ctx: &SessionContext,
    anon: &AnonTable,
    writer: &mut W,
) -> std::io::Result<()> {
    let table = &ctx.table;
    let schema = table.schema();

    // header
    let mut header: Vec<String> = anon
        .rel
        .iter()
        .map(|col| {
            schema
                .attribute(col.attr)
                .map(|a| a.name.clone())
                .unwrap_or_else(|| format!("attr{}", col.attr))
        })
        .collect();
    let has_tx = anon.tx.is_some();
    if has_tx {
        let name = schema
            .transaction_index()
            .and_then(|i| schema.attribute(i))
            .map(|a| a.name.clone())
            .unwrap_or_else(|| "Items".to_owned());
        header.push(name);
    }
    writeln!(writer, "{}", header.join(","))?;

    let item_pool = table.item_pool();
    for row in 0..anon.n_rows {
        let mut fields: Vec<String> = Vec::with_capacity(header.len());
        for col in &anon.rel {
            let h = ctx.hierarchy_of(col.attr);
            let pool = table.pool(col.attr);
            let label = col.entry(row).display(h, |v| pool.resolve(v).to_owned());
            fields.push(quote(&label));
        }
        if let Some(tx) = &anon.tx {
            let h = ctx.item_hierarchy.as_ref();
            let labels: Vec<String> = tx
                .row_items(row)
                .iter()
                .map(|&g| {
                    tx.domain[g as usize].display(h, |v| {
                        item_pool
                            .map(|p| p.resolve(v).to_owned())
                            .unwrap_or_else(|| v.to_string())
                    })
                })
                .collect();
            fields.push(quote(&labels.join(" ")));
        }
        writeln!(writer, "{}", fields.join(","))?;
    }
    Ok(())
}

/// Build a multi-series chart of one indicator straight from stored
/// run manifests — no re-execution. Sweep-less manifests (no recorded
/// sweep value) are skipped; series are grouped by run label in
/// first-appearance order.
pub fn chart_from_manifests(
    manifests: &[RunManifest],
    title: impl Into<String>,
    y_label: impl Into<String>,
    pick: impl Fn(&Indicators) -> f64,
) -> XyChart {
    let x_label = manifests
        .iter()
        .find_map(|m| m.sweep_param.clone())
        .unwrap_or_else(|| "k".to_owned());
    XyChart::from_rows(
        title,
        x_label,
        y_label,
        manifests.iter().filter_map(|m| {
            m.sweep_value
                .map(|v| (m.label.clone(), v, pick(&m.indicators)))
        }),
    )
}

/// Build a grouped bar chart of per-phase runtimes (milliseconds)
/// straight from stored run manifests — the Figure 3(b) "time of the
/// different phases" view, replayed from the store. One series per
/// manifest (labelled with its sweep point when it has one), one
/// category per phase name in first-appearance order; phases a run
/// did not record plot as zero.
pub fn phase_chart_from_manifests(manifests: &[RunManifest]) -> GroupedBarChart {
    let mut phases: Vec<String> = Vec::new();
    for m in manifests {
        for (name, _) in &m.phases.phases {
            if !phases.contains(name) {
                phases.push(name.clone());
            }
        }
    }
    let mut series = Vec::with_capacity(manifests.len());
    let mut values = Vec::with_capacity(manifests.len());
    for m in manifests {
        series.push(match m.sweep_value {
            Some(v) => format!(
                "{} ({}={v})",
                m.label,
                m.sweep_param.as_deref().unwrap_or("x")
            ),
            None => m.label.clone(),
        });
        values.push(
            phases
                .iter()
                .map(|p| m.phases.get(p).map_or(0.0, |d| d.as_secs_f64() * 1e3))
                .collect(),
        );
    }
    GroupedBarChart::new("Runtime phases (ms)", phases, series, values)
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Write an XY chart as SVG and CSV next to each other:
/// `<stem>.svg` and `<stem>.csv`. Returns the two paths written.
pub fn export_xy_chart(
    chart: &XyChart,
    stem: impl AsRef<Path>,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let stem = stem.as_ref();
    let svg_path = stem.with_extension("svg");
    let csv_path = stem.with_extension("csv");
    std::fs::write(&svg_path, svg::render_xy(chart, 720, 440))?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(&csv_path)?);
    plot_csv::write_xy(chart, &mut f)?;
    Ok((svg_path, csv_path))
}

/// Write a bar chart as SVG and CSV (`<stem>.svg`, `<stem>.csv`).
pub fn export_bar_chart(
    chart: &BarChart,
    stem: impl AsRef<Path>,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let stem = stem.as_ref();
    let svg_path = stem.with_extension("svg");
    let csv_path = stem.with_extension("csv");
    std::fs::write(&svg_path, svg::render_bar(chart, 720, 440))?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(&csv_path)?);
    plot_csv::write_bar(chart, &mut f)?;
    Ok((svg_path, csv_path))
}

/// Write a grouped bar chart as SVG and CSV (`<stem>.svg`, `<stem>.csv`).
pub fn export_grouped_chart(
    chart: &GroupedBarChart,
    stem: impl AsRef<Path>,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    let stem = stem.as_ref();
    let svg_path = stem.with_extension("svg");
    let csv_path = stem.with_extension("csv");
    std::fs::write(&svg_path, grouped::render_svg(chart, 720, 440))?;
    let mut f = std::io::BufWriter::new(std::fs::File::create(&csv_path)?);
    grouped::write_csv(chart, &mut f)?;
    Ok((svg_path, csv_path))
}

/// Render a grouped bar chart for the terminal.
pub fn terminal_grouped(chart: &GroupedBarChart) -> String {
    grouped::render_ascii(chart, 40)
}

/// Render an XY chart for the terminal (the CLI's plotting area).
pub fn terminal_xy(chart: &XyChart) -> String {
    ascii::render_xy(chart, 72, 18)
}

/// Render a bar chart for the terminal.
pub fn terminal_bar(chart: &BarChart) -> String {
    ascii::render_bar(chart, 48)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymizer::run;
    use crate::config::{MethodSpec, RelAlgo, TxAlgo};
    use secreta_gen::DatasetSpec;
    use secreta_plot::Series;

    #[test]
    fn anonymized_csv_has_generalized_labels() {
        let t = DatasetSpec::adult_like(40, 1).generate();
        let ctx = SessionContext::auto(t, 4).unwrap();
        let spec = MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Apriori,
            bounding: crate::config::Bounding::RMerge,
            k: 4,
            m: 1,
            delta: 2,
        };
        let out = run(&ctx, &spec, 1).unwrap();
        let mut buf = Vec::new();
        write_anonymized(&ctx, &out.anon, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 41, "header + 40 rows");
        assert!(lines[0].starts_with("Age,"));
        assert!(lines[0].ends_with("Items"));
    }

    #[test]
    fn chart_files_are_written() {
        let dir = std::env::temp_dir().join("secreta_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut chart = XyChart::new("t", "k", "ARE");
        chart.push(Series::new("a", vec![(1.0, 0.5)]));
        let (svg, csv) = export_xy_chart(&chart, dir.join("xy")).unwrap();
        assert!(svg.exists());
        assert!(csv.exists());
        let bar = BarChart::new("b", vec!["x".into()], vec![1.0]);
        let (bsvg, bcsv) = export_bar_chart(&bar, dir.join("bar")).unwrap();
        assert!(bsvg.exists());
        assert!(bcsv.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grouped_chart_files_are_written() {
        let dir = std::env::temp_dir().join("secreta_export_grouped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = GroupedBarChart::new(
            "g",
            vec!["a".into()],
            vec!["s1".into(), "s2".into()],
            vec![vec![1.0], vec![2.0]],
        );
        let (svg, csv) = export_grouped_chart(&g, dir.join("g")).unwrap();
        assert!(svg.exists());
        assert!(csv.exists());
        assert!(terminal_grouped(&g).contains("s1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chart_renders_straight_from_stored_manifests() {
        fn manifest(label: &str, value: f64, gcp: f64) -> RunManifest {
            RunManifest {
                key: format!("{label}-{value}"),
                schema_version: 1,
                context: "d".into(),
                label: label.into(),
                config: serde::Value::Null,
                seed: 1,
                sweep_param: Some("k".into()),
                sweep_value: Some(value),
                created_unix_ms: 0,
                indicators: Indicators {
                    gcp,
                    tx_gcp: 0.0,
                    ul: 0.0,
                    are: 0.0,
                    item_freq_error: 0.0,
                    discernibility: 0,
                    avg_class_size: 0.0,
                    runtime_ms: 0.0,
                    verified: true,
                    risk: None,
                },
                phases: Default::default(),
                profile: None,
                anon_sha256: None,
            }
        }
        let mut no_sweep = manifest("solo", 0.0, 0.9);
        no_sweep.sweep_param = None;
        no_sweep.sweep_value = None;
        let manifests = vec![
            manifest("Cluster", 4.0, 0.2),
            manifest("Cluster", 2.0, 0.1),
            manifest("Incognito", 2.0, 0.3),
            no_sweep,
        ];
        let chart = chart_from_manifests(&manifests, "GCP vs k", "GCP", |i| i.gcp);
        assert_eq!(chart.x_label, "k");
        assert_eq!(chart.series.len(), 2, "sweep-less manifest skipped");
        assert_eq!(chart.series[0].name, "Cluster");
        assert_eq!(chart.series[0].points, vec![(2.0, 0.1), (4.0, 0.2)]);
        assert_eq!(chart.series[1].points, vec![(2.0, 0.3)]);
    }

    #[test]
    fn phase_chart_aligns_runs_on_phase_names() {
        use secreta_metrics::PhaseTimes;
        use std::time::Duration;
        fn manifest(label: &str, phases: Vec<(&str, u64)>) -> RunManifest {
            RunManifest {
                key: label.into(),
                schema_version: 2,
                context: "d".into(),
                label: label.into(),
                config: serde::Value::Null,
                seed: 1,
                sweep_param: None,
                sweep_value: None,
                created_unix_ms: 0,
                indicators: Indicators {
                    gcp: 0.0,
                    tx_gcp: 0.0,
                    ul: 0.0,
                    are: 0.0,
                    item_freq_error: 0.0,
                    discernibility: 0,
                    avg_class_size: 0.0,
                    runtime_ms: 0.0,
                    verified: true,
                    risk: None,
                },
                phases: PhaseTimes {
                    phases: phases
                        .into_iter()
                        .map(|(n, ms)| (n.to_owned(), Duration::from_millis(ms)))
                        .collect(),
                },
                profile: None,
                anon_sha256: None,
            }
        }
        let chart = phase_chart_from_manifests(&[
            manifest("A", vec![("setup", 2), ("recode", 4)]),
            manifest("B", vec![("setup", 1), ("lattice search", 8)]),
        ]);
        assert_eq!(chart.categories, ["setup", "recode", "lattice search"]);
        assert_eq!(chart.series, ["A", "B"]);
        assert_eq!(chart.values[0], [2.0, 4.0, 0.0]);
        assert_eq!(chart.values[1], [1.0, 0.0, 8.0]);
    }

    #[test]
    fn terminal_renderers_produce_text() {
        let mut chart = XyChart::new("t", "k", "ARE");
        chart.push(Series::new("a", vec![(1.0, 0.5), (2.0, 0.7)]));
        assert!(terminal_xy(&chart).contains('*'));
        let bar = BarChart::new("b", vec!["x".into()], vec![1.0]);
        assert!(terminal_bar(&bar).contains('█'));
    }
}
