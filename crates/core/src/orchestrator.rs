//! The experiment orchestrator: cached, journaled, resumable sweeps.
//!
//! The Experimentation Module's two modes — single-method evaluation
//! and multi-method comparison — both expand into the same shape of
//! work: a list of configurations, each swept over a varying
//! parameter, yielding a DAG of independent (spec, sweep point, seed)
//! jobs fanned out over the evaluator's worker pool. This module owns
//! that expansion and adds three properties on top of the plain
//! [`run_many`](crate::evaluator::run_many) fan-out:
//!
//! * **Caching** — with a [`RunStore`] attached, every job is content
//!   addressed (see [`secreta_store::key`]) and looked up before it
//!   runs. A hit replays the stored table, indicators and phase
//!   timings without touching the algorithms; re-running an identical
//!   experiment does zero anonymization work and produces
//!   byte-identical results (every stored field round-trips JSON
//!   exactly).
//! * **Journaling** — a [`SweepRecord`] intent event is appended to
//!   the store's write-ahead journal *before* any job starts, and
//!   per-job start/finish events plus a final hit/miss summary follow.
//!   The journal doubles as the observability layer: cache counters,
//!   per-job wall time and scheduling order all come from it.
//! * **Resumability** — because results are individually durable and
//!   the intent record carries the full invocation, a sweep killed
//!   mid-run is resumed by replaying its invocation against the same
//!   store: completed jobs are cache hits, only the missing tail
//!   executes.
//!
//! Without a store, the orchestrator degrades to exactly the old
//! behaviour — [`crate::comparison::compare`] and
//! [`crate::sweep::evaluate_sweep`] are thin wrappers over it.

use crate::anonymizer::{run_isolated, RunError, RunResult};
use crate::comparison::{ComparisonResult, Configuration};
use crate::config::MethodSpec;
use crate::context::SessionContext;
use crate::evaluator::{run_many_with, Job};
use crate::sweep::{SweepPoint, VaryingParam};
use secreta_data::CsvOptions;
use secreta_store::{
    run_key, DigestWriter, JournalEvent, RunKey, RunManifest, RunStore, Sha256, StoreError,
    SweepRecord, STORE_SCHEMA_VERSION,
};
use serde::{Serialize, Value};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Digest of everything in a session that can influence a run: the
/// dataset bytes, every hierarchy, the query workload and both
/// policies. Two sessions with the same digest produce the same
/// results for the same (spec, seed); the digest is one component of
/// every run key.
pub fn context_digest(ctx: &SessionContext) -> String {
    let mut w = DigestWriter::new();
    // section markers keep adjacent components from aliasing
    w.update(b"\0dataset\0");
    secreta_data::csv::write_table(&ctx.table, &mut w, &CsvOptions::default())
        .expect("digest writer never fails");
    for (pos, &attr) in ctx.qi_attrs.iter().enumerate() {
        w.update(format!("\0hierarchy:{attr}\0").as_bytes());
        secreta_hierarchy::io::write_hierarchy(&ctx.hierarchies[pos], &mut w, ';')
            .expect("digest writer never fails");
    }
    if let Some(h) = &ctx.item_hierarchy {
        w.update(b"\0item-hierarchy\0");
        secreta_hierarchy::io::write_hierarchy(h, &mut w, ';').expect("digest writer never fails");
    }
    w.update(b"\0workload\0");
    secreta_metrics::query::write_workload(&ctx.workload, &ctx.table, &mut w)
        .expect("digest writer never fails");
    if let Some(p) = &ctx.privacy {
        w.update(b"\0privacy\0");
        secreta_policy::io::write_privacy(p, &ctx.table, &mut w)
            .expect("digest writer never fails");
    }
    if let Some(u) = &ctx.utility {
        w.update(b"\0utility\0");
        secreta_policy::io::write_utility(u, &ctx.table, &mut w)
            .expect("digest writer never fails");
    }
    w.finalize_hex()
}

/// The content address of one (context, spec, seed, sweep point) job.
pub fn job_key(
    context_digest: &str,
    spec: &MethodSpec,
    seed: u64,
    sweep: Option<(VaryingParam, usize)>,
) -> RunKey {
    run_key(
        context_digest,
        &spec.ser(),
        seed,
        sweep.map(|(p, v)| (p.label(), v as f64)),
    )
}

/// Cache counters of one orchestrated execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Jobs replayed from the store.
    pub hits: u64,
    /// Jobs that actually executed.
    pub misses: u64,
    /// Jobs that returned an error (never cached).
    pub failures: u64,
}

/// Output of [`Orchestrator::compare`].
#[derive(Debug)]
pub struct Orchestrated {
    /// The comparison result, shaped exactly like
    /// [`crate::comparison::compare`]'s.
    pub result: ComparisonResult,
    /// Hit/miss/failure counters (all-miss when no store is attached).
    pub stats: CacheStats,
    /// Deterministic identifier of this sweep (derived from its job
    /// keys); the journal's `SweepRecord` id when a store is attached.
    pub sweep_id: String,
}

/// Schedules experiment jobs over the evaluator pool, with optional
/// store-backed caching and journaling.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    store: Option<RunStore>,
    bypass_cache: bool,
    threads: usize,
}

pub(crate) struct ExpandedJob {
    pub(crate) value: usize,
    pub(crate) spec: MethodSpec,
    pub(crate) seed: u64,
    pub(crate) label: String,
    pub(crate) key: RunKey,
}

/// Expand `configurations` into the deterministic flat job list shared
/// by the in-process orchestrator and the distributed coordinator /
/// worker roles: one [`ExpandedJob`] per (configuration, sweep value),
/// in configuration order then sweep order, plus the per-configuration
/// value shape and the varied parameter.
pub(crate) fn expand_jobs(
    digest: &str,
    configurations: &[Configuration],
) -> (Vec<ExpandedJob>, Vec<Vec<usize>>, VaryingParam) {
    let mut expanded: Vec<ExpandedJob> = Vec::new();
    let mut shape: Vec<Vec<usize>> = Vec::new();
    for cfg in configurations {
        let values = cfg.sweep.values();
        for &v in &values {
            let mut spec = cfg.spec.clone();
            match cfg.sweep.param {
                VaryingParam::K => spec.set_k(v),
                VaryingParam::M => spec.set_m(v),
                VaryingParam::Delta => spec.set_delta(v),
            }
            let key = job_key(digest, &spec, cfg.seed, Some((cfg.sweep.param, v)));
            expanded.push(ExpandedJob {
                value: v,
                spec,
                seed: cfg.seed,
                label: cfg.label.clone(),
                key,
            });
        }
        shape.push(values);
    }
    let param = configurations
        .first()
        .map(|c| c.sweep.param)
        .unwrap_or(VaryingParam::K);
    (expanded, shape, param)
}

/// The journal intent record for an expansion — shared by the
/// in-process sweep and the distributed coordinator so `runs resume`
/// treats both identically.
pub(crate) fn sweep_record_of(
    sweep_id: &str,
    digest: &str,
    param: VaryingParam,
    configurations: &[Configuration],
    expanded: &[ExpandedJob],
    shape: &[Vec<usize>],
    invocation: Value,
) -> SweepRecord {
    let mut jobs_per_cfg: Vec<Vec<(f64, String)>> = Vec::new();
    let mut it = expanded.iter();
    for values in shape {
        jobs_per_cfg.push(
            it.by_ref()
                .take(values.len())
                .map(|e| (e.value as f64, e.key.0.clone()))
                .collect(),
        );
    }
    SweepRecord {
        id: sweep_id.to_owned(),
        context: digest.to_owned(),
        param: param.label().to_owned(),
        labels: configurations.iter().map(|c| c.label.clone()).collect(),
        jobs: jobs_per_cfg,
        invocation,
    }
}

impl Orchestrator {
    /// An orchestrator without a store: plain fan-out, no caching.
    pub fn new(threads: usize) -> Orchestrator {
        Orchestrator {
            store: None,
            bypass_cache: false,
            threads,
        }
    }

    /// Attach a run store: enables cache lookups, durable results and
    /// the event journal.
    pub fn with_store(mut self, store: RunStore) -> Orchestrator {
        self.store = Some(store);
        self
    }

    /// Skip cache *lookups* (every job runs) while still recording
    /// results and journal events — the `--no-cache` semantics.
    pub fn bypass_cache(mut self, yes: bool) -> Orchestrator {
        self.bypass_cache = yes;
        self
    }

    /// The attached store, if any.
    pub fn store(&self) -> Option<&RunStore> {
        self.store.as_ref()
    }

    /// Execute one spec at its configured parameters (no sweep),
    /// through the cache when a store is attached. Returns the run
    /// outcome plus whether it was a cache hit.
    pub fn run_one(
        &self,
        ctx: &SessionContext,
        spec: &MethodSpec,
        seed: u64,
    ) -> Result<(Result<RunResult, RunError>, bool), StoreError> {
        let digest = context_digest(ctx);
        let key = job_key(&digest, spec, seed, None);
        if let (Some(store), false) = (&self.store, self.bypass_cache) {
            if let Some(stored) = store.get(&key)? {
                if stored.manifest.schema_version == STORE_SCHEMA_VERSION {
                    return Ok((Ok(replay(stored)), true));
                }
            }
        }
        let result = run_isolated(ctx, spec, seed);
        if let (Some(store), Ok(rr)) = (&self.store, &result) {
            store.put(
                &manifest_of(&key, &digest, &spec.label(), spec, seed, None, rr),
                &rr.anon,
            )?;
        }
        Ok((result, false))
    }

    /// Expand `configurations` into sweep-point jobs, serve what the
    /// store already holds, execute the rest on the evaluator pool,
    /// and journal the whole thing. `invocation` is an opaque payload
    /// recorded in the journal's intent event — callers put whatever
    /// they need to re-run the experiment there (the CLI stores its
    /// session/dataset arguments), enabling `runs resume`.
    pub fn compare(
        &self,
        ctx: &SessionContext,
        configurations: &[Configuration],
        invocation: Value,
    ) -> Result<Orchestrated, StoreError> {
        // one journal writer at a time: a second orchestrator sharing
        // this store gets StoreError::Locked instead of interleaving
        // sweep events (released when the guard drops at return)
        let _store_lock = match &self.store {
            Some(store) => Some(store.lock()?),
            None => None,
        };
        let digest = context_digest(ctx);

        // expand the DAG: one job per (configuration, sweep value)
        let (expanded, shape, param) = expand_jobs(&digest, configurations);
        let sweep_id = sweep_id_of(&digest, &expanded);

        // write-ahead intent: everything needed to resume after a kill
        let mut journal = match &self.store {
            Some(store) => Some(store.journal()?),
            None => None,
        };
        if let Some(j) = &mut journal {
            let record = sweep_record_of(
                &sweep_id,
                &digest,
                param,
                configurations,
                &expanded,
                &shape,
                invocation,
            );
            j.append(&JournalEvent::SweepStarted(record))
                .map_err(|e| StoreError::Io(j.path().to_path_buf(), e))?;
        }

        // serve hits from the store, collect misses
        let mut slots: Vec<Option<(Result<RunResult, RunError>, bool)>> =
            expanded.iter().map(|_| None).collect();
        let mut miss_indices: Vec<usize> = Vec::new();
        for (i, e) in expanded.iter().enumerate() {
            let hit = match (&self.store, self.bypass_cache) {
                (Some(store), false) => store
                    .get(&e.key)?
                    .filter(|s| s.manifest.schema_version == STORE_SCHEMA_VERSION)
                    .map(replay),
                _ => None,
            };
            match hit {
                Some(rr) => slots[i] = Some((Ok(rr), true)),
                None => miss_indices.push(i),
            }
        }

        if let Some(j) = &mut journal {
            // replays complete at lookup time: journal them first
            for (e, slot) in expanded.iter().zip(&slots) {
                if slot.is_some() {
                    j.append(&JournalEvent::JobFinished {
                        sweep: sweep_id.clone(),
                        key: e.key.0.clone(),
                        cache_hit: true,
                        ok: true,
                        wall_ms: 0.0,
                    })
                    .map_err(|err| StoreError::Io(j.path().to_path_buf(), err))?;
                }
            }
            for &i in &miss_indices {
                let e = &expanded[i];
                j.append(&JournalEvent::JobStarted {
                    sweep: sweep_id.clone(),
                    key: e.key.0.clone(),
                    label: e.label.clone(),
                    value: e.value as f64,
                })
                .map_err(|err| StoreError::Io(j.path().to_path_buf(), err))?;
            }
        }

        // fan the misses out over the evaluator pool, persisting and
        // journaling each result on the worker the moment it lands —
        // that is what makes a killed sweep resumable: everything that
        // finished before the kill is already durable
        let jobs: Vec<Job> = miss_indices
            .iter()
            .map(|&i| Job {
                spec: expanded[i].spec.clone(),
                seed: expanded[i].seed,
            })
            .collect();
        let journal_mx = Mutex::new(journal);
        let deferred_err: Mutex<Option<StoreError>> = Mutex::new(None);
        let defer = |err: StoreError| {
            let mut slot = deferred_err.lock().unwrap_or_else(|e| e.into_inner());
            slot.get_or_insert(err);
        };
        let outcomes = run_many_with(ctx, &jobs, self.threads, |slot, outcome| {
            let e = &expanded[miss_indices[slot]];
            if let (Some(store), Ok(rr)) = (&self.store, outcome) {
                let manifest = manifest_of(
                    &e.key,
                    &digest,
                    &e.label,
                    &e.spec,
                    e.seed,
                    Some((param, e.value)),
                    rr,
                );
                if let Err(err) = store.put(&manifest, &rr.anon) {
                    defer(err);
                    return;
                }
            }
            let (ok, wall_ms) = match outcome {
                Ok(rr) => (true, rr.indicators.runtime_ms),
                Err(_) => (false, 0.0),
            };
            let mut guard = journal_mx.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(j) = guard.as_mut() {
                // a failed job gets both lines: JobFinished keeps the
                // counters consistent, JobFailed carries the error and
                // marks the sweep degraded (hence resumable)
                if let Err(run_err) = outcome {
                    if let Err(err) = j.append(&JournalEvent::JobFailed {
                        sweep: sweep_id.clone(),
                        key: e.key.0.clone(),
                        label: e.label.clone(),
                        value: e.value as f64,
                        error: run_err.to_string(),
                    }) {
                        defer(StoreError::Io(j.path().to_path_buf(), err));
                    }
                }
                if let Err(err) = j.append(&JournalEvent::JobFinished {
                    sweep: sweep_id.clone(),
                    key: e.key.0.clone(),
                    cache_hit: false,
                    ok,
                    wall_ms,
                }) {
                    defer(StoreError::Io(j.path().to_path_buf(), err));
                }
            }
        });
        let mut journal = journal_mx.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(err) = deferred_err.into_inner().unwrap_or_else(|e| e.into_inner()) {
            return Err(err);
        }
        for (&i, outcome) in miss_indices.iter().zip(outcomes) {
            slots[i] = Some((outcome, false));
        }

        // summary counters close the sweep in the journal
        let mut stats = CacheStats::default();
        for slot in &slots {
            let (outcome, cache_hit) = slot.as_ref().expect("every job has an outcome");
            if *cache_hit {
                stats.hits += 1;
            } else if outcome.is_ok() {
                stats.misses += 1;
            } else {
                stats.failures += 1;
            }
        }
        if let Some(j) = &mut journal {
            j.append(&JournalEvent::SweepFinished {
                sweep: sweep_id.clone(),
                hits: stats.hits,
                misses: stats.misses,
                failures: stats.failures,
            })
            .map_err(|err| StoreError::Io(j.path().to_path_buf(), err))?;
        }
        // mirror the summary into the NDJSON trace stream, when one is
        // configured — the per-run records are already there
        if let Some(sink) = ctx.obsv.sink() {
            sink.write_record(&secreta_obsv::trace::cache_record(
                &sweep_id,
                stats.hits,
                stats.misses,
                stats.failures,
            ));
        }

        // reassemble per-configuration point lists, in sweep order
        let mut results = slots.into_iter();
        let mut expanded_it = expanded.iter();
        let mut points = Vec::with_capacity(configurations.len());
        for values in shape {
            let mut cfg_points = Vec::with_capacity(values.len());
            for _ in 0..values.len() {
                let e = expanded_it.next().expect("shape matches expansion");
                let (outcome, _) = results.next().flatten().expect("slot filled");
                cfg_points.push((
                    e.value,
                    outcome.map(|rr| SweepPoint {
                        value: e.value,
                        indicators: rr.indicators,
                    }),
                ));
            }
            points.push(cfg_points);
        }

        Ok(Orchestrated {
            result: ComparisonResult {
                labels: configurations.iter().map(|c| c.label.clone()).collect(),
                param,
                points,
            },
            stats,
            sweep_id,
        })
    }
}

/// Rebuild a `RunResult` from a stored run. Exact: the stored JSON
/// preserves every float bit-for-bit.
pub(crate) fn replay(stored: secreta_store::StoredRun) -> RunResult {
    RunResult {
        anon: stored.anon,
        phases: stored.manifest.phases,
        indicators: stored.manifest.indicators,
        profile: stored.manifest.profile,
    }
}

pub(crate) fn manifest_of(
    key: &RunKey,
    digest: &str,
    label: &str,
    spec: &MethodSpec,
    seed: u64,
    sweep: Option<(VaryingParam, usize)>,
    rr: &RunResult,
) -> RunManifest {
    RunManifest {
        key: key.0.clone(),
        schema_version: STORE_SCHEMA_VERSION,
        context: digest.to_owned(),
        label: label.to_owned(),
        config: secreta_store::canonicalize(&spec.ser()),
        seed,
        sweep_param: sweep.map(|(p, _)| p.label().to_owned()),
        sweep_value: sweep.map(|(_, v)| v as f64),
        created_unix_ms: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
        indicators: rr.indicators.clone(),
        phases: rr.phases.clone(),
        profile: rr.profile.clone(),
        // filled in by RunStore::put from the serialized table bytes
        anon_sha256: None,
    }
}

/// Deterministic sweep identifier: hash of the context digest and
/// every job's (label, key). The same experiment against the same
/// session always gets the same id, which is what lets `runs resume`
/// find the matching intent record.
pub(crate) fn sweep_id_of(digest: &str, expanded: &[ExpandedJob]) -> String {
    let mut h = Sha256::new();
    h.update(digest.as_bytes());
    for e in expanded {
        h.update(b"\0");
        h.update(e.label.as_bytes());
        h.update(b"\0");
        h.update(e.key.0.as_bytes());
    }
    let hex = h.finalize_hex();
    hex[..16].to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymizer::run;
    use crate::config::RelAlgo;
    use crate::sweep::Sweep;
    use secreta_gen::{DatasetSpec, WorkloadSpec};

    fn ctx() -> SessionContext {
        let t = DatasetSpec::adult_like(60, 3).generate();
        let ctx = SessionContext::auto(t, 4).unwrap();
        let w = WorkloadSpec {
            n_queries: 10,
            ..Default::default()
        }
        .generate(&ctx.table);
        ctx.with_workload(w)
    }

    fn configs() -> Vec<Configuration> {
        vec![Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k: 0,
            },
            Sweep {
                param: VaryingParam::K,
                start: 2,
                end: 6,
                step: 2,
            },
            1,
        )]
    }

    fn tmp_store(name: &str) -> RunStore {
        let dir =
            std::env::temp_dir().join(format!("secreta-orch-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    #[test]
    fn storeless_orchestration_matches_direct_runs() {
        let ctx = ctx();
        let orch = Orchestrator::new(2);
        let out = orch.compare(&ctx, &configs(), Value::Null).unwrap();
        assert_eq!(out.stats.hits, 0);
        assert_eq!(out.stats.misses, 3);
        for (v, r) in &out.result.points[0] {
            let direct = run(
                &ctx,
                &MethodSpec::Relational {
                    algo: RelAlgo::Cluster,
                    k: *v,
                },
                1,
            )
            .unwrap();
            // runtime_ms is wall-clock and differs between live runs
            let mut got = r.as_ref().unwrap().indicators.clone();
            let mut want = direct.indicators.clone();
            got.runtime_ms = 0.0;
            want.runtime_ms = 0.0;
            assert_eq!(got, want);
        }
    }

    #[test]
    fn second_run_is_a_full_cache_hit_with_identical_results() {
        let ctx = ctx();
        let store = tmp_store("hit");
        let orch = Orchestrator::new(2).with_store(store.clone());
        let cold = orch.compare(&ctx, &configs(), Value::Null).unwrap();
        assert_eq!(cold.stats.misses, 3);
        let warm = orch.compare(&ctx, &configs(), Value::Null).unwrap();
        assert_eq!(warm.stats.hits, 3);
        assert_eq!(warm.stats.misses, 0);
        assert_eq!(warm.sweep_id, cold.sweep_id);
        for (c, w) in cold.result.points[0].iter().zip(&warm.result.points[0]) {
            assert_eq!(
                c.1.as_ref().unwrap().indicators,
                w.1.as_ref().unwrap().indicators,
                "replay must be exact"
            );
        }
        // the journal records the full story: 2 sweeps, 3 executed
        // jobs, 6 completions, 2 summaries
        let events = store.read_journal().unwrap();
        let started = events
            .iter()
            .filter(|e| matches!(e, JournalEvent::JobStarted { .. }))
            .count();
        let hits = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    JournalEvent::JobFinished {
                        cache_hit: true,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(started, 3, "only cold jobs start");
        assert_eq!(hits, 3, "warm jobs are hits");
    }

    #[test]
    fn bypass_cache_reruns_everything() {
        let ctx = ctx();
        let store = tmp_store("bypass");
        let orch = Orchestrator::new(2).with_store(store);
        orch.compare(&ctx, &configs(), Value::Null).unwrap();
        let again = orch
            .clone()
            .bypass_cache(true)
            .compare(&ctx, &configs(), Value::Null)
            .unwrap();
        assert_eq!(again.stats.hits, 0);
        assert_eq!(again.stats.misses, 3);
    }

    #[test]
    fn run_one_caches_single_runs() {
        let ctx = ctx();
        let store = tmp_store("one");
        let orch = Orchestrator::new(1).with_store(store);
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 4,
        };
        let (first, hit1) = orch.run_one(&ctx, &spec, 9).unwrap();
        assert!(!hit1);
        let (second, hit2) = orch.run_one(&ctx, &spec, 9).unwrap();
        assert!(hit2);
        let (a, b) = (first.unwrap(), second.unwrap());
        assert_eq!(a.anon, b.anon);
        assert_eq!(a.indicators, b.indicators);
        assert_eq!(a.phases, b.phases);
    }

    #[test]
    fn context_digest_tracks_session_content() {
        let a = ctx();
        let d1 = context_digest(&a);
        assert_eq!(d1, context_digest(&a), "digest is deterministic");
        let b = ctx().with_workload(Default::default());
        assert_ne!(d1, context_digest(&b), "workload is part of the digest");
        let other = SessionContext::auto(DatasetSpec::adult_like(61, 3).generate(), 4).unwrap();
        assert_ne!(context_digest(&a), context_digest(&other));
    }

    #[test]
    fn failures_are_not_cached() {
        let ctx = ctx();
        let store = tmp_store("fail");
        let orch = Orchestrator::new(1).with_store(store.clone());
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Incognito,
            k: 1_000_000, // infeasible
        };
        let (r1, _) = orch.run_one(&ctx, &spec, 0).unwrap();
        assert!(r1.is_err());
        assert_eq!(store.list().unwrap().len(), 0);
        let (r2, hit) = orch.run_one(&ctx, &spec, 0).unwrap();
        assert!(r2.is_err());
        assert!(!hit, "errors re-run every time");
    }
}
