//! The Anonymization Module: execute one configured method and
//! measure it.
//!
//! "This component is responsible for executing an anonymization
//! algorithm with the specified configuration." On top of the raw run
//! it computes the full indicator set the Experimentation Module
//! plots: utility (GCP, UL, ARE, frequency errors), group statistics,
//! runtime with phases, and a post-hoc verification of the privacy
//! guarantee — algorithms are never trusted blindly.

use crate::config::MethodSpec;
use crate::context::SessionContext;
use secreta_metrics::{
    average_relative_error, freq, gcp, loss, transaction_gcp, utility_loss, AnonTable, PhaseTimes,
};
use secreta_policy::PrivacyPolicy;
use secreta_relational::{RelError, RelationalInput};
use secreta_rt::{RtError, RtInput};
use secreta_transaction::{TransactionInput, TxError};
use std::fmt;

pub use secreta_metrics::Indicators;

/// Errors from a configured run.
#[derive(Debug, PartialEq, Eq)]
pub enum RunError {
    /// Relational algorithm failure.
    Rel(RelError),
    /// Transaction algorithm failure.
    Tx(TxError),
    /// RT pipeline failure.
    Rt(RtError),
    /// The spec does not match the dataset (e.g. a transaction method
    /// on a relational-only dataset).
    BadConfig(String),
    /// The algorithm panicked; the payload message is preserved. Only
    /// produced by [`run_isolated`] — a raw [`run`] propagates the
    /// panic.
    Panicked(String),
    /// The run exceeded its soft deadline (see
    /// [`SessionContext::with_job_deadline`]) and was cancelled at a
    /// phase boundary.
    TimedOut {
        /// The configured budget, in milliseconds.
        limit_ms: u64,
    },
    /// The run was cancelled via its session's
    /// [`secreta_obsv::CancelToken`].
    Cancelled,
    /// The run crossed its memory budget (see
    /// [`SessionContext::with_memory_budget`]) and was cancelled at a
    /// phase boundary instead of growing until the OOM killer fired.
    BudgetExceeded {
        /// The configured budget, in bytes.
        limit_bytes: u64,
        /// Peak RSS observed at the tripping check, in bytes.
        observed_bytes: u64,
    },
    /// The job was lost by a distributed sweep: every worker that
    /// could have run it died and the coordinator degraded rather than
    /// hang. `runs resume` re-executes exactly these jobs.
    Lost(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Rel(e) => write!(f, "{e}"),
            RunError::Tx(e) => write!(f, "{e}"),
            RunError::Rt(e) => write!(f, "{e}"),
            RunError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            RunError::Panicked(msg) => write!(f, "algorithm panicked: {msg}"),
            RunError::TimedOut { limit_ms } => {
                write!(f, "run exceeded its {limit_ms} ms deadline")
            }
            RunError::Cancelled => write!(f, "run cancelled"),
            RunError::Lost(msg) => write!(f, "job lost: {msg}"),
            RunError::BudgetExceeded {
                limit_bytes,
                observed_bytes,
            } => write!(
                f,
                "run exceeded its {limit_bytes} byte memory budget (peak RSS {observed_bytes})"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Everything a single run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The anonymized table.
    pub anon: AnonTable,
    /// Phase timings.
    pub phases: PhaseTimes,
    /// Computed indicators.
    pub indicators: Indicators,
    /// The recorded span/counter profile, when the session's
    /// [`secreta_obsv::ObsvConfig`] enables observability (`None`
    /// otherwise).
    pub profile: Option<secreta_obsv::RunProfile>,
}

/// Execute `spec` against `ctx`. `seed` feeds the randomized pieces
/// (relational Cluster seeding).
///
/// ```
/// use secreta_core::config::{MethodSpec, RelAlgo};
/// use secreta_core::{anonymizer, SessionContext};
/// use secreta_gen::DatasetSpec;
///
/// let table = DatasetSpec::census(60, 7).generate();
/// let ctx = SessionContext::auto(table, 4).unwrap();
/// let spec = MethodSpec::Relational { algo: RelAlgo::Cluster, k: 5 };
/// let out = anonymizer::run(&ctx, &spec, 1).unwrap();
/// assert!(out.indicators.verified);
/// assert!(out.indicators.avg_class_size >= 5.0);
/// ```
pub fn run(ctx: &SessionContext, spec: &MethodSpec, seed: u64) -> Result<RunResult, RunError> {
    // per-run recorder, installed for the duration of the run so every
    // PhaseTimer window and algorithm counter lands on it (a disabled
    // config installs the no-op recorder)
    let recorder = ctx.obsv.recorder();
    let _obsv_guard = secreta_obsv::install(&recorder);

    // publish the chunked-ingest counters (if the table came in that
    // way) so every run's profile carries its data-layer provenance
    if let Some(ingest) = &ctx.ingest {
        recorder.count("chunk/chunks", ingest.chunks);
        recorder.count("chunk/rows", ingest.rows);
        recorder.count("chunk/local_symbols", ingest.local_symbols);
        recorder.count("chunk/merged_symbols", ingest.merged_symbols);
        recorder.count("chunk/remapped_ids", ingest.remapped_ids);
        recorder.count("budget/peak_accounted_bytes", ingest.peak_accounted_bytes);
        if let Some(b) = ingest.budget_bytes {
            recorder.count("budget/limit_bytes", b);
        }
    }

    // chaos-test hooks; `active()` is a single atomic load, so the
    // label is only rendered when a fault plan is installed
    if secreta_faults::active() {
        secreta_faults::fault::panic_point(&format!("run:{}", spec.label()));
        secreta_faults::fault::delay("run");
    }

    let (anon, phases, verified) = match spec {
        MethodSpec::Relational { algo, k } => {
            if ctx.qi_attrs.is_empty() {
                return Err(RunError::BadConfig(
                    "relational method on a dataset without relational attributes".into(),
                ));
            }
            let input = RelationalInput {
                table: &ctx.table,
                qi_attrs: ctx.qi_attrs.clone(),
                hierarchies: ctx.hierarchies.clone(),
                k: *k,
            };
            let out = secreta_relational::RelationalAlgorithm::from(*algo)
                .run(&input, seed)
                .map_err(RunError::Rel)?;
            let verified = secreta_relational::is_k_anonymous(&out.anon, *k);
            (out.anon, out.phases, verified)
        }
        MethodSpec::Transaction { algo, k, m } => {
            if ctx.table.schema().transaction_index().is_none() {
                return Err(RunError::BadConfig(
                    "transaction method on a dataset without a transaction attribute".into(),
                ));
            }
            let input = TransactionInput {
                table: &ctx.table,
                k: *k,
                m: *m,
                hierarchy: ctx.item_hierarchy.as_ref(),
                privacy: ctx.privacy.as_ref(),
                utility: ctx.utility.as_ref(),
            };
            let out = secreta_transaction::TransactionAlgorithm::from(*algo)
                .run(&input)
                .map_err(RunError::Tx)?;
            let verified = verify_transaction(ctx, *algo, &out.anon, *k, *m);
            (out.anon, out.phases, verified)
        }
        MethodSpec::Rt {
            rel,
            tx,
            bounding,
            k,
            m,
            delta,
        } => {
            if !ctx.table.schema().is_rt() {
                return Err(RunError::BadConfig(
                    "RT method requires both relational and transaction attributes".into(),
                ));
            }
            let input = RtInput {
                table: &ctx.table,
                qi_attrs: ctx.qi_attrs.clone(),
                hierarchies: ctx.hierarchies.clone(),
                item_hierarchy: ctx.item_hierarchy.as_ref(),
                k: *k,
                m: *m,
                delta: *delta,
                rel_algo: (*rel).into(),
                tx_algo: (*tx).into(),
                bounding: (*bounding).into(),
                privacy: ctx.privacy.as_ref(),
                utility: ctx.utility.as_ref(),
                seed,
            };
            let out = secreta_rt::anonymize(&input).map_err(RunError::Rt)?;
            let km_m = effective_m(*tx, *m);
            let verified = secreta_rt::is_k_km_anonymous(&out.anon, *k, km_m);
            (out.anon, out.phases, verified)
        }
        MethodSpec::Rho {
            rho,
            sensitive,
            max_antecedent,
            generalize,
        } => {
            if ctx.table.schema().transaction_index().is_none() {
                return Err(RunError::BadConfig(
                    "ρ-uncertainty needs a transaction attribute".into(),
                ));
            }
            let pool = ctx.table.item_pool().expect("tx attr implies pool");
            let mut items = Vec::with_capacity(sensitive.len());
            for label in sensitive {
                match pool.get(label) {
                    Some(id) => items.push(secreta_data::ItemId(id)),
                    None => {
                        return Err(RunError::BadConfig(format!(
                            "sensitive item {label:?} not in the dataset"
                        )))
                    }
                }
            }
            let params = secreta_transaction::RhoParams {
                rho: *rho,
                sensitive: {
                    items.sort_unstable();
                    items.dedup();
                    items
                },
                max_antecedent: *max_antecedent,
            };
            let input = TransactionInput {
                table: &ctx.table,
                k: 1,
                m: 1,
                hierarchy: if *generalize {
                    ctx.item_hierarchy.as_ref()
                } else {
                    None
                },
                privacy: None,
                utility: None,
            };
            let (out, verified) = if *generalize {
                let out = secreta_transaction::rho_td::anonymize(&input, &params)
                    .map_err(RunError::Tx)?;
                let ok =
                    secreta_transaction::is_rho_uncertain_published(&ctx.table, &out.anon, &params);
                (out, ok)
            } else {
                let out =
                    secreta_transaction::rho::anonymize(&input, &params).map_err(RunError::Tx)?;
                let ok = secreta_transaction::is_rho_uncertain(&ctx.table, &out.anon, &params);
                (out, ok)
            };
            (out.anon, out.phases, verified)
        }
    };

    let indicators = {
        let _span = recorder.span("metrics");
        let mut ind = compute_indicators(ctx, &anon, &phases, verified);
        ind.risk = Some(compute_risk(ctx, spec, &anon, verified));
        ind
    };
    let profile = recorder.finish(&spec.label());
    Ok(RunResult {
        anon,
        phases,
        indicators,
        profile,
    })
}

/// [`run`] behind panic isolation: an unwinding algorithm becomes a
/// typed [`RunError`] instead of tearing down the calling thread.
///
/// Two kinds of unwind are told apart by payload type: the cooperative
/// cancellation raised by the run's limits (a typed
/// [`secreta_obsv::Cancelled`]) maps to [`RunError::TimedOut`] /
/// [`RunError::Cancelled`]; anything else is an organic bug (or an
/// injected chaos panic) and maps to [`RunError::Panicked`] with its
/// message preserved. This is what lets a sweep keep draining when one
/// algorithm at one parameter point blows up.
pub fn run_isolated(
    ctx: &SessionContext,
    spec: &MethodSpec,
    seed: u64,
) -> Result<RunResult, RunError> {
    // AssertUnwindSafe: on Err the closure's captures are dropped with
    // the run's partial state; nothing shared survives to observe a
    // broken invariant (the per-run recorder dies with the run).
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(ctx, spec, seed))) {
        Ok(result) => result,
        Err(payload) => Err(classify_unwind(payload)),
    }
}

/// Map a caught panic payload to the run error it represents.
fn classify_unwind(payload: Box<dyn std::any::Any + Send>) -> RunError {
    match payload.downcast::<secreta_obsv::Cancelled>() {
        Ok(cancelled) => match *cancelled {
            secreta_obsv::Cancelled::DeadlineExceeded { limit_ms } => {
                RunError::TimedOut { limit_ms }
            }
            secreta_obsv::Cancelled::Requested => RunError::Cancelled,
            secreta_obsv::Cancelled::BudgetExceeded {
                limit_bytes,
                observed_bytes,
            } => RunError::BudgetExceeded {
                limit_bytes,
                observed_bytes,
            },
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            RunError::Panicked(msg)
        }
    }
}

/// The `m` at which a transaction algorithm's guarantee is checked:
/// VPA protects per part (global check only sound at m=1); COAT/PCTA
/// protect their policy (single items by default).
fn effective_m(algo: crate::config::TxAlgo, m: usize) -> usize {
    match algo {
        crate::config::TxAlgo::Vpa { .. }
        | crate::config::TxAlgo::Coat
        | crate::config::TxAlgo::Pcta => 1,
        _ => m,
    }
}

fn verify_transaction(
    ctx: &SessionContext,
    algo: crate::config::TxAlgo,
    anon: &AnonTable,
    k: usize,
    m: usize,
) -> bool {
    match algo {
        crate::config::TxAlgo::Coat | crate::config::TxAlgo::Pcta => {
            let default;
            let privacy = match &ctx.privacy {
                Some(p) => p,
                None => {
                    default = PrivacyPolicy::all_items(&ctx.table);
                    &default
                }
            };
            secreta_transaction::satisfies_privacy(anon, privacy, k, ctx.item_hierarchy.as_ref())
        }
        other => secreta_transaction::is_km_anonymous(
            anon,
            k,
            effective_m(other, m),
            ctx.item_hierarchy.as_ref(),
        ),
    }
}

/// Compute the full indicator set for an anonymized table.
pub fn compute_indicators(
    ctx: &SessionContext,
    anon: &AnonTable,
    phases: &PhaseTimes,
    verified: bool,
) -> Indicators {
    let hierarchy_of = |attr: usize| ctx.hierarchy_of(attr).cloned();
    let item_h = ctx.item_hierarchy.as_ref();
    Indicators {
        gcp: gcp(&ctx.table, anon, hierarchy_of),
        tx_gcp: transaction_gcp(&ctx.table, anon, item_h),
        ul: utility_loss(&ctx.table, anon, item_h),
        are: average_relative_error(
            &ctx.table,
            anon,
            &ctx.workload,
            |attr| ctx.hierarchy_of(attr).cloned(),
            item_h,
        ),
        item_freq_error: freq::mean_item_frequency_error(&ctx.table, anon, item_h),
        discernibility: loss::discernibility(anon),
        avg_class_size: loss::average_class_size(anon),
        runtime_ms: phases.total().as_secs_f64() * 1e3,
        verified,
        risk: None,
    }
}

/// Attack the anonymized output with the adversary models of
/// `secreta-risk`: prosecutor/journalist re-identification over the
/// relational classes, the m-item background-knowledge adversary over
/// the transaction part, and a violation-counting audit of the
/// guarantee `spec` claims. `verified` feeds the ρ-uncertainty audit,
/// which reports the verifier's verdict rather than re-mining rules.
pub fn compute_risk(
    ctx: &SessionContext,
    spec: &MethodSpec,
    anon: &AnonTable,
    verified: bool,
) -> secreta_metrics::RiskIndicators {
    use secreta_risk::Guarantee;
    let guarantee = match spec {
        MethodSpec::Relational { k, .. } => Guarantee::KAnonymity { k: *k },
        MethodSpec::Transaction { algo, k, m } => match algo {
            crate::config::TxAlgo::Coat | crate::config::TxAlgo::Pcta => {
                Guarantee::Policy { k: *k }
            }
            other => Guarantee::KmAnonymity {
                k: *k,
                m: effective_m(*other, *m),
            },
        },
        MethodSpec::Rt { tx, k, m, .. } => Guarantee::KKmAnonymity {
            k: *k,
            m: effective_m(*tx, *m),
        },
        MethodSpec::Rho { rho, .. } => Guarantee::RhoUncertainty {
            rho: *rho,
            satisfied: verified,
        },
    };
    // COAT/PCTA without an explicit policy protect every item (the
    // same default `verify_transaction` audits against)
    let default_policy;
    let privacy = match (&guarantee, &ctx.privacy) {
        (Guarantee::Policy { .. }, Some(p)) => Some(p),
        (Guarantee::Policy { .. }, None) => {
            default_policy = PrivacyPolicy::all_items(&ctx.table);
            Some(&default_policy)
        }
        _ => ctx.privacy.as_ref(),
    };
    secreta_risk::evaluate(
        &ctx.table,
        anon,
        ctx.item_hierarchy.as_ref(),
        privacy,
        &guarantee,
        &secreta_risk::RiskParams::default(),
        secreta_transaction::Counting::Kernel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Bounding, RelAlgo, TxAlgo};
    use secreta_gen::{DatasetSpec, WorkloadSpec};

    fn rt_ctx() -> SessionContext {
        let t = DatasetSpec::adult_like(120, 3).generate();
        let w = WorkloadSpec {
            n_queries: 30,
            ..Default::default()
        };
        let ctx = SessionContext::auto(t, 4).unwrap();
        let w = w.generate(&ctx.table);
        ctx.with_workload(w)
    }

    #[test]
    fn relational_run_produces_verified_output() {
        let ctx = rt_ctx();
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 5,
        };
        let out = run(&ctx, &spec, 1).unwrap();
        assert!(out.indicators.verified);
        assert!(out.indicators.gcp >= 0.0 && out.indicators.gcp <= 1.0);
        assert!(out.indicators.avg_class_size >= 5.0);
        assert!(out.indicators.are >= 0.0);
    }

    #[test]
    fn transaction_run_produces_verified_output() {
        let ctx = rt_ctx();
        for algo in [TxAlgo::Apriori, TxAlgo::Coat, TxAlgo::Pcta] {
            let spec = MethodSpec::Transaction { algo, k: 3, m: 2 };
            let out = run(&ctx, &spec, 1).unwrap();
            assert!(out.indicators.verified, "{algo:?}");
            assert!(out.indicators.tx_gcp >= 0.0);
        }
    }

    #[test]
    fn rt_run_produces_verified_output() {
        let ctx = rt_ctx();
        let spec = MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Apriori,
            bounding: Bounding::RMerge,
            k: 4,
            m: 2,
            delta: 2,
        };
        let out = run(&ctx, &spec, 1).unwrap();
        assert!(out.indicators.verified);
        assert!(out.indicators.gcp > 0.0, "some relational loss expected");
        assert!(out.indicators.runtime_ms > 0.0);
        assert!(!out.phases.phases.is_empty());
    }

    #[test]
    fn runs_carry_the_risk_block() {
        let ctx = rt_ctx();
        // relational: prosecutor risk over classes of size ≥ k, audit
        // against k-anonymity
        let rel = run(
            &ctx,
            &MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k: 5,
            },
            1,
        )
        .unwrap();
        let risk = rel.indicators.risk.as_ref().unwrap();
        let r = risk.rel.as_ref().unwrap();
        assert!(r.max_prosecutor <= 1.0 / 5.0, "verified k=5 caps 1/|EC|");
        assert!(risk.audit.passed);
        assert_eq!(risk.audit.guarantee, "k-anonymity(k=5)");

        // transaction: m-item uniqueness for m = 1..=3, k^m audit
        let tx = run(
            &ctx,
            &MethodSpec::Transaction {
                algo: TxAlgo::Apriori,
                k: 3,
                m: 2,
            },
            1,
        )
        .unwrap();
        let risk = tx.indicators.risk.as_ref().unwrap();
        let per_m = &risk.tx.as_ref().unwrap().per_m;
        assert_eq!(per_m.iter().map(|p| p.m).collect::<Vec<_>>(), vec![1, 2, 3]);
        // a verified k^2 output leaves no candidate set under 3 at m ≤ 2
        assert!(per_m[1].min_candidates == 0 || per_m[1].min_candidates >= 3);
        assert_eq!(per_m[1].unique_fraction, 0.0);
        assert!(risk.audit.passed);
        assert_eq!(risk.audit.guarantee, "k^m-anonymity(k=3,m=2)");

        // COAT audits its policy, not k^m
        let coat = run(
            &ctx,
            &MethodSpec::Transaction {
                algo: TxAlgo::Coat,
                k: 3,
                m: 2,
            },
            1,
        )
        .unwrap();
        let risk = coat.indicators.risk.as_ref().unwrap();
        assert!(risk.audit.passed);
        assert_eq!(risk.audit.guarantee, "privacy-policy(k=3)");

        // RT: both sides present
        let rt = run(
            &ctx,
            &MethodSpec::Rt {
                rel: RelAlgo::Cluster,
                tx: TxAlgo::Apriori,
                bounding: Bounding::RMerge,
                k: 4,
                m: 2,
                delta: 2,
            },
            1,
        )
        .unwrap();
        let risk = rt.indicators.risk.as_ref().unwrap();
        assert!(risk.rel.is_some() && risk.tx.is_some());
        assert!(risk.audit.passed);
        assert_eq!(risk.audit.guarantee, "(k,k^m)-anonymity(k=4,m=2)");
    }

    #[test]
    fn bad_configs_are_rejected() {
        let census = SessionContext::auto(DatasetSpec::census(30, 1).generate(), 3).unwrap();
        let tx_spec = MethodSpec::Transaction {
            algo: TxAlgo::Coat,
            k: 2,
            m: 1,
        };
        assert!(matches!(
            run(&census, &tx_spec, 0),
            Err(RunError::BadConfig(_))
        ));
        let rt_spec = MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Coat,
            bounding: Bounding::RMerge,
            k: 2,
            m: 1,
            delta: 1,
        };
        assert!(matches!(
            run(&census, &rt_spec, 0),
            Err(RunError::BadConfig(_))
        ));

        let basket = SessionContext::auto(DatasetSpec::basket(30, 10, 1).generate(), 3).unwrap();
        let rel_spec = MethodSpec::Relational {
            algo: RelAlgo::Incognito,
            k: 2,
        };
        assert!(matches!(
            run(&basket, &rel_spec, 0),
            Err(RunError::BadConfig(_))
        ));
    }

    #[test]
    fn profile_follows_obsv_config() {
        let spec = MethodSpec::Rt {
            rel: RelAlgo::Cluster,
            tx: TxAlgo::Apriori,
            bounding: Bounding::RMerge,
            k: 4,
            m: 2,
            delta: 2,
        };
        // disabled (the default): no profile
        let ctx = rt_ctx();
        assert!(run(&ctx, &spec, 1).unwrap().profile.is_none());

        // enabled: a span tree mirroring the phases, plus counters
        let ctx = ctx.with_obsv(secreta_obsv::ObsvConfig::enabled());
        let out = run(&ctx, &spec, 1).unwrap();
        let p = out.profile.expect("enabled config records a profile");
        let tops: Vec<&str> = p.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            tops,
            [
                "relational partitioning",
                "cluster merging",
                "transaction anonymization",
                "publish",
                "metrics"
            ]
        );
        // the relational sub-run's phases nest under partitioning
        let rel = &p.spans[0];
        assert!(
            rel.children.iter().any(|c| c.name == "clustering"),
            "sub-algorithm phases adopt into the outer phase: {rel:?}"
        );
        assert!(p.counter("rt/clusters").unwrap_or(0) > 0);
        // identical run, same seed: indicators must not change when
        // observability is on (recording is passive)
        let base = run(&rt_ctx(), &spec, 1).unwrap();
        assert_eq!(base.indicators.gcp, out.indicators.gcp);
    }

    #[test]
    fn trace_sink_round_trips_profile_totals() {
        let (sink, buf) = secreta_obsv::TraceSink::buffer();
        let ctx = rt_ctx().with_obsv(secreta_obsv::ObsvConfig::with_trace(sink));
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 5,
        };
        let out = run(&ctx, &spec, 1).unwrap();
        let p = out.profile.expect("trace config records a profile");
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let mut span_lines = 0usize;
        let mut summary_total = None;
        for line in text.lines() {
            let v = serde_json::parse_value(line).expect("every trace line is JSON");
            match v.get("ev").and_then(|e| e.as_str()) {
                Some("span") => span_lines += 1,
                Some("run") => summary_total = v.get("total_us").and_then(|t| t.as_u64()),
                _ => {}
            }
        }
        assert_eq!(span_lines, p.flat().len(), "one span record per span");
        assert_eq!(
            summary_total,
            Some(p.total().as_micros() as u64),
            "NDJSON summary total matches the profile's"
        );
    }

    #[test]
    fn run_isolated_maps_deadline_to_timed_out() {
        // A zero budget trips the cooperative check at the first phase
        // boundary; run_isolated turns the typed unwind into TimedOut.
        let ctx = rt_ctx().with_job_deadline(std::time::Duration::ZERO);
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 5,
        };
        assert_eq!(
            run_isolated(&ctx, &spec, 1).unwrap_err(),
            RunError::TimedOut { limit_ms: 0 }
        );
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn run_isolated_maps_memory_budget_to_budget_exceeded() {
        // A 1 MB budget is always below the live peak RSS, so the
        // check trips at the first phase boundary and run_isolated
        // maps the typed unwind to BudgetExceeded.
        let ctx = rt_ctx().with_memory_budget(1);
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 5,
        };
        match run_isolated(&ctx, &spec, 1).unwrap_err() {
            RunError::BudgetExceeded {
                limit_bytes,
                observed_bytes,
            } => {
                assert_eq!(limit_bytes, 1024 * 1024);
                assert!(observed_bytes > limit_bytes);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn runs_publish_chunked_ingest_counters() {
        use secreta_data::chunk::{read_chunked, MemoryBudget};
        use secreta_data::CsvOptions;
        let mut buf = Vec::new();
        secreta_data::csv::write_table(
            &rt_ctx().table,
            &mut buf,
            &CsvOptions::with_transaction("Items"),
        )
        .unwrap();
        let chunked = read_chunked(
            buf.as_slice(),
            &CsvOptions::with_transaction("Items"),
            16,
            MemoryBudget::megabytes(64),
        )
        .unwrap();
        let stats = chunked.stats();
        let ctx = SessionContext::auto(chunked.into_table().unwrap(), 4)
            .unwrap()
            .with_obsv(secreta_obsv::ObsvConfig::enabled())
            .with_ingest_stats(stats);
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 5,
        };
        let out = run(&ctx, &spec, 1).unwrap();
        let p = out.profile.expect("profile recorded");
        assert!(p.counter("chunk/chunks").unwrap_or(0) > 0);
        assert_eq!(
            p.counter("chunk/rows"),
            Some(ctx.table.n_rows() as u64),
            "chunk/rows counts every ingested row"
        );
        assert!(p.counter("budget/peak_accounted_bytes").unwrap_or(0) > 0);
        assert_eq!(p.counter("budget/limit_bytes"), Some(64 * 1024 * 1024));
    }

    #[test]
    fn run_isolated_maps_tripped_token_to_cancelled() {
        let token = secreta_obsv::CancelToken::new();
        token.cancel();
        let ctx = rt_ctx().with_cancel(token);
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 5,
        };
        assert_eq!(
            run_isolated(&ctx, &spec, 1).unwrap_err(),
            RunError::Cancelled
        );
    }

    #[test]
    fn limits_do_not_change_results() {
        // A generous deadline must be invisible: identical output and
        // indicators with and without limits attached.
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 5,
        };
        let plain = run(&rt_ctx(), &spec, 1).unwrap();
        let limited = run_isolated(
            &rt_ctx().with_job_deadline(std::time::Duration::from_secs(3600)),
            &spec,
            1,
        )
        .unwrap();
        assert_eq!(plain.anon, limited.anon);
        assert_eq!(plain.indicators.gcp, limited.indicators.gcp);
    }

    #[test]
    fn classify_unwind_tells_cancellation_from_panics() {
        let boxed = |p: Box<dyn std::any::Any + Send>| p;
        assert_eq!(
            classify_unwind(boxed(Box::new(secreta_obsv::Cancelled::DeadlineExceeded {
                limit_ms: 250
            }))),
            RunError::TimedOut { limit_ms: 250 }
        );
        assert_eq!(
            classify_unwind(boxed(Box::new(secreta_obsv::Cancelled::Requested))),
            RunError::Cancelled
        );
        assert_eq!(
            classify_unwind(boxed(Box::new(String::from("boom")))),
            RunError::Panicked("boom".into())
        );
        assert_eq!(
            classify_unwind(boxed(Box::new("static boom"))),
            RunError::Panicked("static boom".into())
        );
        assert_eq!(
            classify_unwind(boxed(Box::new(42u32))),
            RunError::Panicked("non-string panic payload".into())
        );
    }

    #[test]
    fn infeasible_k_maps_to_run_error() {
        let ctx = rt_ctx();
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Incognito,
            k: 10_000,
        };
        assert!(matches!(run(&ctx, &spec, 0), Err(RunError::Rel(_))));
    }

    #[test]
    fn are_increases_with_k() {
        let ctx = rt_ctx();
        let mut prev = -1.0;
        for k in [2, 10, 40] {
            let spec = MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k,
            };
            let out = run(&ctx, &spec, 1).unwrap();
            // GCP is monotone; ARE is noisier but must not collapse
            assert!(out.indicators.gcp >= prev - 1e-9, "k={k}");
            prev = out.indicators.gcp;
        }
    }
}

#[cfg(test)]
mod rho_tests {
    use super::*;
    use crate::config::MethodSpec;
    use secreta_gen::DatasetSpec;

    #[test]
    fn rho_uncertainty_runs_and_verifies() {
        let mut spec = DatasetSpec::adult_like(200, 3);
        spec.n_items = 20;
        let ctx = SessionContext::auto(spec.generate(), 3).unwrap();
        let label = ctx.table.item_pool().unwrap().resolve(0).to_owned();
        let method = MethodSpec::Rho {
            rho: 0.3,
            sensitive: vec![label],
            max_antecedent: 2,
            generalize: false,
        };
        let out = run(&ctx, &method, 0).unwrap();
        assert!(out.indicators.verified);
        assert!(out
            .anon
            .is_truthful(&ctx.table, |_| None, ctx.item_hierarchy.as_ref()));
    }

    #[test]
    fn rho_unknown_sensitive_item_rejected() {
        let ctx = SessionContext::auto(DatasetSpec::adult_like(50, 1).generate(), 3).unwrap();
        let method = MethodSpec::Rho {
            rho: 0.3,
            sensitive: vec!["no_such_item".into()],
            max_antecedent: 1,
            generalize: false,
        };
        assert!(matches!(run(&ctx, &method, 0), Err(RunError::BadConfig(_))));
    }

    #[test]
    fn tdcontrol_runs_and_verifies() {
        let mut spec = secreta_gen::DatasetSpec::adult_like(200, 4);
        spec.n_items = 20;
        let ctx = SessionContext::auto(spec.generate(), 2).unwrap();
        let label = ctx.table.item_pool().unwrap().resolve(0).to_owned();
        let method = MethodSpec::Rho {
            rho: 0.4,
            sensitive: vec![label],
            max_antecedent: 2,
            generalize: true,
        };
        let out = run(&ctx, &method, 0).unwrap();
        assert!(out.indicators.verified);
        assert!(out
            .anon
            .is_truthful(&ctx.table, |_| None, ctx.item_hierarchy.as_ref()));
    }

    #[test]
    fn rho_on_relational_only_rejected() {
        let ctx = SessionContext::auto(DatasetSpec::census(50, 1).generate(), 3).unwrap();
        let method = MethodSpec::Rho {
            rho: 0.3,
            sensitive: vec!["x".into()],
            max_antecedent: 1,
            generalize: false,
        };
        assert!(matches!(run(&ctx, &method, 0), Err(RunError::BadConfig(_))));
    }
}
