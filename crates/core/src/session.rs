//! Saved sessions: the file equivalent of the GUI's accumulated state.
//!
//! The SECRETA frontend lets a publisher load a dataset, attach
//! hierarchies, policies and a query workload, and then run
//! experiments against that state. [`SessionSpec`] captures the same
//! state as a JSON document of file references, so a full session can
//! be version-controlled and replayed:
//!
//! ```json
//! {
//!   "dataset": "data.csv",
//!   "transaction_column": "Items",
//!   "fanout": 4,
//!   "hierarchy_files": { "Age": "age.hier" },
//!   "workload_file": "queries.txt",
//!   "privacy_file": "privacy.txt",
//!   "utility_file": "utility.txt"
//! }
//! ```
//!
//! Attributes without an entry in `hierarchy_files` get automatically
//! derived hierarchies (fan-out `fanout`), exactly like the
//! Configuration Editor's "derive from data" path.

use crate::context::SessionContext;
use secreta_data::{csv as dcsv, stats, CsvOptions, DataError};
use secreta_hierarchy::{io as hio, HierarchyError};
use secreta_metrics::query::read_workload;
use secreta_policy::io as pio;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A serializable session description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Dataset CSV path (relative paths resolve against the spec's
    /// own directory).
    pub dataset: PathBuf,
    /// Name of the transaction column, if any.
    #[serde(default)]
    pub transaction_column: Option<String>,
    /// Fan-out for automatically derived hierarchies.
    #[serde(default = "default_fanout")]
    pub fanout: usize,
    /// Explicit hierarchy files per attribute name (`;`-delimited
    /// leaf-to-root paths). The special key `"@items"` targets the
    /// transaction attribute's item hierarchy.
    #[serde(default)]
    pub hierarchy_files: BTreeMap<String, PathBuf>,
    /// Query workload file (Queries Editor format).
    #[serde(default)]
    pub workload_file: Option<PathBuf>,
    /// COAT/PCTA privacy policy file.
    #[serde(default)]
    pub privacy_file: Option<PathBuf>,
    /// COAT/PCTA utility policy file.
    #[serde(default)]
    pub utility_file: Option<PathBuf>,
}

fn default_fanout() -> usize {
    4
}

/// Errors raised while loading a session.
#[derive(Debug)]
pub enum SessionError {
    /// I/O or parse failure, with the offending path.
    File(PathBuf, String),
    /// The spec references something the dataset does not have.
    Inconsistent(String),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::File(p, e) => write!(f, "{}: {e}", p.display()),
            SessionError::Inconsistent(msg) => write!(f, "inconsistent session: {msg}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Convert a dataset error into [`SessionError::File`] without
/// repeating the path when the error already carries it.
fn data_file_error(path: &Path, e: DataError) -> SessionError {
    match e {
        DataError::InFile { path, error } => SessionError::File(path, error.to_string()),
        e => SessionError::File(path.to_owned(), e.to_string()),
    }
}

/// Same as [`data_file_error`], for hierarchy errors.
fn hierarchy_file_error(path: &Path, e: HierarchyError) -> SessionError {
    match e {
        HierarchyError::Io { path, message } => SessionError::File(path, message),
        e => SessionError::File(path.to_owned(), e.to_string()),
    }
}

impl SessionSpec {
    /// Minimal spec for a dataset file.
    pub fn new(dataset: impl Into<PathBuf>) -> Self {
        SessionSpec {
            dataset: dataset.into(),
            transaction_column: None,
            fanout: default_fanout(),
            hierarchy_files: BTreeMap::new(),
            workload_file: None,
            privacy_file: None,
            utility_file: None,
        }
    }

    /// Parse a spec from JSON text.
    pub fn from_json(text: &str) -> Result<SessionSpec, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Serialize the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Load the full session, resolving relative paths against
    /// `base_dir`.
    pub fn load(&self, base_dir: &Path) -> Result<SessionContext, SessionError> {
        let resolve = |p: &Path| -> PathBuf {
            if p.is_absolute() {
                p.to_owned()
            } else {
                base_dir.join(p)
            }
        };

        // dataset, with numeric auto-detection (as the CLI does)
        let data_path = resolve(&self.dataset);
        let mut opts = CsvOptions {
            transaction_column: self.transaction_column.clone(),
            ..CsvOptions::default()
        };
        let probe =
            dcsv::read_table_path(&data_path, &opts).map_err(|e| data_file_error(&data_path, e))?;
        opts.numeric_columns = stats::summarize(&probe)
            .into_iter()
            .filter(|s| s.min.is_some())
            .map(|s| s.name)
            .collect();
        let table =
            dcsv::read_table_path(&data_path, &opts).map_err(|e| data_file_error(&data_path, e))?;

        // start from auto hierarchies, then overlay explicit files
        let mut ctx = SessionContext::auto(table, self.fanout)
            .map_err(|e| SessionError::Inconsistent(e.to_string()))?;
        for (attr_name, file) in &self.hierarchy_files {
            let path = resolve(file);
            if attr_name == "@items" {
                let pool = ctx.table.item_pool().ok_or_else(|| {
                    SessionError::Inconsistent(
                        "@items hierarchy given but the dataset has no transaction attribute"
                            .into(),
                    )
                })?;
                let h = hio::read_hierarchy_path(&path, pool, ';')
                    .map_err(|e| hierarchy_file_error(&path, e))?;
                ctx.item_hierarchy = Some(h);
            } else {
                let attr = ctx.table.schema().index_of(attr_name).ok_or_else(|| {
                    SessionError::Inconsistent(format!("unknown attribute {attr_name:?}"))
                })?;
                let pos = ctx
                    .qi_attrs
                    .iter()
                    .position(|&a| a == attr)
                    .ok_or_else(|| {
                        SessionError::Inconsistent(format!(
                            "attribute {attr_name:?} is not relational"
                        ))
                    })?;
                let h = hio::read_hierarchy_path(&path, ctx.table.pool(attr), ';')
                    .map_err(|e| hierarchy_file_error(&path, e))?;
                ctx.hierarchies[pos] = h;
            }
        }

        if let Some(file) = &self.workload_file {
            let path = resolve(file);
            let reader = std::fs::File::open(&path)
                .map_err(|e| SessionError::File(path.clone(), e.to_string()))?;
            ctx.workload = read_workload(reader, &ctx.table)
                .map_err(|e| SessionError::File(path.clone(), e.to_string()))?;
        }
        if let Some(file) = &self.privacy_file {
            let path = resolve(file);
            let reader = std::fs::File::open(&path)
                .map_err(|e| SessionError::File(path.clone(), e.to_string()))?;
            ctx.privacy = Some(
                pio::read_privacy(reader, &ctx.table)
                    .map_err(|e| SessionError::File(path.clone(), e.to_string()))?,
            );
        }
        if let Some(file) = &self.utility_file {
            let path = resolve(file);
            let reader = std::fs::File::open(&path)
                .map_err(|e| SessionError::File(path.clone(), e.to_string()))?;
            ctx.utility = Some(
                pio::read_utility(reader, &ctx.table)
                    .map_err(|e| SessionError::File(path.clone(), e.to_string()))?,
            );
        }
        Ok(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_gen::{DatasetSpec, WorkloadSpec};
    use secreta_metrics::query::write_workload;
    use secreta_policy::{generate_privacy, PrivacyStrategy};

    fn setup_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("secreta_session_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_dataset(dir: &Path) -> PathBuf {
        let table = DatasetSpec::adult_like(80, 5).generate();
        let path = dir.join("data.csv");
        let opts = CsvOptions {
            transaction_column: Some("Items".into()),
            ..CsvOptions::default()
        };
        dcsv::write_table_path(&table, &path, &opts).unwrap();
        path
    }

    #[test]
    fn minimal_session_loads_with_auto_everything() {
        let dir = setup_dir();
        write_dataset(&dir);
        let mut spec = SessionSpec::new("data.csv");
        spec.transaction_column = Some("Items".into());
        let ctx = spec.load(&dir).unwrap();
        assert_eq!(ctx.table.n_rows(), 80);
        assert_eq!(ctx.hierarchies.len(), ctx.qi_attrs.len());
        assert!(ctx.item_hierarchy.is_some());
        assert!(ctx.workload.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explicit_files_override_auto_derivation() {
        let dir = setup_dir();
        write_dataset(&dir);
        // build a session once to export artifacts
        let mut spec = SessionSpec::new("data.csv");
        spec.transaction_column = Some("Items".into());
        let base = spec.load(&dir).unwrap();

        // export a coarser Age hierarchy (fanout 8) and reload via file
        let coarse = secreta_hierarchy::auto_hierarchy(
            base.table.pool(0),
            secreta_data::AttributeKind::Numeric,
            8,
        )
        .unwrap();
        hio::write_hierarchy_path(&coarse, dir.join("age.hier"), ';').unwrap();

        let w = WorkloadSpec {
            n_queries: 7,
            ..Default::default()
        }
        .generate(&base.table);
        let mut f = std::fs::File::create(dir.join("queries.txt")).unwrap();
        write_workload(&w, &base.table, &mut f).unwrap();

        let p = generate_privacy(&base.table, &PrivacyStrategy::AllItems);
        let mut f = std::fs::File::create(dir.join("privacy.txt")).unwrap();
        pio::write_privacy(&p, &base.table, &mut f).unwrap();

        spec.hierarchy_files
            .insert("Age".into(), PathBuf::from("age.hier"));
        spec.workload_file = Some(PathBuf::from("queries.txt"));
        spec.privacy_file = Some(PathBuf::from("privacy.txt"));

        let ctx = spec.load(&dir).unwrap();
        assert_eq!(ctx.hierarchies[0].height(), coarse.height());
        assert_eq!(ctx.workload.len(), 7);
        assert_eq!(ctx.privacy.as_ref().unwrap().len(), p.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_roundtrip() {
        let mut spec = SessionSpec::new("d.csv");
        spec.transaction_column = Some("Items".into());
        spec.hierarchy_files
            .insert("@items".into(), PathBuf::from("items.hier"));
        spec.workload_file = Some(PathBuf::from("q.txt"));
        let back = SessionSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        // defaults apply when fields are omitted
        let min: SessionSpec = SessionSpec::from_json(r#"{"dataset":"x.csv"}"#).unwrap();
        assert_eq!(min.fanout, 4);
        assert!(min.hierarchy_files.is_empty());
    }

    #[test]
    fn bad_references_are_reported() {
        let dir = setup_dir();
        write_dataset(&dir);
        let mut spec = SessionSpec::new("data.csv");
        spec.transaction_column = Some("Items".into());

        spec.hierarchy_files
            .insert("Nope".into(), PathBuf::from("x.hier"));
        assert!(matches!(
            spec.load(&dir),
            Err(SessionError::Inconsistent(_))
        ));

        spec.hierarchy_files.clear();
        spec.workload_file = Some(PathBuf::from("missing.txt"));
        assert!(matches!(spec.load(&dir), Err(SessionError::File(..))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dataset_reported_with_path() {
        let spec = SessionSpec::new("does_not_exist.csv");
        let err = spec.load(Path::new("/tmp")).unwrap_err();
        assert!(err.to_string().contains("does_not_exist.csv"));
    }
}
