//! Comparison mode (the Experimentation Module's comparative half).
//!
//! "The Comparison mode offers data publishers the ability to design
//! and execute benchmarks for comparing multiple anonymization
//! algorithms … The results of the comparative analysis are
//! summarized and presented graphically."
//!
//! A [`Configuration`] is exactly what the paper's Figure 4 collects:
//! algorithm choices, fixed parameter values and a varying parameter;
//! [`compare`] executes every configuration's sweep and produces the
//! multi-series charts of the comparison screen's plotting area.

use crate::anonymizer::{Indicators, RunError};
use crate::config::MethodSpec;
use crate::context::SessionContext;
use crate::orchestrator::Orchestrator;
use crate::sweep::{Sweep, SweepPoint, VaryingParam};
use secreta_plot::{Series, XyChart};
use serde::{Deserialize, Serialize, Value};

/// One entry of the comparison screen's "experimenter area".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Configuration {
    /// Legend label (defaults to the spec's label when empty).
    pub label: String,
    /// Algorithm(s) + fixed parameters.
    pub spec: MethodSpec,
    /// The varying parameter.
    pub sweep: Sweep,
    /// Seed for randomized algorithms.
    pub seed: u64,
}

impl Configuration {
    /// Build a configuration, deriving the label from the spec.
    pub fn new(spec: MethodSpec, sweep: Sweep, seed: u64) -> Self {
        Configuration {
            label: spec.label(),
            spec,
            sweep,
            seed,
        }
    }
}

/// Results of one comparison: per configuration, the sweep samples.
#[derive(Debug)]
pub struct ComparisonResult {
    /// Labels, parallel to `points`.
    pub labels: Vec<String>,
    /// The shared varying parameter (of the first configuration; all
    /// configurations are expected to vary the same one).
    pub param: VaryingParam,
    /// Per configuration: `(value, point or error)` samples.
    pub points: Vec<Vec<(usize, Result<SweepPoint, RunError>)>>,
}

impl ComparisonResult {
    /// Multi-series chart of one indicator across all configurations.
    pub fn chart(
        &self,
        title: impl Into<String>,
        y_label: impl Into<String>,
        pick: impl Fn(&Indicators) -> f64,
    ) -> XyChart {
        let mut chart = XyChart::new(title, self.param.label(), y_label);
        for (label, pts) in self.labels.iter().zip(&self.points) {
            chart.push(Series::new(
                label.clone(),
                pts.iter()
                    .filter_map(|(v, r)| r.as_ref().ok().map(|p| (*v as f64, pick(&p.indicators))))
                    .collect(),
            ));
        }
        chart
    }
}

/// Execute every configuration's sweep (all points of all
/// configurations share one thread pool).
///
/// This is the store-less path through the [`Orchestrator`]; attach a
/// run store via [`Orchestrator::with_store`] to get caching,
/// journaling and resumability on top of the same expansion.
pub fn compare(
    ctx: &SessionContext,
    configurations: &[Configuration],
    threads: usize,
) -> ComparisonResult {
    Orchestrator::new(threads)
        .compare(ctx, configurations, Value::Null)
        .expect("store-less orchestration performs no store i/o")
        .result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RelAlgo, TxAlgo};
    use secreta_gen::{DatasetSpec, WorkloadSpec};

    fn ctx() -> SessionContext {
        let t = DatasetSpec::adult_like(80, 5).generate();
        let ctx = SessionContext::auto(t, 4).unwrap();
        let w = WorkloadSpec {
            n_queries: 15,
            ..Default::default()
        }
        .generate(&ctx.table);
        ctx.with_workload(w)
    }

    fn k_sweep() -> Sweep {
        Sweep {
            param: VaryingParam::K,
            start: 2,
            end: 10,
            step: 4,
        }
    }

    #[test]
    fn compares_multiple_relational_algorithms() {
        let ctx = ctx();
        let configs = vec![
            Configuration::new(
                MethodSpec::Relational {
                    algo: RelAlgo::Cluster,
                    k: 0,
                },
                k_sweep(),
                1,
            ),
            Configuration::new(
                MethodSpec::Relational {
                    algo: RelAlgo::Incognito,
                    k: 0,
                },
                k_sweep(),
                1,
            ),
        ];
        let result = compare(&ctx, &configs, 4);
        assert_eq!(result.labels.len(), 2);
        assert_eq!(result.points[0].len(), 3);
        assert_eq!(result.points[1].len(), 3);
        for pts in &result.points {
            for (v, r) in pts {
                assert!(r.as_ref().unwrap().indicators.verified, "k={v}");
            }
        }
        let chart = result.chart("GCP vs k", "GCP", |i| i.gcp);
        assert_eq!(chart.series.len(), 2);
        assert_eq!(chart.series[0].points.len(), 3);
    }

    #[test]
    fn mixed_method_classes_compare() {
        let ctx = ctx();
        let configs = vec![
            Configuration::new(
                MethodSpec::Relational {
                    algo: RelAlgo::TopDown,
                    k: 0,
                },
                k_sweep(),
                1,
            ),
            Configuration::new(
                MethodSpec::Transaction {
                    algo: TxAlgo::Apriori,
                    k: 0,
                    m: 2,
                },
                k_sweep(),
                1,
            ),
        ];
        let result = compare(&ctx, &configs, 2);
        for pts in &result.points {
            assert!(pts.iter().all(|(_, r)| r.is_ok()));
        }
    }

    #[test]
    fn labels_default_to_spec_labels() {
        let cfg = Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k: 3,
            },
            k_sweep(),
            0,
        );
        assert!(cfg.label.contains("Cluster"));
    }

    #[test]
    fn empty_comparison() {
        let ctx = ctx();
        let result = compare(&ctx, &[], 2);
        assert!(result.labels.is_empty());
        assert!(result.points.is_empty());
        let chart = result.chart("t", "y", |i| i.gcp);
        assert!(chart.series.is_empty());
    }
}
