//! # secreta-core
//!
//! The SECRETA benchmarking framework — the paper's primary
//! contribution: "a system for analyzing the effectiveness and
//! efficiency of anonymization algorithms \[that\] allows data
//! publishers to evaluate a specific algorithm, compare multiple
//! algorithms, and combine algorithms for anonymizing datasets with
//! both relational and transaction attributes."
//!
//! Mapping to the architecture of the paper's Figure 1:
//!
//! | Paper component | Module |
//! |---|---|
//! | Anonymization Module | [`anonymizer`] |
//! | Method Evaluator / Comparator (N threads) | [`evaluator`] |
//! | Experimentation Module (single & varying parameter) | [`sweep`], [`comparison`] |
//! | Policy Specification Module | re-exported from `secreta-policy` / `secreta-hierarchy` |
//! | Data Export Module | [`export`] |
//! | Configuration (saved sessions) | [`config`] |
//!
//! The frontend equivalents (Dataset Editor, Queries Editor, plotting)
//! live in `secreta-data`, `secreta-metrics` and `secreta-plot`; the
//! CLI binary `secreta` wires everything together.

pub mod anonymizer;
pub mod comparison;
pub mod config;
pub mod context;
pub mod distributed;
pub mod evaluator;
pub mod export;
pub mod orchestrator;
pub mod session;
pub mod sweep;

pub use anonymizer::{Indicators, RunError, RunResult};
pub use comparison::{compare, ComparisonResult, Configuration};
pub use config::{Bounding, MethodSpec, RelAlgo, TxAlgo};
pub use context::SessionContext;
pub use distributed::{
    run_distributed, sweep_id_for, worker_loop, DistOptions, WorkerError, WorkerReport,
    WorkerSpawner,
};
pub use orchestrator::{context_digest, CacheStats, Orchestrated, Orchestrator};
pub use session::{SessionError, SessionSpec};
pub use sweep::{evaluate_sweep, Sweep, SweepPoint, VaryingParam};

// Re-export the substrate crates so downstream users need only one
// dependency (the umbrella crate re-exports us in turn).
pub use secreta_data as data;
pub use secreta_faults as faults;
pub use secreta_gen as gen;
pub use secreta_hierarchy as hierarchy;
pub use secreta_metrics as metrics;
pub use secreta_obsv as obsv;
pub use secreta_parallel as parallel;
pub use secreta_plot as plot;
pub use secreta_policy as policy;
pub use secreta_relational as relational;
pub use secreta_risk as risk;
pub use secreta_rt as rt;
pub use secreta_store as store;
pub use secreta_transaction as transaction;
