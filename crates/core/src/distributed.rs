//! Distributed sweep execution: a crash-tolerant coordinator/worker
//! split over the run store.
//!
//! The in-process orchestrator fans sweep jobs over a thread pool; this
//! module fans the *same* expansion over independent worker processes
//! that share nothing but the store directory. The split:
//!
//! * **Coordinator** ([`run_distributed`]) — holds the store lock,
//!   journals the sweep intent, serves cache hits, publishes one
//!   claimable [`JobRecord`] per miss, optionally spawns local worker
//!   processes, then waits for the store to fill in. Results are merged
//!   in deterministic expansion order, so the output is byte-identical
//!   to a single-process run no matter which worker executed what — or
//!   how many of them crashed along the way.
//! * **Worker** ([`worker_loop`]) — discovers the sweep in the journal,
//!   validates its session against the recorded context digest, then
//!   repeatedly claims pending jobs through crash-safe lease files
//!   ([`secreta_store::lease`]), executes them via
//!   [`run_isolated`](crate::anonymizer::run_isolated), and publishes
//!   through the lease-fenced [`RunStore::put_fenced`]. A worker that
//!   dies mid-job (even `kill -9`) leaves a lease that goes stale after
//!   its TTL and is reclaimed — with an epoch bump that fences off the
//!   dead worker's late writes — by any surviving worker.
//!
//! **Failure model.** Every result commit is a tmp+rename; every lease
//! transition is a hard-link (fresh claim) or rename (reclaim) with a
//! read-back verification, so crashes never leave ambiguous ownership.
//! Because runs are deterministic in (context, spec, seed), the one
//! benign race — two workers computing the same job across a reclaim —
//! commits identical bytes whichever one wins. When *no* worker is left
//! alive and jobs remain, the coordinator degrades gracefully: lost
//! jobs are journaled as failed (marking the sweep resumable), merged
//! as [`RunError::Lost`], and the sweep reports failures — `secreta
//! runs resume` then re-executes exactly the lost tail.

use crate::anonymizer::{run_isolated, RunError, RunResult};
use crate::comparison::{ComparisonResult, Configuration};
use crate::config::MethodSpec;
use crate::context::SessionContext;
use crate::orchestrator::{
    context_digest, expand_jobs, manifest_of, replay, sweep_id_of, sweep_record_of, CacheStats,
    Orchestrated,
};
use crate::sweep::{SweepPoint, VaryingParam};
use secreta_store::{
    read_events_checked, ClaimOutcome, JobRecord, Journal, JournalEvent, LeaseSet, RunKey,
    RunStore, StoreError, SweepRecord, STORE_SCHEMA_VERSION,
};
use serde::{Deserialize, Value};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Knobs of the distributed execution layer. The defaults suit
/// interactive runs; tests shrink the TTL to exercise reclaim quickly.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// Lease heartbeat TTL: a worker silent for longer than this is
    /// presumed dead and its jobs become reclaimable.
    pub lease_ttl_ms: u64,
    /// Coordinator/worker poll interval while waiting on the store.
    pub poll_ms: u64,
    /// Worker processes the coordinator spawns (0 = attach-only: rely
    /// on externally started `secreta worker` processes).
    pub workers: usize,
    /// How long a worker polls for its sweep to appear in the journal
    /// before giving up with [`WorkerError::NoSuchSweep`].
    pub worker_wait_ms: u64,
}

impl Default for DistOptions {
    fn default() -> DistOptions {
        DistOptions {
            lease_ttl_ms: 5_000,
            poll_ms: 25,
            workers: 0,
            worker_wait_ms: 10_000,
        }
    }
}

/// Failures of one worker process (coordinator failures surface as
/// [`StoreError`], matching the in-process orchestrator).
#[derive(Debug)]
pub enum WorkerError {
    /// The sweep never appeared in the journal within the wait window.
    NoSuchSweep(String),
    /// The worker's session digests differently than the sweep's
    /// recorded context: it would compute wrong (differently-keyed)
    /// results, so it refuses to claim anything.
    ContextMismatch {
        /// Sweep whose context did not match.
        sweep: String,
        /// Context digest recorded by the coordinator.
        expected: String,
        /// Digest of this worker's session.
        actual: String,
    },
    /// A job record's spec payload did not decode.
    BadJobRecord(String, String),
    /// A store operation failed.
    Store(StoreError),
    /// Lease or journal I/O failed.
    Io(PathBuf, io::Error),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::NoSuchSweep(id) => {
                write!(f, "no sweep {id} found in the store journal")
            }
            WorkerError::ContextMismatch {
                sweep,
                expected,
                actual,
            } => write!(
                f,
                "session context {actual} does not match sweep {sweep}'s \
                 recorded context {expected}: refusing to execute jobs"
            ),
            WorkerError::BadJobRecord(key, why) => {
                write!(f, "job record {key} is malformed: {why}")
            }
            WorkerError::Store(e) => write!(f, "{e}"),
            WorkerError::Io(path, e) => write!(f, "{}: {e}", path.display()),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<StoreError> for WorkerError {
    fn from(e: StoreError) -> WorkerError {
        WorkerError::Store(e)
    }
}

/// What one worker did, reported when its loop drains. Mirrored into
/// the NDJSON trace stream as a `worker` record (`worker/*` counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Leases this worker won (fresh claims + reclaims).
    pub claimed: u64,
    /// Jobs executed and committed by this worker.
    pub executed: u64,
    /// Jobs that ran and returned an error (journaled as failed).
    pub failed: u64,
    /// Stale leases taken over from dead or silent workers.
    pub reclaimed: u64,
    /// Claim attempts that lost to a live lease.
    pub conflicts: u64,
    /// Publishes rejected by the lease fence (this worker had been
    /// reclaimed while computing).
    pub fenced: u64,
    /// Deterministic backoff sleeps while every pending job was held.
    pub backoffs: u64,
}

impl WorkerReport {
    /// The counter tuples of the registered `worker/*` family, in
    /// registry order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("worker/claimed", self.claimed),
            ("worker/executed", self.executed),
            ("worker/failed", self.failed),
            ("worker/reclaimed", self.reclaimed),
            ("worker/conflicts", self.conflicts),
            ("worker/fenced", self.fenced),
            ("worker/backoffs", self.backoffs),
        ]
    }
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn param_from_label(label: &str) -> VaryingParam {
    match label {
        "m" => VaryingParam::M,
        "δ" => VaryingParam::Delta,
        _ => VaryingParam::K,
    }
}

fn fnv(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Read the journal tolerantly (workers append while we read, so a
/// torn final line is expected, not an error) and return the last
/// intent record for `sweep_id`, if any.
fn find_sweep(journal_path: &Path, sweep_id: &str) -> io::Result<Option<SweepRecord>> {
    if !journal_path.exists() {
        return Ok(None);
    }
    let (events, _torn) = read_events_checked(journal_path)?;
    Ok(events
        .into_iter()
        .filter_map(|e| match e {
            JournalEvent::SweepStarted(rec) if rec.id == sweep_id => Some(rec),
            _ => None,
        })
        .next_back())
}

/// Keys of `sweep_id` jobs that ran and failed (ok-false finishes with
/// a recorded error): nobody should re-claim these until a resume.
fn failed_keys(journal_path: &Path, sweep_id: &str) -> io::Result<HashMap<String, String>> {
    if !journal_path.exists() {
        return Ok(HashMap::new());
    }
    let (events, _torn) = read_events_checked(journal_path)?;
    let mut out = HashMap::new();
    for e in events {
        if let JournalEvent::JobFailed {
            sweep, key, error, ..
        } = e
        {
            if sweep == sweep_id {
                out.insert(key, error);
            }
        }
    }
    Ok(out)
}

/// A background thread refreshing one held lease every TTL/3 until
/// dropped (or until the lease is lost to a reclaimer).
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Heartbeat {
    fn start(path: &Path, token: &str, ttl_ms: u64) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let path = path.to_path_buf();
        let token = token.to_owned();
        let interval = Duration::from_millis((ttl_ms / 3).max(5));
        let handle = std::thread::spawn(move || {
            let step = Duration::from_millis(5);
            'beat: loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if flag.load(Ordering::Relaxed) {
                        break 'beat;
                    }
                    std::thread::sleep(step);
                    slept += step;
                }
                // Ok(false) = the lease is no longer ours: stop beating
                // and let the fence reject the publish
                match secreta_store::lease::heartbeat(&path, &token) {
                    Ok(true) => {}
                    _ => break,
                }
            }
        });
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Claim-execute-publish loop of one worker. Returns when every job of
/// the sweep is either stored or journaled as failed. Safe to run from
/// any number of processes (or threads, in tests) concurrently: leases
/// arbitrate, fencing rejects the loser of every race, and determinism
/// makes the one unfenceable race (duplicate compute across a reclaim)
/// harmless.
pub fn worker_loop(
    ctx: &SessionContext,
    store: &RunStore,
    sweep_id: &str,
    opts: &DistOptions,
) -> Result<WorkerReport, WorkerError> {
    let digest = context_digest(ctx);
    let journal_path = store.journal_path();
    let io_err = |p: &Path| {
        let p = p.to_path_buf();
        move |e: io::Error| WorkerError::Io(p.clone(), e)
    };

    // the sweep may not be journaled yet (workers can start first):
    // poll for the intent record until the wait window closes
    let deadline = Instant::now() + Duration::from_millis(opts.worker_wait_ms);
    let record = loop {
        match find_sweep(&journal_path, sweep_id).map_err(io_err(&journal_path))? {
            Some(rec) => break rec,
            None if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(opts.poll_ms.max(1)))
            }
            None => return Err(WorkerError::NoSuchSweep(sweep_id.to_owned())),
        }
    };
    if record.context != digest {
        return Err(WorkerError::ContextMismatch {
            sweep: sweep_id.to_owned(),
            expected: record.context,
            actual: digest,
        });
    }
    let param = param_from_label(&record.param);
    // the intent record is the authoritative job list; job records
    // supply the spec/seed payload per key as the coordinator lands them
    let keys: Vec<String> = record
        .jobs
        .iter()
        .flatten()
        .map(|(_, key)| key.clone())
        .collect();

    let leases =
        LeaseSet::open(store.root(), sweep_id, opts.lease_ttl_ms).map_err(io_err(store.root()))?;
    let mut journal = store.journal()?;
    let mut report = WorkerReport::default();
    // start each scan at a token-dependent rotation so concurrent
    // workers spread over the job list instead of stampeding job 0
    let offset = if keys.is_empty() {
        0
    } else {
        (fnv(leases.token()) % keys.len() as u64) as usize
    };
    let mut attempt: u32 = 0;
    // if neither a job record nor a live lease shows up for this long,
    // the coordinator died before publishing work: exit instead of
    // spinning forever against an abandoned sweep
    let orphan_grace = Duration::from_millis((2 * opts.lease_ttl_ms).max(500));
    let mut last_activity = Instant::now();
    loop {
        let failed = failed_keys(&journal_path, sweep_id).map_err(io_err(&journal_path))?;
        let jobs: HashMap<String, JobRecord> = store
            .list_jobs(sweep_id)?
            .into_iter()
            .map(|j| (j.key.clone(), j))
            .collect();
        let mut pending = 0usize;
        let mut progressed = false;
        let mut held_this_scan = false;
        for i in 0..keys.len() {
            let key = &keys[(i + offset) % keys.len()];
            if failed.contains_key(key) || store.contains(&RunKey(key.clone())) {
                continue;
            }
            pending += 1;
            // the coordinator writes job records after the intent line;
            // a key without its record yet stays pending for the rescan
            let Some(job) = jobs.get(key) else { continue };
            let spec = MethodSpec::de(&job.spec)
                .map_err(|e| WorkerError::BadJobRecord(key.clone(), e.to_string()))?;
            let guard = match leases.claim(key).map_err(io_err(store.root()))? {
                ClaimOutcome::Claimed(guard) => guard,
                ClaimOutcome::Reclaimed(guard, old) => {
                    report.reclaimed += 1;
                    journal
                        .append(&JournalEvent::JobLeaseExpired {
                            sweep: sweep_id.to_owned(),
                            key: key.clone(),
                            pid: old.pid,
                            epoch: old.epoch,
                        })
                        .and_then(|_| {
                            journal.append(&JournalEvent::JobReclaimed {
                                sweep: sweep_id.to_owned(),
                                key: key.clone(),
                                old_pid: old.pid,
                                new_pid: std::process::id(),
                                epoch: guard.epoch(),
                            })
                        })
                        .map_err(io_err(&journal_path))?;
                    guard
                }
                ClaimOutcome::Held(_) => {
                    report.conflicts += 1;
                    held_this_scan = true;
                    continue;
                }
            };
            report.claimed += 1;
            journal
                .append(&JournalEvent::JobClaimed {
                    sweep: sweep_id.to_owned(),
                    key: key.clone(),
                    pid: std::process::id(),
                    epoch: guard.epoch(),
                })
                .map_err(io_err(&journal_path))?;
            // chaos hook: die (kill -9 style) holding a fresh lease
            secreta_faults::fault::crash_point("worker.claimed");
            journal
                .append(&JournalEvent::JobStarted {
                    sweep: sweep_id.to_owned(),
                    key: key.clone(),
                    label: job.label.clone(),
                    value: job.value,
                })
                .map_err(io_err(&journal_path))?;
            let outcome = {
                // keep the lease fresh for however long the run takes
                let _beat = Heartbeat::start(guard.path(), guard.token(), opts.lease_ttl_ms);
                run_isolated(ctx, &spec, job.seed)
            };
            // chaos hook: die after computing, before publishing
            secreta_faults::fault::crash_point("worker.publish");
            match &outcome {
                Ok(rr) => {
                    let key = RunKey(job.key.clone());
                    let manifest = manifest_of(
                        &key,
                        &record.context,
                        &job.label,
                        &spec,
                        job.seed,
                        Some((param, job.value as usize)),
                        rr,
                    );
                    let committed =
                        store.put_fenced(&manifest, &rr.anon, guard.epoch(), &|| guard.verify())?;
                    if committed {
                        journal
                            .append(&JournalEvent::JobFinished {
                                sweep: sweep_id.to_owned(),
                                key: key.0.clone(),
                                cache_hit: false,
                                ok: true,
                                wall_ms: rr.indicators.runtime_ms,
                            })
                            .map_err(io_err(&journal_path))?;
                        report.executed += 1;
                    } else {
                        report.fenced += 1;
                    }
                }
                Err(run_err) => {
                    // journal the failure only while the lease still
                    // stands: a fenced-off worker must not poison the
                    // job for its reclaimer
                    if guard.verify() {
                        journal
                            .append(&JournalEvent::JobFailed {
                                sweep: sweep_id.to_owned(),
                                key: key.clone(),
                                label: job.label.clone(),
                                value: job.value,
                                error: run_err.to_string(),
                            })
                            .and_then(|_| {
                                journal.append(&JournalEvent::JobFinished {
                                    sweep: sweep_id.to_owned(),
                                    key: key.clone(),
                                    cache_hit: false,
                                    ok: false,
                                    wall_ms: 0.0,
                                })
                            })
                            .map_err(io_err(&journal_path))?;
                        report.failed += 1;
                    } else {
                        report.fenced += 1;
                    }
                }
            }
            guard.release();
            progressed = true;
        }
        if pending == 0 {
            break;
        }
        if progressed || held_this_scan {
            last_activity = Instant::now();
        } else if last_activity.elapsed() >= orphan_grace {
            // pending jobs with no records and no live claimants:
            // the coordinator is gone, nothing left to do here
            break;
        }
        if progressed {
            attempt = 0;
        } else {
            // every pending job is held by a live worker (or its record
            // hasn't landed): back off deterministically, bounded by
            // the TTL so a crashed holder is reclaimed promptly
            report.backoffs += 1;
            let ms =
                secreta_store::backoff_ms(attempt, leases.token()).min(opts.lease_ttl_ms.max(10));
            attempt = attempt.saturating_add(1);
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
    if let Some(sink) = ctx.obsv.sink() {
        sink.write_record(&secreta_obsv::trace::worker_record(
            sweep_id,
            &report.counters(),
        ));
    }
    Ok(report)
}

/// A callback spawning one worker process for a sweep: receives the
/// worker index and the sweep id, returns the spawned [`Child`].
pub type WorkerSpawner = dyn Fn(usize, &str) -> io::Result<Child> + Sync;

/// Spawned worker children, killed (not orphaned) if the coordinator
/// errors out early.
struct ChildSet {
    children: Vec<Child>,
    spawned: bool,
}

impl ChildSet {
    fn spawn(
        spawner: Option<&WorkerSpawner>,
        workers: usize,
        sweep_id: &str,
    ) -> io::Result<ChildSet> {
        match spawner {
            Some(f) if workers > 0 => {
                let mut children = Vec::with_capacity(workers);
                for i in 0..workers {
                    children.push(f(i, sweep_id)?);
                }
                Ok(ChildSet {
                    children,
                    spawned: true,
                })
            }
            _ => Ok(ChildSet {
                children: Vec::new(),
                spawned: false,
            }),
        }
    }

    fn any_alive(&mut self) -> bool {
        self.children
            .iter_mut()
            .any(|c| matches!(c.try_wait(), Ok(None)))
    }
}

impl Drop for ChildSet {
    fn drop(&mut self) {
        for c in &mut self.children {
            if matches!(c.try_wait(), Ok(None)) {
                let _ = c.kill();
            }
            let _ = c.wait();
        }
    }
}

/// Run a comparison through the distributed coordinator: journal the
/// intent, serve cache hits, publish claimable job records, optionally
/// spawn `opts.workers` local worker processes via `spawner`, wait for
/// workers to fill the store, and merge in expansion order.
///
/// With `spawner: None` (or `workers: 0`) the coordinator runs in
/// *attach* mode: it executes nothing itself and waits for externally
/// started `secreta worker` processes. When every worker dies and jobs
/// remain, the sweep degrades instead of hanging: lost jobs are
/// journaled as failed, merged as [`RunError::Lost`], and counted in
/// `stats.failures` — `runs resume` re-executes exactly those.
pub fn run_distributed(
    ctx: &SessionContext,
    store: &RunStore,
    configurations: &[Configuration],
    invocation: Value,
    opts: &DistOptions,
    spawner: Option<&WorkerSpawner>,
) -> Result<Orchestrated, StoreError> {
    // same exclusivity as the in-process orchestrator: one sweep writer
    // per store (workers don't take the lock; they only append)
    let _store_lock = store.lock()?;
    let digest = context_digest(ctx);
    let (expanded, shape, param) = expand_jobs(&digest, configurations);
    let sweep_id = sweep_id_of(&digest, &expanded);

    let mut journal = store.journal()?;
    let jerr = |j: &Journal| {
        let p = j.path().to_path_buf();
        move |e: io::Error| StoreError::Io(p.clone(), e)
    };
    let record = sweep_record_of(
        &sweep_id,
        &digest,
        param,
        configurations,
        &expanded,
        &shape,
        invocation,
    );
    journal
        .append(&JournalEvent::SweepStarted(record))
        .map_err(jerr(&journal))?;

    // serve what the store already holds; the rest becomes job records
    let mut slots: Vec<Option<(Result<RunResult, RunError>, bool)>> =
        expanded.iter().map(|_| None).collect();
    let mut miss_indices: Vec<usize> = Vec::new();
    for (i, e) in expanded.iter().enumerate() {
        let hit = store
            .get(&e.key)?
            .filter(|s| s.manifest.schema_version == STORE_SCHEMA_VERSION)
            .map(replay);
        match hit {
            Some(rr) => {
                slots[i] = Some((Ok(rr), true));
                journal
                    .append(&JournalEvent::JobFinished {
                        sweep: sweep_id.clone(),
                        key: e.key.0.clone(),
                        cache_hit: true,
                        ok: true,
                        wall_ms: 0.0,
                    })
                    .map_err(jerr(&journal))?;
            }
            None => miss_indices.push(i),
        }
    }

    let mut stats = CacheStats {
        hits: (expanded.len() - miss_indices.len()) as u64,
        ..CacheStats::default()
    };

    if !miss_indices.is_empty() {
        let records: Vec<JobRecord> = miss_indices
            .iter()
            .map(|&i| {
                let e = &expanded[i];
                JobRecord {
                    sweep: sweep_id.clone(),
                    key: e.key.0.clone(),
                    seq: i as u64,
                    label: e.label.clone(),
                    value: e.value as f64,
                    seed: e.seed,
                    spec: serde::Serialize::ser(&e.spec),
                }
            })
            .collect();
        store.put_jobs(&records)?;

        let mut children = ChildSet::spawn(spawner, opts.workers, &sweep_id)
            .map_err(|e| StoreError::Io(store.root().to_path_buf(), e))?;
        // observer-only lease view, used to tell "a worker is on it"
        // from "nobody will ever finish this"
        let leases = LeaseSet::open(store.root(), &sweep_id, opts.lease_ttl_ms)
            .map_err(|e| StoreError::Io(store.root().to_path_buf(), e))?;
        let journal_path = store.journal_path();

        let mut done: HashSet<usize> = HashSet::new();
        let mut failed: HashMap<usize, String> = HashMap::new();
        // grace before declaring jobs lost: long enough for an external
        // worker to attach and for stale leases to expire
        let grace = Duration::from_millis((2 * opts.lease_ttl_ms).max(500));
        let mut last_activity = Instant::now();
        loop {
            let journaled_failures = failed_keys(&journal_path, &sweep_id)
                .map_err(|e| StoreError::Io(journal_path.clone(), e))?;
            let mut changed = false;
            for &i in &miss_indices {
                if done.contains(&i) || failed.contains_key(&i) {
                    continue;
                }
                let e = &expanded[i];
                if store.contains(&e.key) {
                    done.insert(i);
                    changed = true;
                } else if let Some(err) = journaled_failures.get(&e.key.0) {
                    failed.insert(i, err.clone());
                    changed = true;
                }
            }
            let pending: Vec<usize> = miss_indices
                .iter()
                .copied()
                .filter(|i| !done.contains(i) && !failed.contains_key(i))
                .collect();
            if pending.is_empty() {
                break;
            }
            if changed {
                last_activity = Instant::now();
            }
            let now = now_ms();
            let fresh_lease = pending.iter().any(|&i| {
                leases
                    .peek(&expanded[i].key.0)
                    .ok()
                    .flatten()
                    .is_some_and(|rec| !rec.is_stale(now))
            });
            if fresh_lease {
                last_activity = Instant::now();
            } else {
                // nobody holds a live lease on anything pending; if the
                // spawned workers are all dead and nothing lands within
                // the grace window, the remaining jobs are lost
                let abandoned = if children.spawned {
                    !children.any_alive()
                } else {
                    true
                };
                if abandoned && last_activity.elapsed() >= grace {
                    for &i in &pending {
                        let e = &expanded[i];
                        // merging wraps this in `RunError::Lost`, whose
                        // Display adds the "job lost:" prefix
                        let error =
                            format!("every worker of sweep {sweep_id} died before completing it");
                        journal
                            .append(&JournalEvent::JobFailed {
                                sweep: sweep_id.clone(),
                                key: e.key.0.clone(),
                                label: e.label.clone(),
                                value: e.value as f64,
                                error: error.clone(),
                            })
                            .and_then(|_| {
                                journal.append(&JournalEvent::JobFinished {
                                    sweep: sweep_id.clone(),
                                    key: e.key.0.clone(),
                                    cache_hit: false,
                                    ok: false,
                                    wall_ms: 0.0,
                                })
                            })
                            .map_err(jerr(&journal))?;
                        failed.insert(i, error);
                    }
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(opts.poll_ms.max(1)));
        }
        drop(children);

        // merge from the store in expansion order — this is what makes
        // the distributed result byte-identical to a single-process run
        for &i in &miss_indices {
            let e = &expanded[i];
            if let Some(error) = failed.get(&i) {
                slots[i] = Some((Err(RunError::Lost(error.clone())), false));
                stats.failures += 1;
                continue;
            }
            let stored = store
                .get(&e.key)?
                .ok_or_else(|| {
                    StoreError::Corrupt(
                        store.root().to_path_buf(),
                        format!("run {} vanished after its worker committed it", e.key.0),
                    )
                })
                .map(replay)?;
            slots[i] = Some((Ok(stored), false));
            stats.misses += 1;
        }
        store.clear_jobs(&sweep_id)?;
    }

    journal
        .append(&JournalEvent::SweepFinished {
            sweep: sweep_id.clone(),
            hits: stats.hits,
            misses: stats.misses,
            failures: stats.failures,
        })
        .map_err(jerr(&journal))?;
    if let Some(sink) = ctx.obsv.sink() {
        sink.write_record(&secreta_obsv::trace::cache_record(
            &sweep_id,
            stats.hits,
            stats.misses,
            stats.failures,
        ));
    }

    // reassemble per-configuration point lists, exactly like compare()
    let mut results = slots.into_iter();
    let mut expanded_it = expanded.iter();
    let mut points = Vec::with_capacity(configurations.len());
    for values in &shape {
        let mut cfg_points = Vec::with_capacity(values.len());
        for _ in 0..values.len() {
            let e = expanded_it.next().expect("shape matches expansion");
            let (outcome, _) = results.next().flatten().expect("slot filled");
            cfg_points.push((
                e.value,
                outcome.map(|rr| SweepPoint {
                    value: e.value,
                    indicators: rr.indicators,
                }),
            ));
        }
        points.push(cfg_points);
    }

    Ok(Orchestrated {
        result: ComparisonResult {
            labels: configurations.iter().map(|c| c.label.clone()).collect(),
            param,
            points,
        },
        stats,
        sweep_id,
    })
}

/// The sweep id this session + configuration set would get — what the
/// CLI prints so externally attached workers know what to look for.
pub fn sweep_id_for(ctx: &SessionContext, configurations: &[Configuration]) -> String {
    let digest = context_digest(ctx);
    let (expanded, _, _) = expand_jobs(&digest, configurations);
    sweep_id_of(&digest, &expanded)
}
