//! Varying-parameter execution (the Experimentation Module's sweep
//! half).
//!
//! "In varying parameter execution, the user selects the start/end
//! values and step of a parameter that varies, as well as fixed values
//! for other parameters. The plotted results include data utility
//! indicators and runtime vs. the varying parameter."

use crate::anonymizer::{Indicators, RunError};
use crate::comparison::Configuration;
use crate::config::MethodSpec;
use crate::context::SessionContext;
use crate::orchestrator::Orchestrator;
use secreta_plot::{Series, XyChart};
use serde::{Deserialize, Serialize, Value};

/// Which parameter varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VaryingParam {
    /// Protection level `k`.
    K,
    /// Adversary knowledge `m`.
    M,
    /// Merge budget `δ` (RT methods).
    Delta,
}

impl VaryingParam {
    /// Axis label.
    pub fn label(self) -> &'static str {
        match self {
            VaryingParam::K => "k",
            VaryingParam::M => "m",
            VaryingParam::Delta => "δ",
        }
    }
}

/// A start/end/step sweep, inclusive of `end` when the step lands on
/// it — the exact semantics of the GUI's three sweep fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sweep {
    /// The varying parameter.
    pub param: VaryingParam,
    /// First value.
    pub start: usize,
    /// Last value (inclusive).
    pub end: usize,
    /// Step (≥ 1).
    pub step: usize,
}

impl Sweep {
    /// The concrete values the sweep visits.
    pub fn values(&self) -> Vec<usize> {
        let step = self.step.max(1);
        let mut out = Vec::new();
        let mut v = self.start;
        while v <= self.end {
            out.push(v);
            // `v + step` can exceed usize::MAX for end values near the
            // top of the range; wrapping would loop forever
            match v.checked_add(step) {
                Some(next) => v = next,
                None => break,
            }
        }
        out
    }
}

/// One sweep sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The varying parameter's value.
    pub value: usize,
    /// Indicators measured at that value.
    pub indicators: Indicators,
}

/// Run `spec` across `sweep`, fanning points out over `threads`
/// worker threads. Per-point failures (e.g. an infeasible `k`) are
/// reported in place.
pub fn evaluate_sweep(
    ctx: &SessionContext,
    spec: &MethodSpec,
    sweep: &Sweep,
    threads: usize,
    seed: u64,
) -> Vec<(usize, Result<SweepPoint, RunError>)> {
    let cfg = Configuration::new(spec.clone(), *sweep, seed);
    Orchestrator::new(threads)
        .compare(ctx, &[cfg], Value::Null)
        .expect("store-less orchestration performs no store i/o")
        .result
        .points
        .into_iter()
        .next()
        .unwrap_or_default()
}

/// Extract one indicator from sweep output as a plot series, skipping
/// failed points.
pub fn series_of(
    label: impl Into<String>,
    points: &[(usize, Result<SweepPoint, RunError>)],
    pick: impl Fn(&Indicators) -> f64,
) -> Series {
    Series::new(
        label,
        points
            .iter()
            .filter_map(|(v, r)| r.as_ref().ok().map(|p| (*v as f64, pick(&p.indicators))))
            .collect(),
    )
}

/// Convenience: a one-series chart of `pick` over the sweep.
pub fn chart_of(
    title: impl Into<String>,
    y_label: impl Into<String>,
    sweep: &Sweep,
    label: impl Into<String>,
    points: &[(usize, Result<SweepPoint, RunError>)],
    pick: impl Fn(&Indicators) -> f64,
) -> XyChart {
    let mut chart = XyChart::new(title, sweep.param.label(), y_label);
    chart.push(series_of(label, points, pick));
    chart
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelAlgo;
    use secreta_gen::{DatasetSpec, WorkloadSpec};

    fn ctx() -> SessionContext {
        let t = DatasetSpec::adult_like(80, 1).generate();
        let ctx = SessionContext::auto(t, 4).unwrap();
        let w = WorkloadSpec {
            n_queries: 20,
            ..Default::default()
        }
        .generate(&ctx.table);
        ctx.with_workload(w)
    }

    #[test]
    fn sweep_values_inclusive() {
        let s = Sweep {
            param: VaryingParam::K,
            start: 2,
            end: 10,
            step: 4,
        };
        assert_eq!(s.values(), vec![2, 6, 10]);
        let s2 = Sweep {
            param: VaryingParam::K,
            start: 5,
            end: 5,
            step: 1,
        };
        assert_eq!(s2.values(), vec![5]);
        let s3 = Sweep {
            param: VaryingParam::K,
            start: 9,
            end: 3,
            step: 1,
        };
        assert!(s3.values().is_empty());
        let s0 = Sweep {
            param: VaryingParam::K,
            start: 1,
            end: 3,
            step: 0,
        };
        assert_eq!(s0.values(), vec![1, 2, 3], "step 0 clamps to 1");
    }

    #[test]
    fn sweep_values_near_usize_max_terminate() {
        // v += step used to wrap past usize::MAX and loop forever
        let s = Sweep {
            param: VaryingParam::K,
            start: usize::MAX - 3,
            end: usize::MAX,
            step: 2,
        };
        assert_eq!(s.values(), vec![usize::MAX - 3, usize::MAX - 1]);
        let s2 = Sweep {
            param: VaryingParam::K,
            start: usize::MAX,
            end: usize::MAX,
            step: 1,
        };
        assert_eq!(s2.values(), vec![usize::MAX]);
    }

    #[test]
    fn k_sweep_is_monotone_in_gcp() {
        let ctx = ctx();
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 0, // overwritten by the sweep
        };
        let sweep = Sweep {
            param: VaryingParam::K,
            start: 2,
            end: 20,
            step: 6,
        };
        let out = evaluate_sweep(&ctx, &spec, &sweep, 4, 1);
        assert_eq!(out.len(), 4);
        let mut prev = -1.0;
        for (v, r) in &out {
            let p = r.as_ref().unwrap();
            assert!(p.indicators.verified, "k={v}");
            assert!(p.indicators.gcp >= prev - 1e-9);
            prev = p.indicators.gcp;
        }
    }

    #[test]
    fn failed_points_are_isolated() {
        let ctx = ctx();
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Incognito,
            k: 0,
        };
        let sweep = Sweep {
            param: VaryingParam::K,
            start: 50,
            end: 150,
            step: 50,
        };
        let out = evaluate_sweep(&ctx, &spec, &sweep, 2, 0);
        assert!(out[0].1.is_ok(), "k=50 feasible on 80 rows");
        assert!(out[2].1.is_err(), "k=150 infeasible");
    }

    #[test]
    fn series_and_chart_skip_failures() {
        let ctx = ctx();
        let spec = MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 0,
        };
        let sweep = Sweep {
            param: VaryingParam::K,
            start: 40,
            end: 120,
            step: 40,
        };
        let out = evaluate_sweep(&ctx, &spec, &sweep, 2, 1);
        let series = series_of("gcp", &out, |i| i.gcp);
        assert_eq!(series.points.len(), 2, "only feasible points plotted");
        let chart = chart_of("GCP vs k", "GCP", &sweep, "Cluster", &out, |i| i.gcp);
        assert_eq!(chart.x_label, "k");
        assert_eq!(chart.series.len(), 1);
    }
}
