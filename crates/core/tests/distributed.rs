//! In-process integration tests of the distributed coordinator/worker
//! split: convergence, byte-identity against the single-process
//! orchestrator, cache interplay, and graceful degradation when every
//! worker dies. (Process-level chaos — `kill -9` via fault injection —
//! lives in the CLI's test suite; these tests drive `worker_loop` from
//! threads, which exercises the identical lease/fence code paths.)

use secreta_core::config::RelAlgo;
use secreta_core::distributed::{run_distributed, worker_loop, DistOptions, WorkerError};
use secreta_core::sweep::{Sweep, VaryingParam};
use secreta_core::{Configuration, MethodSpec, Orchestrator, SessionContext};
use secreta_gen::{DatasetSpec, WorkloadSpec};
use secreta_store::{JournalEvent, RunStore, SweepRecord};
use serde::Value;

fn ctx() -> SessionContext {
    let t = DatasetSpec::adult_like(60, 3).generate();
    let ctx = SessionContext::auto(t, 4).unwrap();
    let w = WorkloadSpec {
        n_queries: 10,
        ..Default::default()
    }
    .generate(&ctx.table);
    ctx.with_workload(w)
}

fn configs(start: usize, end: usize) -> Vec<Configuration> {
    vec![Configuration::new(
        MethodSpec::Relational {
            algo: RelAlgo::Cluster,
            k: 0,
        },
        Sweep {
            param: VaryingParam::K,
            start,
            end,
            step: 2,
        },
        1,
    )]
}

fn tmp_store(name: &str) -> RunStore {
    let dir = std::env::temp_dir().join(format!("secreta-dist-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    RunStore::open(dir).unwrap()
}

fn opts() -> DistOptions {
    DistOptions {
        lease_ttl_ms: 2_000,
        poll_ms: 10,
        workers: 0,
        worker_wait_ms: 10_000,
    }
}

/// Read the raw stored anon.json bytes of every run in a store, keyed
/// by run key.
fn anon_bytes(store: &RunStore) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = store
        .list()
        .unwrap()
        .into_iter()
        .map(|m| {
            let path = store
                .root()
                .join("runs")
                .join(&m.key[..2])
                .join(&m.key)
                .join("anon.json");
            (m.key, std::fs::read(path).unwrap())
        })
        .collect();
    out.sort();
    out
}

/// Three attached workers race one coordinator; the merged comparison
/// and every stored anonymization must be byte-identical to a plain
/// single-process run of the same experiment.
#[test]
fn multi_worker_sweep_is_byte_identical_to_single_process() {
    let ctx = ctx();
    // baseline: the classic in-process orchestrator
    let solo_store = tmp_store("solo");
    let solo = Orchestrator::new(2)
        .with_store(solo_store.clone())
        .compare(&ctx, &configs(2, 6), Value::Null)
        .unwrap();

    // distributed: coordinator in attach mode + 3 worker threads
    let dist_store = tmp_store("dist");
    let o = opts();
    let (dist, reports) = std::thread::scope(|s| {
        let coord = {
            let (ctx, store, o) = (&ctx, &dist_store, &o);
            s.spawn(move || {
                run_distributed(ctx, store, &configs(2, 6), Value::Null, o, None).unwrap()
            })
        };
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let (ctx, store, o) = (&ctx, &dist_store, &o);
                s.spawn(move || {
                    let sweep = secreta_core::sweep_id_for(ctx, &configs(2, 6));
                    worker_loop(ctx, store, &sweep, o).unwrap()
                })
            })
            .collect();
        let dist = coord.join().unwrap();
        let reports: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        (dist, reports)
    });

    assert_eq!(dist.sweep_id, solo.sweep_id, "same expansion, same id");
    assert_eq!(dist.stats.misses, 3);
    assert_eq!(dist.stats.failures, 0);
    // the workers between them executed every job exactly once (no
    // crashes here, so no benign duplicate computes)
    let executed: u64 = reports.iter().map(|r| r.executed).sum();
    assert_eq!(executed, 3);

    // merged indicators match the single-process run (runtime is
    // wall-clock and legitimately differs)
    for (sp, dp) in solo.result.points[0].iter().zip(&dist.result.points[0]) {
        assert_eq!(sp.0, dp.0);
        let mut a = sp.1.as_ref().unwrap().indicators.clone();
        let mut b = dp.1.as_ref().unwrap().indicators.clone();
        a.runtime_ms = 0.0;
        b.runtime_ms = 0.0;
        assert_eq!(a, b, "k={} diverged", sp.0);
    }
    // the stored anonymizations are byte-identical across stores
    assert_eq!(anon_bytes(&solo_store), anon_bytes(&dist_store));
    // job records and leases are cleaned up after the merge
    assert!(!dist_store.root().join("jobs").exists());
    assert!(!dist_store.root().join("leases").exists());
}

/// A second distributed run of the same experiment is served entirely
/// from the cache: no job records are ever published, no workers
/// needed.
#[test]
fn warm_distributed_run_is_all_hits_without_workers() {
    let ctx = ctx();
    let store = tmp_store("warm");
    let o = opts();
    std::thread::scope(|s| {
        let coord = {
            let (ctx, store, o) = (&ctx, &store, &o);
            s.spawn(move || {
                run_distributed(ctx, store, &configs(2, 4), Value::Null, o, None).unwrap()
            })
        };
        let (ctx2, store2, o2) = (&ctx, &store, &o);
        let sweep = secreta_core::sweep_id_for(ctx2, &configs(2, 4));
        s.spawn(move || worker_loop(ctx2, store2, &sweep, o2).unwrap());
        coord.join().unwrap()
    });
    // warm run: attach mode with no workers attached — must not hang
    let warm = run_distributed(&ctx, &store, &configs(2, 4), Value::Null, &o, None).unwrap();
    assert_eq!(warm.stats.hits, 2);
    assert_eq!(warm.stats.misses, 0);
    assert!(!store.root().join("jobs").exists(), "no jobs published");
}

/// Every spawned worker dies instantly: the sweep degrades instead of
/// hanging — cached points still serve, lost jobs merge as
/// `RunError::Lost` and are journaled as failed — and a subsequent
/// in-process resume re-executes exactly the lost tail.
#[test]
fn dead_workers_degrade_and_resume_reexecutes_only_lost_jobs() {
    let ctx = ctx();
    let store = tmp_store("degraded");
    // pre-populate one sweep point (k=2) through the normal path
    let pre = Orchestrator::new(1)
        .with_store(store.clone())
        .compare(&ctx, &configs(2, 2), Value::Null)
        .unwrap();
    assert_eq!(pre.stats.misses, 1);

    // "workers" that exit immediately without claiming anything
    let o = DistOptions {
        lease_ttl_ms: 200,
        poll_ms: 10,
        workers: 2,
        worker_wait_ms: 1_000,
    };
    let spawner = |_i: usize, _sweep: &str| std::process::Command::new("true").spawn();
    let out = run_distributed(
        &ctx,
        &store,
        &configs(2, 6),
        Value::Null,
        &o,
        Some(&spawner),
    )
    .unwrap();
    assert_eq!(out.stats.hits, 1, "k=2 was already cached");
    assert_eq!(out.stats.misses, 0);
    assert_eq!(out.stats.failures, 2, "k=4 and k=6 are lost");
    let lost: Vec<_> = out.result.points[0]
        .iter()
        .filter_map(|(v, r)| r.as_ref().err().map(|e| (*v, e.to_string())))
        .collect();
    assert_eq!(lost.len(), 2);
    for (_, msg) in &lost {
        assert!(msg.starts_with("job lost:"), "got: {msg}");
    }
    // the journal marks the sweep degraded (JobFailed lines present)
    let events = store.read_journal().unwrap();
    let failed = events
        .iter()
        .filter(|e| matches!(e, JournalEvent::JobFailed { .. }))
        .count();
    assert_eq!(failed, 2);

    // resume = replay the invocation in-process: the cached point hits,
    // exactly the two lost jobs execute
    let resumed = Orchestrator::new(2)
        .with_store(store.clone())
        .compare(&ctx, &configs(2, 6), Value::Null)
        .unwrap();
    assert_eq!(resumed.stats.hits, 1);
    assert_eq!(resumed.stats.misses, 2, "only the lost tail re-executes");
    assert_eq!(resumed.stats.failures, 0);
}

/// A worker pointed at a sweep that never appears gives up with
/// `NoSuchSweep`; one whose session digests differently than the
/// recorded context refuses with `ContextMismatch`.
#[test]
fn worker_validates_sweep_and_context() {
    let ctx = ctx();
    let store = tmp_store("validate");
    let o = DistOptions {
        worker_wait_ms: 100,
        poll_ms: 10,
        ..opts()
    };
    match worker_loop(&ctx, &store, "deadbeefdeadbeef", &o) {
        Err(WorkerError::NoSuchSweep(id)) => assert_eq!(id, "deadbeefdeadbeef"),
        other => panic!("expected NoSuchSweep, got {other:?}"),
    }

    // forge an intent record with a foreign context digest
    let mut journal = store.journal().unwrap();
    journal
        .append(&JournalEvent::SweepStarted(SweepRecord {
            id: "cafecafecafecafe".to_owned(),
            context: "not-this-session".to_owned(),
            param: "k".to_owned(),
            labels: vec![],
            jobs: vec![],
            invocation: Value::Null,
        }))
        .unwrap();
    match worker_loop(&ctx, &store, "cafecafecafecafe", &o) {
        Err(WorkerError::ContextMismatch { expected, .. }) => {
            assert_eq!(expected, "not-this-session")
        }
        other => panic!("expected ContextMismatch, got {other:?}"),
    }
}
