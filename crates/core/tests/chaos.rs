//! End-to-end chaos test: the fault-tolerance acceptance property.
//!
//! A 3-configuration × 5-point comparison runs under an installed
//! fault plan — two injected panics in one algorithm plus one
//! transient store I/O error — then one cached manifest is corrupted
//! on disk. The sweep must complete **degraded** (failures recorded,
//! everything else stored), `fsck --repair` must quarantine the
//! corrupt entry, and a fault-free re-run must re-execute only the
//! damaged points and converge to a store whose anonymized outputs are
//! **byte-identical** to a reference store produced with no faults at
//! all.
//!
//! This file owns its test process: the fault plan is process-global,
//! so the chaos scenario lives here rather than in any crate's unit
//! tests, and the single `#[test]` keeps plan installs serialized.

use secreta_core::store::{resumable_sweeps, RunStore};
use secreta_core::{
    Configuration, MethodSpec, Orchestrator, RelAlgo, SessionContext, Sweep, VaryingParam,
};
use secreta_gen::{DatasetSpec, WorkloadSpec};
use serde::Value;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn ctx() -> SessionContext {
    let t = DatasetSpec::adult_like(120, 7).generate();
    let ctx = SessionContext::auto(t, 4).unwrap();
    let w = WorkloadSpec {
        n_queries: 10,
        ..Default::default()
    }
    .generate(&ctx.table);
    ctx.with_workload(w)
}

fn configs() -> Vec<Configuration> {
    let sweep = Sweep {
        param: VaryingParam::K,
        start: 2,
        end: 10,
        step: 2,
    };
    [RelAlgo::Cluster, RelAlgo::TopDown, RelAlgo::BottomUp]
        .into_iter()
        .map(|algo| Configuration::new(MethodSpec::Relational { algo, k: 0 }, sweep, 1))
        .collect()
}

fn tmp_store(name: &str) -> RunStore {
    let dir =
        std::env::temp_dir().join(format!("secreta-chaos-it-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    RunStore::open(dir).unwrap()
}

/// Every stored run's anonymized payload, keyed by content address.
fn anon_payloads(store: &RunStore) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![store.root().join("runs")];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in rd.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.file_name().and_then(|n| n.to_str()) == Some("anon.json") {
                let key = dir
                    .file_name()
                    .and_then(|n| n.to_str())
                    .expect("run dir is the key")
                    .to_owned();
                out.insert(key, std::fs::read(&path).unwrap());
            }
        }
    }
    out
}

/// One stored run's `anon.json`, for tampering.
fn any_anon_path(store: &RunStore) -> PathBuf {
    let (key, _) = anon_payloads(store)
        .into_iter()
        .next()
        .expect("store holds at least one run");
    store
        .root()
        .join("runs")
        .join(&key[..2])
        .join(key)
        .join("anon.json")
}

#[test]
fn degraded_sweep_recovers_byte_identical_to_a_fault_free_run() {
    let ctx = ctx();
    let configs = configs();
    let n_jobs = 15u64; // 3 configurations × 5 sweep points

    // reference: the same comparison with no faults anywhere
    let reference = tmp_store("reference");
    let ref_out = Orchestrator::new(2)
        .with_store(reference.clone())
        .compare(&ctx, &configs, Value::Null)
        .unwrap();
    assert_eq!(ref_out.stats.failures, 0);
    assert_eq!(ref_out.stats.misses, n_jobs);
    let want = anon_payloads(&reference);
    assert_eq!(want.len(), n_jobs as usize);

    // chaos: two panics inside the TopDown family and one transient
    // store write error (absorbed by the retry policy, so it must NOT
    // surface as a failure)
    let store = tmp_store("chaos");
    let orch = Orchestrator::new(2).with_store(store.clone());
    secreta_core::faults::install(
        secreta_core::faults::FaultPlan::from_spec(
            "seed=3;panic@run:Top-down*=1x2;io@store.put=1x1",
        )
        .unwrap(),
    );
    let degraded = orch.compare(&ctx, &configs, Value::Null).unwrap();
    secreta_core::faults::clear();

    assert_eq!(degraded.stats.failures, 2, "exactly the injected panics");
    assert_eq!(degraded.stats.misses, n_jobs - 2, "everything else ran");
    let errors: Vec<String> = degraded
        .result
        .points
        .iter()
        .flatten()
        .filter_map(|(_, r)| r.as_ref().err().map(|e| e.to_string()))
        .collect();
    assert_eq!(errors.len(), 2);
    for e in &errors {
        assert!(
            e.contains("injected fault:"),
            "failures carry the panic message: {e}"
        );
    }
    assert_eq!(
        resumable_sweeps(&store.read_journal().unwrap()).len(),
        1,
        "a degraded sweep stays resumable"
    );

    // damage one cached payload on disk; fsck --repair quarantines it
    std::fs::write(any_anon_path(&store), b"{\"rel\":[],\"garbage").unwrap();
    let report = store.fsck(true).unwrap();
    assert_eq!(report.scanned, n_jobs as usize - 2);
    assert_eq!(report.corrupt.len(), 1, "{:?}", report.corrupt);
    assert_eq!(report.ok, n_jobs as usize - 3);
    assert!(
        store.root().join("quarantine").is_dir(),
        "corrupt entry moved aside, not destroyed"
    );

    // fault-free re-run: only the 2 panicked and 1 quarantined points
    // execute, the remaining 12 replay from the store
    let healed = orch.compare(&ctx, &configs, Value::Null).unwrap();
    assert_eq!(healed.stats.failures, 0);
    assert_eq!(healed.stats.misses, 3, "only the damaged points re-ran");
    assert_eq!(healed.stats.hits, n_jobs - 3);
    assert!(
        resumable_sweeps(&store.read_journal().unwrap()).is_empty(),
        "a clean finish closes the degraded sweep"
    );

    // convergence: the recovered store's anonymized outputs are
    // byte-identical to the fault-free reference, key for key
    let got = anon_payloads(&store);
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "same content addresses"
    );
    for (key, bytes) in &want {
        assert_eq!(
            Some(bytes),
            got.get(key),
            "payload of {key} differs from the fault-free reference"
        );
    }

    let _ = std::fs::remove_dir_all(reference.root());
    let _ = std::fs::remove_dir_all(store.root());
}
