//! End-to-end orchestrator behaviour against a real on-disk store:
//! the acceptance properties of the run store subsystem.
//!
//! * An identical re-run of a sweep is a **full cache hit** — zero
//!   anonymization work, asserted through the journal (no `JobStarted`
//!   events, every completion a `cache_hit`), with byte-identical
//!   indicator output.
//! * A sweep interrupted mid-run (simulated by restoring the exact
//!   on-disk state a `kill -9` leaves: partial results, an intent
//!   record with no `SweepFinished`) resumes to results byte-identical
//!   to an uninterrupted run.

use secreta_core::store::{unfinished_sweeps, JournalEvent, RunKey, RunStore};
use secreta_core::{
    Configuration, MethodSpec, Orchestrator, RelAlgo, SessionContext, Sweep, VaryingParam,
};
use secreta_gen::{DatasetSpec, WorkloadSpec};
use serde::Value;
use std::path::PathBuf;

fn ctx() -> SessionContext {
    let t = DatasetSpec::adult_like(60, 3).generate();
    let ctx = SessionContext::auto(t, 4).unwrap();
    let w = WorkloadSpec {
        n_queries: 10,
        ..Default::default()
    }
    .generate(&ctx.table);
    ctx.with_workload(w)
}

fn configs() -> Vec<Configuration> {
    let sweep = Sweep {
        param: VaryingParam::K,
        start: 2,
        end: 6,
        step: 2,
    };
    vec![
        Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::Cluster,
                k: 0,
            },
            sweep,
            1,
        ),
        Configuration::new(
            MethodSpec::Relational {
                algo: RelAlgo::TopDown,
                k: 0,
            },
            sweep,
            1,
        ),
    ]
}

fn tmp_store(name: &str) -> RunStore {
    let dir = std::env::temp_dir().join(format!("secreta-orch-it-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    RunStore::open(dir).unwrap()
}

/// Path of a stored run's anonymized table (mirrors the store layout).
fn anon_path(store: &RunStore, key: &str) -> PathBuf {
    store
        .root()
        .join("runs")
        .join(&key[..2])
        .join(key)
        .join("anon.json")
}

#[test]
fn identical_rerun_is_a_full_cache_hit_doing_zero_anonymization_work() {
    let ctx = ctx();
    let store = tmp_store("fullhit");
    let orch = Orchestrator::new(2).with_store(store.clone());

    let cold = orch.compare(&ctx, &configs(), Value::Null).unwrap();
    assert_eq!(cold.stats.misses, 6);
    let cold_event_count = store.read_journal().unwrap().len();

    let warm = orch.compare(&ctx, &configs(), Value::Null).unwrap();
    assert_eq!(warm.stats.hits, 6);
    assert_eq!(warm.stats.misses, 0);
    assert_eq!(warm.stats.failures, 0);

    // the journal proves no anonymization happened: the warm sweep
    // appended no JobStarted event, and every completion was a replay
    let events = store.read_journal().unwrap();
    let warm_events = &events[cold_event_count..];
    assert!(
        !warm_events
            .iter()
            .any(|e| matches!(e, JournalEvent::JobStarted { .. })),
        "a full cache hit must not start any job"
    );
    let completions: Vec<_> = warm_events
        .iter()
        .filter_map(|e| match e {
            JournalEvent::JobFinished { cache_hit, .. } => Some(*cache_hit),
            _ => None,
        })
        .collect();
    assert_eq!(completions.len(), 6);
    assert!(completions.iter().all(|&hit| hit));
    assert!(warm_events.iter().any(|e| matches!(
        e,
        JournalEvent::SweepFinished {
            hits: 6,
            misses: 0,
            failures: 0,
            ..
        }
    )));

    // byte-identical output: the replayed indicators serialize to the
    // exact same JSON as the cold run's, wall-clock timings included
    assert_eq!(warm.sweep_id, cold.sweep_id);
    for (c_points, w_points) in cold.result.points.iter().zip(&warm.result.points) {
        for ((cv, c), (wv, w)) in c_points.iter().zip(w_points) {
            assert_eq!(cv, wv);
            let c_json = serde_json::to_string(&c.as_ref().unwrap().indicators).unwrap();
            let w_json = serde_json::to_string(&w.as_ref().unwrap().indicators).unwrap();
            assert_eq!(c_json, w_json, "replay must be byte-identical");
        }
    }
}

#[test]
fn interrupted_sweep_resumes_to_byte_identical_results() {
    let ctx = ctx();

    // reference: the same experiment, uninterrupted, in its own store
    let reference_store = tmp_store("resume-ref");
    let reference = Orchestrator::new(2)
        .with_store(reference_store.clone())
        .compare(&ctx, &configs(), Value::Null)
        .unwrap();
    assert_eq!(reference.stats.misses, 6);

    // run the experiment, then put the store into the exact state a
    // kill -9 mid-sweep leaves behind: drop the SweepFinished event,
    // and for two jobs also drop their results and completion events
    // (they were still running when the process died)
    let store = tmp_store("resume");
    let orch = Orchestrator::new(2).with_store(store.clone());
    let out = orch.compare(&ctx, &configs(), Value::Null).unwrap();
    assert_eq!(out.stats.misses, 6);

    let events = store.read_journal().unwrap();
    let record = events
        .iter()
        .find_map(|e| match e {
            JournalEvent::SweepStarted(rec) => Some(rec.clone()),
            _ => None,
        })
        .unwrap();
    // the last job of each configuration "was still running"
    let killed: Vec<String> = record
        .jobs
        .iter()
        .map(|cfg_jobs| cfg_jobs.last().unwrap().1.clone())
        .collect();
    assert_eq!(killed.len(), 2);
    for key in &killed {
        assert!(store.remove(&RunKey(key.clone())).unwrap());
    }
    let truncated: Vec<String> = events
        .iter()
        .filter(|e| match e {
            JournalEvent::SweepFinished { .. } => false,
            JournalEvent::JobFinished { key, .. } => !killed.contains(key),
            _ => true,
        })
        .map(|e| serde_json::to_string(e).unwrap())
        .collect();
    std::fs::write(store.journal_path(), truncated.join("\n") + "\n").unwrap();

    // the journal now reports the sweep as resumable
    let unfinished = unfinished_sweeps(&store.read_journal().unwrap());
    assert_eq!(unfinished.len(), 1);
    assert_eq!(unfinished[0].id, out.sweep_id);

    // resume = replay the invocation against the same store: completed
    // jobs are cache hits, only the killed tail executes
    let resumed = orch.compare(&ctx, &configs(), Value::Null).unwrap();
    assert_eq!(resumed.sweep_id, unfinished[0].id);
    assert_eq!(resumed.stats.hits, 4);
    assert_eq!(resumed.stats.misses, 2);
    assert_eq!(resumed.stats.failures, 0);
    assert!(
        unfinished_sweeps(&store.read_journal().unwrap()).is_empty(),
        "the resumed sweep must close its journal record"
    );

    // every stored anonymized table — replayed and re-executed alike —
    // is byte-identical to the uninterrupted run's
    for cfg_jobs in &record.jobs {
        for (_, key) in cfg_jobs {
            let want = std::fs::read(anon_path(&reference_store, key)).unwrap();
            let got = std::fs::read(anon_path(&store, key)).unwrap();
            assert_eq!(want, got, "anon table for {key} diverged after resume");
        }
    }
    // and the quality indicators match the reference exactly, modulo
    // wall-clock runtime on the two jobs that re-executed
    for (r_points, s_points) in reference.result.points.iter().zip(&resumed.result.points) {
        for ((rv, r), (sv, s)) in r_points.iter().zip(s_points) {
            assert_eq!(rv, sv);
            let mut want = r.as_ref().unwrap().indicators.clone();
            let mut got = s.as_ref().unwrap().indicators.clone();
            want.runtime_ms = 0.0;
            got.runtime_ms = 0.0;
            assert_eq!(want, got);
        }
    }
}
