//! Property tests of the utility measures and query estimation.

use proptest::prelude::*;
use secreta_data::{Attribute, ItemId, RtTable, Schema};
use secreta_metrics::anon::{rel_column_from_value_map, AnonTransaction};
use secreta_metrics::{
    average_relative_error, gcp, loss, transaction_gcp, utility_loss, AnonTable, GenEntry, Query,
    QueryAtom, Workload,
};

/// Build a table with one relational attribute of domain `dom` and a
/// `items`-sized item universe, `n` rows, deterministically from a
/// seed-ish stream of choices.
fn build_table(dom: usize, items: usize, rows: &[(usize, Vec<usize>)]) -> RtTable {
    let schema = Schema::new(vec![
        Attribute::categorical("A"),
        Attribute::transaction("Items"),
    ])
    .unwrap();
    let mut t = RtTable::new(schema);
    for v in 0..dom {
        t.intern_value(0, &format!("a{v}")).unwrap();
    }
    for i in 0..items {
        t.intern_item(&format!("i{i}")).unwrap();
    }
    for (val, tx) in rows {
        let val = format!("a{}", val % dom);
        let items_s: Vec<String> = tx.iter().map(|i| format!("i{}", i % items)).collect();
        let refs: Vec<&str> = items_s.iter().map(String::as_str).collect();
        t.push_row(&[&val], &refs).unwrap();
    }
    t
}

/// A random partition of `0..dom` into generalized sets.
fn random_partition(dom: usize, cuts: &[usize]) -> Vec<Vec<u32>> {
    let mut boundaries: Vec<usize> = cuts.iter().map(|c| c % dom.max(1)).collect();
    boundaries.push(0);
    boundaries.push(dom);
    boundaries.sort_unstable();
    boundaries.dedup();
    boundaries
        .windows(2)
        .map(|w| (w[0] as u32..w[1] as u32).collect())
        .filter(|g: &Vec<u32>| !g.is_empty())
        .collect()
}

fn rows_strategy() -> impl Strategy<Value = Vec<(usize, Vec<usize>)>> {
    prop::collection::vec(
        (0usize..100, prop::collection::vec(0usize..100, 0..6)),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partition_recoding_is_truthful_and_bounded(
        rows in rows_strategy(),
        dom in 1usize..12,
        items in 1usize..12,
        cuts in prop::collection::vec(0usize..12, 0..4),
    ) {
        let t = build_table(dom, items, &rows);
        let groups = random_partition(dom, &cuts);
        let group_of = |v: u32| {
            groups
                .iter()
                .position(|g| g.contains(&v))
                .expect("partition covers the domain")
        };
        let col = rel_column_from_value_map(&t, 0, |v| {
            GenEntry::set(groups[group_of(v.0)].clone())
        });
        let item_groups = random_partition(items, &cuts);
        let idx_of = |v: u32| {
            item_groups
                .iter()
                .position(|g| g.contains(&v))
                .expect("partition covers the universe") as u32
        };
        let domain: Vec<GenEntry> = item_groups
            .iter()
            .map(|g| GenEntry::set(g.clone()))
            .collect();
        let tx = AnonTransaction::from_mapping(&t, domain, |it| Some(idx_of(it.0)));
        let anon = AnonTable {
            rel: vec![col],
            tx: Some(tx),
            n_rows: t.n_rows(),
        };

        prop_assert!(anon.is_truthful(&t, |_| None, None));
        prop_assert!(anon.is_complete(&t, None));
        let g = gcp(&t, &anon, |_| None);
        prop_assert!((0.0..=1.0).contains(&g));
        let tg = transaction_gcp(&t, &anon, None);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tg));
        let ul = utility_loss(&t, &anon, None);
        prop_assert!((0.0..=1.0).contains(&ul));
        let d = loss::discernibility(&anon);
        let n = t.n_rows() as u64;
        prop_assert!(d >= n && d <= n * n);
    }

    #[test]
    fn estimates_never_exceed_row_count(
        rows in rows_strategy(),
        dom in 1usize..10,
        items in 1usize..10,
        cuts in prop::collection::vec(0usize..10, 0..3),
        qv in 0usize..10,
        qi in 0usize..10,
    ) {
        let t = build_table(dom, items, &rows);
        let groups = random_partition(dom, &cuts);
        let col = rel_column_from_value_map(&t, 0, |v| {
            GenEntry::set(
                groups
                    .iter()
                    .find(|g| g.contains(&v.0))
                    .expect("covered")
                    .clone(),
            )
        });
        let anon = AnonTable {
            rel: vec![col],
            tx: None,
            n_rows: t.n_rows(),
        };
        let q = Query {
            atoms: vec![
                QueryAtom::Rel { attr: 0, values: vec![(qv % dom) as u32] },
                QueryAtom::Items { items: vec![ItemId((qi % items) as u32)] },
            ],
        };
        let est = q.estimate(&t, &anon, &|_| None, None);
        prop_assert!(est >= -1e-9);
        prop_assert!(est <= t.n_rows() as f64 + 1e-9);
        // exact count is a valid probability-1 estimate of itself
        prop_assert!(q.count(&t) as usize <= t.n_rows());
    }

    #[test]
    fn identity_estimates_are_exact(
        rows in rows_strategy(),
        dom in 1usize..10,
        items in 1usize..10,
        queries in prop::collection::vec((0usize..10, 0usize..10), 1..8),
    ) {
        let t = build_table(dom, items, &rows);
        let anon = AnonTable::identity(&t, &[0]);
        let workload = Workload {
            queries: queries
                .iter()
                .map(|&(v, i)| Query {
                    atoms: vec![
                        QueryAtom::Rel { attr: 0, values: vec![(v % dom) as u32] },
                        QueryAtom::Items { items: vec![ItemId((i % items) as u32)] },
                    ],
                })
                .collect(),
        };
        let are = average_relative_error(&t, &anon, &workload, |_| None, None);
        prop_assert!(are.abs() < 1e-9, "identity must answer exactly, got {are}");
    }

    #[test]
    fn coarser_partitions_never_reduce_gcp(
        rows in rows_strategy(),
        dom in 2usize..10,
    ) {
        let t = build_table(dom, 2, &rows);
        // fine: singletons; coarse: one full-domain set
        let fine = rel_column_from_value_map(&t, 0, |v| GenEntry::Set(vec![v.0]));
        let coarse = rel_column_from_value_map(&t, 0, |_| {
            GenEntry::set((0..dom as u32).collect())
        });
        let mk = |col| AnonTable { rel: vec![col], tx: None, n_rows: t.n_rows() };
        let g_fine = gcp(&t, &mk(fine), |_| None);
        let g_coarse = gcp(&t, &mk(coarse), |_| None);
        prop_assert!(g_fine <= g_coarse + 1e-12);
        prop_assert!((g_fine - 0.0).abs() < 1e-12);
    }
}
