//! The anonymized-table model.
//!
//! Every algorithm in SECRETA transforms values into *generalized
//! values*. Two recoding styles exist in the integrated algorithms:
//!
//! * **hierarchy recoding** — a cell/item is replaced by an ancestor
//!   node of its generalization hierarchy (Incognito, Top-down,
//!   Full-subtree bottom-up, Apriori, LRA, VPA);
//! * **set recoding** — a cell/item is replaced by an explicit set of
//!   original values (Cluster's per-equivalence-class value sets,
//!   COAT/PCTA's hierarchy-free generalized items).
//!
//! [`GenEntry`] abstracts both so the metrics in this crate (and the
//! plotting/export layers above) treat all nine algorithms uniformly.

use secreta_data::hash::FxHashMap;
use secreta_data::{ItemId, RtTable, ValueId};
use secreta_hierarchy::{Hierarchy, NodeId};
use serde::{Deserialize, Serialize};

/// One generalized value in a generalized domain.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GenEntry {
    /// An ancestor node in the attribute's hierarchy.
    Node(NodeId),
    /// An explicit, sorted, duplicate-free set of original value ids.
    Set(Vec<u32>),
    /// The value is suppressed (published as nothing). Matches no
    /// original value and counts as total information loss.
    Suppressed,
}

impl GenEntry {
    /// Build a set entry, normalizing order and duplicates.
    pub fn set(mut values: Vec<u32>) -> Self {
        values.sort_unstable();
        values.dedup();
        GenEntry::Set(values)
    }

    /// Number of original values this generalized value may stand for.
    /// Requires the governing hierarchy for `Node` entries.
    pub fn leaf_count(&self, hierarchy: Option<&Hierarchy>) -> usize {
        match self {
            GenEntry::Node(n) => hierarchy
                .expect("Node entries require their hierarchy")
                .leaf_count(*n),
            GenEntry::Set(s) => s.len(),
            GenEntry::Suppressed => 0,
        }
    }

    /// Does this generalized value cover original value `v`?
    pub fn covers(&self, v: u32, hierarchy: Option<&Hierarchy>) -> bool {
        match self {
            GenEntry::Node(n) => hierarchy
                .expect("Node entries require their hierarchy")
                .contains(*n, v),
            GenEntry::Set(s) => s.binary_search(&v).is_ok(),
            GenEntry::Suppressed => false,
        }
    }

    /// Human-readable label.
    pub fn display(
        &self,
        hierarchy: Option<&Hierarchy>,
        resolve: impl Fn(u32) -> String,
    ) -> String {
        match self {
            GenEntry::Node(n) => hierarchy
                .expect("Node entries require their hierarchy")
                .label(*n)
                .to_owned(),
            GenEntry::Set(s) => {
                if s.len() == 1 {
                    resolve(s[0])
                } else {
                    let mut parts: Vec<String> = s.iter().map(|&v| resolve(v)).collect();
                    parts.sort();
                    format!("({})", parts.join("|"))
                }
            }
            GenEntry::Suppressed => "⊥".to_owned(),
        }
    }

    /// Normalized Certainty Penalty of this generalized value given the
    /// attribute's domain size: `(covered - 1) / (domain - 1)` for
    /// covered ≥ 1, and 1.0 (total loss) for suppression.
    pub fn ncp(&self, domain_size: usize, hierarchy: Option<&Hierarchy>) -> f64 {
        if matches!(self, GenEntry::Suppressed) {
            return 1.0;
        }
        if domain_size <= 1 {
            return 0.0;
        }
        let covered = self.leaf_count(hierarchy);
        (covered.saturating_sub(1)) as f64 / (domain_size - 1) as f64
    }
}

/// An anonymized relational column: a generalized domain plus one
/// generalized-value id per row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelColumn {
    /// Index of the attribute in the original schema.
    pub attr: usize,
    /// The generalized domain; `cells` index into it.
    pub domain: Vec<GenEntry>,
    /// One entry per row.
    pub cells: Vec<u32>,
}

impl RelColumn {
    /// The generalized value of `row`.
    pub fn entry(&self, row: usize) -> &GenEntry {
        &self.domain[self.cells[row] as usize]
    }
}

/// The anonymized transaction attribute.
///
/// Rows are CSR-encoded like the original table, but over *generalized
/// item* ids. `multiplicity[i]` records how many original items of the
/// row were merged into occurrence `i` — needed by the standard
/// uniformity estimate for COUNT queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnonTransaction {
    /// Generalized item domain; row items index into it.
    pub domain: Vec<GenEntry>,
    /// CSR offsets (`n_rows + 1`).
    pub offsets: Vec<u32>,
    /// Generalized item ids per row, sorted, duplicate-free.
    pub items: Vec<u32>,
    /// Original items merged into each generalized occurrence
    /// (parallel to `items`).
    pub multiplicity: Vec<u16>,
    /// Original item ids that were suppressed dataset-wide.
    pub suppressed: Vec<ItemId>,
}

impl AnonTransaction {
    /// Generalized item ids of `row`.
    pub fn row_items(&self, row: usize) -> &[u32] {
        let lo = self.offsets[row] as usize;
        let hi = self.offsets[row + 1] as usize;
        &self.items[lo..hi]
    }

    /// Multiplicities parallel to [`Self::row_items`].
    pub fn row_multiplicity(&self, row: usize) -> &[u16] {
        let lo = self.offsets[row] as usize;
        let hi = self.offsets[row + 1] as usize;
        &self.multiplicity[lo..hi]
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Build from a *row-aware* mapping `map(row, item) -> Option<gen
    /// id>` (`None` = suppressed in that row), given the generalized
    /// `domain`. Items suppressed in at least one row are recorded in
    /// the suppressed list. Used by locally recoding algorithms (LRA
    /// and per-cluster runs under the RT bounding methods).
    pub fn from_row_mapping(
        table: &RtTable,
        domain: Vec<GenEntry>,
        map: impl Fn(usize, ItemId) -> Option<u32>,
    ) -> AnonTransaction {
        Self::build(table, domain, map, true)
    }

    /// Build from a per-row mapping `map(item) -> Option<gen id>`
    /// (`None` = suppressed), given the generalized `domain`. Collects
    /// multiplicities and the dataset-wide suppressed-item list.
    pub fn from_mapping(
        table: &RtTable,
        domain: Vec<GenEntry>,
        map: impl Fn(ItemId) -> Option<u32>,
    ) -> AnonTransaction {
        Self::build(table, domain, |_, it| map(it), true)
    }

    fn build(
        table: &RtTable,
        domain: Vec<GenEntry>,
        map: impl Fn(usize, ItemId) -> Option<u32>,
        record_suppressed: bool,
    ) -> AnonTransaction {
        let n = table.n_rows();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut items = Vec::new();
        let mut multiplicity = Vec::new();
        let mut suppressed: Vec<ItemId> = Vec::new();
        let mut seen_suppressed = vec![false; table.item_universe()];
        let mut row_buf: FxHashMap<u32, u16> = FxHashMap::default();
        for row in 0..n {
            row_buf.clear();
            for &it in table.transaction(row) {
                match map(row, it) {
                    Some(g) => *row_buf.entry(g).or_insert(0) += 1,
                    None => {
                        if record_suppressed && !seen_suppressed[it.index()] {
                            seen_suppressed[it.index()] = true;
                            suppressed.push(it);
                        }
                    }
                }
            }
            let mut row_items: Vec<(u32, u16)> = row_buf.iter().map(|(&g, &c)| (g, c)).collect();
            row_items.sort_unstable_by_key(|&(g, _)| g);
            for (g, c) in row_items {
                items.push(g);
                multiplicity.push(c);
            }
            offsets.push(items.len() as u32);
        }
        suppressed.sort_unstable();
        AnonTransaction {
            domain,
            offsets,
            items,
            multiplicity,
            suppressed,
        }
    }
}

/// The anonymized dataset: generalized relational columns and/or a
/// generalized transaction attribute, aligned row-by-row with the
/// original table it was derived from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnonTable {
    /// Anonymized relational columns (may be empty for
    /// transaction-only runs). Columns not listed are unchanged
    /// non-quasi-identifiers.
    pub rel: Vec<RelColumn>,
    /// Anonymized transaction attribute (absent for relational-only
    /// runs).
    pub tx: Option<AnonTransaction>,
    /// Number of rows (matches the original).
    pub n_rows: usize,
}

impl AnonTable {
    /// An "identity" anonymization: every relational cell kept as a
    /// singleton set, every item kept as itself. Useful as a baseline
    /// (zero information loss) and in tests.
    pub fn identity(table: &RtTable, rel_attrs: &[usize]) -> AnonTable {
        let rel = rel_attrs
            .iter()
            .map(|&attr| {
                let n_values = table.domain_size(attr);
                let domain: Vec<GenEntry> = (0..n_values as u32)
                    .map(|v| GenEntry::Set(vec![v]))
                    .collect();
                let cells: Vec<u32> = table.column(attr).iter().map(|v| v.0).collect();
                RelColumn {
                    attr,
                    domain,
                    cells,
                }
            })
            .collect();
        let tx = table.schema().transaction_index().map(|_| {
            let domain: Vec<GenEntry> = (0..table.item_universe() as u32)
                .map(|i| GenEntry::Set(vec![i]))
                .collect();
            AnonTransaction::from_mapping(table, domain, |it| Some(it.0))
        });
        AnonTable {
            rel,
            tx,
            n_rows: table.n_rows(),
        }
    }

    /// The anonymized relational column for original attribute `attr`,
    /// if it was anonymized.
    pub fn rel_column(&self, attr: usize) -> Option<&RelColumn> {
        self.rel.iter().find(|c| c.attr == attr)
    }

    /// Group rows into equivalence classes by their generalized
    /// relational signature. Returns class sizes plus a row→class map.
    pub fn equivalence_classes(&self) -> (Vec<usize>, Vec<u32>) {
        let mut classes: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
        let mut sizes: Vec<usize> = Vec::new();
        let mut row_class = vec![0u32; self.n_rows];
        let mut sig = Vec::with_capacity(self.rel.len());
        for (row, slot) in row_class.iter_mut().enumerate() {
            sig.clear();
            for col in &self.rel {
                sig.push(col.cells[row]);
            }
            let next = sizes.len() as u32;
            let class = *classes.entry(sig.clone()).or_insert(next);
            if class as usize == sizes.len() {
                sizes.push(0);
            }
            sizes[class as usize] += 1;
            *slot = class;
        }
        (sizes, row_class)
    }

    /// Check the original value of each cell is covered by its
    /// generalized value — the *data truthfulness* invariant the paper
    /// highlights. Also verifies transaction occurrences. Used in
    /// tests and as a post-run sanity check in the core framework.
    pub fn is_truthful(
        &self,
        table: &RtTable,
        rel_hierarchies: impl Fn(usize) -> Option<Hierarchy>,
        tx_hierarchy: Option<&Hierarchy>,
    ) -> bool {
        for col in &self.rel {
            let h = rel_hierarchies(col.attr);
            for row in 0..self.n_rows {
                let orig = table.value(row, col.attr);
                if !col.entry(row).covers(orig.0, h.as_ref()) {
                    return false;
                }
            }
        }
        if let Some(tx) = &self.tx {
            for row in 0..self.n_rows {
                let gen_items = tx.row_items(row);
                let mult = tx.row_multiplicity(row);
                // no fabrication: every published occurrence must cover
                // at least one original item of this row, and the
                // merged-occurrence count cannot exceed what was there
                for &g in gen_items {
                    let grounded = table
                        .transaction(row)
                        .iter()
                        .any(|it| tx.domain[g as usize].covers(it.0, tx_hierarchy));
                    if !grounded {
                        return false;
                    }
                }
                let msum: usize = mult.iter().map(|&m| m as usize).sum();
                if msum > table.transaction(row).len() {
                    return false;
                }
            }
        }
        true
    }

    /// Check completeness of the transaction part: every original item
    /// occurrence not suppressed *dataset-wide* is represented by a
    /// generalized occurrence of its row. Holds for the globally
    /// recoding algorithms (Apriori, COAT, PCTA, …); per-cluster runs
    /// under the RT bounding methods may suppress locally and fail
    /// this check while remaining truthful.
    pub fn is_complete(&self, table: &RtTable, tx_hierarchy: Option<&Hierarchy>) -> bool {
        let tx = match &self.tx {
            Some(tx) => tx,
            None => return true,
        };
        for row in 0..self.n_rows {
            let gen_items = tx.row_items(row);
            let mult = tx.row_multiplicity(row);
            for &it in table.transaction(row) {
                if tx.suppressed.binary_search(&it).is_ok() {
                    continue;
                }
                let covered = gen_items
                    .iter()
                    .any(|&g| tx.domain[g as usize].covers(it.0, tx_hierarchy));
                if !covered {
                    return false;
                }
            }
            let kept = table
                .transaction(row)
                .iter()
                .filter(|it| tx.suppressed.binary_search(it).is_err())
                .count();
            let msum: usize = mult.iter().map(|&m| m as usize).sum();
            if msum != kept {
                return false;
            }
        }
        true
    }
}

/// Compose a value id → generalized entry mapping into per-row cells,
/// deduplicating equal entries into a shared domain. Helper for
/// hierarchy-based relational algorithms that compute a global
/// `ValueId -> NodeId` recoding.
pub fn rel_column_from_value_map(
    table: &RtTable,
    attr: usize,
    map: impl Fn(ValueId) -> GenEntry,
) -> RelColumn {
    let mut domain: Vec<GenEntry> = Vec::new();
    let mut index: FxHashMap<GenEntry, u32> = FxHashMap::default();
    let mut value_gen: Vec<u32> = Vec::with_capacity(table.domain_size(attr));
    for v in 0..table.domain_size(attr) as u32 {
        let entry = map(ValueId(v));
        let next = domain.len() as u32;
        let id = *index.entry(entry.clone()).or_insert(next);
        if id as usize == domain.len() {
            domain.push(entry);
        }
        value_gen.push(id);
    }
    let cells = table
        .column(attr)
        .iter()
        .map(|v| value_gen[v.index()])
        .collect();
    RelColumn {
        attr,
        domain,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use secreta_data::AttributeKind;
    use secreta_data::{Attribute, Schema};
    use secreta_hierarchy::auto_hierarchy;

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::categorical("Edu"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30", "BSc"], &["a", "b"]).unwrap();
        t.push_row(&["41", "MSc"], &["a"]).unwrap();
        t.push_row(&["30", "BSc"], &["b", "c"]).unwrap();
        t.push_row(&["55", "PhD"], &["c"]).unwrap();
        t
    }

    #[test]
    fn identity_is_truthful_with_zero_ncp() {
        let t = table();
        let a = AnonTable::identity(&t, &[0, 1]);
        assert!(a.is_truthful(&t, |_| None, None));
        for col in &a.rel {
            for row in 0..a.n_rows {
                assert_eq!(col.entry(row).ncp(t.domain_size(col.attr), None), 0.0);
            }
        }
        let tx = a.tx.as_ref().unwrap();
        assert!(tx.suppressed.is_empty());
        assert_eq!(tx.row_items(0).len(), 2);
        assert_eq!(tx.row_multiplicity(0), &[1, 1]);
    }

    #[test]
    fn gen_entry_set_normalizes() {
        let e = GenEntry::set(vec![3, 1, 3, 2]);
        assert_eq!(e, GenEntry::Set(vec![1, 2, 3]));
        assert_eq!(e.leaf_count(None), 3);
        assert!(e.covers(2, None));
        assert!(!e.covers(4, None));
    }

    #[test]
    fn gen_entry_node_uses_hierarchy() {
        let t = table();
        let h = auto_hierarchy(t.pool(1), AttributeKind::Categorical, 2).unwrap();
        let root = GenEntry::Node(h.root());
        assert_eq!(root.leaf_count(Some(&h)), 3);
        assert!(root.covers(0, Some(&h)));
        assert_eq!(root.ncp(3, Some(&h)), 1.0);
        assert_eq!(root.display(Some(&h), |v| v.to_string()), "*");
    }

    #[test]
    fn suppressed_entry_semantics() {
        let e = GenEntry::Suppressed;
        assert_eq!(e.leaf_count(None), 0);
        assert!(!e.covers(0, None));
        assert_eq!(e.ncp(10, None), 1.0);
        assert_eq!(e.display(None, |v| v.to_string()), "⊥");
    }

    #[test]
    fn ncp_degenerate_domain() {
        let e = GenEntry::Set(vec![0]);
        assert_eq!(e.ncp(1, None), 0.0);
    }

    #[test]
    fn set_display_sorted_labels() {
        let e = GenEntry::set(vec![1, 0]);
        let label = e.display(None, |v| if v == 0 { "z".into() } else { "a".into() });
        assert_eq!(label, "(a|z)");
        let single = GenEntry::set(vec![7]);
        assert_eq!(single.display(None, |_| "only".into()), "only");
    }

    #[test]
    fn equivalence_classes_group_by_signature() {
        let t = table();
        // generalize Age fully, keep Edu exact: classes by Edu
        let age_col = rel_column_from_value_map(&t, 0, |_| GenEntry::set(vec![0, 1, 2]));
        let edu_col = rel_column_from_value_map(&t, 1, |v| GenEntry::Set(vec![v.0]));
        let a = AnonTable {
            rel: vec![age_col, edu_col],
            tx: None,
            n_rows: t.n_rows(),
        };
        let (sizes, row_class) = a.equivalence_classes();
        assert_eq!(sizes.len(), 3); // BSc, MSc, PhD
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert_eq!(row_class[0], row_class[2]); // both BSc rows
        assert_ne!(row_class[0], row_class[1]);
    }

    #[test]
    fn from_mapping_merges_and_suppresses() {
        let t = table();
        // merge a,b into one generalized item; suppress c
        let domain = vec![GenEntry::set(vec![0, 1])];
        let tx =
            AnonTransaction::from_mapping(&t, domain, |it| if it.0 <= 1 { Some(0) } else { None });
        assert_eq!(tx.row_items(0), &[0]);
        assert_eq!(tx.row_multiplicity(0), &[2]); // a and b merged
        assert_eq!(tx.row_items(3), &[] as &[u32]); // only c, suppressed
        assert_eq!(tx.suppressed, vec![ItemId(2)]);
        assert_eq!(tx.n_rows(), 4);
    }

    #[test]
    fn truthfulness_detects_bad_recoding() {
        let t = table();
        // claim Age=41 generalizes to {30} — not truthful
        let age_col = rel_column_from_value_map(&t, 0, |_| GenEntry::Set(vec![0]));
        let a = AnonTable {
            rel: vec![age_col],
            tx: None,
            n_rows: t.n_rows(),
        };
        assert!(!a.is_truthful(&t, |_| None, None));
    }

    #[test]
    fn truthfulness_checks_transaction_coverage() {
        let t = table();
        // map every item to a gen item covering only item 0
        let domain = vec![GenEntry::Set(vec![0])];
        let tx = AnonTransaction::from_mapping(&t, domain, |_| Some(0));
        let a = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: t.n_rows(),
        };
        assert!(!a.is_truthful(&t, |_| None, None));
    }

    #[test]
    fn rel_column_from_value_map_dedups_domain() {
        let t = table();
        let col = rel_column_from_value_map(&t, 0, |_| GenEntry::set(vec![0, 1, 2]));
        assert_eq!(col.domain.len(), 1, "equal entries share one domain slot");
        assert!(col.cells.iter().all(|&c| c == 0));
    }
}
