//! COUNT query workloads and Average Relative Error.
//!
//! SECRETA "supports the same type of queries as \[12\], and uses
//! Average Relative Error (ARE) \[12\] as a de-facto utility indicator".
//! A query is a conjunction of predicates over relational attributes
//! (value-in-set, covering both point and range queries) and the
//! transaction attribute (contains-all-items); its answer is a COUNT
//! of matching records.
//!
//! On anonymized data the count is *estimated* under the standard
//! uniformity assumption: a generalized relational value covering `s`
//! leaves matches a point predicate with probability `1/s`; a
//! generalized item occurrence that merged `c` original items out of a
//! generalized item spanning `s` matches a queried member item with
//! probability `c/s`. ARE is the mean of `|exact - estimate| /
//! max(exact, 1)` over the workload.

use crate::anon::AnonTable;
use secreta_data::{DataError, ItemId, RtTable};
use secreta_hierarchy::Hierarchy;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read, Write};

/// One conjunct of a [`Query`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryAtom {
    /// The relational attribute `attr` takes a value in `values`
    /// (sorted ids). A single id is a point predicate; a contiguous
    /// numeric run models a range predicate.
    Rel {
        /// Schema index of the relational attribute.
        attr: usize,
        /// Accepted value ids, sorted ascending.
        values: Vec<u32>,
    },
    /// The transaction contains **all** of `items`.
    Items {
        /// Items that must all be present.
        items: Vec<ItemId>,
    },
}

/// A COUNT query: conjunction of atoms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    /// Conjuncts; empty queries count every record.
    pub atoms: Vec<QueryAtom>,
}

impl Query {
    /// Exact COUNT on the original table.
    pub fn count(&self, table: &RtTable) -> u64 {
        let mut count = 0u64;
        'rows: for row in 0..table.n_rows() {
            for atom in &self.atoms {
                match atom {
                    QueryAtom::Rel { attr, values } => {
                        let v = table.value(row, *attr).0;
                        if values.binary_search(&v).is_err() {
                            continue 'rows;
                        }
                    }
                    QueryAtom::Items { items } => {
                        let tx = table.transaction(row);
                        for it in items {
                            if tx.binary_search(it).is_err() {
                                continue 'rows;
                            }
                        }
                    }
                }
            }
            count += 1;
        }
        count
    }

    /// Estimated COUNT on anonymized data.
    ///
    /// `rel_hierarchy(attr)` / `tx_hierarchy` supply hierarchies for
    /// node-recoded columns. Attributes absent from `anon.rel` are
    /// assumed published unchanged and answered exactly from `table`.
    pub fn estimate(
        &self,
        table: &RtTable,
        anon: &AnonTable,
        rel_hierarchy: &impl Fn(usize) -> Option<Hierarchy>,
        tx_hierarchy: Option<&Hierarchy>,
    ) -> f64 {
        let mut total = 0.0;
        for row in 0..anon.n_rows {
            let mut p = 1.0f64;
            for atom in &self.atoms {
                if p == 0.0 {
                    break;
                }
                match atom {
                    QueryAtom::Rel { attr, values } => {
                        match anon.rel_column(*attr) {
                            Some(col) => {
                                let entry = col.entry(row);
                                let h = rel_hierarchy(*attr);
                                let s = entry.leaf_count(h.as_ref());
                                if s == 0 {
                                    p = 0.0;
                                    continue;
                                }
                                let hits = values
                                    .iter()
                                    .filter(|&&v| entry.covers(v, h.as_ref()))
                                    .count();
                                p *= hits as f64 / s as f64;
                            }
                            None => {
                                // attribute published unchanged
                                let v = table.value(row, *attr).0;
                                if values.binary_search(&v).is_err() {
                                    p = 0.0;
                                }
                            }
                        }
                    }
                    QueryAtom::Items { items } => match &anon.tx {
                        Some(tx) => {
                            let row_items = tx.row_items(row);
                            let mult = tx.row_multiplicity(row);
                            for queried in items {
                                if tx.suppressed.binary_search(queried).is_ok() {
                                    p = 0.0;
                                    break;
                                }
                                // probability the queried item is among
                                // this row's original items
                                let mut pa = 0.0f64;
                                for (pos, &g) in row_items.iter().enumerate() {
                                    let entry = &tx.domain[g as usize];
                                    if entry.covers(queried.0, tx_hierarchy) {
                                        let s = entry.leaf_count(tx_hierarchy).max(1);
                                        pa = (mult[pos] as f64 / s as f64).min(1.0);
                                        break;
                                    }
                                }
                                p *= pa;
                                if p == 0.0 {
                                    break;
                                }
                            }
                        }
                        None => {
                            // transaction attribute published unchanged
                            let tx_orig = table.transaction(row);
                            for it in items {
                                if tx_orig.binary_search(it).is_err() {
                                    p = 0.0;
                                    break;
                                }
                            }
                        }
                    },
                }
            }
            total += p;
        }
        total
    }
}

/// A named set of queries (the Queries Editor document).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Workload {
    /// The queries.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Exact answers on the original table.
    pub fn counts(&self, table: &RtTable) -> Vec<u64> {
        self.queries.iter().map(|q| q.count(table)).collect()
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the workload holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

/// ARE of `anon` against the original `table` for `workload`.
///
/// `|exact - estimate| / max(exact, 1)` averaged over queries; 0.0 for
/// an empty workload.
///
/// Queries are evaluated in parallel (each scans every row twice —
/// exact count plus estimate — so a 25-query workload is 50 table
/// scans); the per-query errors are then summed sequentially in query
/// order, which keeps the result bit-identical to the sequential loop
/// regardless of thread count.
pub fn average_relative_error(
    table: &RtTable,
    anon: &AnonTable,
    workload: &Workload,
    rel_hierarchy: impl Fn(usize) -> Option<Hierarchy> + Sync,
    tx_hierarchy: Option<&Hierarchy>,
) -> f64 {
    if workload.is_empty() {
        return 0.0;
    }
    let errors = secreta_parallel::par_map_heavy(workload.len(), |i| {
        let q = &workload.queries[i];
        let exact = q.count(table) as f64;
        let est = q.estimate(table, anon, &rel_hierarchy, tx_hierarchy);
        (exact - est).abs() / exact.max(1.0)
    });
    errors.iter().sum::<f64>() / workload.len() as f64
}

/// Parse a workload in the Queries Editor file format: one query per
/// line, `;`-separated atoms, each `attr=value|value...`; the
/// transaction attribute's values are items separated by spaces.
///
/// ```text
/// Age=30|41;Items=milk bread
/// Education=BSc
/// Items=beer
/// ```
pub fn read_workload<R: Read>(reader: R, table: &RtTable) -> Result<Workload, DataError> {
    let schema = table.schema();
    let tx_idx = schema.transaction_index();
    let mut queries = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let mut atoms = Vec::new();
        for part in line.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, rhs) = part.split_once('=').ok_or_else(|| {
                DataError::Invalid(format!("line {}: atom {part:?} lacks '='", lineno + 1))
            })?;
            let name = name.trim();
            let attr = schema
                .index_of(name)
                .ok_or_else(|| DataError::UnknownAttribute(name.to_owned()))?;
            if Some(attr) == tx_idx {
                let pool = table.item_pool().expect("tx index implies pool");
                let mut items = Vec::new();
                for token in rhs.split_whitespace() {
                    let id = pool.get(token).ok_or_else(|| {
                        DataError::Invalid(format!("line {}: unknown item {token:?}", lineno + 1))
                    })?;
                    items.push(ItemId(id));
                }
                items.sort_unstable();
                items.dedup();
                atoms.push(QueryAtom::Items { items });
            } else {
                let pool = table.pool(attr);
                let mut values = Vec::new();
                for token in rhs.split('|') {
                    let token = token.trim();
                    let id = pool.get(token).ok_or_else(|| {
                        DataError::Invalid(format!(
                            "line {}: unknown value {token:?} for {name:?}",
                            lineno + 1
                        ))
                    })?;
                    values.push(id);
                }
                values.sort_unstable();
                values.dedup();
                atoms.push(QueryAtom::Rel { attr, values });
            }
        }
        queries.push(Query { atoms });
    }
    Ok(Workload { queries })
}

/// Serialize a workload in the Queries Editor format (Data Export
/// Module).
pub fn write_workload<W: Write>(
    workload: &Workload,
    table: &RtTable,
    writer: &mut W,
) -> Result<(), DataError> {
    let schema = table.schema();
    for q in &workload.queries {
        let mut parts = Vec::new();
        for atom in &q.atoms {
            match atom {
                QueryAtom::Rel { attr, values } => {
                    let name = &schema.attribute(*attr).expect("attr in range").name;
                    let pool = table.pool(*attr);
                    let vals: Vec<&str> = values.iter().map(|&v| pool.resolve(v)).collect();
                    parts.push(format!("{name}={}", vals.join("|")));
                }
                QueryAtom::Items { items } => {
                    let tx = schema
                        .transaction_index()
                        .expect("Items atom implies tx attribute");
                    let name = &schema.attribute(tx).expect("attr in range").name;
                    let pool = table.item_pool().expect("tx pool");
                    let toks: Vec<&str> = items.iter().map(|it| pool.resolve(it.0)).collect();
                    parts.push(format!("{name}={}", toks.join(" ")));
                }
            }
        }
        writeln!(writer, "{}", parts.join(";"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anon::{rel_column_from_value_map, AnonTransaction, GenEntry};
    use secreta_data::{Attribute, Schema};

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30"], &["a", "b"]).unwrap(); // ids: a=0 b=1
        t.push_row(&["41"], &["a"]).unwrap();
        t.push_row(&["30"], &["b", "c"]).unwrap(); // c=2
        t.push_row(&["55"], &["c"]).unwrap();
        t
    }

    fn q_rel(attr: usize, values: Vec<u32>) -> Query {
        Query {
            atoms: vec![QueryAtom::Rel { attr, values }],
        }
    }

    fn q_items(items: Vec<u32>) -> Query {
        Query {
            atoms: vec![QueryAtom::Items {
                items: items.into_iter().map(ItemId).collect(),
            }],
        }
    }

    #[test]
    fn exact_counts() {
        let t = table();
        assert_eq!(q_rel(0, vec![0]).count(&t), 2); // Age=30
        assert_eq!(q_rel(0, vec![0, 1]).count(&t), 3); // Age in {30,41}
        assert_eq!(q_items(vec![0]).count(&t), 2); // contains a
        assert_eq!(q_items(vec![0, 1]).count(&t), 1); // contains a and b
        assert_eq!(Query { atoms: vec![] }.count(&t), 4);
        let conj = Query {
            atoms: vec![
                QueryAtom::Rel {
                    attr: 0,
                    values: vec![0],
                },
                QueryAtom::Items {
                    items: vec![ItemId(1)],
                },
            ],
        };
        assert_eq!(conj.count(&t), 2); // Age=30 AND contains b
    }

    #[test]
    fn identity_estimate_matches_exact() {
        let t = table();
        let a = AnonTable::identity(&t, &[0]);
        for q in [
            q_rel(0, vec![0]),
            q_items(vec![0]),
            q_items(vec![0, 1]),
            Query { atoms: vec![] },
        ] {
            let exact = q.count(&t) as f64;
            let est = q.estimate(&t, &a, &|_| None, None);
            assert!((exact - est).abs() < 1e-9, "{q:?}: {exact} vs {est}");
        }
        let w = Workload {
            queries: vec![q_rel(0, vec![0]), q_items(vec![2])],
        };
        assert_eq!(average_relative_error(&t, &a, &w, |_| None, None), 0.0);
    }

    #[test]
    fn generalized_rel_estimate_uses_uniformity() {
        let t = table();
        // Age domain {30,41,55} -> one gen value covering all three
        let age = rel_column_from_value_map(&t, 0, |_| GenEntry::set(vec![0, 1, 2]));
        let a = AnonTable {
            rel: vec![age],
            tx: None,
            n_rows: 4,
        };
        // Age=30: each row matches with p=1/3 -> estimate 4/3
        let est = q_rel(0, vec![0]).estimate(&t, &a, &|_| None, None);
        assert!((est - 4.0 / 3.0).abs() < 1e-9, "got {est}");
        // Age in all values: p = 1 per row
        let est_all = q_rel(0, vec![0, 1, 2]).estimate(&t, &a, &|_| None, None);
        assert!((est_all - 4.0).abs() < 1e-9);
    }

    #[test]
    fn generalized_items_estimate_uses_multiplicity() {
        let t = table();
        // merge a,b,c into one gen item of size 3
        let dom = vec![GenEntry::set(vec![0, 1, 2])];
        let tx = AnonTransaction::from_mapping(&t, dom, |_| Some(0));
        let a = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 4,
        };
        // query: contains a. rows 0,2 merged 2 items -> p=2/3;
        // rows 1,3 merged 1 item -> p=1/3. total = 2*(2/3)+2*(1/3) = 2.0
        let est = q_items(vec![0]).estimate(&t, &a, &|_| None, None);
        assert!((est - 2.0).abs() < 1e-9, "got {est}");
    }

    #[test]
    fn suppressed_item_estimates_zero() {
        let t = table();
        let dom = vec![GenEntry::Set(vec![0]), GenEntry::Set(vec![1])];
        let tx =
            AnonTransaction::from_mapping(&t, dom, |it| if it.0 < 2 { Some(it.0) } else { None });
        let a = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 4,
        };
        let est = q_items(vec![2]).estimate(&t, &a, &|_| None, None);
        assert_eq!(est, 0.0);
        // ARE for that query is |2 - 0| / 2 = 1
        let w = Workload {
            queries: vec![q_items(vec![2])],
        };
        let are = average_relative_error(&t, &a, &w, |_| None, None);
        assert!((are - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_count_queries_use_sanity_floor() {
        let t = table();
        let a = AnonTable::identity(&t, &[0]);
        // Age=55 AND contains a: exact 0, estimate 0 -> ARE 0
        let q = Query {
            atoms: vec![
                QueryAtom::Rel {
                    attr: 0,
                    values: vec![2],
                },
                QueryAtom::Items {
                    items: vec![ItemId(0)],
                },
            ],
        };
        let w = Workload { queries: vec![q] };
        assert_eq!(average_relative_error(&t, &a, &w, |_| None, None), 0.0);
    }

    #[test]
    fn unanonymized_attributes_answered_exactly() {
        let t = table();
        // anonymize nothing; tx absent from anon; query both parts
        let a = AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 4,
        };
        let q = Query {
            atoms: vec![
                QueryAtom::Rel {
                    attr: 0,
                    values: vec![0],
                },
                QueryAtom::Items {
                    items: vec![ItemId(1)],
                },
            ],
        };
        let est = q.estimate(&t, &a, &|_| None, None);
        assert_eq!(est, 2.0);
    }

    #[test]
    fn workload_file_roundtrip() {
        let t = table();
        let src = "Age=30|41;Items=a b\nItems=c\n# comment\nAge=55\n";
        let w = read_workload(src.as_bytes(), &t).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.counts(&t), vec![1, 2, 1]);
        let mut buf = Vec::new();
        write_workload(&w, &t, &mut buf).unwrap();
        let w2 = read_workload(buf.as_slice(), &t).unwrap();
        assert_eq!(w, w2);
    }

    #[test]
    fn workload_parse_errors() {
        let t = table();
        assert!(read_workload("Nope=3\n".as_bytes(), &t).is_err());
        assert!(read_workload("Age=999\n".as_bytes(), &t).is_err());
        assert!(read_workload("Items=zzz\n".as_bytes(), &t).is_err());
        assert!(read_workload("Age 30\n".as_bytes(), &t).is_err());
    }

    #[test]
    fn node_recoded_estimates() {
        use secreta_data::AttributeKind;
        use secreta_hierarchy::auto_hierarchy;
        let t = table();
        let h = auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap();
        let root = h.root();
        let age = rel_column_from_value_map(&t, 0, |_| GenEntry::Node(root));
        let a = AnonTable {
            rel: vec![age],
            tx: None,
            n_rows: 4,
        };
        let est = q_rel(0, vec![0]).estimate(&t, &a, &|_| Some(h.clone()), None);
        assert!((est - 4.0 / 3.0).abs() < 1e-9);
    }
}
