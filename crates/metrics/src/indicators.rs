//! The indicator set SECRETA reports for every run.
//!
//! Lives in the metrics crate (rather than next to the Anonymization
//! Module in `secreta-core`) so that layers below the experimentation
//! framework — notably the persistent run store — can record and
//! replay indicator values without depending on the framework itself.

use serde::{Deserialize, Serialize};

/// The data-utility and efficiency indicators SECRETA reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Indicators {
    /// Relational information loss (mean NCP over cells), in \[0,1\].
    pub gcp: f64,
    /// Transaction information loss (mean NCP over occurrences).
    pub tx_gcp: f64,
    /// Normalized UL of the transaction attribute.
    pub ul: f64,
    /// Average Relative Error over the session workload.
    pub are: f64,
    /// Mean relative error of per-item frequencies (Figure 3(d)
    /// summary).
    pub item_freq_error: f64,
    /// Discernibility (Σ |EC|²) of the relational part.
    pub discernibility: u64,
    /// Average equivalence-class size.
    pub avg_class_size: f64,
    /// Total wall-clock runtime in milliseconds.
    pub runtime_ms: f64,
    /// Did the output pass post-hoc verification of its guarantee?
    pub verified: bool,
    /// Attack-side disclosure-risk indicators (`secreta-risk`).
    ///
    /// `None` on manifests written before store schema 4 and on runs
    /// where risk evaluation is disabled — an absent block
    /// deserializes to `None`, so old manifests keep loading.
    #[serde(default)]
    pub risk: Option<RiskIndicators>,
}

/// The attack-side indicator block computed by `secreta-risk`.
///
/// All constituent values are derived from integer accumulators
/// (counts, sums, minima) with any ratios taken once at the end, so
/// the block is byte-identical across thread counts and replays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskIndicators {
    /// Relational re-identification risk; `None` when the output has
    /// no relational part.
    pub rel: Option<RelationalRisk>,
    /// Transaction m-item adversary risk; `None` when the output has
    /// no transaction part.
    pub tx: Option<TransactionRisk>,
    /// Post-hoc audit of the claimed privacy guarantee.
    pub audit: ConstraintAudit,
}

/// Prosecutor/journalist re-identification risk over the relational
/// quasi-identifier equivalence classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationalRisk {
    /// Number of equivalence classes over the published QI values.
    pub n_classes: u64,
    /// Size of the smallest equivalence class.
    pub min_class_size: u64,
    /// Worst-case prosecutor risk `1 / min_class_size`.
    pub max_prosecutor: f64,
    /// Average prosecutor risk `n_classes / n_rows` (the mean of
    /// `1/|EC|` over records).
    pub avg_prosecutor: f64,
    /// Worst-case journalist risk under the sampled-population model:
    /// `1 / ceil(min_class_size / sample_fraction)`.
    pub max_journalist: f64,
    /// Fraction of records whose prosecutor risk exceeds the
    /// configured risk threshold.
    pub at_risk_fraction: f64,
}

/// Transaction re-identification risk under an adversary knowing up
/// to `m` of a victim's original items, for each evaluated `m`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransactionRisk {
    /// One entry per evaluated background-knowledge size `m`
    /// (ascending).
    pub per_m: Vec<MItemRisk>,
}

/// Candidate-set statistics for one background-knowledge size `m`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MItemRisk {
    /// Background-knowledge size (number of known original items).
    pub m: u32,
    /// Smallest worst-case candidate-set size over all records with at
    /// least one original item (0 when suppression broke every link
    /// for some record).
    pub min_candidates: u64,
    /// Mean worst-case candidate-set size over those records.
    pub avg_candidates: f64,
    /// Share of records whose worst-case candidate set is exactly one
    /// row — i.e. uniquely re-identifiable under `m`-item knowledge.
    pub unique_fraction: f64,
}

/// Result of re-checking the claimed privacy guarantee on the output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintAudit {
    /// Human-readable description of the audited guarantee, e.g.
    /// `"k-anonymity(k=5)"`.
    pub guarantee: String,
    /// Number of violating records/constraints found (for
    /// ρ-uncertainty: 0 or 1, a pass/fail re-check).
    pub violations: u64,
    /// True iff `violations == 0` — the hard error indicator.
    pub passed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_is_exact() {
        let ind = Indicators {
            gcp: 0.123456789123,
            tx_gcp: 0.25,
            ul: 1.0 / 3.0,
            are: 7.5e-3,
            item_freq_error: 0.0,
            discernibility: 123_456,
            avg_class_size: 12.5,
            runtime_ms: 1.0625,
            verified: true,
            risk: None,
        };
        let json = serde_json::to_string(&ind).unwrap();
        let back: Indicators = serde_json::from_str(&json).unwrap();
        // exact f64 equality: Display uses the shortest representation
        // that round-trips, so replayed runs are bit-identical
        assert_eq!(ind, back);
    }

    #[test]
    fn risk_block_roundtrips_and_defaults_to_none() {
        let ind = Indicators {
            gcp: 0.5,
            tx_gcp: 0.0,
            ul: 0.0,
            are: 0.0,
            item_freq_error: 0.0,
            discernibility: 4,
            avg_class_size: 2.0,
            runtime_ms: 3.5,
            verified: true,
            risk: Some(RiskIndicators {
                rel: Some(RelationalRisk {
                    n_classes: 3,
                    min_class_size: 2,
                    max_prosecutor: 0.5,
                    avg_prosecutor: 0.375,
                    max_journalist: 0.05,
                    at_risk_fraction: 0.25,
                }),
                tx: Some(TransactionRisk {
                    per_m: vec![MItemRisk {
                        m: 1,
                        min_candidates: 1,
                        avg_candidates: 2.5,
                        unique_fraction: 1.0 / 3.0,
                    }],
                }),
                audit: ConstraintAudit {
                    guarantee: "k-anonymity(k=2)".into(),
                    violations: 0,
                    passed: true,
                },
            }),
        };
        let json = serde_json::to_string(&ind).unwrap();
        let back: Indicators = serde_json::from_str(&json).unwrap();
        assert_eq!(ind, back);

        // a pre-risk indicator block (no "risk" key) still loads
        let legacy = r#"{"gcp":0.0,"tx_gcp":0.0,"ul":0.0,"are":0.0,
            "item_freq_error":0.0,"discernibility":0,"avg_class_size":0.0,
            "runtime_ms":0.0,"verified":true}"#;
        let old: Indicators = serde_json::from_str(legacy).unwrap();
        assert!(old.risk.is_none());
        // ...and round-trips as None
        let reser = serde_json::to_string(&old).unwrap();
        let again: Indicators = serde_json::from_str(&reser).unwrap();
        assert_eq!(old, again);
    }
}
