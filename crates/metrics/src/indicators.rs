//! The indicator set SECRETA reports for every run.
//!
//! Lives in the metrics crate (rather than next to the Anonymization
//! Module in `secreta-core`) so that layers below the experimentation
//! framework — notably the persistent run store — can record and
//! replay indicator values without depending on the framework itself.

use serde::{Deserialize, Serialize};

/// The data-utility and efficiency indicators SECRETA reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Indicators {
    /// Relational information loss (mean NCP over cells), in \[0,1\].
    pub gcp: f64,
    /// Transaction information loss (mean NCP over occurrences).
    pub tx_gcp: f64,
    /// Normalized UL of the transaction attribute.
    pub ul: f64,
    /// Average Relative Error over the session workload.
    pub are: f64,
    /// Mean relative error of per-item frequencies (Figure 3(d)
    /// summary).
    pub item_freq_error: f64,
    /// Discernibility (Σ |EC|²) of the relational part.
    pub discernibility: u64,
    /// Average equivalence-class size.
    pub avg_class_size: f64,
    /// Total wall-clock runtime in milliseconds.
    pub runtime_ms: f64,
    /// Did the output pass post-hoc verification of its guarantee?
    pub verified: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip_is_exact() {
        let ind = Indicators {
            gcp: 0.123456789123,
            tx_gcp: 0.25,
            ul: 1.0 / 3.0,
            are: 7.5e-3,
            item_freq_error: 0.0,
            discernibility: 123_456,
            avg_class_size: 12.5,
            runtime_ms: 1.0625,
            verified: true,
        };
        let json = serde_json::to_string(&ind).unwrap();
        let back: Indicators = serde_json::from_str(&json).unwrap();
        // exact f64 equality: Display uses the shortest representation
        // that round-trips, so replayed runs are bit-identical
        assert_eq!(ind, back);
    }
}
