//! Phase timing.
//!
//! The Evaluation mode plots "the time needed to execute the algorithm
//! and its different phases" (Figure 3(b)). Algorithms record named
//! phases with a [`PhaseTimer`]; the experimentation layer turns the
//! result into bar charts and sweep series.
//!
//! The timer doubles as an instrumentation point for the
//! observability layer: every closed phase window is forwarded to the
//! thread's current [`secreta_obsv::Recorder`], so when a run records
//! a profile, the flat phase list reappears there as a span tree
//! (with delegated sub-algorithms' phases nested under the phase that
//! ran them) without any extra call sites.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Named wall-clock durations of an algorithm run, in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// `(phase name, duration)` pairs.
    pub phases: Vec<(String, Duration)>,
}

impl PhaseTimes {
    /// Total runtime across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of the phase called `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Merge another run's phases onto this one, prefixing names.
    ///
    /// Appends at the *end* of the list — only correct when the
    /// receiver is no longer recording (post-hoc aggregation). An
    /// algorithm absorbing a sub-run mid-flight must use
    /// [`PhaseTimer::absorb`] instead, which splices the sub-phases in
    /// at the current position so they stay ordered before later
    /// top-level phases.
    pub fn absorb(&mut self, prefix: &str, other: PhaseTimes) {
        for (name, d) in other.phases {
            self.phases.push((format!("{prefix}/{name}"), d));
        }
    }
}

/// Records phases as they complete.
#[derive(Debug)]
pub struct PhaseTimer {
    times: PhaseTimes,
    current: Instant,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Start timing; the first phase begins now.
    pub fn new() -> Self {
        PhaseTimer {
            times: PhaseTimes::default(),
            current: Instant::now(),
        }
    }

    /// Close the current phase under `name`; the next begins
    /// immediately. The closed window is also forwarded to the
    /// thread's current observability recorder as a span.
    pub fn phase(&mut self, name: impl Into<String>) {
        let now = Instant::now();
        let name = name.into();
        secreta_obsv::current().record_window(&name, self.current, now);
        self.times
            .phases
            .push((name, now.duration_since(self.current)));
        self.current = now;
    }

    /// Absorb a completed sub-run's phases *at the current position*,
    /// prefixing names. Unlike [`PhaseTimes::absorb`] (which appends
    /// at the end, after every phase of the receiver), the sub-phases
    /// land between the receiver's already-closed phases and whatever
    /// phase is currently in flight — i.e. in execution order. The
    /// in-flight phase keeps timing: its eventual duration still
    /// covers the sub-run it delegated to.
    pub fn absorb(&mut self, prefix: &str, other: PhaseTimes) {
        for (name, d) in other.phases {
            self.times.phases.push((format!("{prefix}/{name}"), d));
        }
    }

    /// Finish, returning the recorded phases.
    pub fn finish(self) -> PhaseTimes {
        self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut t = PhaseTimer::new();
        std::thread::sleep(Duration::from_millis(2));
        t.phase("a");
        t.phase("b");
        let times = t.finish();
        assert_eq!(times.phases.len(), 2);
        assert_eq!(times.phases[0].0, "a");
        assert!(times.get("a").unwrap() >= Duration::from_millis(1));
        assert!(times.get("b").is_some());
        assert!(times.get("c").is_none());
        assert!(times.total() >= Duration::from_millis(1));
    }

    #[test]
    fn absorb_prefixes_names() {
        let mut a = PhaseTimes {
            phases: vec![("x".into(), Duration::from_millis(1))],
        };
        let b = PhaseTimes {
            phases: vec![("y".into(), Duration::from_millis(2))],
        };
        a.absorb("sub", b);
        assert_eq!(a.phases[1].0, "sub/y");
        assert_eq!(a.total(), Duration::from_millis(3));
    }

    #[test]
    fn empty_total_is_zero() {
        assert_eq!(PhaseTimes::default().total(), Duration::ZERO);
    }

    #[test]
    fn timer_absorb_keeps_execution_order() {
        // Regression: absorbing a sub-run through PhaseTimes after
        // finish() appended its phases after every top-level phase —
        // including ones that ran *after* the sub-run. Absorbing
        // through the timer splices them in at the current position.
        let mut t = PhaseTimer::new();
        t.phase("a");
        let sub = PhaseTimes {
            phases: vec![
                ("x".into(), Duration::from_millis(1)),
                ("y".into(), Duration::from_millis(2)),
            ],
        };
        t.absorb("sub", sub);
        t.phase("b");
        let times = t.finish();
        let names: Vec<&str> = times.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "sub/x", "sub/y", "b"]);
    }

    #[test]
    fn phases_forward_to_installed_recorder() {
        let rec = secreta_obsv::Recorder::enabled();
        let _g = secreta_obsv::install(&rec);
        let mut t = PhaseTimer::new();
        t.phase("first");
        {
            // a span opened mid-phase nests under that phase's window
            let _s = secreta_obsv::current().span("inner");
        }
        t.phase("second");
        let times = t.finish();
        let profile = rec.finish("T").unwrap();
        let tops: Vec<&str> = profile.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(tops, ["first", "second"]);
        assert_eq!(profile.spans[1].children.len(), 1);
        assert_eq!(profile.spans[1].children[0].name, "inner");
        assert_eq!(times.phases.len(), 2);
    }
}
