//! Phase timing.
//!
//! The Evaluation mode plots "the time needed to execute the algorithm
//! and its different phases" (Figure 3(b)). Algorithms record named
//! phases with a [`PhaseTimer`]; the experimentation layer turns the
//! result into bar charts and sweep series.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Named wall-clock durations of an algorithm run, in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// `(phase name, duration)` pairs.
    pub phases: Vec<(String, Duration)>,
}

impl PhaseTimes {
    /// Total runtime across phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// Duration of the phase called `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, d)| *d)
    }

    /// Merge another run's phases onto this one (used when an
    /// algorithm delegates to a sub-algorithm), prefixing names.
    pub fn absorb(&mut self, prefix: &str, other: PhaseTimes) {
        for (name, d) in other.phases {
            self.phases.push((format!("{prefix}/{name}"), d));
        }
    }
}

/// Records phases as they complete.
#[derive(Debug)]
pub struct PhaseTimer {
    times: PhaseTimes,
    current: Instant,
}

impl Default for PhaseTimer {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimer {
    /// Start timing; the first phase begins now.
    pub fn new() -> Self {
        PhaseTimer {
            times: PhaseTimes::default(),
            current: Instant::now(),
        }
    }

    /// Close the current phase under `name`; the next begins
    /// immediately.
    pub fn phase(&mut self, name: impl Into<String>) {
        let now = Instant::now();
        self.times
            .phases
            .push((name.into(), now.duration_since(self.current)));
        self.current = now;
    }

    /// Finish, returning the recorded phases.
    pub fn finish(self) -> PhaseTimes {
        self.times
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_in_order() {
        let mut t = PhaseTimer::new();
        std::thread::sleep(Duration::from_millis(2));
        t.phase("a");
        t.phase("b");
        let times = t.finish();
        assert_eq!(times.phases.len(), 2);
        assert_eq!(times.phases[0].0, "a");
        assert!(times.get("a").unwrap() >= Duration::from_millis(1));
        assert!(times.get("b").is_some());
        assert!(times.get("c").is_none());
        assert!(times.total() >= Duration::from_millis(1));
    }

    #[test]
    fn absorb_prefixes_names() {
        let mut a = PhaseTimes {
            phases: vec![("x".into(), Duration::from_millis(1))],
        };
        let b = PhaseTimes {
            phases: vec![("y".into(), Duration::from_millis(2))],
        };
        a.absorb("sub", b);
        assert_eq!(a.phases[1].0, "sub/y");
        assert_eq!(a.total(), Duration::from_millis(3));
    }

    #[test]
    fn empty_total_is_zero() {
        assert_eq!(PhaseTimes::default().total(), Duration::ZERO);
    }
}
