//! Information-loss measures.
//!
//! * **GCP** (Generalized/Global Certainty Penalty, Xu et al. \[12\]) —
//!   the mean NCP over all anonymized relational cells; 0 = original
//!   data, 1 = everything generalized to the root/full domain.
//! * **transaction GCP** — the same averaged over item occurrences of
//!   the anonymized transaction attribute (suppressed occurrences
//!   count as total loss).
//! * **UL** (Utility Loss, Gkoulalas-Divanis & Loukides \[5\]) — the
//!   set-valued measure `UL(ĩ) = (2^{|ĩ|} - 1) · σ(ĩ)` penalizing
//!   large generalized items by the number of non-empty item subsets
//!   they may stand for, weighted by support. Normalized here to \[0,1\]
//!   against the worst case (everything generalized to one item set of
//!   the full universe).
//! * **discernibility** (Bayardo & Agrawal) and **average
//!   equivalence-class size** — classic group-size penalties.

use crate::anon::AnonTable;
use secreta_data::RtTable;
use secreta_hierarchy::Hierarchy;

/// Mean NCP over all anonymized relational cells of `anon`.
///
/// `hierarchy_of(attr)` supplies the hierarchy for attributes recoded
/// with `GenEntry::Node` (may return `None` for set-recoded columns).
pub fn gcp(
    table: &RtTable,
    anon: &AnonTable,
    hierarchy_of: impl Fn(usize) -> Option<Hierarchy>,
) -> f64 {
    let mut sum = 0.0;
    let mut cells = 0usize;
    for col in &anon.rel {
        let domain_size = table.domain_size(col.attr);
        let h = hierarchy_of(col.attr);
        // Per-domain-entry NCP computed once. Instead of folding a
        // float per cell, count cells per domain entry (a
        // deterministic parallel integer histogram) and take one
        // weighted sum in entry order — same value regardless of the
        // thread count, and one multiply-add per *entry* instead of
        // one add per *cell*.
        let entry_ncp: Vec<f64> = col
            .domain
            .iter()
            .map(|e| e.ncp(domain_size, h.as_ref()))
            .collect();
        let hist =
            secreta_parallel::par_hist(col.cells.len(), entry_ncp.len(), |i| col.cells[i] as usize);
        for (count, ncp) in hist.into_iter().zip(&entry_ncp) {
            sum += count as f64 * ncp;
        }
        cells += col.cells.len();
    }
    if cells == 0 {
        0.0
    } else {
        sum / cells as f64
    }
}

/// Mean NCP over original item occurrences of the anonymized
/// transaction attribute. Suppressed occurrences score 1.0.
pub fn transaction_gcp(table: &RtTable, anon: &AnonTable, tx_hierarchy: Option<&Hierarchy>) -> f64 {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return 0.0,
    };
    let universe = table.item_universe();
    if universe <= 1 {
        return 0.0;
    }
    let entry_ncp: Vec<f64> = tx
        .domain
        .iter()
        .map(|e| e.ncp(universe, tx_hierarchy))
        .collect();
    let mut sum = 0.0;
    let mut occurrences = 0usize;
    for row in 0..tx.n_rows() {
        let items = tx.row_items(row);
        let mult = tx.row_multiplicity(row);
        for (pos, &g) in items.iter().enumerate() {
            // each merged original item pays the generalized NCP
            sum += entry_ncp[g as usize] * mult[pos] as f64;
            occurrences += mult[pos] as usize;
        }
        // suppressed occurrences of this row
        let orig = table.transaction(row).len();
        let kept: usize = mult.iter().map(|&m| m as usize).sum();
        let dropped = orig.saturating_sub(kept);
        sum += dropped as f64;
        occurrences += dropped;
    }
    if occurrences == 0 {
        0.0
    } else {
        sum / occurrences as f64
    }
}

/// Clamped `2^n - 1` in f64 — sizes above 60 saturate instead of
/// overflowing; ordering between candidates is preserved.
fn pow2m1(n: usize) -> f64 {
    if n >= 60 {
        f64::MAX / 1e16
    } else {
        ((1u64 << n) - 1) as f64
    }
}

/// Normalized UL of the anonymized transaction attribute.
///
/// `UL = Σ_ĩ (2^{|ĩ|} - 1) · σ(ĩ) + Σ_suppressed (2 ^{1}-1) · σ(i)`
/// normalized by the worst case where every occurrence belongs to one
/// generalized item spanning the whole universe. Returns a value in
/// `[0, 1]`; 0 for identity recoding... strictly, identity recoding
/// scores `occurrences · 1 / worst`, so the measure is rescaled so
/// singleton recoding = 0.
pub fn utility_loss(table: &RtTable, anon: &AnonTable, tx_hierarchy: Option<&Hierarchy>) -> f64 {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return 0.0,
    };
    let universe = table.item_universe();
    if universe <= 1 {
        return 0.0;
    }
    let entry_size: Vec<usize> = tx
        .domain
        .iter()
        .map(|e| e.leaf_count(tx_hierarchy).max(1))
        .collect();
    let mut raw = 0.0;
    let mut occurrences = 0usize;
    for row in 0..tx.n_rows() {
        let items = tx.row_items(row);
        let mult = tx.row_multiplicity(row);
        for (pos, &g) in items.iter().enumerate() {
            raw += pow2m1(entry_size[g as usize]) * mult[pos] as f64;
            occurrences += mult[pos] as usize;
        }
        let orig = table.transaction(row).len();
        let kept: usize = mult.iter().map(|&m| m as usize).sum();
        let dropped = orig.saturating_sub(kept);
        // suppression of an occurrence is as bad as generalizing it to
        // the full universe
        raw += pow2m1(universe) * dropped as f64;
        occurrences += dropped;
    }
    if occurrences == 0 {
        return 0.0;
    }
    let best = occurrences as f64; // all singletons: (2^1 - 1) each
    let worst = pow2m1(universe) * occurrences as f64;
    ((raw - best) / (worst - best)).clamp(0.0, 1.0)
}

/// Discernibility metric: `Σ |EC|²` over relational equivalence
/// classes. Lower is better; minimum is `n` (all classes singletons).
pub fn discernibility(anon: &AnonTable) -> u64 {
    let (sizes, _) = anon.equivalence_classes();
    sizes.iter().map(|&s| (s as u64) * (s as u64)).sum()
}

/// Average relational equivalence-class size (`C_avg`). 0.0 for empty
/// tables.
pub fn average_class_size(anon: &AnonTable) -> f64 {
    let (sizes, _) = anon.equivalence_classes();
    if sizes.is_empty() {
        0.0
    } else {
        anon.n_rows as f64 / sizes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anon::{rel_column_from_value_map, AnonTransaction, GenEntry};
    use secreta_data::{Attribute, Schema};

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30"], &["a", "b"]).unwrap();
        t.push_row(&["41"], &["a"]).unwrap();
        t.push_row(&["50"], &["b", "c"]).unwrap();
        t.push_row(&["60"], &["c"]).unwrap();
        t
    }

    #[test]
    fn identity_has_zero_loss() {
        let t = table();
        let a = AnonTable::identity(&t, &[0]);
        assert_eq!(gcp(&t, &a, |_| None), 0.0);
        assert_eq!(transaction_gcp(&t, &a, None), 0.0);
        assert_eq!(utility_loss(&t, &a, None), 0.0);
        assert_eq!(discernibility(&a), 4);
        assert_eq!(average_class_size(&a), 1.0);
    }

    #[test]
    fn full_generalization_has_total_loss() {
        let t = table();
        let full = GenEntry::set(vec![0, 1, 2, 3]);
        let age = rel_column_from_value_map(&t, 0, |_| full.clone());
        let tx_domain = vec![GenEntry::set(vec![0, 1, 2])];
        let tx = AnonTransaction::from_mapping(&t, tx_domain, |_| Some(0));
        let a = AnonTable {
            rel: vec![age],
            tx: Some(tx),
            n_rows: 4,
        };
        assert!((gcp(&t, &a, |_| None) - 1.0).abs() < 1e-12);
        assert!((transaction_gcp(&t, &a, None) - 1.0).abs() < 1e-12);
        assert!((utility_loss(&t, &a, None) - 1.0).abs() < 1e-12);
        assert_eq!(discernibility(&a), 16);
        assert_eq!(average_class_size(&a), 4.0);
    }

    #[test]
    fn partial_generalization_scores_between() {
        let t = table();
        // pair up ages: {30,41}, {50,60}
        let age = rel_column_from_value_map(&t, 0, |v| {
            if v.0 < 2 {
                GenEntry::set(vec![0, 1])
            } else {
                GenEntry::set(vec![2, 3])
            }
        });
        let a = AnonTable {
            rel: vec![age],
            tx: None,
            n_rows: 4,
        };
        let g = gcp(&t, &a, |_| None);
        assert!((g - 1.0 / 3.0).abs() < 1e-12, "got {g}"); // (2-1)/(4-1)
        assert_eq!(discernibility(&a), 8);
        assert_eq!(average_class_size(&a), 2.0);
    }

    #[test]
    fn suppression_counts_as_total_loss() {
        let t = table();
        // keep a and b as singletons, suppress c (rows 2,3 lose one occurrence each)
        let tx_domain = vec![GenEntry::Set(vec![0]), GenEntry::Set(vec![1])];
        let tx =
            AnonTransaction::from_mapping(
                &t,
                tx_domain,
                |it| {
                    if it.0 < 2 {
                        Some(it.0)
                    } else {
                        None
                    }
                },
            );
        let a = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 4,
        };
        // 6 occurrences total, 2 suppressed at loss 1, 4 kept at loss 0
        let g = transaction_gcp(&t, &a, None);
        assert!((g - 2.0 / 6.0).abs() < 1e-12, "got {g}");
        let ul = utility_loss(&t, &a, None);
        assert!(ul > 0.0 && ul < 1.0);
    }

    #[test]
    fn ul_prefers_smaller_generalized_items() {
        let t = table();
        // variant A: one gen item of size 2 ({a,b}), c kept
        let dom_a = vec![GenEntry::set(vec![0, 1]), GenEntry::Set(vec![2])];
        let tx_a =
            AnonTransaction::from_mapping(&t, dom_a, |it| Some(if it.0 < 2 { 0 } else { 1 }));
        // variant B: everything into one gen item of size 3
        let dom_b = vec![GenEntry::set(vec![0, 1, 2])];
        let tx_b = AnonTransaction::from_mapping(&t, dom_b, |_| Some(0));
        let mk = |tx| AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 4,
        };
        let ul_a = utility_loss(&t, &mk(tx_a), None);
        let ul_b = utility_loss(&t, &mk(tx_b), None);
        assert!(ul_a < ul_b, "UL({ul_a}) must be below UL({ul_b})");
    }

    #[test]
    fn empty_rel_and_tx_are_zero() {
        let t = table();
        let a = AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 4,
        };
        assert_eq!(gcp(&t, &a, |_| None), 0.0);
        assert_eq!(transaction_gcp(&t, &a, None), 0.0);
        assert_eq!(utility_loss(&t, &a, None), 0.0);
    }

    #[test]
    fn pow2m1_saturates() {
        assert_eq!(pow2m1(1), 1.0);
        assert_eq!(pow2m1(3), 7.0);
        assert!(pow2m1(60) > pow2m1(59));
        assert!(pow2m1(100).is_finite());
        assert_eq!(pow2m1(100), pow2m1(61));
    }

    #[test]
    fn histogram_gcp_matches_per_cell_fold() {
        // a table large enough for par_hist to actually shard, with a
        // skewed cell→entry mapping; the histogram formulation must
        // match the naive per-cell float fold and be thread-invariant
        let schema = Schema::new(vec![Attribute::numeric("V")]).unwrap();
        let mut t = RtTable::new(schema);
        for i in 0..2000 {
            t.push_row(&[&format!("{}", i % 10)], &[]).unwrap();
        }
        let col = rel_column_from_value_map(&t, 0, |v| {
            if v.0 < 3 {
                GenEntry::set(vec![0, 1, 2])
            } else {
                GenEntry::set(vec![v.0])
            }
        });
        let a = AnonTable {
            rel: vec![col.clone()],
            tx: None,
            n_rows: 2000,
        };
        let naive: f64 = {
            let domain_size = t.domain_size(0);
            let entry_ncp: Vec<f64> = col
                .domain
                .iter()
                .map(|e| e.ncp(domain_size, None))
                .collect();
            let sum: f64 = col.cells.iter().map(|&c| entry_ncp[c as usize]).sum();
            sum / col.cells.len() as f64
        };
        secreta_parallel::set_threads(1);
        let seq = gcp(&t, &a, |_| None);
        assert!((seq - naive).abs() < 1e-12, "seq={seq} naive={naive}");
        for threads in [2, 8] {
            secreta_parallel::set_threads(threads);
            let par = gcp(&t, &a, |_| None);
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
        secreta_parallel::set_threads(0);
    }

    #[test]
    fn gcp_with_node_entries() {
        use secreta_data::AttributeKind;
        use secreta_hierarchy::auto_hierarchy;
        let t = table();
        let h = auto_hierarchy(t.pool(0), AttributeKind::Numeric, 2).unwrap();
        let root = h.root();
        let age = rel_column_from_value_map(&t, 0, |_| GenEntry::Node(root));
        let a = AnonTable {
            rel: vec![age],
            tx: None,
            n_rows: 4,
        };
        let g = gcp(&t, &a, |_| Some(h.clone()));
        assert!((g - 1.0).abs() < 1e-12);
    }
}
