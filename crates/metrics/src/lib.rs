//! # secreta-metrics
//!
//! Data-utility measurement for SECRETA-rs.
//!
//! The paper: *"For capturing data utility, we employ several
//! information loss measures [7, 12] and support data utility
//! requirements … The system supports the same type of queries as
//! \[12\], and uses Average Relative Error (ARE) \[12\] as a de-facto
//! utility indicator."*
//!
//! This crate provides:
//!
//! * [`anon`] — the **anonymized-table model** ([`anon::AnonTable`]):
//!   a single representation for the output of every algorithm in the
//!   system, whether it recodes via hierarchy nodes (Incognito,
//!   Top-down, Full-subtree, Apriori, LRA, VPA) or via explicit value
//!   sets (Cluster, COAT, PCTA);
//! * [`loss`] — information-loss measures: NCP/GCP \[12\], UL
//!   (set-valued utility loss, \[5,7\]), discernibility, average
//!   equivalence-class size;
//! * [`query`] — COUNT query workloads and **ARE** under the standard
//!   uniformity estimate;
//! * [`freq`] — original-vs-anonymized frequency statistics backing
//!   the paper's Figure 3(c) and 3(d) plots;
//! * [`timing`] — the flat per-phase stopwatch ([`PhaseTimer`]) whose
//!   windows also feed the hierarchical `secreta-obsv` recorder.

#![deny(missing_docs)]

pub mod anon;
pub mod freq;
pub mod indicators;
pub mod loss;
pub mod query;
pub mod timing;

pub use anon::{AnonTable, AnonTransaction, GenEntry, RelColumn};
pub use indicators::{
    ConstraintAudit, Indicators, MItemRisk, RelationalRisk, RiskIndicators, TransactionRisk,
};
pub use loss::{average_class_size, discernibility, gcp, transaction_gcp, utility_loss};
pub use query::{average_relative_error, Query, QueryAtom, Workload};
pub use timing::{PhaseTimer, PhaseTimes};
