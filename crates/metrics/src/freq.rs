//! Original-vs-anonymized frequency statistics.
//!
//! Backs two visualizations of the paper's Evaluation mode (Figure 3):
//!
//! * *"the frequency of all generalized values, in a selected
//!   relational attribute"* — [`generalized_value_histogram`];
//! * *"the relative error between the frequency of the transaction
//!   attribute values, in the original and the anonymized dataset"* —
//!   [`item_frequency_error`].

use crate::anon::AnonTable;
use secreta_data::stats::Histogram;
use secreta_data::RtTable;
use secreta_hierarchy::Hierarchy;
use serde::{Deserialize, Serialize};

/// Histogram of the generalized values a relational attribute takes in
/// the anonymized dataset (Figure 3(c)). Returns `None` when `attr`
/// was not anonymized.
pub fn generalized_value_histogram(
    table: &RtTable,
    anon: &AnonTable,
    attr: usize,
    hierarchy: Option<&Hierarchy>,
) -> Option<Histogram> {
    let col = anon.rel_column(attr)?;
    let mut counts = vec![0u64; col.domain.len()];
    for &c in &col.cells {
        counts[c as usize] += 1;
    }
    let pool = table.pool(attr);
    let labels: Vec<String> = col
        .domain
        .iter()
        .map(|e| e.display(hierarchy, |v| pool.resolve(v).to_owned()))
        .collect();
    let title = table
        .schema()
        .attribute(attr)
        .map(|a| format!("{} (generalized)", a.name))
        .unwrap_or_default();
    // merge buckets whose labels collide (distinct domain entries can
    // render identically, e.g. two singleton sets of the same value)
    let mut merged: Vec<(String, u64)> = Vec::new();
    for (label, count) in labels.into_iter().zip(counts) {
        match merged.iter_mut().find(|(l, _)| *l == label) {
            Some((_, c)) => *c += count,
            None => merged.push((label, count)),
        }
    }
    let (labels, counts): (Vec<String>, Vec<u64>) = merged.into_iter().unzip();
    Some(Histogram {
        title,
        labels,
        counts,
    })
}

/// Per-item frequency comparison between original and anonymized data
/// (Figure 3(d)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemFrequencyError {
    /// Item label.
    pub item: String,
    /// Support in the original dataset.
    pub original: u64,
    /// Estimated support in the anonymized dataset (uniformity
    /// assumption; suppressed items estimate 0).
    pub estimated: f64,
    /// `|original - estimated| / max(original, 1)`.
    pub relative_error: f64,
}

/// Relative frequency error of every original transaction item
/// (Figure 3(d)). Empty when the dataset has no transaction attribute
/// or it was not anonymized.
pub fn item_frequency_error(
    table: &RtTable,
    anon: &AnonTable,
    tx_hierarchy: Option<&Hierarchy>,
) -> Vec<ItemFrequencyError> {
    let tx = match &anon.tx {
        Some(tx) => tx,
        None => return Vec::new(),
    };
    let pool = match table.item_pool() {
        Some(p) => p,
        None => return Vec::new(),
    };
    let universe = table.item_universe();
    let original = secreta_data::stats::item_supports(table);

    // estimated support of each original item: sum over rows and
    // generalized occurrences covering it of multiplicity / span
    let mut estimated = vec![0.0f64; universe];
    let entry_sizes: Vec<usize> = tx
        .domain
        .iter()
        .map(|e| e.leaf_count(tx_hierarchy).max(1))
        .collect();
    for row in 0..tx.n_rows() {
        let items = tx.row_items(row);
        let mult = tx.row_multiplicity(row);
        for (pos, &g) in items.iter().enumerate() {
            let entry = &tx.domain[g as usize];
            let s = entry_sizes[g as usize];
            let p = (mult[pos] as f64 / s as f64).min(1.0);
            match entry {
                crate::anon::GenEntry::Set(values) => {
                    for &v in values {
                        estimated[v as usize] += p;
                    }
                }
                crate::anon::GenEntry::Node(n) => {
                    let h = tx_hierarchy.expect("Node entries require hierarchy");
                    for v in h.leaves_under(*n) {
                        estimated[v as usize] += p;
                    }
                }
                crate::anon::GenEntry::Suppressed => {}
            }
        }
    }

    (0..universe)
        .map(|i| {
            let orig = original[i];
            let est = estimated[i];
            ItemFrequencyError {
                item: pool.resolve(i as u32).to_owned(),
                original: orig,
                estimated: est,
                relative_error: (orig as f64 - est).abs() / (orig as f64).max(1.0),
            }
        })
        .collect()
}

/// Mean relative frequency error over all items (summary indicator for
/// sweeps).
pub fn mean_item_frequency_error(
    table: &RtTable,
    anon: &AnonTable,
    tx_hierarchy: Option<&Hierarchy>,
) -> f64 {
    let errs = item_frequency_error(table, anon, tx_hierarchy);
    if errs.is_empty() {
        0.0
    } else {
        errs.iter().map(|e| e.relative_error).sum::<f64>() / errs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anon::{rel_column_from_value_map, AnonTransaction, GenEntry};
    use secreta_data::{Attribute, Schema};

    fn table() -> RtTable {
        let schema = Schema::new(vec![
            Attribute::numeric("Age"),
            Attribute::transaction("Items"),
        ])
        .unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["30"], &["a", "b"]).unwrap();
        t.push_row(&["41"], &["a"]).unwrap();
        t.push_row(&["30"], &["b", "c"]).unwrap();
        t.push_row(&["55"], &["c"]).unwrap();
        t
    }

    #[test]
    fn generalized_histogram_counts_entries() {
        let t = table();
        let age = rel_column_from_value_map(&t, 0, |v| {
            if v.0 < 2 {
                GenEntry::set(vec![0, 1])
            } else {
                GenEntry::Set(vec![2])
            }
        });
        let a = AnonTable {
            rel: vec![age],
            tx: None,
            n_rows: 4,
        };
        let h = generalized_value_histogram(&t, &a, 0, None).unwrap();
        assert_eq!(h.labels, vec!["(30|41)", "55"]);
        assert_eq!(h.counts, vec![3, 1]);
        assert!(generalized_value_histogram(&t, &a, 1, None).is_none());
    }

    #[test]
    fn identity_has_zero_item_error() {
        let t = table();
        let a = AnonTable::identity(&t, &[0]);
        let errs = item_frequency_error(&t, &a, None);
        assert_eq!(errs.len(), 3);
        for e in &errs {
            assert!(e.relative_error < 1e-12, "{e:?}");
            assert!((e.estimated - e.original as f64).abs() < 1e-12);
        }
        assert_eq!(mean_item_frequency_error(&t, &a, None), 0.0);
    }

    #[test]
    fn merged_items_redistribute_mass() {
        let t = table();
        // merge a,b into one gen item; keep c
        let dom = vec![GenEntry::set(vec![0, 1]), GenEntry::Set(vec![2])];
        let tx = AnonTransaction::from_mapping(&t, dom, |it| Some(if it.0 < 2 { 0 } else { 1 }));
        let a = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 4,
        };
        let errs = item_frequency_error(&t, &a, None);
        // c is exact
        let c = errs.iter().find(|e| e.item == "c").unwrap();
        assert!(c.relative_error < 1e-12);
        // a: orig 2; estimated: row0 (mult 2 / span 2 = 1) + row1 (1/2)
        //          + row2 (1/2) = 2.0 -> exact by luck of symmetry
        let aerr = errs.iter().find(|e| e.item == "a").unwrap();
        assert!((aerr.estimated - 2.0).abs() < 1e-9, "{aerr:?}");
        // total mass preserved: sum est = sum orig occurrences
        let total_est: f64 = errs.iter().map(|e| e.estimated).sum();
        assert!((total_est - 6.0).abs() < 1e-9);
    }

    #[test]
    fn suppressed_items_estimate_zero() {
        let t = table();
        let dom = vec![GenEntry::Set(vec![0]), GenEntry::Set(vec![1])];
        let tx =
            AnonTransaction::from_mapping(&t, dom, |it| if it.0 < 2 { Some(it.0) } else { None });
        let a = AnonTable {
            rel: vec![],
            tx: Some(tx),
            n_rows: 4,
        };
        let errs = item_frequency_error(&t, &a, None);
        let c = errs.iter().find(|e| e.item == "c").unwrap();
        assert_eq!(c.estimated, 0.0);
        assert!((c.relative_error - 1.0).abs() < 1e-12);
        let mean = mean_item_frequency_error(&t, &a, None);
        assert!((mean - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_label_collisions_merge() {
        let t = table();
        // two distinct domain entries that display identically
        let col = crate::anon::RelColumn {
            attr: 0,
            domain: vec![GenEntry::Set(vec![0]), GenEntry::set(vec![0])],
            cells: vec![0, 1, 0, 1],
        };
        let a = AnonTable {
            rel: vec![col],
            tx: None,
            n_rows: 4,
        };
        let h = generalized_value_histogram(&t, &a, 0, None).unwrap();
        assert_eq!(h.labels, vec!["30"]);
        assert_eq!(h.counts, vec![4]);
    }

    #[test]
    fn no_transaction_attribute_yields_empty() {
        let schema = Schema::new(vec![Attribute::numeric("Age")]).unwrap();
        let mut t = RtTable::new(schema);
        t.push_row(&["1"], &[]).unwrap();
        let a = AnonTable::identity(&t, &[0]);
        assert!(item_frequency_error(&t, &a, None).is_empty());
        assert_eq!(mean_item_frequency_error(&t, &a, None), 0.0);
    }
}
