//! Crash-safe job leases for distributed sweep execution.
//!
//! A distributed sweep stores one lease file per in-flight job under
//! `leases/<sweep>/<key>.lease`. Workers claim a job by creating its
//! lease atomically; a worker that dies (including `kill -9`, which
//! skips every destructor) simply leaves its lease behind, and the
//! staleness rules let a surviving worker reclaim the job — mirroring
//! the stale-`store.lock` reclaim.
//!
//! **Claim** writes the lease record to a private temp file and
//! `hard_link(2)`s it to the lease path: link creation is atomic and
//! fails with `AlreadyExists` when another worker won the race, so
//! exactly one claimer succeeds and losers back off deterministically
//! ([`backoff_ms`]).
//!
//! **Staleness** is judged on owner identity *and* heartbeat: a lease
//! is stale when its owner is provably dead (PID gone, or PID recycled
//! — start times compared, like the store lock) or when its heartbeat
//! timestamp is older than the TTL (covers a hung-but-alive worker).
//!
//! **Reclaim** replaces a stale lease via tmp + `rename(2)` with the
//! epoch bumped. Two concurrent reclaimers both rename; the last one
//! wins the file, so each re-reads the lease afterwards and only the
//! worker whose token survives proceeds.
//!
//! **Fencing**: every lease carries a `token` unique to one claimer
//! (`pid.start.counter`) and a monotonically increasing `epoch`. A
//! reclaimed worker that wakes up late and tries to publish re-reads
//! the lease first — its token no longer matches, so the late write is
//! rejected before the rename-commit ([`RunStore::put_fenced`] stages
//! under the epoch and runs this check). Results are deterministic in
//! the job key, so even the theoretical re-commit race between fence
//! check and rename writes byte-identical data.
//!
//! [`RunStore::put_fenced`]: crate::store::RunStore::put_fenced

use crate::procinfo::{owner_dead, self_start_time};
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Name of the lease directory inside a store root.
pub const LEASE_DIR: &str = "leases";

static TOKEN_COUNTER: AtomicU64 = AtomicU64::new(0);
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Wall-clock milliseconds since the Unix epoch (heartbeat clock; all
/// workers share one machine clock, per the single-host design).
pub(crate) fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64
}

/// Mint a claimer token unique across processes (PID + start time) and
/// within one process (counter) — the fencing identity of one worker.
pub fn mint_token() -> String {
    format!(
        "{}.{}.{}",
        std::process::id(),
        self_start_time().unwrap_or(0),
        TOKEN_COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// The on-disk lease record for one claimed job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseRecord {
    /// Content address of the leased job.
    pub key: String,
    /// PID of the owning worker.
    pub pid: u32,
    /// Start time of the owning process (PID-reuse defence); `None`
    /// off-Linux.
    pub start: Option<u64>,
    /// Fencing identity of the claimer ([`mint_token`]).
    pub token: String,
    /// Fencing epoch: 1 on first claim, bumped by every reclaim.
    pub epoch: u64,
    /// Wall-clock ms of the last heartbeat (monotone non-decreasing
    /// per owner).
    pub heartbeat_ms: u64,
    /// Heartbeats older than this many ms mark the lease stale.
    pub ttl_ms: u64,
}

impl LeaseRecord {
    /// Whether this lease may be reclaimed at wall-clock `now` ms:
    /// the owner is provably dead, or the heartbeat exceeded the TTL.
    pub fn is_stale(&self, now: u64) -> bool {
        owner_dead(self.pid, self.start) || now.saturating_sub(self.heartbeat_ms) > self.ttl_ms
    }
}

/// What a lease file held, distinguishing absence from rot.
enum OnDisk {
    Missing,
    /// Unparseable lease (torn by a dying filesystem): reclaimable,
    /// epoch unknown.
    Corrupt,
    Record(LeaseRecord),
}

fn read_lease(path: &Path) -> io::Result<OnDisk> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(OnDisk::Missing),
        Err(e) => return Err(e),
    };
    Ok(match serde_json::from_str::<LeaseRecord>(&text) {
        Ok(rec) => OnDisk::Record(rec),
        Err(_) => OnDisk::Corrupt,
    })
}

fn write_record(path: &Path, rec: &LeaseRecord) -> io::Result<()> {
    let text = serde_json::to_string(rec)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    fs::write(path, text)
}

/// Outcome of one [`LeaseSet::claim`] attempt.
#[derive(Debug)]
pub enum ClaimOutcome {
    /// A fresh lease was created; this worker owns the job.
    Claimed(LeaseGuard),
    /// A stale lease was reclaimed (the old record is returned for
    /// journaling `JobLeaseExpired`/`JobReclaimed`).
    Reclaimed(LeaseGuard, LeaseRecord),
    /// A live worker holds the lease; back off deterministically.
    Held(LeaseRecord),
}

/// The lease directory of one sweep, from one claimer's perspective.
#[derive(Debug, Clone)]
pub struct LeaseSet {
    dir: PathBuf,
    token: String,
    ttl_ms: u64,
}

impl LeaseSet {
    /// Open (creating) the lease directory for `sweep` under
    /// `store_root`, minting a fresh claimer token.
    pub fn open(store_root: &Path, sweep: &str, ttl_ms: u64) -> io::Result<LeaseSet> {
        let dir = store_root.join(LEASE_DIR).join(sweep);
        fs::create_dir_all(&dir)?;
        Ok(LeaseSet {
            dir,
            token: mint_token(),
            ttl_ms,
        })
    }

    /// This claimer's fencing token.
    pub fn token(&self) -> &str {
        &self.token
    }

    /// Lease TTL in milliseconds.
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ms
    }

    fn lease_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.lease"))
    }

    fn record(&self, key: &str, epoch: u64) -> LeaseRecord {
        LeaseRecord {
            key: key.to_owned(),
            pid: std::process::id(),
            start: self_start_time(),
            token: self.token.clone(),
            epoch,
            heartbeat_ms: now_ms(),
            ttl_ms: self.ttl_ms,
        }
    }

    /// The current lease on `key`, if any (observer view; used by the
    /// coordinator to classify pending jobs).
    pub fn peek(&self, key: &str) -> io::Result<Option<LeaseRecord>> {
        match read_lease(&self.lease_path(key))? {
            OnDisk::Record(rec) => Ok(Some(rec)),
            OnDisk::Missing | OnDisk::Corrupt => Ok(None),
        }
    }

    /// Try to claim the job `key`: create its lease atomically, or
    /// reclaim a stale one. Exactly one concurrent claimer succeeds.
    pub fn claim(&self, key: &str) -> io::Result<ClaimOutcome> {
        secreta_faults::fault::delay("lease.claim");
        let path = self.lease_path(key);
        // Two passes: the second only after losing a race, so a claim
        // never spins.
        for _ in 0..2 {
            match read_lease(&path)? {
                OnDisk::Missing => {
                    let rec = self.record(key, 1);
                    match link_fresh(&path, &rec) {
                        Ok(true) => return Ok(ClaimOutcome::Claimed(self.guard(path, rec))),
                        Ok(false) => continue, // lost the creation race
                        Err(e) => return Err(e),
                    }
                }
                OnDisk::Corrupt => {
                    // unreadable lease: reclaimable, epoch unknown —
                    // fencing rests on the token, so epoch restarts
                    let rec = self.record(key, 1);
                    if self.rename_over(&path, &rec)? {
                        let old = LeaseRecord {
                            key: key.to_owned(),
                            pid: 0,
                            start: None,
                            token: String::new(),
                            epoch: 0,
                            heartbeat_ms: 0,
                            ttl_ms: self.ttl_ms,
                        };
                        return Ok(ClaimOutcome::Reclaimed(self.guard(path, rec), old));
                    }
                    continue;
                }
                OnDisk::Record(old) if old.is_stale(now_ms()) => {
                    let rec = self.record(key, old.epoch + 1);
                    if self.rename_over(&path, &rec)? {
                        return Ok(ClaimOutcome::Reclaimed(self.guard(path, rec), old));
                    }
                    continue; // a concurrent reclaimer won
                }
                OnDisk::Record(held) => return Ok(ClaimOutcome::Held(held)),
            }
        }
        // lost two races in a row: report whoever holds it now
        match read_lease(&path)? {
            OnDisk::Record(held) => Ok(ClaimOutcome::Held(held)),
            _ => Ok(ClaimOutcome::Held(self.record(key, 0))),
        }
    }

    /// Replace the lease at `path` with `rec` via tmp + rename, then
    /// re-read to see whether *our* write survived a concurrent
    /// replacement. Returns whether we own the lease now.
    fn rename_over(&self, path: &Path, rec: &LeaseRecord) -> io::Result<bool> {
        let tmp = self.tmp_path();
        write_record(&tmp, rec)?;
        let renamed = fs::rename(&tmp, path);
        let _ = fs::remove_file(&tmp);
        renamed?;
        match read_lease(path)? {
            OnDisk::Record(cur) => Ok(cur.token == self.token && cur.epoch == rec.epoch),
            _ => Ok(false),
        }
    }

    fn tmp_path(&self) -> PathBuf {
        self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn guard(&self, path: PathBuf, record: LeaseRecord) -> LeaseGuard {
        LeaseGuard { path, record }
    }
}

/// Atomically create `path` with `rec`'s contents. `Ok(false)` when
/// another claimer created it first.
fn link_fresh(path: &Path, rec: &LeaseRecord) -> io::Result<bool> {
    let tmp = path.with_extension(format!(
        "tmp-{}-{}",
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    write_record(&tmp, rec)?;
    let linked = fs::hard_link(&tmp, path);
    let _ = fs::remove_file(&tmp);
    match linked {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
        Err(e) => Err(e),
    }
}

/// Re-read the lease at `path` and refresh its heartbeat if `token`
/// still owns it. `Ok(false)` means the lease was lost (reclaimed or
/// removed) — the worker should abandon the job; the fenced put will
/// reject its result anyway.
pub fn heartbeat(path: &Path, token: &str) -> io::Result<bool> {
    secreta_faults::fault::delay("lease.heartbeat");
    match read_lease(path)? {
        OnDisk::Record(mut rec) if rec.token == token => {
            rec.heartbeat_ms = now_ms();
            // tmp + rename: readers never see a torn heartbeat
            let tmp = path.with_extension(format!(
                "hb-{}-{}",
                std::process::id(),
                TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            write_record(&tmp, &rec)?;
            let renamed = fs::rename(&tmp, path);
            let _ = fs::remove_file(&tmp);
            renamed?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// A held lease; supports heartbeats, the fence check, and release.
#[derive(Debug)]
pub struct LeaseGuard {
    path: PathBuf,
    record: LeaseRecord,
}

impl LeaseGuard {
    /// Fencing epoch of this claim.
    pub fn epoch(&self) -> u64 {
        self.record.epoch
    }

    /// Fencing token of this claim.
    pub fn token(&self) -> &str {
        &self.record.token
    }

    /// Path of the lease file (hand this to a heartbeat thread along
    /// with [`LeaseGuard::token`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Refresh the heartbeat; `Ok(false)` when the lease was lost.
    pub fn heartbeat(&self) -> io::Result<bool> {
        heartbeat(&self.path, &self.record.token)
    }

    /// The fence check: does this claim still own the lease? Run
    /// immediately before any rename-commit of results.
    pub fn verify(&self) -> bool {
        matches!(
            read_lease(&self.path),
            Ok(OnDisk::Record(cur)) if cur.token == self.record.token
                && cur.epoch == self.record.epoch
        )
    }

    /// Release the lease (remove the file) if still owned.
    pub fn release(self) {
        // Drop does the work; an explicit name reads better at call
        // sites.
    }
}

impl Drop for LeaseGuard {
    fn drop(&mut self) {
        if self.verify() {
            let _ = fs::remove_file(&self.path);
        }
    }
}

/// Deterministic backoff for lease contention: exponential base with
/// token-salted jitter, so two racing workers never pick identical
/// sleep schedules but each worker's schedule is fully reproducible.
pub fn backoff_ms(attempt: u32, token: &str) -> u64 {
    let base = 10u64 << attempt.min(6); // 10, 20, 40, ... 640 ms
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h ^= u64::from(attempt);
    h = h.wrapping_mul(0x0100_0000_01b3);
    base + h % base
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("secreta-lease-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn claim_release_reclaim_cycle() {
        let root = tmp_root("cycle");
        let set = LeaseSet::open(&root, "s1", 60_000).unwrap();
        let guard = match set.claim("job-a").unwrap() {
            ClaimOutcome::Claimed(g) => g,
            other => panic!("expected fresh claim, got {other:?}"),
        };
        assert_eq!(guard.epoch(), 1);
        assert!(guard.verify());
        assert!(guard.heartbeat().unwrap());
        guard.release();
        assert!(set.peek("job-a").unwrap().is_none());
        // a released job claims fresh again at epoch 1
        match set.claim("job-a").unwrap() {
            ClaimOutcome::Claimed(g) => assert_eq!(g.epoch(), 1),
            other => panic!("expected fresh claim, got {other:?}"),
        }
    }

    #[test]
    fn second_claimer_is_held_off() {
        let root = tmp_root("held");
        let a = LeaseSet::open(&root, "s1", 60_000).unwrap();
        let b = LeaseSet::open(&root, "s1", 60_000).unwrap();
        let _g = match a.claim("job").unwrap() {
            ClaimOutcome::Claimed(g) => g,
            other => panic!("{other:?}"),
        };
        match b.claim("job").unwrap() {
            ClaimOutcome::Held(rec) => assert_eq!(rec.token, a.token()),
            other => panic!("expected Held, got {other:?}"),
        }
    }

    #[test]
    fn stale_heartbeat_is_reclaimed_with_epoch_bump_and_old_fence_breaks() {
        let root = tmp_root("stale");
        let a = LeaseSet::open(&root, "s1", 60_000).unwrap();
        let b = LeaseSet::open(&root, "s1", 60_000).unwrap();
        let g_a = match a.claim("job").unwrap() {
            ClaimOutcome::Claimed(g) => g,
            other => panic!("{other:?}"),
        };
        // age A's heartbeat past the TTL by editing the record (as if
        // A froze for > TTL)
        let mut rec = b.peek("job").unwrap().unwrap();
        rec.heartbeat_ms = 1;
        write_record(&g_a.path, &rec).unwrap();
        let (g_b, old) = match b.claim("job").unwrap() {
            ClaimOutcome::Reclaimed(g, old) => (g, old),
            other => panic!("expected Reclaimed, got {other:?}"),
        };
        assert_eq!(old.token, a.token());
        assert_eq!(g_b.epoch(), 2);
        // A's fence is broken: verify fails, heartbeat refuses, and
        // dropping A's guard must NOT remove B's lease
        assert!(!g_a.verify());
        assert!(!g_a.heartbeat().unwrap());
        drop(g_a);
        assert_eq!(b.peek("job").unwrap().unwrap().token, b.token());
        assert!(g_b.verify());
    }

    #[test]
    fn dead_owner_is_reclaimed_without_waiting_for_ttl() {
        if self_start_time().is_none() {
            return; // no /proc: owner-death is undecidable
        }
        let root = tmp_root("dead");
        let set = LeaseSet::open(&root, "s1", 3_600_000).unwrap();
        // forge a lease held by a live PID (ours) with a forged start
        // time — a recycled PID, i.e. a provably dead owner
        let mut rec = set.record("job", 4);
        rec.token = "someone.else.0".into();
        rec.start = Some(u64::MAX);
        write_record(&root.join(LEASE_DIR).join("s1").join("job.lease"), &rec).unwrap();
        match set.claim("job").unwrap() {
            ClaimOutcome::Reclaimed(g, old) => {
                assert_eq!(old.epoch, 4);
                assert_eq!(g.epoch(), 5);
            }
            other => panic!("expected Reclaimed, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_lease_is_reclaimable() {
        let root = tmp_root("corrupt");
        let set = LeaseSet::open(&root, "s1", 60_000).unwrap();
        fs::write(root.join(LEASE_DIR).join("s1").join("job.lease"), "garb").unwrap();
        match set.claim("job").unwrap() {
            ClaimOutcome::Reclaimed(g, _) => assert!(g.verify()),
            other => panic!("expected Reclaimed, got {other:?}"),
        }
    }

    #[test]
    fn backoff_is_deterministic_and_token_salted() {
        let a: Vec<u64> = (0..8).map(|i| backoff_ms(i, "w1")).collect();
        let b: Vec<u64> = (0..8).map(|i| backoff_ms(i, "w1")).collect();
        let c: Vec<u64> = (0..8).map(|i| backoff_ms(i, "w2")).collect();
        assert_eq!(a, b, "same token must back off identically");
        assert_ne!(a, c, "different tokens must jitter apart");
        // bounded and growing
        for (i, ms) in a.iter().enumerate() {
            let base = 10u64 << (i as u32).min(6);
            assert!(*ms >= base && *ms < 2 * base, "attempt {i}: {ms}");
        }
    }
}
