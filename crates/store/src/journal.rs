//! The write-ahead event journal.
//!
//! Every orchestrated experiment appends JSONL events to
//! `journal.jsonl` in the store root. The journal serves two roles:
//!
//! 1. **Intent log** — a [`JournalEvent::SweepStarted`] record is
//!    written *before* any job runs. It carries the full invocation
//!    (enough to re-expand the job DAG) and the precomputed run key of
//!    every job. If the process dies mid-sweep, `secreta runs resume`
//!    replays the invocation; jobs whose results already reached the
//!    store are cache hits, so only the missing tail is recomputed.
//! 2. **Observability** — `JobStarted` / `JobFinished` /
//!    `SweepFinished` events record per-job wall time, cache
//!    hit/miss/failure counters and scheduling order, without any
//!    extra instrumentation in the algorithms themselves.
//!
//! Appends are line-atomic on POSIX (single short `write` + flush);
//! the reader tolerates a torn final line, treating it as truncation
//! from a crash mid-append.

use serde::{Deserialize, Serialize, Value};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// The intent record for one orchestrated experiment (a sweep of one
/// or more configurations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// Identifier of this sweep, unique within the journal (derived
    /// from its job keys, so re-running the same experiment produces
    /// the same id).
    pub id: String,
    /// Digest of the session inputs.
    pub context: String,
    /// Label of the varied parameter (`k`, `m`, `δ`).
    pub param: String,
    /// One label per configuration, in order.
    pub labels: Vec<String>,
    /// For each configuration, the `(sweep value, run key)` of every
    /// job it expands to, in sweep order.
    pub jobs: Vec<Vec<(f64, String)>>,
    /// The full invocation as an opaque JSON payload, sufficient for
    /// `runs resume` to rebuild the session context and re-run.
    pub invocation: Value,
}

/// One line of the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEvent {
    /// A sweep is about to execute; written before any job starts.
    SweepStarted(SweepRecord),
    /// A job was picked up by a worker (cache misses only).
    JobStarted {
        /// Sweep this job belongs to.
        sweep: String,
        /// Content address of the job.
        key: String,
        /// Configuration label.
        label: String,
        /// Sweep-point value.
        value: f64,
    },
    /// A job failed (panic, timeout, or run error). Written in
    /// addition to the `ok: false` [`JournalEvent::JobFinished`] line
    /// so failure counters keep working while the error itself stays
    /// on record; sweeps with `JobFailed` events are degraded and show
    /// up in [`resumable_sweeps`] until a later re-run finishes clean.
    JobFailed {
        /// Sweep this job belongs to.
        sweep: String,
        /// Content address of the job.
        key: String,
        /// Configuration label.
        label: String,
        /// Sweep-point value.
        value: f64,
        /// Rendered run error.
        error: String,
    },
    /// A job completed (by cache replay or by running).
    JobFinished {
        /// Sweep this job belongs to.
        sweep: String,
        /// Content address of the job.
        key: String,
        /// `true` when the result was replayed from the store without
        /// doing any anonymization work.
        cache_hit: bool,
        /// `false` when the run returned an error (errors are not
        /// cached; they re-run on resume).
        ok: bool,
        /// Wall-clock milliseconds to produce the result.
        wall_ms: f64,
    },
    /// A worker process claimed the lease on a job (distributed sweeps
    /// only).
    JobClaimed {
        /// Sweep this job belongs to.
        sweep: String,
        /// Content address of the job.
        key: String,
        /// PID of the claiming worker.
        pid: u32,
        /// Fencing epoch of the claimed lease.
        epoch: u64,
    },
    /// A lease went stale (dead holder or heartbeat older than the
    /// TTL) and was observed expired by another worker.
    JobLeaseExpired {
        /// Sweep this job belongs to.
        sweep: String,
        /// Content address of the job.
        key: String,
        /// PID of the stale holder.
        pid: u32,
        /// Epoch of the expired lease.
        epoch: u64,
    },
    /// A stale lease was reclaimed by a new worker; the old holder's
    /// late writes are fenced off by the epoch bump.
    JobReclaimed {
        /// Sweep this job belongs to.
        sweep: String,
        /// Content address of the job.
        key: String,
        /// PID of the stale holder whose lease was taken.
        old_pid: u32,
        /// PID of the reclaiming worker.
        new_pid: u32,
        /// Epoch of the *new* lease (old epoch + 1).
        epoch: u64,
    },
    /// All jobs of a sweep completed.
    SweepFinished {
        /// Sweep identifier.
        sweep: String,
        /// Jobs served from the store.
        hits: u64,
        /// Jobs actually executed.
        misses: u64,
        /// Jobs that returned an error.
        failures: u64,
    },
}

/// Append handle on a journal file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Open (creating if necessary) the journal at `path` for append.
    pub fn open(path: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Append one event as a JSONL line and flush it to the OS.
    ///
    /// Transient I/O failures are retried with a bounded deterministic
    /// backoff. The fault-injection point sits *before* any bytes are
    /// written, so a retried append can never leave a torn line in the
    /// middle of the file (`write_all` itself already retries
    /// `Interrupted` writes internally).
    pub fn append(&mut self, event: &JournalEvent) -> io::Result<()> {
        let mut line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        crate::retry::RetryPolicy::store_default().run(
            || {
                if let Some(e) = secreta_faults::fault::io("journal.append") {
                    return Err(e);
                }
                self.file.write_all(line.as_bytes())?;
                self.file.flush()
            },
            crate::retry::transient_io,
        )
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Description of a torn final record dropped by [`read_events_checked`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset where the surviving journal prefix ends.
    pub offset: u64,
    /// Why the tail failed to parse (invalid UTF-8 or malformed JSON).
    pub reason: String,
}

/// Read every event in the journal at `path`, reporting a torn tail.
///
/// A missing file reads as empty. The file is read as raw bytes —
/// a crash mid-`append` can cut the final record at *any* byte offset,
/// including inside a multi-byte UTF-8 sequence (the `δ` sweep label),
/// so decoding is per-line rather than whole-file. A final line that
/// fails UTF-8 or JSON parsing is a clean truncation point from a
/// crash: it is dropped and reported as `Some(TornTail)`. An
/// unparseable line *followed by* further lines is real corruption and
/// an error.
pub fn read_events_checked(path: &Path) -> io::Result<(Vec<JournalEvent>, Option<TornTail>)> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), None)),
        Err(e) => return Err(e),
    }
    // (start offset, line bytes) for every non-empty line.
    let mut lines: Vec<(usize, &[u8])> = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            if bytes[start..i].iter().any(|c| !c.is_ascii_whitespace()) {
                lines.push((start, &bytes[start..i]));
            }
            start = i + 1;
        }
    }
    if bytes[start..].iter().any(|c| !c.is_ascii_whitespace()) {
        // an unterminated final fragment: always a torn append, since
        // `append` writes the trailing newline as part of the record
        lines.push((start, &bytes[start..]));
    }
    let mut events = Vec::with_capacity(lines.len());
    let mut torn = None;
    for (i, (offset, line)) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        let parsed = std::str::from_utf8(line)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<JournalEvent>(s).map_err(|e| e.to_string()));
        match parsed {
            Ok(ev) => events.push(ev),
            Err(reason) if last => {
                torn = Some(TornTail {
                    offset: *offset as u64,
                    reason,
                });
            }
            Err(reason) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("journal {} line {}: {reason}", path.display(), i + 1),
                ))
            }
        }
    }
    Ok((events, torn))
}

/// Read every event in the journal at `path`.
///
/// Thin wrapper over [`read_events_checked`] that warns on stderr when
/// a torn final record is dropped and returns the surviving prefix.
pub fn read_events(path: &Path) -> io::Result<Vec<JournalEvent>> {
    let (events, torn) = read_events_checked(path)?;
    if let Some(t) = &torn {
        eprintln!(
            "warning: journal {}: torn final record at byte {} dropped ({}); \
             treating as crash truncation",
            path.display(),
            t.offset,
            t.reason
        );
    }
    Ok(events)
}

/// The most recent `SweepStarted` record with the given id, if any.
pub fn find_sweep(events: &[JournalEvent], id: &str) -> Option<SweepRecord> {
    events.iter().rev().find_map(|ev| match ev {
        JournalEvent::SweepStarted(rec) if rec.id == id => Some(rec.clone()),
        _ => None,
    })
}

/// Ids of sweeps that have a `SweepStarted` but no `SweepFinished`,
/// oldest first — the candidates for `secreta runs resume`.
pub fn unfinished_sweeps(events: &[JournalEvent]) -> Vec<SweepRecord> {
    let mut started: Vec<SweepRecord> = Vec::new();
    for ev in events {
        match ev {
            JournalEvent::SweepStarted(rec) => {
                started.retain(|r| r.id != rec.id);
                started.push(rec.clone());
            }
            JournalEvent::SweepFinished { sweep, .. } => {
                started.retain(|r| &r.id != sweep);
            }
            _ => {}
        }
    }
    started
}

/// Sweeps that still need work, oldest first: a `SweepStarted` with no
/// `SweepFinished`, or one whose most recent `SweepFinished` reported
/// failures. `secreta runs resume` replays these — completed jobs are
/// cache hits, so only failed/missing points re-execute.
pub fn resumable_sweeps(events: &[JournalEvent]) -> Vec<SweepRecord> {
    let mut open: Vec<SweepRecord> = Vec::new();
    for ev in events {
        match ev {
            JournalEvent::SweepStarted(rec) => {
                open.retain(|r| r.id != rec.id);
                open.push(rec.clone());
            }
            JournalEvent::SweepFinished {
                sweep, failures, ..
            } if *failures == 0 => {
                open.retain(|r| &r.id != sweep);
            }
            _ => {}
        }
    }
    open
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str) -> SweepRecord {
        SweepRecord {
            id: id.to_owned(),
            context: "ctx".to_owned(),
            param: "k".to_owned(),
            labels: vec!["A".to_owned(), "B".to_owned()],
            jobs: vec![
                vec![(2.0, "kA2".to_owned()), (5.0, "kA5".to_owned())],
                vec![(2.0, "kB2".to_owned())],
            ],
            invocation: Value::Obj(vec![("dataset".to_owned(), Value::Str("d.csv".into()))]),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("secreta-journal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.jsonl")
    }

    #[test]
    fn round_trips_and_reads_back() {
        let path = tmp("rt");
        let mut j = Journal::open(&path).unwrap();
        let events = vec![
            JournalEvent::SweepStarted(record("s1")),
            JournalEvent::JobStarted {
                sweep: "s1".into(),
                key: "kA2".into(),
                label: "A".into(),
                value: 2.0,
            },
            JournalEvent::JobFinished {
                sweep: "s1".into(),
                key: "kA2".into(),
                cache_hit: false,
                ok: true,
                wall_ms: 12.5,
            },
            JournalEvent::SweepFinished {
                sweep: "s1".into(),
                hits: 0,
                misses: 3,
                failures: 0,
            },
        ];
        for ev in &events {
            j.append(ev).unwrap();
        }
        assert_eq!(read_events(&path).unwrap(), events);
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmp("none");
        assert_eq!(read_events(&path).unwrap(), Vec::new());
    }

    #[test]
    fn torn_tail_is_truncation() {
        let path = tmp("torn");
        let mut j = Journal::open(&path).unwrap();
        j.append(&JournalEvent::SweepStarted(record("s1"))).unwrap();
        // simulate a crash mid-append
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"JobFinished\":{\"sweep\":\"s1\",\"ke")
            .unwrap();
        drop(f);
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn truncation_at_every_byte_offset_of_the_last_record() {
        let path = tmp("offsets");
        let mut j = Journal::open(&path).unwrap();
        // first record uses the multi-byte `δ` param so truncation can
        // land inside a UTF-8 sequence
        let mut rec = record("s1");
        rec.param = "δ".to_owned();
        j.append(&JournalEvent::SweepStarted(rec)).unwrap();
        let prefix_len = std::fs::read(&path).unwrap().len();
        j.append(&JournalEvent::JobClaimed {
            sweep: "δ-sweep".into(),
            key: "kA2".into(),
            pid: 7,
            epoch: 1,
        })
        .unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in prefix_len..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (events, torn) = read_events_checked(&path)
                .unwrap_or_else(|e| panic!("truncation at byte {cut} must not error: {e}"));
            let fragment = &full[prefix_len..cut];
            let fragment_parses = std::str::from_utf8(fragment)
                .is_ok_and(|s| serde_json::from_str::<JournalEvent>(s).is_ok());
            if cut == prefix_len {
                assert_eq!(events.len(), 1, "cut at {cut}");
                assert_eq!(torn, None, "cut at {cut}");
            } else if fragment_parses {
                // e.g. everything but the trailing newline survived:
                // the record is complete and must be kept
                assert_eq!(events.len(), 2, "cut at {cut}");
                assert_eq!(torn, None, "cut at {cut}");
            } else {
                assert_eq!(events.len(), 1, "cut at {cut}");
                let t = torn.unwrap_or_else(|| panic!("cut at {cut} must report a torn tail"));
                assert_eq!(t.offset, prefix_len as u64, "cut at {cut}");
            }
        }
        // untruncated file parses both records with no torn tail
        std::fs::write(&path, &full).unwrap();
        let (events, torn) = read_events_checked(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(torn, None);
    }

    #[test]
    fn torn_tail_inside_multibyte_char_is_not_an_error() {
        let path = tmp("utf8");
        let mut j = Journal::open(&path).unwrap();
        j.append(&JournalEvent::SweepStarted(record("s1"))).unwrap();
        // append raw bytes ending mid-δ (0xCE without its 0xB4)
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"JobStarted\":{\"sweep\":\"s1\",\"label\":\"\xce")
            .unwrap();
        drop(f);
        let (events, torn) = read_events_checked(&path).unwrap();
        assert_eq!(events.len(), 1);
        assert!(torn.is_some());
        // the legacy entry point also survives (warns instead of erroring)
        assert_eq!(read_events(&path).unwrap().len(), 1);
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("corrupt");
        std::fs::write(&path, "not json\n{\"SweepFinished\":{\"sweep\":\"s\",\"hits\":0,\"misses\":0,\"failures\":0}}\n").unwrap();
        assert!(read_events(&path).is_err());
    }

    #[test]
    fn unfinished_tracking() {
        let events = vec![
            JournalEvent::SweepStarted(record("s1")),
            JournalEvent::SweepStarted(record("s2")),
            JournalEvent::SweepFinished {
                sweep: "s1".into(),
                hits: 1,
                misses: 0,
                failures: 0,
            },
        ];
        let open = unfinished_sweeps(&events);
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].id, "s2");
        assert!(find_sweep(&events, "s1").is_some());
        assert!(find_sweep(&events, "nope").is_none());
    }

    #[test]
    fn degraded_sweeps_stay_resumable_until_a_clean_finish() {
        let finished = |id: &str, failures: u64| JournalEvent::SweepFinished {
            sweep: id.into(),
            hits: 0,
            misses: 3,
            failures,
        };
        let events = vec![
            JournalEvent::SweepStarted(record("clean")),
            finished("clean", 0),
            JournalEvent::SweepStarted(record("degraded")),
            JournalEvent::JobFailed {
                sweep: "degraded".into(),
                key: "kA2".into(),
                label: "A".into(),
                value: 2.0,
                error: "panicked: boom".into(),
            },
            finished("degraded", 1),
            JournalEvent::SweepStarted(record("unfinished")),
        ];
        // a degraded finish is final for `unfinished_sweeps`...
        let ids: Vec<String> = unfinished_sweeps(&events)
            .into_iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, ["unfinished"]);
        // ...but still resumable
        let ids: Vec<String> = resumable_sweeps(&events)
            .into_iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, ["degraded", "unfinished"]);
        // a later clean re-run clears it
        let mut more = events.clone();
        more.push(JournalEvent::SweepStarted(record("degraded")));
        more.push(finished("degraded", 0));
        let ids: Vec<String> = resumable_sweeps(&more).into_iter().map(|r| r.id).collect();
        assert_eq!(ids, ["unfinished"]);
    }

    #[test]
    fn append_retries_injected_transient_faults() {
        let path = tmp("retry");
        // one injected transient failure; the bounded retry absorbs it
        secreta_faults::install(
            secreta_faults::FaultPlan::from_spec("seed=3;io@journal.append=1x1").unwrap(),
        );
        let mut j = Journal::open(&path).unwrap();
        let res = j.append(&JournalEvent::SweepStarted(record("s1")));
        secreta_faults::clear();
        res.unwrap();
        assert_eq!(read_events(&path).unwrap().len(), 1);
    }
}
