//! Process identity for crash-safe lock/lease ownership.
//!
//! A bare PID is not a stable owner identity: PIDs are recycled, so a
//! lock or lease whose holder died can look "alive" again the moment an
//! unrelated process is assigned the same number. Pairing the PID with
//! the kernel's per-process start time (field 22 of `/proc/<pid>/stat`,
//! in clock ticks since boot) makes the identity unforgeable across
//! reuse: a recycled PID necessarily has a different start time.
//!
//! On platforms without `/proc` both probes return `None` and callers
//! fall back to conservative behaviour (never steal what might be
//! held).

use std::fs;
use std::path::Path;

/// Liveness of a process id: `Some(alive)` when the platform exposes
/// `/proc`, `None` when it cannot be determined.
pub(crate) fn pid_alive(pid: u32) -> Option<bool> {
    let proc_root = Path::new("/proc");
    if !proc_root.is_dir() {
        return None;
    }
    Some(proc_root.join(pid.to_string()).exists())
}

/// Start time of `pid` in clock ticks since boot, from
/// `/proc/<pid>/stat` field 22. `None` when `/proc` is unavailable or
/// the process is gone.
pub(crate) fn proc_start_time(pid: u32) -> Option<u64> {
    let stat = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    // Field 2 (comm) may contain spaces and parentheses; everything
    // after the *last* ')' is space-separated, making start time the
    // 20th field of the tail (stat fields 3..).
    let tail = stat.rsplit_once(')')?.1;
    tail.split_ascii_whitespace().nth(19)?.parse().ok()
}

/// Start time of the current process, or `None` off-Linux.
pub(crate) fn self_start_time() -> Option<u64> {
    proc_start_time(std::process::id())
}

/// Whether the process identified by `(pid, start)` is provably dead.
///
/// Returns `true` when the PID is gone, or when it exists but with a
/// different start time (the PID was recycled by another process).
/// Returns `false` when the owner is alive or liveness is undecidable.
/// A `start` of `None` in the recorded identity falls back to the
/// PID-only check (legacy payloads).
pub(crate) fn owner_dead(pid: u32, start: Option<u64>) -> bool {
    match pid_alive(pid) {
        Some(false) => true,
        Some(true) => match (start, proc_start_time(pid)) {
            // PID exists but was recycled: start times differ.
            (Some(recorded), Some(current)) => recorded != current,
            // Process vanished between the two probes.
            (Some(_), None) => true,
            // Legacy identity without a start time: PID-alive wins.
            (None, _) => false,
        },
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_is_alive_with_matching_start() {
        if pid_alive(std::process::id()).is_none() {
            return; // no /proc on this platform
        }
        let start = self_start_time().expect("own start time readable");
        assert!(!owner_dead(std::process::id(), Some(start)));
        assert!(!owner_dead(std::process::id(), None));
    }

    #[test]
    fn recycled_pid_is_dead() {
        if pid_alive(std::process::id()).is_none() {
            return;
        }
        // Same (live) PID but a forged start time: provably recycled.
        assert!(owner_dead(std::process::id(), Some(u64::MAX)));
        // A PID that cannot exist is dead regardless of start time.
        assert!(owner_dead(u32::MAX, Some(1)));
        assert!(owner_dead(u32::MAX, None));
    }
}
