//! # secreta-store
//!
//! A content-addressed, persistent store of anonymization runs, plus
//! the write-ahead event journal that makes SECRETA's experiment
//! sweeps resumable and observable.
//!
//! The paper's workflow is experiment-heavy: evaluating one method or
//! comparing several expands into a grid of (configuration × sweep
//! point × seed) runs, and typical sessions re-run most of that grid
//! with one knob changed. This crate gives those runs durable
//! identity:
//!
//! * [`key`] — cache-key derivation: a run is addressed by the SHA-256
//!   of its canonicalized configuration, session-input digest, seed,
//!   sweep point and schema version;
//! * [`manifest`] — the per-run record ([`RunManifest`]): indicators,
//!   phase timings and provenance, round-tripping byte-identically
//!   through JSON;
//! * [`store`] — the on-disk layout ([`RunStore`]): crash-atomic puts
//!   via staging + rename, listing, prefix resolution, gc;
//! * [`journal`] — the JSONL write-ahead journal ([`Journal`]): intent
//!   records written before a sweep runs (making `runs resume`
//!   possible after a crash) and per-job observability events;
//! * [`lease`] — crash-safe job leases ([`LeaseSet`]) for distributed
//!   sweeps: atomic claims, TTL-based stale reclaim, and epoch/token
//!   fencing that rejects a reclaimed worker's late writes;
//! * [`sha`] — a dependency-free SHA-256 and a digest [`io::Write`]
//!   sink ([`sha::DigestWriter`]) for hashing session inputs through
//!   the existing writers.
//!
//! The crate deliberately sits *below* the experimentation framework:
//! it depends only on `secreta-metrics` (for the anonymized-table and
//! indicator models) and `secreta-obsv` (for the run profile stored in
//! manifests) so any layer — core orchestrator, CLI, plotting — can
//! read stored runs without dragging in the algorithms.
//!
//! [`io::Write`]: std::io::Write

#![deny(missing_docs)]

pub mod journal;
pub mod key;
pub mod lease;
pub mod lock;
pub mod manifest;
mod procinfo;
pub mod retry;
pub mod sha;
pub mod store;

pub use journal::{
    find_sweep, read_events, read_events_checked, resumable_sweeps, unfinished_sweeps, Journal,
    JournalEvent, SweepRecord, TornTail,
};
pub use key::{canonical_json, canonicalize, run_key, RunKey, STORE_SCHEMA_VERSION};
pub use lease::{backoff_ms, mint_token, ClaimOutcome, LeaseGuard, LeaseRecord, LeaseSet};
pub use lock::{StoreLock, LOCK_FILE};
pub use manifest::RunManifest;
pub use retry::RetryPolicy;
pub use sha::{sha256_hex, DigestWriter, Sha256};
pub use store::{FsckReport, JobRecord, RunStore, StoreError, StoredRun};
