//! The on-disk run store.
//!
//! Layout of a store root:
//!
//! ```text
//! <root>/
//!   runs/<kk>/<key>/manifest.json   # kk = first two hex chars of key
//!   runs/<kk>/<key>/anon.json       # the anonymized table
//!   tmp/                            # staging for atomic puts
//!   journal.jsonl                   # write-ahead event journal
//! ```
//!
//! Puts are crash-atomic: both files are written into a unique
//! directory under `tmp/` and the whole directory is `rename(2)`d into
//! place, so a reader can never observe a half-written run. A run
//! directory either has both files (complete) or is garbage that
//! `gc` removes.

use crate::journal::{Journal, JournalEvent};
use crate::key::RunKey;
use crate::manifest::RunManifest;
use secreta_metrics::AnonTable;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Failures of store operations.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed at the given path.
    Io(PathBuf, io::Error),
    /// A stored file exists but does not parse as what it should be.
    Corrupt(PathBuf, String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "store i/o error at {}: {e}", path.display()),
            StoreError::Corrupt(path, msg) => {
                write!(f, "corrupt store entry at {}: {msg}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A run read back from the store.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredRun {
    /// Metadata and measurements.
    pub manifest: RunManifest,
    /// The anonymized table the run produced.
    pub anon: AnonTable,
}

/// A content-addressed store of completed runs.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

fn io_err(path: &Path) -> impl FnOnce(io::Error) -> StoreError + '_ {
    move |e| StoreError::Io(path.to_path_buf(), e)
}

impl RunStore {
    /// Open a store rooted at `root`, creating the layout if absent.
    pub fn open(root: impl Into<PathBuf>) -> Result<RunStore, StoreError> {
        let root = root.into();
        for sub in ["runs", "tmp"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        }
        Ok(RunStore { root })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the event journal.
    pub fn journal_path(&self) -> PathBuf {
        self.root.join("journal.jsonl")
    }

    /// Open the journal for appending.
    pub fn journal(&self) -> Result<Journal, StoreError> {
        let path = self.journal_path();
        Journal::open(&path).map_err(io_err(&path))
    }

    /// Read every journal event (empty when no journal exists).
    pub fn read_journal(&self) -> Result<Vec<JournalEvent>, StoreError> {
        let path = self.journal_path();
        crate::journal::read_events(&path).map_err(io_err(&path))
    }

    fn run_dir(&self, key: &str) -> PathBuf {
        let shard = key.get(..2).unwrap_or("xx");
        self.root.join("runs").join(shard).join(key)
    }

    /// Is a complete run stored under `key`?
    pub fn contains(&self, key: &RunKey) -> bool {
        let dir = self.run_dir(key.as_str());
        dir.join("manifest.json").is_file() && dir.join("anon.json").is_file()
    }

    /// Load the run stored under `key`, if complete.
    pub fn get(&self, key: &RunKey) -> Result<Option<StoredRun>, StoreError> {
        let dir = self.run_dir(key.as_str());
        let manifest_path = dir.join("manifest.json");
        let anon_path = dir.join("anon.json");
        if !manifest_path.is_file() || !anon_path.is_file() {
            return Ok(None);
        }
        let manifest_text = fs::read_to_string(&manifest_path).map_err(io_err(&manifest_path))?;
        let manifest: RunManifest = serde_json::from_str(&manifest_text)
            .map_err(|e| StoreError::Corrupt(manifest_path.clone(), e.to_string()))?;
        let anon_text = fs::read_to_string(&anon_path).map_err(io_err(&anon_path))?;
        let anon: AnonTable = serde_json::from_str(&anon_text)
            .map_err(|e| StoreError::Corrupt(anon_path.clone(), e.to_string()))?;
        Ok(Some(StoredRun { manifest, anon }))
    }

    /// Store a completed run atomically. A run already present under
    /// the same key is left untouched (first write wins; contents are
    /// deterministic in the key, so any duplicate is identical).
    pub fn put(&self, manifest: &RunManifest, anon: &AnonTable) -> Result<(), StoreError> {
        let key = RunKey(manifest.key.clone());
        if self.contains(&key) {
            return Ok(());
        }
        let stage = self.root.join("tmp").join(format!(
            "{}-{}-{}",
            &manifest.key[..manifest.key.len().min(16)],
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        fs::create_dir_all(&stage).map_err(io_err(&stage))?;
        let write_json = |name: &str, text: String| -> Result<(), StoreError> {
            let path = stage.join(name);
            fs::write(&path, text).map_err(io_err(&path))
        };
        write_json(
            "manifest.json",
            serde_json::to_string_pretty(manifest)
                .map_err(|e| StoreError::Corrupt(stage.clone(), e.to_string()))?,
        )?;
        write_json(
            "anon.json",
            serde_json::to_string(anon)
                .map_err(|e| StoreError::Corrupt(stage.clone(), e.to_string()))?,
        )?;
        let dest = self.run_dir(&manifest.key);
        if let Some(parent) = dest.parent() {
            fs::create_dir_all(parent).map_err(io_err(parent))?;
        }
        match fs::rename(&stage, &dest) {
            Ok(()) => Ok(()),
            Err(_) if self.contains(&key) => {
                // lost a race with a concurrent writer of the same run
                let _ = fs::remove_dir_all(&stage);
                Ok(())
            }
            Err(e) => Err(StoreError::Io(dest, e)),
        }
    }

    /// Manifests of every complete run, oldest first (ties broken by
    /// key, so the order is deterministic).
    pub fn list(&self) -> Result<Vec<RunManifest>, StoreError> {
        let runs = self.root.join("runs");
        let mut out = Vec::new();
        for shard in read_dir_sorted(&runs)? {
            if !shard.is_dir() {
                continue;
            }
            for dir in read_dir_sorted(&shard)? {
                let manifest_path = dir.join("manifest.json");
                if !manifest_path.is_file() || !dir.join("anon.json").is_file() {
                    continue;
                }
                let text = fs::read_to_string(&manifest_path).map_err(io_err(&manifest_path))?;
                let manifest: RunManifest = serde_json::from_str(&text)
                    .map_err(|e| StoreError::Corrupt(manifest_path.clone(), e.to_string()))?;
                out.push(manifest);
            }
        }
        out.sort_by(|a, b| {
            a.created_unix_ms
                .cmp(&b.created_unix_ms)
                .then_with(|| a.key.cmp(&b.key))
        });
        Ok(out)
    }

    /// Resolve a (possibly abbreviated) key to the unique stored run
    /// it prefixes. Errors on ambiguity; `Ok(None)` when nothing
    /// matches.
    pub fn resolve(&self, prefix: &str) -> Result<Option<RunKey>, StoreError> {
        let matches: Vec<String> = self
            .list()?
            .into_iter()
            .map(|m| m.key)
            .filter(|k| k.starts_with(prefix))
            .collect();
        match matches.len() {
            0 => Ok(None),
            1 => Ok(Some(RunKey(matches.into_iter().next().unwrap()))),
            n => Err(StoreError::Corrupt(
                self.root.clone(),
                format!("key prefix `{prefix}` is ambiguous ({n} matches)"),
            )),
        }
    }

    /// Remove the run stored under `key`. Returns whether anything
    /// was deleted.
    pub fn remove(&self, key: &RunKey) -> Result<bool, StoreError> {
        let dir = self.run_dir(key.as_str());
        if !dir.exists() {
            return Ok(false);
        }
        fs::remove_dir_all(&dir).map_err(io_err(&dir))?;
        // drop the shard directory too once it empties
        if let Some(shard) = dir.parent() {
            let _ = fs::remove_dir(shard);
        }
        Ok(true)
    }

    /// Remove staging leftovers and incomplete run directories (a
    /// crash between `create_dir_all` and `rename` can leave either).
    /// Returns the number of directories removed.
    pub fn gc_incomplete(&self) -> Result<usize, StoreError> {
        let mut removed = 0;
        let tmp = self.root.join("tmp");
        for entry in read_dir_sorted(&tmp)? {
            fs::remove_dir_all(&entry)
                .or_else(|_| fs::remove_file(&entry))
                .map_err(io_err(&entry))?;
            removed += 1;
        }
        let runs = self.root.join("runs");
        for shard in read_dir_sorted(&runs)? {
            if !shard.is_dir() {
                continue;
            }
            for dir in read_dir_sorted(&shard)? {
                if dir.join("manifest.json").is_file() && dir.join("anon.json").is_file() {
                    continue;
                }
                fs::remove_dir_all(&dir).map_err(io_err(&dir))?;
                removed += 1;
            }
            let _ = fs::remove_dir(&shard);
        }
        Ok(removed)
    }

    /// Remove *everything* — every run, the staging area, the journal
    /// — leaving the store root empty. Returns the number of runs
    /// removed.
    pub fn gc_all(&self) -> Result<usize, StoreError> {
        let count = self.list()?.len();
        for sub in ["runs", "tmp"] {
            let dir = self.root.join(sub);
            if dir.exists() {
                fs::remove_dir_all(&dir).map_err(io_err(&dir))?;
            }
        }
        let journal = self.journal_path();
        if journal.exists() {
            fs::remove_file(&journal).map_err(io_err(&journal))?;
        }
        Ok(count)
    }
}

/// Directory entries sorted by name; a missing directory reads as
/// empty.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let rd = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(StoreError::Io(dir.to_path_buf(), e)),
    };
    let mut entries = Vec::new();
    for entry in rd {
        entries.push(entry.map_err(io_err(dir))?.path());
    }
    entries.sort();
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::STORE_SCHEMA_VERSION;
    use secreta_metrics::Indicators;
    use serde::Value;
    use std::time::Duration;

    fn tmp_store(name: &str) -> RunStore {
        let dir =
            std::env::temp_dir().join(format!("secreta-store-{}-{}", std::process::id(), name));
        let _ = fs::remove_dir_all(&dir);
        RunStore::open(dir).unwrap()
    }

    fn manifest(key: &str, created: u64) -> RunManifest {
        RunManifest {
            key: key.to_owned(),
            schema_version: STORE_SCHEMA_VERSION,
            context: "ctx".to_owned(),
            label: "CLUSTER".to_owned(),
            config: Value::Obj(vec![("k".to_owned(), Value::U64(5))]),
            seed: 1,
            sweep_param: None,
            sweep_value: None,
            created_unix_ms: created,
            indicators: Indicators {
                gcp: 0.5,
                tx_gcp: 0.25,
                ul: 0.0,
                are: 0.0,
                item_freq_error: 0.0,
                discernibility: 8,
                avg_class_size: 2.0,
                runtime_ms: 1.5,
                verified: true,
            },
            phases: secreta_metrics::PhaseTimes {
                phases: vec![("anonymize".to_owned(), Duration::from_millis(1))],
            },
            profile: None,
        }
    }

    fn empty_anon() -> AnonTable {
        AnonTable {
            rel: vec![],
            tx: None,
            n_rows: 0,
        }
    }

    fn key64(seed: u8) -> String {
        let c = char::from_digit((seed % 16) as u32, 16).unwrap();
        std::iter::repeat_n(c, 64).collect()
    }

    #[test]
    fn put_get_roundtrip() {
        let store = tmp_store("putget");
        let key = key64(0xa);
        let m = manifest(&key, 10);
        let anon = empty_anon();
        store.put(&m, &anon).unwrap();
        assert!(store.contains(&RunKey(key.clone())));
        let back = store.get(&RunKey(key)).unwrap().unwrap();
        assert_eq!(back.manifest, m);
        assert_eq!(back.anon, anon);
        // tmp staging is clean after a successful put
        assert!(read_dir_sorted(&store.root().join("tmp"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn get_missing_is_none() {
        let store = tmp_store("missing");
        assert!(store.get(&RunKey(key64(1))).unwrap().is_none());
        assert!(!store.contains(&RunKey(key64(1))));
    }

    #[test]
    fn list_sorts_by_creation() {
        let store = tmp_store("list");
        store.put(&manifest(&key64(2), 20), &empty_anon()).unwrap();
        store.put(&manifest(&key64(3), 10), &empty_anon()).unwrap();
        let all = store.list().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].created_unix_ms, 10);
        assert_eq!(all[1].created_unix_ms, 20);
    }

    #[test]
    fn resolve_prefix() {
        let store = tmp_store("resolve");
        store.put(&manifest(&key64(4), 1), &empty_anon()).unwrap();
        store.put(&manifest(&key64(5), 2), &empty_anon()).unwrap();
        assert_eq!(store.resolve("44").unwrap(), Some(RunKey(key64(4))));
        assert_eq!(store.resolve("ff").unwrap(), None);
        // "" prefixes both keys
        assert!(store.resolve("").is_err());
    }

    #[test]
    fn remove_and_gc_all_leave_store_empty() {
        let store = tmp_store("gc");
        store.put(&manifest(&key64(6), 1), &empty_anon()).unwrap();
        store.put(&manifest(&key64(7), 2), &empty_anon()).unwrap();
        store
            .journal()
            .unwrap()
            .append(&JournalEvent::SweepFinished {
                sweep: "s".into(),
                hits: 0,
                misses: 0,
                failures: 0,
            })
            .unwrap();
        assert!(store.remove(&RunKey(key64(6))).unwrap());
        assert!(!store.remove(&RunKey(key64(6))).unwrap());
        assert_eq!(store.list().unwrap().len(), 1);
        assert_eq!(store.gc_all().unwrap(), 1);
        let leftovers: Vec<PathBuf> = fs::read_dir(store.root())
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(
            leftovers.is_empty(),
            "store not empty after gc: {leftovers:?}"
        );
    }

    #[test]
    fn gc_incomplete_removes_partial_runs() {
        let store = tmp_store("gcpartial");
        store.put(&manifest(&key64(8), 1), &empty_anon()).unwrap();
        // a run dir missing anon.json, as left by a crash
        let partial = store.root().join("runs").join("99").join(key64(9));
        fs::create_dir_all(&partial).unwrap();
        fs::write(partial.join("manifest.json"), "{}").unwrap();
        // staging leftovers
        fs::create_dir_all(store.root().join("tmp").join("stale")).unwrap();
        assert_eq!(store.gc_incomplete().unwrap(), 2);
        assert!(!partial.exists());
        assert_eq!(store.list().unwrap().len(), 1);
    }

    #[test]
    fn corrupt_manifest_is_reported() {
        let store = tmp_store("corrupt");
        let key = key64(0xb);
        store.put(&manifest(&key, 1), &empty_anon()).unwrap();
        let path = store
            .root()
            .join("runs")
            .join("bb")
            .join(&key)
            .join("manifest.json");
        fs::write(&path, "{ not json").unwrap();
        assert!(matches!(
            store.get(&RunKey(key)),
            Err(StoreError::Corrupt(_, _))
        ));
    }
}
